//! The warm-session pool: LRU eviction under a resident-byte budget.
//!
//! Each registered model owns one slot that moves between three
//! states:
//!
//! ```text
//!        first acquire                 budget pressure
//! Cold ────────────────► Resident ────────────────────► Evicted
//!        (full build)        ▲     (checkpoint, drop       │
//!                            │      the machine)           │
//!                            └─────────────────────────────┘
//!                                next acquire (rehydrate the
//!                                Snapshot — bit-exact resume)
//! ```
//!
//! The budget is accounted in the same host-resident synaptic bytes
//! the lazy loader reports
//! ([`RunSession::resident_bytes`] /
//! `NeuralMachine::total_resident_bytes`), re-read after every batch
//! because lazily-materialized rows grow a session's footprint as it
//! runs. Eviction picks the least-recently-*acquired* resident slot,
//! never the one being served; a single model bigger than the whole
//! budget therefore stays resident alone rather than thrashing.
//!
//! The pool itself never decides *when* to run — that is the
//! [`Server`](crate::Server)'s queue — it only answers "give me a live
//! session for model M and keep the bytes legal".

use spinnaker::prelude::*;

use crate::job::ModelId;

/// What [`SessionPool::acquire`] had to do to produce a live session.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum AcquireOutcome {
    /// The session was already resident — the warm-hit path.
    Warm,
    /// First touch: the model paid a full place/route/load build.
    ColdBuild,
    /// The model had been evicted and was rebuilt from its
    /// [`Snapshot`] (bit-exact resume).
    Rehydrated,
}

/// Pool-level accounting, all monotonic except the byte gauges.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Acquires answered by an already-resident session.
    pub warm_acquires: u64,
    /// Full cold builds paid.
    pub cold_builds: u64,
    /// Snapshot rehydrates paid.
    pub rehydrates: u64,
    /// Sessions checkpointed out under budget pressure (or by an
    /// explicit [`SessionPool::evict`]).
    pub evictions: u64,
    /// High-water mark of summed resident bytes.
    pub peak_resident_bytes: u64,
}

/// One model's slot.
#[derive(Debug)]
enum SlotState {
    /// Never built.
    Cold,
    /// Live and warm.
    Resident(Box<RunSession>),
    /// Checkpointed out; the snapshot holds the full resume state.
    Evicted(Box<Snapshot>),
}

/// A registered model plus its serving state.
#[derive(Debug)]
struct Slot {
    net: NetworkGraph,
    cfg: SimConfig,
    state: SlotState,
    /// Pool clock at last acquire (the LRU key).
    last_used: u64,
    /// Resident bytes at last accounting (meaningful only while
    /// `Resident`).
    resident_bytes: u64,
}

/// A pool of warm [`RunSession`]s, one slot per registered model,
/// kept under `budget_bytes` of host-resident synaptic state by LRU
/// checkpoint-eviction.
#[derive(Debug)]
pub struct SessionPool {
    slots: Vec<Slot>,
    budget_bytes: u64,
    /// Monotonic acquire counter backing the LRU order.
    clock: u64,
    stats: PoolStats,
}

impl SessionPool {
    /// An empty pool bounded at `budget_bytes` of resident synaptic
    /// state (`u64::MAX` for effectively unbounded).
    pub fn new(budget_bytes: u64) -> SessionPool {
        SessionPool {
            slots: Vec::new(),
            budget_bytes,
            clock: 0,
            stats: PoolStats::default(),
        }
    }

    /// Registers a model (cold — nothing is built until the first
    /// [`SessionPool::acquire`]) and returns its id.
    pub fn register(&mut self, net: NetworkGraph, cfg: SimConfig) -> ModelId {
        let id = u32::try_from(self.slots.len()).expect("model count fits u32");
        self.slots.push(Slot {
            net,
            cfg,
            state: SlotState::Cold,
            last_used: 0,
            resident_bytes: 0,
        });
        ModelId(id)
    }

    /// Registered models.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether no models are registered.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Whether `model` names a registered slot.
    pub fn contains(&self, model: ModelId) -> bool {
        (model.0 as usize) < self.slots.len()
    }

    /// Makes `model`'s session live (building or rehydrating as
    /// needed), marks it most-recently-used, and enforces the byte
    /// budget by evicting other LRU residents. Call
    /// [`SessionPool::session_mut`] next for the live handle.
    ///
    /// # Errors
    ///
    /// Any [`Simulation::build`] error, or a snapshot error if a
    /// stored checkpoint fails to restore. Unknown models build-error
    /// via panic-free contract: callers (the server) validate ids at
    /// registration time, so this panics on out-of-range ids.
    pub fn acquire(&mut self, model: ModelId) -> Result<AcquireOutcome, SpinnError> {
        self.clock += 1;
        let clock = self.clock;
        let slot = &mut self.slots[model.0 as usize];
        slot.last_used = clock;
        let outcome = match &slot.state {
            SlotState::Resident(_) => {
                self.stats.warm_acquires += 1;
                AcquireOutcome::Warm
            }
            SlotState::Cold => {
                let session = Simulation::build(&slot.net, slot.cfg.clone())?.into_session();
                slot.resident_bytes = session.resident_bytes();
                slot.state = SlotState::Resident(Box::new(session));
                self.stats.cold_builds += 1;
                AcquireOutcome::ColdBuild
            }
            SlotState::Evicted(snap) => {
                let session = RunSession::restore(&slot.net, slot.cfg.clone(), snap)?;
                slot.resident_bytes = session.resident_bytes();
                slot.state = SlotState::Resident(Box::new(session));
                self.stats.rehydrates += 1;
                AcquireOutcome::Rehydrated
            }
        };
        self.note_peak();
        self.enforce_budget(model);
        Ok(outcome)
    }

    /// The live session for `model` (None while cold or evicted).
    pub fn session_mut(&mut self, model: ModelId) -> Option<&mut RunSession> {
        match &mut self.slots[model.0 as usize].state {
            SlotState::Resident(s) => Some(s),
            _ => None,
        }
    }

    /// Re-reads `model`'s resident bytes (lazy rows materialize as a
    /// session runs) and re-enforces the budget. Call after every
    /// served batch.
    pub fn refresh_accounting(&mut self, model: ModelId) {
        let slot = &mut self.slots[model.0 as usize];
        if let SlotState::Resident(s) = &slot.state {
            slot.resident_bytes = s.resident_bytes();
        }
        self.note_peak();
        self.enforce_budget(model);
    }

    /// Checkpoints `model` out of residency (a no-op unless resident).
    /// Returns whether an eviction happened.
    pub fn evict(&mut self, model: ModelId) -> bool {
        let slot = &mut self.slots[model.0 as usize];
        if let SlotState::Resident(s) = &slot.state {
            let snap = s.checkpoint();
            slot.state = SlotState::Evicted(Box::new(snap));
            slot.resident_bytes = 0;
            self.stats.evictions += 1;
            true
        } else {
            false
        }
    }

    /// Summed resident bytes across live sessions (as of the last
    /// accounting).
    pub fn resident_bytes(&self) -> u64 {
        self.slots
            .iter()
            .map(|s| match s.state {
                SlotState::Resident(_) => s.resident_bytes,
                _ => 0,
            })
            .sum()
    }

    /// Live sessions currently resident.
    pub fn resident_count(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| matches!(s.state, SlotState::Resident(_)))
            .count()
    }

    /// The configured budget, bytes.
    pub fn budget_bytes(&self) -> u64 {
        self.budget_bytes
    }

    /// Pool accounting so far.
    pub fn stats(&self) -> PoolStats {
        self.stats
    }

    fn note_peak(&mut self) {
        let now = self.resident_bytes();
        self.stats.peak_resident_bytes = self.stats.peak_resident_bytes.max(now);
    }

    /// Evicts least-recently-used residents (never `keep`) until the
    /// summed resident bytes fit the budget or only `keep` remains.
    fn enforce_budget(&mut self, keep: ModelId) {
        while self.resident_bytes() > self.budget_bytes {
            let victim = self
                .slots
                .iter()
                .enumerate()
                .filter(|(i, s)| *i != keep.0 as usize && matches!(s.state, SlotState::Resident(_)))
                .min_by_key(|(_, s)| s.last_used)
                .map(|(i, _)| i);
            match victim {
                Some(i) => {
                    let evicted = self.evict(ModelId(i as u32));
                    debug_assert!(evicted);
                }
                // Only the in-use model is resident; over-budget or
                // not, evicting the session we are about to run would
                // thrash, so it stays.
                None => break,
            }
        }
    }
}
