//! Job vocabulary: who runs what, and what comes back.
//!
//! The ids are deliberately opaque newtypes handed out by
//! [`Server::register_tenant`](crate::Server::register_tenant),
//! [`Server::register_model`](crate::Server::register_model) and
//! [`Server::submit`](crate::Server::submit) — a caller cannot forge a
//! tenant or model it never registered, and a stale `JobId` from
//! another server simply never matches.

use spinnaker::prelude::{PopSpike, PopulationId};

/// A registered tenant (user/group) of a [`Server`](crate::Server).
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TenantId(pub(crate) u32);

impl TenantId {
    /// The dense registration index (also the
    /// [`spinn_obs::TenantCounter`] row key in the server telemetry).
    pub fn index(self) -> u32 {
        self.0
    }
}

impl std::fmt::Display for TenantId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "tenant{}", self.0)
    }
}

/// A registered model: one `(NetworkGraph, SimConfig)` pair, and the
/// unit of warm-session sharing — every job naming the same `ModelId`
/// can ride the same resident machine.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ModelId(pub(crate) u32);

impl ModelId {
    /// The dense registration index.
    pub fn index(self) -> u32 {
        self.0
    }
}

impl std::fmt::Display for ModelId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "model{}", self.0)
    }
}

/// An admitted job. Ids are assigned densely in admission order, so
/// sorting results by `JobId` recovers the submission sequence.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobId(pub(crate) u64);

impl JobId {
    /// The dense admission sequence number.
    pub fn sequence(self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job{}", self.0)
    }
}

/// One Poisson stimulus program entry of a [`JobSpec`]: every neuron
/// of `pop` fires independently at `rate_hz`, seeded by `seed` (the
/// session layer's `(seed, tick)`-pure stream, so the stimulus — and
/// the run — is independent of batching and eviction).
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct Stimulus {
    /// The population to drive.
    pub pop: PopulationId,
    /// Per-neuron Poisson rate, Hz.
    pub rate_hz: f64,
    /// RNG stream seed.
    pub seed: u64,
}

/// A unit of work: run `model`'s warm session for `run_ms` biological
/// milliseconds under this job's stimulus program, and return the
/// spikes the segment emitted.
#[derive(Clone, Debug, PartialEq)]
pub struct JobSpec {
    /// Who is asking (admission control charges this tenant's quota).
    pub tenant: TenantId,
    /// Which registered model to run against.
    pub model: ModelId,
    /// Biological milliseconds to simulate (the tick-budget unit;
    /// must be non-zero).
    pub run_ms: u32,
    /// Stimulus sources attached for this job only — the session's
    /// previous sources are detached first.
    pub stimulus: Vec<Stimulus>,
}

/// A completed job's readout.
#[derive(Clone, Debug)]
pub struct JobResult {
    /// The admission id this result answers.
    pub job: JobId,
    /// The tenant that submitted it.
    pub tenant: TenantId,
    /// The model it ran against.
    pub model: ModelId,
    /// Biological milliseconds simulated.
    pub run_ms: u32,
    /// Spikes emitted during the job's segment, drained from the
    /// session (population coordinates, session-relative tick times).
    pub spikes: Vec<PopSpike>,
    /// Whether the job ran on an already-resident session. The first
    /// job of a batch reports the acquire outcome (cold build and
    /// snapshot rehydrate are both misses); followers coalesced onto
    /// the same session are warm by construction.
    pub warm_hit: bool,
    /// Wall-clock spent queued before dispatch, ms.
    pub queue_wait_ms: f64,
    /// Wall-clock spent running the segment (including any build or
    /// rehydrate this job paid for), ms.
    pub service_ms: f64,
}

impl JobResult {
    /// Queue wait plus service: the latency a closed-loop client
    /// observes, ms.
    pub fn latency_ms(&self) -> f64 {
        self.queue_wait_ms + self.service_ms
    }
}
