//! # spinn-serve — the machine as a shared instrument
//!
//! SpiNNaker was pitched as a community machine: one physical
//! million-core instrument, many users submitting jobs against models
//! that stay loaded. The substrate for that already exists in this
//! workspace — [`spinnaker::RunSession`] keeps a built machine warm
//! between runs, and its ~48 B/neuron [`spinnaker::Snapshot`]s park and
//! resume a session bit-exactly. What was missing is the operator
//! layer: who gets to run, on which warm machine, and what happens
//! when the host can't keep every model resident. This crate is that
//! layer.
//!
//! ## Shape
//!
//! ```text
//! submit(JobSpec) ──► admission control ──► bounded FIFO queue
//!     (per-tenant quotas,  [quota::AdmitError on reject])
//!      queue-cap check)
//!                                   poll()
//!                                     │  coalesce: up to max_batch
//!                                     ▼  queued jobs on one model
//!                         ┌───────────────────────┐
//!                         │ SessionPool (LRU)     │
//!                         │  model A: Resident ◄──┼── warm hit
//!                         │  model B: Evicted  ◄──┼── rehydrate from Snapshot
//!                         │  model C: Cold     ◄──┼── first build
//!                         └───────────────────────┘
//!                                     │ resident-byte budget enforced
//!                                     ▼ (evict LRU via checkpoint())
//!                              Vec<JobResult>
//! ```
//!
//! * **Admission** ([`Server::submit`]) is synchronous and fallible:
//!   a full queue, an exhausted per-tenant in-flight slot, or a blown
//!   tick budget rejects the job *now* with a typed
//!   [`AdmitError`] instead of letting it rot in a queue. Rejection is
//!   deterministic in arrival order — the conformance suite replays a
//!   seeded arrival sequence twice and demands identical verdicts.
//! * **Serving** ([`Server::poll`]) dispatches one batch per call:
//!   the head-of-queue job picks the model, and up to
//!   [`ServeConfig::max_batch`] queued jobs *on that same model* ride
//!   the same warm session back-to-back, paying one acquire for the
//!   lot. [`Server::drain`] loops `poll` until the queue is empty.
//! * **Eviction** ([`pool::SessionPool`]) keeps resident synaptic
//!   bytes (the [`spinnaker::RunSession::resident_bytes`] accounting)
//!   under [`ServeConfig::resident_budget_bytes`] by checkpointing the
//!   least-recently-used session into a [`spinnaker::Snapshot`] and
//!   dropping its machine. A later job on that model rehydrates it —
//!   bit-exactly, so eviction is invisible in the spike streams.
//! * **Accounting** — every admission, rejection, completed job, warm
//!   hit and bio-millisecond is recorded per tenant into
//!   [`spinn_obs::RunTelemetry`] via its [`spinn_obs::TenantCounter`]
//!   registry ([`Server::telemetry`]), so operator reports ride the
//!   same pipeline as machine telemetry.
//!
//! ## Determinism
//!
//! The server never consults wall-clock time for a *decision*: batch
//! composition, eviction order and admission verdicts are pure
//! functions of the submission sequence and the configuration.
//! Wall-clock shows up only in the latency fields of [`JobResult`].
//! Combined with the session layer's bit-exact segment and snapshot
//! contracts, an identical job stream yields identical spike streams —
//! whatever the byte budget, batch width or eviction pattern. E21
//! (`spinn-bench`) locks this down and `tests/serving_invariants.rs`
//! replays it on every CI run.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod job;
pub mod pool;
pub mod quota;
pub mod server;

pub use job::{JobId, JobResult, JobSpec, ModelId, Stimulus, TenantId};
pub use pool::{AcquireOutcome, PoolStats, SessionPool};
pub use quota::{AdmitError, TenantQuota};
pub use server::{ServeConfig, ServeStats, Server};
