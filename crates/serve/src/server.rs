//! The server: bounded queue, admission, batching, dispatch.
//!
//! A [`Server`] is single-threaded and synchronous by design — the
//! *sessions* it serves shard their event loops across workers
//! ([`ServeConfig::threads`]), but admission and dispatch decisions
//! happen in submission order with no clock reads, which is what makes
//! the whole layer replayable. An async front-end (or a process-level
//! queue like the batch systems the original machine-room operators
//! ran) layers on top without touching the invariants here.

use std::collections::VecDeque;
use std::time::Instant;

use spinn_obs::{RunTelemetry, TenantCounter};
use spinnaker::prelude::*;

use crate::job::{JobId, JobResult, JobSpec, ModelId, TenantId};
use crate::pool::{AcquireOutcome, PoolStats, SessionPool};
use crate::quota::{AdmitError, TenantLedger, TenantQuota};

/// Server sizing and policy knobs.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct ServeConfig {
    /// Bounded-queue capacity; submissions beyond it are rejected
    /// with [`AdmitError::QueueFull`].
    pub queue_cap: usize,
    /// Resident-byte budget across all warm sessions (see
    /// [`SessionPool`]); `u64::MAX` disables eviction pressure.
    pub resident_budget_bytes: u64,
    /// Most queued jobs one [`Server::poll`] coalesces onto a single
    /// warm session (all sharing the head-of-queue job's model).
    pub max_batch: usize,
    /// Worker threads each served segment runs on (results are
    /// bit-identical at any count; this trades wall-clock only).
    pub threads: u32,
}

impl Default for ServeConfig {
    /// 64 queue slots, unbounded residency, batches of 8, serial
    /// segments.
    fn default() -> ServeConfig {
        ServeConfig {
            queue_cap: 64,
            resident_budget_bytes: u64::MAX,
            max_batch: 8,
            threads: 1,
        }
    }
}

/// A queued, admitted job.
#[derive(Debug)]
struct Queued {
    id: JobId,
    spec: JobSpec,
    enqueued: Instant,
}

/// Server-level accounting (see also [`PoolStats`] via
/// [`Server::pool_stats`]).
#[derive(Copy, Clone, Debug, Default, PartialEq)]
pub struct ServeStats {
    /// Jobs run to completion.
    pub jobs_completed: u64,
    /// Jobs that ran on an already-warm session (batch followers
    /// included).
    pub warm_hits: u64,
    /// Batches dispatched.
    pub batches: u64,
    /// Extra jobs coalesced onto a batch leader's acquire
    /// (`jobs_completed - batches` when every poll found work).
    pub coalesced_jobs: u64,
    /// Submissions refused at admission.
    pub rejected: u64,
}

impl ServeStats {
    /// Fraction of completed jobs that hit a warm session (0.0 before
    /// any job completes).
    pub fn warm_hit_ratio(&self) -> f64 {
        if self.jobs_completed == 0 {
            0.0
        } else {
            self.warm_hits as f64 / self.jobs_completed as f64
        }
    }
}

/// A multi-tenant serving front-end over a [`SessionPool`] (see the
/// [crate docs](crate) for the full dataflow).
#[derive(Debug)]
pub struct Server {
    cfg: ServeConfig,
    pool: SessionPool,
    tenants: Vec<TenantLedger>,
    queue: VecDeque<Queued>,
    next_job: u64,
    stats: ServeStats,
    telemetry: RunTelemetry,
}

impl Server {
    /// An empty server with the given sizing.
    pub fn new(cfg: ServeConfig) -> Server {
        Server {
            pool: SessionPool::new(cfg.resident_budget_bytes),
            cfg,
            tenants: Vec::new(),
            queue: VecDeque::new(),
            next_job: 0,
            stats: ServeStats::default(),
            telemetry: RunTelemetry::default(),
        }
    }

    /// Registers a tenant under `quota` and returns its id (`name` is
    /// a report label only).
    pub fn register_tenant(&mut self, name: &str, quota: TenantQuota) -> TenantId {
        let id = u32::try_from(self.tenants.len()).expect("tenant count fits u32");
        self.tenants.push(TenantLedger::new(name, quota));
        TenantId(id)
    }

    /// Registers a model (nothing is built until its first job
    /// dispatches) and returns its id.
    pub fn register_model(&mut self, net: NetworkGraph, cfg: SimConfig) -> ModelId {
        self.pool.register(net, cfg)
    }

    /// Admission control: validates the spec, charges the tenant's
    /// quota, and enqueues. Synchronous, clock-free and deterministic
    /// in arrival order — replaying a submission sequence replays the
    /// verdicts.
    ///
    /// # Errors
    ///
    /// A typed [`AdmitError`]; checks run in the order unknown-ids /
    /// empty-job / queue-full / in-flight / tick-budget, and every
    /// rejection of a known tenant is counted against it in the
    /// server telemetry.
    pub fn submit(&mut self, spec: JobSpec) -> Result<JobId, AdmitError> {
        if (spec.tenant.0 as usize) >= self.tenants.len() {
            return Err(AdmitError::UnknownTenant(spec.tenant));
        }
        let verdict = self.admit_checks(&spec);
        if let Err(e) = verdict {
            self.stats.rejected += 1;
            self.telemetry
                .tenant_add(spec.tenant.0, TenantCounter::JobsRejected, 1);
            return Err(e);
        }
        let ledger = &mut self.tenants[spec.tenant.0 as usize];
        ledger.in_flight += 1;
        ledger.bio_ms_used += u64::from(spec.run_ms);
        self.telemetry
            .tenant_add(spec.tenant.0, TenantCounter::JobsAdmitted, 1);
        let id = JobId(self.next_job);
        self.next_job += 1;
        self.queue.push_back(Queued {
            id,
            spec,
            enqueued: Instant::now(),
        });
        Ok(id)
    }

    /// The quota/capacity checks behind [`Server::submit`] (tenant id
    /// already validated).
    fn admit_checks(&self, spec: &JobSpec) -> Result<(), AdmitError> {
        if !self.pool.contains(spec.model) {
            return Err(AdmitError::UnknownModel(spec.model));
        }
        if spec.run_ms == 0 {
            return Err(AdmitError::EmptyJob);
        }
        if self.queue.len() >= self.cfg.queue_cap {
            return Err(AdmitError::QueueFull {
                cap: self.cfg.queue_cap,
            });
        }
        let ledger = &self.tenants[spec.tenant.0 as usize];
        if ledger.in_flight >= ledger.quota.max_in_flight {
            return Err(AdmitError::InFlightLimit {
                tenant: spec.tenant,
                limit: ledger.quota.max_in_flight,
            });
        }
        let remaining = ledger.remaining_ms();
        if u64::from(spec.run_ms) > remaining {
            return Err(AdmitError::TickBudget {
                tenant: spec.tenant,
                remaining_ms: remaining,
                requested_ms: spec.run_ms,
            });
        }
        Ok(())
    }

    /// Dispatches one batch: the head-of-queue job picks the model,
    /// up to [`ServeConfig::max_batch`] queued jobs on that model run
    /// back-to-back on one warm session (FIFO order preserved within
    /// the batch; other models keep their queue positions). Returns
    /// the batch's results, empty when the queue is idle.
    ///
    /// # Errors
    ///
    /// A build or snapshot-restore failure surfaces the underlying
    /// [`SpinnError`]; the batch's jobs stay queued for a retry.
    pub fn poll(&mut self) -> Result<Vec<JobResult>, SpinnError> {
        let Some(front) = self.queue.front() else {
            return Ok(Vec::new());
        };
        let model = front.spec.model;
        let outcome = self.pool.acquire(model)?;

        // Coalesce: pull every same-model job (bounded by max_batch)
        // out of the queue, preserving relative order.
        let mut batch = Vec::new();
        let mut i = 0;
        while i < self.queue.len() && batch.len() < self.cfg.max_batch.max(1) {
            if self.queue[i].spec.model == model {
                batch.push(self.queue.remove(i).expect("index in bounds"));
            } else {
                i += 1;
            }
        }

        let threads = self.cfg.threads;
        let mut results = Vec::with_capacity(batch.len());
        for (k, job) in batch.into_iter().enumerate() {
            let warm = if k == 0 {
                outcome == AcquireOutcome::Warm
            } else {
                true
            };
            let dispatched = Instant::now();
            let queue_wait_ms = dispatched.duration_since(job.enqueued).as_secs_f64() * 1e3;
            let session = self
                .pool
                .session_mut(model)
                .expect("acquire left the model resident");
            session.set_threads(threads);
            session.clear_stimulus_sources();
            for s in &job.spec.stimulus {
                session.add_poisson(s.pop, s.rate_hz, s.seed);
            }
            session.run_for(job.spec.run_ms);
            let spikes = session.take_spikes();
            let service_ms = dispatched.elapsed().as_secs_f64() * 1e3;

            let tenant = job.spec.tenant;
            self.tenants[tenant.0 as usize].in_flight -= 1;
            self.telemetry
                .tenant_add(tenant.0, TenantCounter::JobsCompleted, 1);
            self.telemetry
                .tenant_add(tenant.0, TenantCounter::BioMs, u64::from(job.spec.run_ms));
            self.telemetry
                .tenant_add(tenant.0, TenantCounter::Spikes, spikes.len() as u64);
            self.telemetry.tenant_add(
                tenant.0,
                if warm {
                    TenantCounter::WarmHits
                } else {
                    TenantCounter::ColdServes
                },
                1,
            );
            self.stats.jobs_completed += 1;
            if warm {
                self.stats.warm_hits += 1;
            }
            if k > 0 {
                self.stats.coalesced_jobs += 1;
            }

            results.push(JobResult {
                job: job.id,
                tenant,
                model,
                run_ms: job.spec.run_ms,
                spikes,
                warm_hit: warm,
                queue_wait_ms,
                service_ms,
            });
        }
        self.stats.batches += 1;
        // Lazy rows may have materialized during the batch — re-read
        // the footprint and re-enforce the budget.
        self.pool.refresh_accounting(model);
        Ok(results)
    }

    /// Polls until the queue is empty, returning every result in
    /// dispatch order.
    ///
    /// # Errors
    ///
    /// The first [`SpinnError`] a batch hits (already-produced results
    /// are dropped; their jobs completed and stay charged).
    pub fn drain(&mut self) -> Result<Vec<JobResult>, SpinnError> {
        let mut out = Vec::new();
        while !self.queue.is_empty() {
            out.extend(self.poll()?);
        }
        Ok(out)
    }

    /// Checkpoints `model` out of residency (see [`SessionPool::evict`]).
    pub fn evict(&mut self, model: ModelId) -> bool {
        self.pool.evict(model)
    }

    /// Jobs currently queued.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Jobs a tenant has admitted-but-unfinished.
    pub fn in_flight(&self, tenant: TenantId) -> u32 {
        self.tenants
            .get(tenant.0 as usize)
            .map_or(0, |l| l.in_flight)
    }

    /// Biological milliseconds a tenant can still be charged.
    pub fn remaining_tick_budget(&self, tenant: TenantId) -> u64 {
        self.tenants
            .get(tenant.0 as usize)
            .map_or(0, TenantLedger::remaining_ms)
    }

    /// A tenant's report label.
    pub fn tenant_name(&self, tenant: TenantId) -> Option<&str> {
        self.tenants.get(tenant.0 as usize).map(|l| l.name.as_str())
    }

    /// Summed resident bytes across warm sessions.
    pub fn resident_bytes(&self) -> u64 {
        self.pool.resident_bytes()
    }

    /// Server-level accounting.
    pub fn stats(&self) -> ServeStats {
        self.stats
    }

    /// Pool-level accounting (builds, rehydrates, evictions, peak
    /// bytes).
    pub fn pool_stats(&self) -> PoolStats {
        self.pool.stats()
    }

    /// The sizing this server was built with.
    pub fn config(&self) -> ServeConfig {
        self.cfg
    }

    /// The server's telemetry: per-tenant
    /// [`TenantCounter`] rows, renderable/mergeable through the
    /// standard [`RunTelemetry`] pipeline.
    pub fn telemetry(&self) -> &RunTelemetry {
        &self.telemetry
    }
}
