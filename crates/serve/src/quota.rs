//! Admission control: per-tenant quotas and the typed rejection.
//!
//! Quotas bound the two resources a tenant can hog: *queue slots*
//! (via [`TenantQuota::max_in_flight`] plus the server-wide queue cap)
//! and *machine time* (via [`TenantQuota::tick_budget_ms`], charged in
//! biological milliseconds at admission). Checks run synchronously in
//! [`Server::submit`](crate::Server::submit), in a fixed order, with
//! no clock reads — so a seeded arrival sequence produces the same
//! accept/reject verdicts on every replay, which is exactly what the
//! conformance suite asserts.

use crate::job::{ModelId, TenantId};

/// A tenant's admission limits.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct TenantQuota {
    /// Jobs the tenant may have admitted-but-unfinished at once
    /// (queued or mid-batch). Submissions beyond this are rejected
    /// with [`AdmitError::InFlightLimit`].
    pub max_in_flight: u32,
    /// Total biological milliseconds the tenant may ever be charged.
    /// Charged at admission ([`JobSpec::run_ms`](crate::JobSpec));
    /// once exhausted, submissions are rejected with
    /// [`AdmitError::TickBudget`].
    pub tick_budget_ms: u64,
}

impl TenantQuota {
    /// No effective limits (both fields at their max).
    pub fn unlimited() -> TenantQuota {
        TenantQuota {
            max_in_flight: u32::MAX,
            tick_budget_ms: u64::MAX,
        }
    }

    /// A bounded quota.
    pub fn new(max_in_flight: u32, tick_budget_ms: u64) -> TenantQuota {
        TenantQuota {
            max_in_flight,
            tick_budget_ms,
        }
    }
}

impl Default for TenantQuota {
    /// Defaults to [`TenantQuota::unlimited`].
    fn default() -> TenantQuota {
        TenantQuota::unlimited()
    }
}

/// Why [`Server::submit`](crate::Server::submit) refused a job.
///
/// `PartialEq` on purpose: the determinism tests compare whole
/// rejection sequences across replays.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AdmitError {
    /// The server's bounded queue is at capacity — back off and retry.
    QueueFull {
        /// The configured queue capacity that was hit.
        cap: usize,
    },
    /// The tenant already has its quota of admitted-but-unfinished
    /// jobs.
    InFlightLimit {
        /// The offending tenant.
        tenant: TenantId,
        /// Its `max_in_flight` limit.
        limit: u32,
    },
    /// Admitting the job would overdraw the tenant's machine-time
    /// budget.
    TickBudget {
        /// The offending tenant.
        tenant: TenantId,
        /// Biological milliseconds still available.
        remaining_ms: u64,
        /// Biological milliseconds the job asked for.
        requested_ms: u32,
    },
    /// The spec names a tenant this server never registered.
    UnknownTenant(TenantId),
    /// The spec names a model this server never registered.
    UnknownModel(ModelId),
    /// The spec asks for zero biological milliseconds.
    EmptyJob,
}

impl std::fmt::Display for AdmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmitError::QueueFull { cap } => {
                write!(f, "job queue full ({cap} slots)")
            }
            AdmitError::InFlightLimit { tenant, limit } => {
                write!(f, "{tenant} already has {limit} job(s) in flight")
            }
            AdmitError::TickBudget {
                tenant,
                remaining_ms,
                requested_ms,
            } => write!(
                f,
                "{tenant} tick budget exhausted: {remaining_ms} bio-ms left, {requested_ms} requested"
            ),
            AdmitError::UnknownTenant(t) => write!(f, "unregistered {t}"),
            AdmitError::UnknownModel(m) => write!(f, "unregistered {m}"),
            AdmitError::EmptyJob => f.write_str("job requests zero biological milliseconds"),
        }
    }
}

impl std::error::Error for AdmitError {}

/// Server-side per-tenant ledger backing the quota checks.
#[derive(Clone, Debug)]
pub(crate) struct TenantLedger {
    /// Operator-facing label (reports only; never a lookup key).
    pub(crate) name: String,
    /// The admission limits.
    pub(crate) quota: TenantQuota,
    /// Jobs admitted but not yet completed.
    pub(crate) in_flight: u32,
    /// Biological milliseconds charged so far.
    pub(crate) bio_ms_used: u64,
}

impl TenantLedger {
    pub(crate) fn new(name: &str, quota: TenantQuota) -> TenantLedger {
        TenantLedger {
            name: name.to_string(),
            quota,
            in_flight: 0,
            bio_ms_used: 0,
        }
    }

    /// Biological milliseconds the tenant can still be charged.
    pub(crate) fn remaining_ms(&self) -> u64 {
        self.quota.tick_budget_ms.saturating_sub(self.bio_ms_used)
    }
}
