//! System bring-up (§5.2): self-test, monitor election, coordinate
//! propagation from (0,0), p2p readiness, host check-in, and
//! nearest-neighbour rescue of nodes that failed to boot.
//!
//! "SpiNNaker is a highly-distributed homogeneous system with no explicit
//! means of synchronization" — bring-up must break chip-level symmetry
//! (the monitor-arbitration register) and then system-level symmetry
//! (node (0,0) is identified through the Host connection and coordinates
//! propagate outwards using nn packets)."

use spinn_noc::direction::ALL_DIRECTIONS;
use spinn_noc::fabric::{p2p_addr, CtxScheduler, Fabric, FabricConfig, NocEvent};
use spinn_noc::mesh::NodeCoord;
use spinn_noc::packet::{Packet, PacketKind};
use spinn_sim::{Context, Engine, Model, SimTime, Xoshiro256};

use crate::chip::ChipState;

/// nn-packet opcodes used during boot (carried in the packet key).
mod opcode {
    /// "Your coordinates are in the payload."
    pub const ASSIGN_COORDS: u32 = 0x0100_0000;
    /// "You failed to boot: re-run self-test and re-elect."
    pub const RESCUE: u32 = 0x0200_0000;
}

/// Boot-process configuration.
#[derive(Copy, Clone, Debug)]
pub struct BootConfig {
    /// Mesh width, chips.
    pub width: u32,
    /// Mesh height, chips.
    pub height: u32,
    /// Cores per chip.
    pub cores_per_chip: u8,
    /// Probability that a core fails its power-on self-test.
    pub core_fault_prob: f64,
    /// Fraction of self-test failures that are transient (cured by the
    /// re-test a rescue triggers).
    pub transient_fault_frac: f64,
    /// Self-test completion window: cores finish at a uniform random
    /// time in `[selftest_min_ns, selftest_max_ns)`.
    pub selftest_min_ns: u64,
    /// Upper edge of the self-test window.
    pub selftest_max_ns: u64,
    /// When the host assigns (0,0) (must be after the self-test window).
    pub host_start_ns: u64,
    /// When neighbours check for dead chips and attempt rescue.
    pub rescue_at_ns: u64,
    /// PRNG seed.
    pub seed: u64,
}

impl BootConfig {
    /// Defaults for a `width x height` machine.
    pub fn new(width: u32, height: u32) -> Self {
        BootConfig {
            width,
            height,
            cores_per_chip: 20,
            core_fault_prob: 0.0,
            transient_fault_frac: 0.8,
            selftest_min_ns: 10_000,
            selftest_max_ns: 100_000,
            host_start_ns: 150_000,
            rescue_at_ns: 2_000_000,
            seed: 1,
        }
    }
}

/// Events of the boot simulation.
#[derive(Copy, Clone, Debug)]
pub enum BootEvent {
    /// Fabric internals (nn/p2p packets in flight).
    Noc(NocEvent),
    /// A core completes its power-on self-test and bids for Monitor.
    SelfTest {
        /// Dense chip id.
        chip: u32,
        /// Core index.
        core: u8,
    },
    /// The host assigns (0,0) over Ethernet.
    HostStart,
    /// Neighbour chips look for dead nodes and attempt rescue.
    RescueSweep,
    /// A chip sends (or re-sends) its p2p check-in report to the host.
    Report {
        /// Dense chip id.
        chip: u32,
    },
    /// A monitor re-issues a dropped p2p packet (§5.3: "can recover the
    /// packet and re-issue it if appropriate").
    Reissue {
        /// Dense chip id at which the packet was dropped.
        node: u32,
        /// The dropped packet's key.
        key: u32,
        /// The dropped packet's payload.
        payload: u32,
    },
}

/// Result summary of a boot run.
#[derive(Clone, Debug, Default)]
pub struct BootOutcome {
    /// Chips that elected exactly one monitor in the first round.
    pub monitors_first_round: usize,
    /// Chips rescued by neighbours (monitor after re-test).
    pub rescued: usize,
    /// Chips left dead (no functioning monitor).
    pub dead_chips: usize,
    /// Time at which every live chip knew its coordinates, ns.
    pub coords_complete_ns: Option<u64>,
    /// Time at which the host had received every live chip's p2p
    /// check-in report, ns.
    pub reports_complete_ns: Option<u64>,
    /// Total healthy cores across the machine.
    pub healthy_cores: usize,
    /// True if any chip ever had more than one monitor (must never
    /// happen).
    pub election_violated: bool,
}

/// The boot-process simulation.
///
/// # Example
///
/// ```
/// use spinn_machine::boot::{BootConfig, BootSim};
///
/// let outcome = BootSim::run(BootConfig::new(4, 4));
/// assert_eq!(outcome.monitors_first_round, 16);
/// assert_eq!(outcome.dead_chips, 0);
/// assert!(outcome.coords_complete_ns.is_some());
/// ```
#[derive(Debug)]
pub struct BootSim {
    cfg: BootConfig,
    fabric: Fabric,
    chips: Vec<ChipState>,
    /// Per-core: failure is permanent (not cured by rescue re-test).
    permanent_fault: Vec<Vec<bool>>,
    /// Per-core: failed initial self-test.
    failed_initial: Vec<Vec<bool>>,
    rng: Xoshiro256,
    reports_received: Vec<bool>,
    rescued: usize,
    coords_complete_ns: Option<u64>,
    reports_complete_ns: Option<u64>,
    election_violated: bool,
}

impl BootSim {
    /// Builds the simulation (schedule via [`BootSim::engine`] or use
    /// [`BootSim::run`]).
    pub fn new(cfg: BootConfig) -> Self {
        let fabric = Fabric::new(FabricConfig::new(cfg.width, cfg.height));
        let n = (cfg.width * cfg.height) as usize;
        BootSim {
            fabric,
            chips: (0..n).map(|_| ChipState::new(cfg.cores_per_chip)).collect(),
            permanent_fault: vec![vec![false; cfg.cores_per_chip as usize]; n],
            failed_initial: vec![vec![false; cfg.cores_per_chip as usize]; n],
            rng: Xoshiro256::seed_from_u64(cfg.seed),
            reports_received: vec![false; n],
            rescued: 0,
            coords_complete_ns: None,
            reports_complete_ns: None,
            election_violated: false,
            cfg,
        }
    }

    /// Creates an engine with the full boot schedule queued.
    pub fn engine(cfg: BootConfig) -> Engine<BootSim> {
        let sim = BootSim::new(cfg);
        let mut engine = Engine::new(sim);
        let span = cfg.selftest_max_ns - cfg.selftest_min_ns;
        for chip in 0..(cfg.width * cfg.height) {
            for core in 0..cfg.cores_per_chip {
                let jitter = engine.model_mut().rng.gen_range_u64(span.max(1));
                engine.schedule_at(
                    SimTime::new(cfg.selftest_min_ns + jitter),
                    BootEvent::SelfTest { chip, core },
                );
            }
        }
        engine.schedule_at(SimTime::new(cfg.host_start_ns), BootEvent::HostStart);
        engine.schedule_at(SimTime::new(cfg.rescue_at_ns), BootEvent::RescueSweep);
        // A second sweep to re-flood coordinates to rescued chips.
        engine.schedule_at(
            SimTime::new(cfg.rescue_at_ns + cfg.rescue_at_ns / 2),
            BootEvent::RescueSweep,
        );
        engine
    }

    /// Runs a complete boot and summarizes it.
    pub fn run(cfg: BootConfig) -> BootOutcome {
        let mut engine = BootSim::engine(cfg);
        engine.run_to_completion(Some(200_000_000));
        engine.model().outcome()
    }

    /// The per-chip bring-up states.
    pub fn chips(&self) -> &[ChipState] {
        &self.chips
    }

    /// Summarizes the current state.
    pub fn outcome(&self) -> BootOutcome {
        let monitors = self.chips.iter().filter(|c| c.has_monitor()).count();
        BootOutcome {
            monitors_first_round: monitors - self.rescued,
            rescued: self.rescued,
            dead_chips: self.chips.len() - monitors,
            coords_complete_ns: self.coords_complete_ns,
            reports_complete_ns: self.reports_complete_ns,
            healthy_cores: self.chips.iter().map(|c| c.healthy_cores()).sum(),
            election_violated: self.election_violated,
        }
    }

    fn torus_coord(&self, chip: usize) -> NodeCoord {
        self.fabric.torus().coord_of(chip)
    }

    fn on_self_test(&mut self, chip: usize, core: u8) {
        let pass = !self.rng.gen_bool(self.cfg.core_fault_prob);
        if pass {
            self.chips[chip].core_ok[core as usize] = true;
            // Passing cores race for the monitor role; the read-sensitive
            // register arbitrates.
            let already = self.chips[chip].controller.monitor();
            let won = self.chips[chip].controller.read_monitor_arbiter(core);
            if won && already.is_some() {
                self.election_violated = true;
            }
        } else {
            self.failed_initial[chip][core as usize] = true;
            if !self.rng.gen_bool(self.cfg.transient_fault_frac) {
                self.permanent_fault[chip][core as usize] = true;
            }
        }
    }

    /// Assigns coordinates to a chip and floods them onwards.
    fn assign_coords(
        &mut self,
        now: u64,
        chip: usize,
        coords: (u32, u32),
        ctx: &mut Context<BootEvent>,
    ) {
        if !self.chips[chip].has_monitor() || self.chips[chip].coords.is_some() {
            return; // dead chips ignore; duplicates ignored
        }
        self.chips[chip].coords = Some(coords);
        self.chips[chip].p2p_ready = true;
        if self
            .chips
            .iter()
            .all(|c| !c.has_monitor() || c.coords.is_some())
            && self.coords_complete_ns.is_none()
        {
            self.coords_complete_ns = Some(now);
        }
        // Propagate to all six neighbours.
        let here = self.torus_coord(chip);
        for d in ALL_DIRECTIONS {
            let peer = self.fabric.torus().neighbour(here, d);
            let payload = (peer.x << 16) | peer.y;
            self.fabric.inject_nn(
                now,
                here,
                d,
                Packet::nn(opcode::ASSIGN_COORDS, payload),
                &mut CtxScheduler::new(ctx, BootEvent::Noc),
            );
        }
        // Check in with the host via p2p to (0,0), staggered to avoid
        // the whole wavefront converging on the origin at once.
        let jitter = self.rng.gen_range_u64(100_000);
        ctx.schedule_in(jitter, BootEvent::Report { chip: chip as u32 });
    }

    fn send_report(&mut self, now: u64, chip: usize, ctx: &mut Context<BootEvent>) {
        let here = self.torus_coord(chip);
        let report = Packet::p2p(p2p_addr(here), p2p_addr(NodeCoord::new(0, 0)), chip as u32);
        self.fabric.inject(
            now,
            here,
            report,
            &mut CtxScheduler::new(ctx, BootEvent::Noc),
        );
    }

    fn on_host_start(&mut self, now: u64, ctx: &mut Context<BootEvent>) {
        // The Ethernet-attached node is identified as the origin.
        self.assign_coords(now, 0, (0, 0), ctx);
    }

    fn on_rescue_sweep(&mut self, now: u64, ctx: &mut Context<BootEvent>) {
        // Every live, configured chip probes its neighbours; dead ones
        // get a rescue nn packet ("copy boot code into the failed node's
        // System RAM and instruct it to reboot", §5.2).
        let n = self.chips.len();
        for chip in 0..n {
            if !self.chips[chip].has_monitor() || self.chips[chip].coords.is_none() {
                continue;
            }
            let here = self.torus_coord(chip);
            for d in ALL_DIRECTIONS {
                let peer = self.fabric.torus().neighbour(here, d);
                let pid = self.fabric.torus().id_of(peer);
                if !self.chips[pid].has_monitor() {
                    self.fabric.inject_nn(
                        now,
                        here,
                        d,
                        Packet::nn(opcode::RESCUE, 0),
                        &mut CtxScheduler::new(ctx, BootEvent::Noc),
                    );
                }
                // Re-flood coordinates so late-rescued chips configure.
                let payload = (peer.x << 16) | peer.y;
                self.fabric.inject_nn(
                    now,
                    here,
                    d,
                    Packet::nn(opcode::ASSIGN_COORDS, payload),
                    &mut CtxScheduler::new(ctx, BootEvent::Noc),
                );
            }
        }
    }

    fn on_rescue_packet(&mut self, chip: usize) {
        if self.chips[chip].has_monitor() {
            return;
        }
        // Re-run self-test: transient faults are cured, permanent ones
        // are not.
        let was_dead = !self.chips[chip].has_monitor();
        self.chips[chip].controller.reset();
        for core in 0..self.cfg.cores_per_chip as usize {
            let ok = !self.failed_initial[chip][core] || !self.permanent_fault[chip][core];
            self.chips[chip].core_ok[core] = ok;
            if ok {
                self.chips[chip].controller.read_monitor_arbiter(core as u8);
            }
        }
        if was_dead && self.chips[chip].has_monitor() {
            self.rescued += 1;
        }
    }

    fn drain_deliveries(&mut self, now: u64, ctx: &mut Context<BootEvent>) {
        // Dropped packets are recovered by the local monitor and
        // re-issued after a backoff (§5.3).
        for dropped in self.fabric.take_dropped() {
            if dropped.packet.kind == PacketKind::PointToPoint {
                let node = self.fabric.torus().id_of(dropped.node) as u32;
                let backoff = 50_000 + self.rng.gen_range_u64(100_000);
                ctx.schedule_in(
                    backoff,
                    BootEvent::Reissue {
                        node,
                        key: dropped.packet.key,
                        payload: dropped.packet.payload.unwrap_or(0),
                    },
                );
            }
        }
        for d in self.fabric.take_deliveries() {
            let chip = self.fabric.torus().id_of(d.node);
            match d.packet.kind {
                PacketKind::NearestNeighbour => {
                    if d.packet.key == opcode::ASSIGN_COORDS {
                        let p = d.packet.payload.unwrap_or(0);
                        self.assign_coords(now, chip, (p >> 16, p & 0xFFFF), ctx);
                    } else if d.packet.key == opcode::RESCUE {
                        self.on_rescue_packet(chip);
                    }
                }
                PacketKind::PointToPoint => {
                    // Host check-in report arriving at (0,0).
                    if chip == 0 {
                        let src = d.packet.payload.unwrap_or(u32::MAX) as usize;
                        if src < self.reports_received.len() {
                            self.reports_received[src] = true;
                        }
                        let all = self
                            .chips
                            .iter()
                            .enumerate()
                            .all(|(i, c)| !c.has_monitor() || self.reports_received[i]);
                        if all && self.reports_complete_ns.is_none() {
                            self.reports_complete_ns = Some(now);
                        }
                    }
                }
                PacketKind::Multicast => {}
            }
        }
    }
}

impl Model for BootSim {
    type Event = BootEvent;

    fn handle(&mut self, ctx: &mut Context<BootEvent>, ev: BootEvent) {
        let now = ctx.now().ticks();
        match ev {
            BootEvent::Noc(ev) => {
                self.fabric
                    .handle(now, ev, &mut CtxScheduler::new(ctx, BootEvent::Noc))
            }
            BootEvent::SelfTest { chip, core } => self.on_self_test(chip as usize, core),
            BootEvent::HostStart => self.on_host_start(now, ctx),
            BootEvent::RescueSweep => self.on_rescue_sweep(now, ctx),
            BootEvent::Report { chip } => self.send_report(now, chip as usize, ctx),
            BootEvent::Reissue { node, key, payload } => {
                let here = self.fabric.torus().coord_of(node as usize);
                let packet = Packet {
                    kind: PacketKind::PointToPoint,
                    emergency: Default::default(),
                    timestamp: 0,
                    key,
                    payload: Some(payload),
                };
                self.fabric.inject(
                    now,
                    here,
                    packet,
                    &mut CtxScheduler::new(ctx, BootEvent::Noc),
                );
            }
        }
        self.drain_deliveries(now, ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_free_boot_elects_every_monitor_and_configures() {
        let outcome = BootSim::run(BootConfig::new(8, 8));
        assert_eq!(outcome.monitors_first_round, 64);
        assert_eq!(outcome.rescued, 0);
        assert_eq!(outcome.dead_chips, 0);
        assert!(!outcome.election_violated);
        assert_eq!(outcome.healthy_cores, 64 * 20);
        assert!(outcome.coords_complete_ns.is_some());
        assert!(outcome.reports_complete_ns.is_some());
        assert!(outcome.reports_complete_ns >= outcome.coords_complete_ns);
    }

    #[test]
    fn coordinate_propagation_takes_wavefront_time() {
        // Completion time grows with machine diameter but stays O(diam).
        let t4 = BootSim::run(BootConfig::new(4, 4))
            .coords_complete_ns
            .unwrap();
        let t12 = BootSim::run(BootConfig::new(12, 12))
            .coords_complete_ns
            .unwrap();
        assert!(t12 > t4, "bigger machine boots later: {t4} vs {t12}");
        // Diameter grows 3x (2 -> 6 hex-torus eccentricity); allow slack
        // but reject quadratic blow-up.
        let hop = (t12 - t4) as f64 / 4.0; // per extra hop
        assert!(hop < 200_000.0, "per-hop propagation cost too big: {hop}");
    }

    #[test]
    fn faulty_cores_still_yield_single_monitors() {
        let mut cfg = BootConfig::new(6, 6);
        cfg.core_fault_prob = 0.3;
        cfg.seed = 42;
        let outcome = BootSim::run(cfg);
        assert!(!outcome.election_violated);
        // With 20 cores at 30% fault rate, all chips virtually certainly
        // have at least one healthy core.
        assert_eq!(outcome.dead_chips, 0);
        assert!(outcome.healthy_cores < 36 * 20);
        assert!(outcome.healthy_cores > 36 * 10);
    }

    #[test]
    fn dead_chip_is_rescued_by_neighbours() {
        // Force a chip dead: fault probability 1 would kill everything,
        // so instead run with an extreme per-chip scenario: fault rate
        // high enough that some chip loses all 20 cores is implausible;
        // emulate by marking the chip dead after construction.
        let mut engine = BootSim::engine(BootConfig::new(4, 4));
        {
            let sim = engine.model_mut();
            // Chip 5: all cores fail initial self-test, transiently.
            for core in 0..20 {
                sim.permanent_fault[5][core] = false;
            }
        }
        // Intercept the self-tests of chip 5 by setting fault prob per
        // event: simplest is to run and then check the rescue machinery
        // with a manual kill before HostStart.
        engine.run_until(SimTime::new(5_000));
        {
            let sim = engine.model_mut();
            for core in 0..20 {
                sim.failed_initial[5][core] = true;
            }
        }
        // Swallow chip 5's pending self-tests by marking fault prob 1
        // only for it: emulate by resetting its state after the window.
        engine.run_until(SimTime::new(120_000));
        {
            let sim = engine.model_mut();
            sim.chips[5] = ChipState::new(20);
        }
        engine.run_to_completion(Some(50_000_000));
        let outcome = engine.model().outcome();
        assert_eq!(outcome.dead_chips, 0, "chip 5 must be rescued");
        assert!(outcome.rescued >= 1);
        assert!(engine.model().chips()[5].coords.is_some());
    }

    #[test]
    fn permanently_dead_chip_stays_dead_but_boot_completes() {
        let mut engine = BootSim::engine(BootConfig::new(4, 4));
        engine.run_until(SimTime::new(120_000));
        {
            let sim = engine.model_mut();
            sim.chips[10] = ChipState::new(20);
            for core in 0..20 {
                sim.failed_initial[10][core] = true;
                sim.permanent_fault[10][core] = true;
            }
        }
        engine.run_to_completion(Some(50_000_000));
        let outcome = engine.model().outcome();
        assert_eq!(outcome.dead_chips, 1);
        assert!(outcome.coords_complete_ns.is_some(), "boot must complete");
        assert!(outcome.reports_complete_ns.is_some());
    }

    #[test]
    fn deterministic_given_seed() {
        let a = BootSim::run(BootConfig::new(6, 6));
        let b = BootSim::run(BootConfig::new(6, 6));
        assert_eq!(a.coords_complete_ns, b.coords_complete_ns);
        assert_eq!(a.reports_complete_ns, b.reports_complete_ns);
        assert_eq!(a.healthy_cores, b.healthy_cores);
    }
}
