//! Deterministic machine checkpoints: serialize a paused
//! [`NeuralMachine`] (plus its pending event queue) into a compact byte
//! snapshot, and install a snapshot onto a freshly built machine so the
//! run continues **bit-exactly**.
//!
//! What a snapshot captures:
//!
//! * every loaded core's dynamic state — neuron pool (SoA membrane
//!   variables, bit-cast), deferred-event input ring, handler queues,
//!   the in-progress work item, STDP timing vectors, counters;
//! * the synaptic arenas as **deltas**: only the rows STDP actually
//!   rewrote are stored (an unplastic network costs zero synaptic bytes
//!   per checkpoint) — restore applies them onto the loader's freshly
//!   built matrices;
//! * the fabric — routing tables, router statistics, link
//!   failed/busy/queue state with every in-flight packet;
//! * machine-level results and accounting — recorded spikes, the
//!   energy meter, the latency histogram, the DMA port clocks,
//!   remaining stimuli and fault schedules;
//! * the **pending event queue** in canonical `(time, rank)` order, as
//!   returned by [`NeuralMachine::run_segment`].
//!
//! What it deliberately does *not* capture: the static build products —
//! machine geometry, cost/energy models, base synaptic matrices and
//! neuron parameters all come from re-running the same build
//! (`Simulation::build`, or the same hand-loading code) before
//! [`NeuralMachine::install_snapshot`]. The snapshot stores the full
//! machine configuration only to *validate* that the host machine
//! matches; the queue kind is exempt, so a checkpoint taken on the
//! calendar queue restores onto the heap queue (and onto any thread
//! count) without loss.

use spinn_neuron::pool::NeuronPool;
use spinn_neuron::ring::InputRing;
use spinn_neuron::stdp::StdpParams;
use spinn_noc::direction::Direction;
use spinn_noc::fabric::{decode_flight, encode_flight, NocEvent};
use spinn_sim::wire::{Dec, Enc, WireError};
use spinn_sim::Histogram;

use crate::config::MachineConfig;
use crate::machine::{MachineEvent, NeuralMachine, PendingEvent, SpikeRecord, WorkItem};

/// Snapshot format magic + version. Version 2 added the repair plan
/// (queued [`MachineEvent::RepairLink`] schedules) after the fault
/// plan, plus the `RepairLink` pending-event tag.
const MAGIC: &[u8] = b"SPNNMACH";
const VERSION: u32 = 2;

/// Why a snapshot could not be installed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SnapshotError {
    /// The byte stream is truncated, corrupt, or of an unknown version.
    Wire(WireError),
    /// The snapshot was taken on a machine this one does not match
    /// (geometry, cost model, loaded cores or matrix shapes differ).
    Mismatch(String),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Wire(e) => write!(f, "unreadable snapshot: {e}"),
            SnapshotError::Mismatch(what) => {
                write!(f, "snapshot does not match this machine: {what}")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<WireError> for SnapshotError {
    fn from(e: WireError) -> Self {
        SnapshotError::Wire(e)
    }
}

/// The dynamic run state a snapshot carries alongside the machine: what
/// [`NeuralMachine::install_snapshot`] hands back so the caller can
/// continue the run with [`NeuralMachine::run_segment`].
#[derive(Clone, Debug)]
pub struct RestoredRun {
    /// Milliseconds of biological time already simulated.
    pub elapsed_ms: u32,
    /// The paused run's queued events, in canonical order.
    pub pending: Vec<PendingEvent>,
}

/// Encodes every [`MachineConfig`] field except the queue kind — the
/// identity under which snapshots are compatible.
fn encode_config_identity(cfg: &MachineConfig, enc: &mut Enc) {
    enc.u32(cfg.width)
        .u32(cfg.height)
        .u8(cfg.cores_per_chip)
        .u32(cfg.cpu_mhz)
        .u32(cfg.itcm_bytes)
        .u32(cfg.dtcm_bytes)
        .u64(cfg.sdram_bytes)
        .u32(cfg.dma_bytes_per_us)
        .u64(cfg.dma_setup_ns);
    let f = &cfg.fabric;
    enc.u32(f.width)
        .u32(f.height)
        .u64(f.ns_per_bit)
        .u64(f.link_prop_ns)
        .u64(f.router_latency_ns)
        .u64(f.out_queue_cap as u64)
        .u64(f.router.table_capacity as u64)
        .u64(f.router.wait1_ns)
        .u64(f.router.wait2_ns)
        .bool(f.router.emergency_enabled)
        .u32(f.max_hops);
    let c = &cfg.costs;
    for v in [
        c.packet_isr_instr,
        c.dma_isr_instr,
        c.per_synapse_instr,
        c.timer_fixed_instr,
        c.per_neuron_instr,
        c.spike_emit_instr,
    ] {
        enc.u64(v);
    }
    let e = &cfg.energy;
    for v in [
        e.core_active_mw,
        e.core_sleep_mw,
        e.router_pj_per_packet,
        e.link_pj_per_hop,
        e.sdram_pj_per_byte,
        e.chip_overhead_mw,
    ] {
        enc.f64(v);
    }
}

fn encode_event(ev: &MachineEvent, enc: &mut Enc) {
    match ev {
        MachineEvent::Timer => {
            enc.u8(0);
        }
        MachineEvent::FailLink { chip, dir } => {
            enc.u8(1).u32(*chip).u8(dir.index() as u8);
        }
        MachineEvent::CoreDone { chip, core } => {
            enc.u8(2).u32(*chip).u8(*core);
        }
        MachineEvent::DmaDone { chip, core, key } => {
            enc.u8(3).u32(*chip).u8(*core).u32(*key);
        }
        MachineEvent::InjectSpike { chip, key } => {
            enc.u8(4).u32(*chip).u32(*key);
        }
        MachineEvent::ReissueSpike {
            chip,
            key,
            timestamp,
        } => {
            enc.u8(5).u32(*chip).u32(*key).u8(*timestamp);
        }
        MachineEvent::Noc(NocEvent::Arrive { node, port, flight }) => {
            enc.u8(6).u32(*node).u8(*port);
            encode_flight(enc, flight);
        }
        MachineEvent::Noc(NocEvent::LinkFree { node, dir }) => {
            enc.u8(7).u32(*node).u8(*dir);
        }
        MachineEvent::Noc(NocEvent::Retry {
            node,
            dir,
            phase,
            left,
            flight,
        }) => {
            enc.u8(8).u32(*node).u8(*dir).u8(*phase).u8(*left);
            encode_flight(enc, flight);
        }
        MachineEvent::RepairLink { chip, dir } => {
            enc.u8(9).u32(*chip).u8(dir.index() as u8);
        }
    }
}

/// Bounds-checks a decoded event against the host machine's geometry:
/// a corrupt (or crafted) snapshot must fail at install time with a
/// [`SnapshotError`], never panic later inside the run.
fn validate_event(ev: &MachineEvent, chips: u32, cores_per_chip: u8) -> Result<(), WireError> {
    let chip_ok = |chip: u32| {
        if chip < chips {
            Ok(())
        } else {
            Err(WireError::Corrupt("event chip id"))
        }
    };
    let core_ok = |core: u8| {
        if core != 0 && core < cores_per_chip {
            Ok(())
        } else {
            Err(WireError::Corrupt("event core id"))
        }
    };
    let dir_ok = |dir: u8| {
        if (dir as usize) < 6 {
            Ok(())
        } else {
            Err(WireError::Corrupt("event link direction"))
        }
    };
    match ev {
        MachineEvent::Timer => Ok(()),
        MachineEvent::FailLink { chip, .. }
        | MachineEvent::RepairLink { chip, .. }
        | MachineEvent::InjectSpike { chip, .. } => chip_ok(*chip),
        MachineEvent::ReissueSpike {
            chip, timestamp, ..
        } => {
            chip_ok(*chip)?;
            if *timestamp > 3 {
                return Err(WireError::Corrupt("event timestamp"));
            }
            Ok(())
        }
        MachineEvent::CoreDone { chip, core } | MachineEvent::DmaDone { chip, core, .. } => {
            chip_ok(*chip)?;
            core_ok(*core)
        }
        MachineEvent::Noc(NocEvent::Arrive { node, port, .. }) => {
            chip_ok(*node)?;
            dir_ok(*port)
        }
        MachineEvent::Noc(NocEvent::LinkFree { node, dir }) => {
            chip_ok(*node)?;
            dir_ok(*dir)
        }
        MachineEvent::Noc(NocEvent::Retry { node, dir, .. }) => {
            chip_ok(*node)?;
            dir_ok(*dir)
        }
    }
}

fn decode_direction(dec: &mut Dec<'_>) -> Result<Direction, WireError> {
    let idx = dec.u8()? as usize;
    if idx >= 6 {
        return Err(WireError::Corrupt("link direction"));
    }
    Ok(Direction::from_index(idx))
}

fn decode_event(dec: &mut Dec<'_>) -> Result<MachineEvent, WireError> {
    Ok(match dec.u8()? {
        0 => MachineEvent::Timer,
        1 => MachineEvent::FailLink {
            chip: dec.u32()?,
            dir: decode_direction(dec)?,
        },
        2 => MachineEvent::CoreDone {
            chip: dec.u32()?,
            core: dec.u8()?,
        },
        3 => MachineEvent::DmaDone {
            chip: dec.u32()?,
            core: dec.u8()?,
            key: dec.u32()?,
        },
        4 => MachineEvent::InjectSpike {
            chip: dec.u32()?,
            key: dec.u32()?,
        },
        5 => MachineEvent::ReissueSpike {
            chip: dec.u32()?,
            key: dec.u32()?,
            timestamp: dec.u8()?,
        },
        6 => MachineEvent::Noc(NocEvent::Arrive {
            node: dec.u32()?,
            port: dec.u8()?,
            flight: decode_flight(dec)?,
        }),
        7 => MachineEvent::Noc(NocEvent::LinkFree {
            node: dec.u32()?,
            dir: dec.u8()?,
        }),
        8 => MachineEvent::Noc(NocEvent::Retry {
            node: dec.u32()?,
            dir: dec.u8()?,
            phase: dec.u8()?,
            left: dec.u8()?,
            flight: decode_flight(dec)?,
        }),
        9 => MachineEvent::RepairLink {
            chip: dec.u32()?,
            dir: decode_direction(dec)?,
        },
        _ => return Err(WireError::Corrupt("event tag")),
    })
}

/// Writes the values of a sparse `f64` vector whose default is −∞ (the
/// STDP "never seen a spike" timestamps): only finite entries cost
/// bytes.
fn encode_sparse_times(times: &[f64], enc: &mut Enc) {
    enc.seq(times.len());
    let finite = times.iter().filter(|t| t.is_finite()).count();
    enc.seq(finite);
    for (i, &t) in times.iter().enumerate() {
        if t.is_finite() {
            enc.u32(i as u32).f64(t);
        }
    }
}

fn decode_sparse_times(dec: &mut Dec<'_>) -> Result<Vec<f64>, WireError> {
    // The declared length is the *logical* vector size, not a stored
    // element count, so it is not bounded by the remaining bytes (only
    // the finite entries are on the wire) — validate it directly.
    let len = dec.u64()?;
    if len > u32::MAX as u64 {
        return Err(WireError::Corrupt("sparse time length"));
    }
    let len = len as usize;
    let mut out = vec![f64::NEG_INFINITY; len];
    let finite = dec.seq(12)?;
    for _ in 0..finite {
        let i = dec.u32()? as usize;
        if i >= len {
            return Err(WireError::Corrupt("sparse time index"));
        }
        out[i] = dec.f64()?;
    }
    Ok(out)
}

impl NeuralMachine {
    /// Serializes this machine's complete dynamic state together with
    /// `pending` (the queued events the last
    /// [`NeuralMachine::run_segment`] returned) into a snapshot that
    /// [`NeuralMachine::install_snapshot`] restores bit-exactly.
    pub fn snapshot(&self, pending: &[PendingEvent]) -> Vec<u8> {
        let mut enc = Enc::new();
        enc.raw(MAGIC).u32(VERSION);
        encode_config_identity(&self.cfg, &mut enc);
        enc.u32(self.duration_ms);
        match &self.stdp {
            None => {
                enc.bool(false);
            }
            Some(p) => {
                enc.bool(true)
                    .f32(p.a_plus)
                    .f32(p.a_minus)
                    .f32(p.tau_plus_ms)
                    .f32(p.tau_minus_ms)
                    .i16(p.w_min_raw)
                    .i16(p.w_max_raw);
            }
        }
        enc.u64(self.reissued_packets).u64(self.weight_writebacks);
        let m = &self.meter;
        for v in [
            m.core_active_ns,
            m.core_sleep_ns,
            m.packets_routed,
            m.packet_hops,
            m.sdram_bytes,
            m.chip_overhead_ns,
            m.instructions,
        ] {
            enc.u64(v);
        }
        self.spike_latency.encode(&mut enc);
        enc.seq(self.spikes.len());
        for s in &self.spikes {
            enc.u32(s.time_ms).u32(s.key);
        }
        enc.seq(self.dma_free_at.len());
        for &t in &self.dma_free_at {
            enc.u64(t);
        }
        enc.seq(self.stimuli.len());
        for &(t, chip, key) in &self.stimuli {
            enc.u64(t).u32(chip).u32(key);
        }
        enc.seq(self.fault_plan.len());
        for &(t, chip, dir) in &self.fault_plan {
            enc.u64(t).u32(chip).u8(dir.index() as u8);
        }
        enc.seq(self.repair_plan.len());
        for &(t, chip, dir) in &self.repair_plan {
            enc.u64(t).u32(chip).u8(dir.index() as u8);
        }
        self.fabric.encode_state(&mut enc);

        let loaded: Vec<usize> = (0..self.cores.len())
            .filter(|&i| self.cores[i].is_some())
            .collect();
        enc.seq(loaded.len());
        for idx in loaded {
            let c = self.cores[idx].as_ref().expect("filtered to loaded");
            enc.u64(idx as u64).u32(c.base_key);
            enc.seq(c.bias_na.len());
            for &b in &c.bias_na {
                enc.f32(b);
            }
            c.neurons.encode(&mut enc);
            c.ring.encode(&mut enc);
            enc.seq(c.q_packets.len());
            for &k in &c.q_packets {
                enc.u32(k);
            }
            enc.seq(c.q_rows.len());
            for &r in &c.q_rows {
                enc.u32(r);
            }
            enc.u32(c.timer_pending);
            match &c.current {
                None => enc.u8(0),
                Some(WorkItem::Packet(key)) => enc.u8(1).u32(*key),
                Some(WorkItem::Row(row)) => enc.u8(2).u32(*row),
                Some(WorkItem::Timer) => enc.u8(3),
            };
            enc.seq(c.pending_spikes.len());
            for &k in &c.pending_spikes {
                enc.u32(k);
            }
            enc.u64(c.spikes_emitted).u64(c.overruns).u64(c.row_misses);
            encode_sparse_times(&c.row_last_pre_ms, &mut enc);
            encode_sparse_times(&c.last_post_ms, &mut enc);
            // Synaptic arena deltas: the rows STDP rewrote, deduplicated.
            let mut dirty = c.dirty_rows.clone();
            dirty.sort_unstable();
            dirty.dedup();
            c.matrix.encode_rows(&dirty, &mut enc);
        }

        enc.seq(pending.len());
        for p in pending {
            enc.u64(p.at_ns);
            encode_event(&p.event, &mut enc);
        }
        enc.into_bytes()
    }

    /// Installs a [`NeuralMachine::snapshot`] onto this machine,
    /// overwriting all dynamic state. The machine must be **freshly
    /// built the same way** as the one the snapshot was taken from
    /// (same geometry and cost model, same cores loaded with the same
    /// neuron counts and synaptic matrices); only the queue kind may
    /// differ. Returns the elapsed time and pending events to continue
    /// from via [`NeuralMachine::run_segment`] — the continuation
    /// replays bit-exactly on any thread count and either queue kind.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Wire`] if the bytes are truncated or corrupt;
    /// [`SnapshotError::Mismatch`] if the snapshot belongs to a
    /// differently built machine. On error the machine may be partially
    /// overwritten and must be discarded.
    pub fn install_snapshot(&mut self, bytes: &[u8]) -> Result<RestoredRun, SnapshotError> {
        let mut dec = Dec::new(bytes);
        dec.magic(MAGIC)?;
        let version = dec.u32()?;
        if version != VERSION {
            return Err(SnapshotError::Wire(WireError::Version(version)));
        }
        {
            // Config identity check: the identity section is
            // fixed-width, so bit-compare it against this machine's own
            // encoding (every field except the queue kind).
            let mut mine = Enc::new();
            encode_config_identity(&self.cfg, &mut mine);
            let mine = mine.into_bytes();
            let start = MAGIC.len() + 4;
            let their_slice = bytes.get(start..start + mine.len()).ok_or(WireError::Eof)?;
            if their_slice != mine.as_slice() {
                return Err(SnapshotError::Mismatch(
                    "machine configuration differs (geometry, timing or energy model)".into(),
                ));
            }
            dec = Dec::new(&bytes[start + mine.len()..]);
        }
        self.duration_ms = dec.u32()?;
        self.stdp = if dec.bool()? {
            Some(StdpParams {
                a_plus: dec.f32()?,
                a_minus: dec.f32()?,
                tau_plus_ms: dec.f32()?,
                tau_minus_ms: dec.f32()?,
                w_min_raw: dec.i16()?,
                w_max_raw: dec.i16()?,
            })
        } else {
            None
        };
        self.reissued_packets = dec.u64()?;
        self.weight_writebacks = dec.u64()?;
        for v in [
            &mut self.meter.core_active_ns,
            &mut self.meter.core_sleep_ns,
            &mut self.meter.packets_routed,
            &mut self.meter.packet_hops,
            &mut self.meter.sdram_bytes,
            &mut self.meter.chip_overhead_ns,
            &mut self.meter.instructions,
        ] {
            *v = dec.u64()?;
        }
        self.spike_latency = Histogram::decode(&mut dec)?;
        let n_spikes = dec.seq(8)?;
        self.spikes = Vec::with_capacity(n_spikes);
        for _ in 0..n_spikes {
            self.spikes.push(SpikeRecord {
                time_ms: dec.u32()?,
                key: dec.u32()?,
            });
        }
        let n_dma = dec.seq(8)?;
        if n_dma != self.dma_free_at.len() {
            return Err(SnapshotError::Mismatch("chip count differs".into()));
        }
        for slot in self.dma_free_at.iter_mut() {
            *slot = dec.u64()?;
        }
        let chips = self.cfg.chips() as u32;
        let n_stim = dec.seq(16)?;
        self.stimuli = Vec::with_capacity(n_stim);
        for _ in 0..n_stim {
            let (t, chip, key) = (dec.u64()?, dec.u32()?, dec.u32()?);
            if chip >= chips {
                return Err(SnapshotError::Wire(WireError::Corrupt("stimulus chip id")));
            }
            self.stimuli.push((t, chip, key));
        }
        let n_faults = dec.seq(13)?;
        self.fault_plan = Vec::with_capacity(n_faults);
        for _ in 0..n_faults {
            let (t, chip, dir) = (dec.u64()?, dec.u32()?, decode_direction(&mut dec)?);
            if chip >= chips {
                return Err(SnapshotError::Wire(WireError::Corrupt("fault chip id")));
            }
            self.fault_plan.push((t, chip, dir));
        }
        let n_repairs = dec.seq(13)?;
        self.repair_plan = Vec::with_capacity(n_repairs);
        for _ in 0..n_repairs {
            let (t, chip, dir) = (dec.u64()?, dec.u32()?, decode_direction(&mut dec)?);
            if chip >= chips {
                return Err(SnapshotError::Wire(WireError::Corrupt("repair chip id")));
            }
            self.repair_plan.push((t, chip, dir));
        }
        self.fabric.apply_state(&mut dec)?;

        let n_loaded = dec.seq(8)?;
        let actually_loaded = self.cores.iter().filter(|c| c.is_some()).count();
        if n_loaded != actually_loaded {
            return Err(SnapshotError::Mismatch(format!(
                "snapshot has {n_loaded} loaded core(s), this machine has {actually_loaded}"
            )));
        }
        for _ in 0..n_loaded {
            let idx = dec.u64()? as usize;
            let base_key = dec.u32()?;
            let c = self
                .cores
                .get_mut(idx)
                .and_then(|c| c.as_mut())
                .ok_or_else(|| SnapshotError::Mismatch(format!("core {idx} is not loaded")))?;
            if base_key != c.base_key {
                return Err(SnapshotError::Mismatch(format!(
                    "core {idx} base key differs"
                )));
            }
            let n_bias = dec.seq(4)?;
            if n_bias != c.bias_na.len() {
                return Err(SnapshotError::Mismatch(format!(
                    "core {idx} neuron count differs"
                )));
            }
            for b in c.bias_na.iter_mut() {
                *b = dec.f32()?;
            }
            let pool = NeuronPool::decode(&mut dec)?;
            if pool.len() != c.neurons.len() {
                return Err(SnapshotError::Mismatch(format!(
                    "core {idx} neuron count differs"
                )));
            }
            c.neurons = pool;
            let ring = InputRing::decode(&mut dec)?;
            if ring.neurons() != c.ring.neurons() {
                return Err(SnapshotError::Mismatch(format!(
                    "core {idx} ring size differs"
                )));
            }
            c.ring = ring;
            let nq = dec.seq(4)?;
            c.q_packets.clear();
            for _ in 0..nq {
                c.q_packets.push_back(dec.u32()?);
            }
            let n_rows = c.matrix.n_rows() as u32;
            let row_ok = |row: u32| {
                if row < n_rows {
                    Ok(row)
                } else {
                    Err(SnapshotError::Wire(WireError::Corrupt("queued row index")))
                }
            };
            let nr = dec.seq(4)?;
            c.q_rows.clear();
            for _ in 0..nr {
                c.q_rows.push_back(row_ok(dec.u32()?)?);
            }
            c.timer_pending = dec.u32()?;
            c.current = match dec.u8()? {
                0 => None,
                1 => Some(WorkItem::Packet(dec.u32()?)),
                2 => Some(WorkItem::Row(row_ok(dec.u32()?)?)),
                3 => Some(WorkItem::Timer),
                _ => return Err(SnapshotError::Wire(WireError::Corrupt("work item"))),
            };
            let np = dec.seq(4)?;
            c.pending_spikes.clear();
            for _ in 0..np {
                c.pending_spikes.push(dec.u32()?);
            }
            c.spikes_emitted = dec.u64()?;
            c.overruns = dec.u64()?;
            c.row_misses = dec.u64()?;
            let pre = decode_sparse_times(&mut dec)?;
            if pre.len() != c.matrix.n_rows() {
                return Err(SnapshotError::Mismatch(format!(
                    "core {idx} row count differs"
                )));
            }
            c.row_last_pre_ms = pre;
            let post = decode_sparse_times(&mut dec)?;
            if post.len() != c.neurons.len() {
                return Err(SnapshotError::Mismatch(format!(
                    "core {idx} neuron count differs"
                )));
            }
            c.last_post_ms = post;
            // The applied rows stay dirty: the *next* checkpoint's
            // baseline is still the fresh build, so previously rewritten
            // rows must keep riding every later delta.
            c.dirty_rows = c.matrix.apply_rows(&mut dec).map_err(|e| match e {
                WireError::Corrupt("delta row index") | WireError::Corrupt("delta row length") => {
                    SnapshotError::Mismatch(format!("core {idx} synaptic matrix differs"))
                }
                other => SnapshotError::Wire(other),
            })?;
        }

        let n_pending = dec.seq(9)?;
        let mut pending = Vec::with_capacity(n_pending);
        for _ in 0..n_pending {
            let at_ns = dec.u64()?;
            let event = decode_event(&mut dec)?;
            validate_event(&event, chips, self.cfg.cores_per_chip)?;
            pending.push(PendingEvent { at_ns, event });
        }
        if !dec.is_empty() {
            return Err(SnapshotError::Wire(WireError::Corrupt("trailing bytes")));
        }
        self.clear_par_stats();
        Ok(RestoredRun {
            elapsed_ms: self.duration_ms,
            pending,
        })
    }
}
