//! Energy metering and the paper's cost-effectiveness arithmetic.
//!
//! §2: "Two metrics determine the cost-effectiveness of a many-core
//! architecture: MIPS/mm² ... and MIPS/W. On the first of these measures
//! embedded and high-end processors are roughly equal ... but on
//! energy-efficiency the embedded processors win by an order of
//! magnitude."
//!
//! §3.3: "A PC costs around $1,000 and consumes 300 W. A Watt costs
//! $1/year. So the energy cost of a PC equals the purchase cost after a
//! little more than three years."

use crate::config::EnergyModel;

/// Accumulates energy over a simulation run.
#[derive(Clone, Debug, Default)]
pub struct EnergyMeter {
    /// Core-active time integrated over all cores, ns.
    pub core_active_ns: u64,
    /// Core-sleep (wait-for-interrupt) time over all cores, ns.
    pub core_sleep_ns: u64,
    /// Packets routed (router traversals).
    pub packets_routed: u64,
    /// Packet link-hops (inter-chip traversals).
    pub packet_hops: u64,
    /// Bytes moved to/from SDRAM.
    pub sdram_bytes: u64,
    /// Chip-seconds of overhead power, in chip-ns.
    pub chip_overhead_ns: u64,
    /// Instructions executed (for MIPS).
    pub instructions: u64,
}

impl EnergyMeter {
    /// A zeroed meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total energy in joules under the given model.
    pub fn total_joules(&self, m: &EnergyModel) -> f64 {
        let mw_ns = self.core_active_ns as f64 * m.core_active_mw
            + self.core_sleep_ns as f64 * m.core_sleep_mw
            + self.chip_overhead_ns as f64 * m.chip_overhead_mw;
        // mW x ns = 1e-3 W x 1e-9 s = 1e-12 J.
        let core_j = mw_ns * 1e-12;
        let event_j = (self.packets_routed as f64 * m.router_pj_per_packet
            + self.packet_hops as f64 * m.link_pj_per_hop
            + self.sdram_bytes as f64 * m.sdram_pj_per_byte)
            * 1e-12;
        core_j + event_j
    }

    /// Mean power over a wall-clock duration, watts.
    pub fn mean_watts(&self, m: &EnergyModel, duration_ns: u64) -> f64 {
        if duration_ns == 0 {
            return 0.0;
        }
        self.total_joules(m) / (duration_ns as f64 * 1e-9)
    }

    /// Achieved MIPS over a duration.
    pub fn mips(&self, duration_ns: u64) -> f64 {
        if duration_ns == 0 {
            return 0.0;
        }
        self.instructions as f64 / (duration_ns as f64 * 1e-9) / 1e6
    }

    /// MIPS per watt over a duration.
    pub fn mips_per_watt(&self, m: &EnergyModel, duration_ns: u64) -> f64 {
        let w = self.mean_watts(m, duration_ns);
        if w == 0.0 {
            0.0
        } else {
            self.mips(duration_ns) / w
        }
    }

    /// Merges another meter (e.g. per-chip partials).
    pub fn merge(&mut self, other: &EnergyMeter) {
        self.core_active_ns += other.core_active_ns;
        self.core_sleep_ns += other.core_sleep_ns;
        self.packets_routed += other.packets_routed;
        self.packet_hops += other.packet_hops;
        self.sdram_bytes += other.sdram_bytes;
        self.chip_overhead_ns += other.chip_overhead_ns;
        self.instructions += other.instructions;
    }
}

/// One processor class in the §2 cost-effectiveness comparison.
#[derive(Copy, Clone, Debug)]
pub struct ProcessorClass {
    /// Label for tables.
    pub name: &'static str,
    /// Sustained throughput, MIPS.
    pub mips: f64,
    /// Power, watts.
    pub watts: f64,
    /// Die area, mm².
    pub die_mm2: f64,
    /// Component cost, dollars.
    pub cost_usd: f64,
}

/// The paper-era high-end desktop processor (§2: "a SpiNNaker chip with
/// 20 ARM cores delivers about the same throughput as a high-end desktop
/// processor").
pub const DESKTOP_CLASS: ProcessorClass = ProcessorClass {
    name: "high-end desktop",
    mips: 4_000.0,
    watts: 80.0,
    die_mm2: 250.0,
    cost_usd: 300.0,
};

/// The SpiNNaker 20-core node (§3.3: "$20 and a power consumption under
/// 1 Watt", about a desktop's throughput).
pub const SPINNAKER_NODE_CLASS: ProcessorClass = ProcessorClass {
    name: "SpiNNaker node (20 ARM968)",
    mips: 4_000.0,
    watts: 0.9,
    die_mm2: 102.0,
    cost_usd: 20.0,
};

/// The §2 / §3.3 comparison derived from two processor classes.
#[derive(Copy, Clone, Debug)]
pub struct CostEffectiveness {
    /// MIPS per mm² of silicon.
    pub mips_per_mm2: f64,
    /// MIPS per watt.
    pub mips_per_watt: f64,
    /// MIPS per dollar of component cost.
    pub mips_per_usd: f64,
}

impl CostEffectiveness {
    /// Computes the metrics for a processor class.
    pub fn of(p: &ProcessorClass) -> Self {
        CostEffectiveness {
            mips_per_mm2: p.mips / p.die_mm2,
            mips_per_watt: p.mips / p.watts,
            mips_per_usd: p.mips / p.cost_usd,
        }
    }
}

/// Years until cumulative energy cost equals purchase cost, at
/// `usd_per_watt_year` (§3.3 uses $1/W/year).
pub fn energy_cost_crossover_years(p: &ProcessorClass, usd_per_watt_year: f64) -> f64 {
    p.cost_usd / (p.watts * usd_per_watt_year)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meter_energy_arithmetic() {
        let m = EnergyModel::default();
        let mut meter = EnergyMeter::new();
        meter.core_active_ns = 1_000_000_000; // 1 core-second active
        let j = meter.total_joules(&m);
        assert!((j - m.core_active_mw * 1e-3).abs() < 1e-9, "{j}");
        meter.packets_routed = 1_000_000;
        let j2 = meter.total_joules(&m);
        assert!(j2 > j);
        assert!((j2 - j - m.router_pj_per_packet * 1e-12 * 1e6).abs() < 1e-12);
    }

    #[test]
    fn mips_and_watts() {
        let m = EnergyModel::default();
        let mut meter = EnergyMeter::new();
        meter.instructions = 200_000_000;
        meter.core_active_ns = 1_000_000_000;
        let mips = meter.mips(1_000_000_000);
        assert!((mips - 200.0).abs() < 1e-9);
        let w = meter.mean_watts(&m, 1_000_000_000);
        assert!((w - 0.035).abs() < 1e-9);
        assert!(meter.mips_per_watt(&m, 1_000_000_000) > 5000.0);
        assert_eq!(meter.mips(0), 0.0);
    }

    #[test]
    fn merge_sums_fields() {
        let mut a = EnergyMeter::new();
        a.instructions = 10;
        a.packet_hops = 2;
        let mut b = EnergyMeter::new();
        b.instructions = 5;
        b.sdram_bytes = 100;
        a.merge(&b);
        assert_eq!(a.instructions, 15);
        assert_eq!(a.sdram_bytes, 100);
        assert_eq!(a.packet_hops, 2);
    }

    #[test]
    fn paper_claim_mips_per_mm2_roughly_equal() {
        // §2: "On the first of these measures embedded and high-end
        // processors are roughly equal."
        let desktop = CostEffectiveness::of(&DESKTOP_CLASS);
        let node = CostEffectiveness::of(&SPINNAKER_NODE_CLASS);
        let ratio = node.mips_per_mm2 / desktop.mips_per_mm2;
        assert!(
            (0.5..4.0).contains(&ratio),
            "MIPS/mm2 ratio {ratio:.2} not 'roughly equal'"
        );
    }

    #[test]
    fn paper_claim_order_of_magnitude_mips_per_watt() {
        // §2: "on energy-efficiency the embedded processors win by an
        // order of magnitude."
        let desktop = CostEffectiveness::of(&DESKTOP_CLASS);
        let node = CostEffectiveness::of(&SPINNAKER_NODE_CLASS);
        let ratio = node.mips_per_watt / desktop.mips_per_watt;
        assert!(
            ratio >= 10.0,
            "MIPS/W advantage {ratio:.1}x below an order of magnitude"
        );
    }

    #[test]
    fn paper_claim_pc_crossover_three_years() {
        // §3.3's PC: $1000, 300 W, $1/W/year -> ~3.3 years.
        let pc = ProcessorClass {
            name: "PC",
            mips: 10_000.0,
            watts: 300.0,
            die_mm2: 400.0,
            cost_usd: 1000.0,
        };
        let years = energy_cost_crossover_years(&pc, 1.0);
        assert!(
            (3.0..4.0).contains(&years),
            "crossover {years:.2} years, paper says 'a little more than three'"
        );
    }

    #[test]
    fn embedded_reduces_ownership_costs_by_order_of_magnitude() {
        // §3.3: "Embedded processors can reduce the capital and energy
        // costs of a given level of compute power by about an order of
        // magnitude."
        let desktop = CostEffectiveness::of(&DESKTOP_CLASS);
        let node = CostEffectiveness::of(&SPINNAKER_NODE_CLASS);
        assert!(node.mips_per_usd / desktop.mips_per_usd >= 10.0);
    }
}
