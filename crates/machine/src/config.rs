//! Machine geometry, the core cost model and the energy model.
//!
//! The ARM968 application cores are modelled by *costs*, not by
//! instruction-set emulation: the paper's application-level claims are
//! about event rates and millisecond budgets (§3.1, Fig. 7), so each
//! handler charges a calibrated instruction count at the core's clock
//! rate. Constants follow the paper's era: 200 MHz ARM968, ~200 MIPS per
//! core, 20 cores per chip, a node under 1 W.

use spinn_noc::fabric::FabricConfig;
use spinn_obs::ObsMode;
use spinn_sim::QueueKind;

/// Whole-machine configuration.
#[derive(Copy, Clone, Debug)]
pub struct MachineConfig {
    /// Mesh width, chips.
    pub width: u32,
    /// Mesh height, chips.
    pub height: u32,
    /// Processor cores per chip (up to 20; one becomes Monitor).
    pub cores_per_chip: u8,
    /// Core clock, MHz (instruction rate).
    pub cpu_mhz: u32,
    /// Instruction-memory size per core, bytes (32 KB ITCM).
    pub itcm_bytes: u32,
    /// Data-memory size per core, bytes (64 KB DTCM).
    pub dtcm_bytes: u32,
    /// Shared SDRAM per chip, bytes (1 Gbit mobile DDR).
    pub sdram_bytes: u64,
    /// SDRAM/DMA bandwidth, bytes per microsecond (shared per chip).
    pub dma_bytes_per_us: u32,
    /// Fixed DMA setup latency, ns.
    pub dma_setup_ns: u64,
    /// The communications fabric parameters.
    pub fabric: FabricConfig,
    /// Handler instruction costs.
    pub costs: CostModel,
    /// Energy constants.
    pub energy: EnergyModel,
    /// Which event-queue implementation drives the simulation. The two
    /// kinds are bit-identical in results (golden-trace conformance
    /// suite); the default calendar queue is `O(1)` on the machine's
    /// dense same-timestamp event bursts where the heap pays
    /// `O(log n)` per event.
    pub queue: QueueKind,
    /// Telemetry level for runs on this machine. [`ObsMode::Disabled`]
    /// (the default) makes every instrumentation point a `None`-check;
    /// no mode changes simulation results (golden-trace conformance
    /// suite), only what is observed about them.
    pub obs: ObsMode,
    /// Per-shard trace ring capacity, records (only read in
    /// [`ObsMode::CountersAndTrace`]). `0` — the default — means
    /// **auto**: the machine scales the ring with the loaded neuron
    /// count (bounded between [`spinn_obs::DEFAULT_TRACE_CAP`] and
    /// 1 Mi records), so 100k-neuron runs no longer lose ~94% of their
    /// trace to a ring sized for toy nets. Set a nonzero value to pin
    /// the capacity exactly (memory-sensitive sweeps, conformance
    /// replay).
    pub trace_cap: usize,
    /// Shard over-decomposition factor for parallel runs: a
    /// `threads`-worker segment is cut into up to `threads ×
    /// chunk_factor` chip-contiguous task chunks that idle workers
    /// *steal* through the window engine's claim counters. `1` restores
    /// the static one-shard-per-worker split; the default `4` keeps
    /// chunks coarse enough to amortize the split/merge while letting a
    /// skewed spike distribution spread across the pool mid-window.
    /// Results are bit-identical for every value (the spike stream is
    /// shard-count-invariant).
    pub chunk_factor: u8,
    /// Lets sharded runs cut more shards than the host has cores.
    /// Sharding exists to occupy cores — by default the shard count is
    /// clamped to `available_parallelism`, because extra shards buy no
    /// parallelism yet still pay the window/exchange machinery (the
    /// collapse is invisible in results: shard count never changes
    /// them). Conformance suites set this to exercise the sharded
    /// engine regardless of the host.
    pub force_shards: bool,
}

impl MachineConfig {
    /// A machine of the given mesh size with paper-era defaults.
    ///
    /// The router waits (`wait1`/`wait2`) are set to the values SpiNNaker
    /// system software programs for neural operation (microseconds —
    /// tolerant of transient bursts), not the small hardware-reset
    /// defaults of [`spinn_noc::router::RouterConfig`].
    pub fn new(width: u32, height: u32) -> Self {
        let mut fabric = FabricConfig::new(width, height);
        fabric.router.wait1_ns = 2_000;
        fabric.router.wait2_ns = 10_000;
        MachineConfig {
            width,
            height,
            cores_per_chip: 20,
            cpu_mhz: 200,
            itcm_bytes: 32 * 1024,
            dtcm_bytes: 64 * 1024,
            sdram_bytes: 128 * 1024 * 1024,
            dma_bytes_per_us: 600,
            dma_setup_ns: 200,
            fabric,
            costs: CostModel::default(),
            energy: EnergyModel::default(),
            queue: QueueKind::default(),
            obs: ObsMode::default(),
            trace_cap: 0,
            chunk_factor: 4,
            force_shards: false,
        }
    }

    /// Selects the event-queue implementation for runs on this machine.
    pub fn with_queue(mut self, queue: QueueKind) -> Self {
        self.queue = queue;
        self
    }

    /// Selects the telemetry level for runs on this machine.
    pub fn with_observability(mut self, obs: ObsMode) -> Self {
        self.obs = obs;
        self
    }

    /// Sets the per-shard trace ring capacity, in records (`0` restores
    /// the neuron-scaled auto sizing; see [`MachineConfig::trace_cap`]).
    pub fn with_trace_cap(mut self, records: usize) -> Self {
        self.trace_cap = records;
        self
    }

    /// Sets the shard over-decomposition factor for parallel runs (see
    /// [`MachineConfig::chunk_factor`]; clamped to at least 1 at use).
    pub fn with_chunk_factor(mut self, factor: u8) -> Self {
        self.chunk_factor = factor;
        self
    }

    /// Allows sharded runs to cut more shards than the host has cores
    /// (see [`MachineConfig::force_shards`]).
    pub fn with_force_shards(mut self, force: bool) -> Self {
        self.force_shards = force;
        self
    }

    /// Number of chips.
    pub fn chips(&self) -> usize {
        (self.width * self.height) as usize
    }

    /// Number of application cores (one core per chip is the Monitor).
    pub fn app_cores(&self) -> usize {
        self.chips() * (self.cores_per_chip.saturating_sub(1)) as usize
    }

    /// Nanoseconds to execute `instructions` at the configured clock.
    pub fn instr_ns(&self, instructions: u64) -> u64 {
        // cpu_mhz MIPS => instructions per ns = mhz / 1000.
        (instructions * 1000).div_ceil(self.cpu_mhz as u64)
    }

    /// DMA transfer time for `bytes`, ns (setup + bandwidth share).
    pub fn dma_ns(&self, bytes: u64) -> u64 {
        self.dma_setup_ns + (bytes * 1000).div_ceil(self.dma_bytes_per_us as u64)
    }

    /// The full-size SpiNNaker machine of the paper: 256 x 256 chips
    /// ≈ "more than a million ARM processor cores".
    pub fn million_core() -> Self {
        MachineConfig::new(256, 256)
    }
}

/// Instruction budgets for the three Fig. 7 handlers plus spike emission.
#[derive(Copy, Clone, Debug)]
pub struct CostModel {
    /// Packet-received ISR: identify source neuron, look up the row
    /// address, schedule the DMA.
    pub packet_isr_instr: u64,
    /// DMA-complete handler fixed part.
    pub dma_isr_instr: u64,
    /// Per-synapse row processing (deposit into the input ring).
    pub per_synapse_instr: u64,
    /// Timer handler fixed part (context, stimulus update).
    pub timer_fixed_instr: u64,
    /// Per-neuron state update (Izhikevich in fixed point ≈ tens of
    /// instructions \[17\]).
    pub per_neuron_instr: u64,
    /// Spike emission (form AER key, write to comms controller).
    pub spike_emit_instr: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            packet_isr_instr: 40,
            dma_isr_instr: 30,
            per_synapse_instr: 12,
            timer_fixed_instr: 100,
            per_neuron_instr: 45,
            spike_emit_instr: 30,
        }
    }
}

/// Energy constants (paper-era, order-of-magnitude; §2 and §3.3 reason in
/// ratios).
#[derive(Copy, Clone, Debug)]
pub struct EnergyModel {
    /// Active core power, mW (ARM968 @ 200 MHz in 130 nm).
    pub core_active_mw: f64,
    /// Core power in wait-for-interrupt sleep, mW.
    pub core_sleep_mw: f64,
    /// Router + NoC energy per routed packet, pJ.
    pub router_pj_per_packet: f64,
    /// Inter-chip link energy per packet-hop, pJ (a 40-bit packet needs
    /// 30 2-of-7 NRZ transitions; see `spinn-link`).
    pub link_pj_per_hop: f64,
    /// SDRAM energy per byte transferred, pJ.
    pub sdram_pj_per_byte: f64,
    /// Chip overhead power (SDRAM refresh, clocks, pads), mW.
    pub chip_overhead_mw: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel {
            core_active_mw: 35.0,
            core_sleep_mw: 8.0,
            router_pj_per_packet: 100.0,
            link_pj_per_hop: 150.0, // 30 transitions x 5 pJ
            sdram_pj_per_byte: 50.0,
            chip_overhead_mw: 120.0,
        }
    }
}

impl EnergyModel {
    /// Peak chip power with all cores active, mW — the paper's "power
    /// consumption under 1 Watt" node check.
    pub fn chip_peak_mw(&self, cores: u8) -> f64 {
        self.chip_overhead_mw + cores as f64 * self.core_active_mw
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_figures() {
        let c = MachineConfig::new(8, 8);
        assert_eq!(c.cores_per_chip, 20);
        assert_eq!(c.itcm_bytes, 32 * 1024); // "32 Kbytes of instruction memory"
        assert_eq!(c.dtcm_bytes, 64 * 1024); // "64 Kbytes of data memory"
        assert_eq!(c.sdram_bytes, 128 * 1024 * 1024); // 1 Gbit SDRAM
        assert_eq!(c.chips(), 64);
        assert_eq!(c.app_cores(), 64 * 19);
    }

    #[test]
    fn million_core_machine() {
        let c = MachineConfig::million_core();
        let cores = c.chips() * c.cores_per_chip as usize;
        assert!(
            cores > 1_000_000,
            "paper: 'more than a million ARM processor cores', got {cores}"
        );
        // ~200 MIPS x >1M cores ≈ the paper's "around 200 teraIPS".
        let teraips = cores as f64 * c.cpu_mhz as f64 / 1e6;
        assert!((200.0..300.0).contains(&teraips), "{teraips} teraIPS");
    }

    #[test]
    fn instruction_timing() {
        let c = MachineConfig::new(2, 2);
        assert_eq!(c.instr_ns(200), 1000); // 200 instr @ 200 MHz = 1 us
        assert_eq!(c.instr_ns(1), 5);
        assert_eq!(c.instr_ns(0), 0);
    }

    #[test]
    fn dma_timing_scales_with_bytes() {
        let c = MachineConfig::new(2, 2);
        let small = c.dma_ns(64);
        let large = c.dma_ns(4096);
        assert!(large > small);
        assert!(small >= c.dma_setup_ns);
        // 600 bytes/us: 600 bytes take 1 us + setup.
        assert_eq!(c.dma_ns(600), c.dma_setup_ns + 1000);
    }

    #[test]
    fn node_power_under_one_watt() {
        // §3.3: "a component cost of around $20 and a power consumption
        // under 1 Watt" per 20-processor node.
        let e = EnergyModel::default();
        let node_mw = e.chip_peak_mw(20);
        assert!(node_mw < 1000.0, "node peak power {node_mw} mW exceeds 1 W");
        assert!(node_mw > 300.0, "implausibly low node power {node_mw} mW");
    }

    #[test]
    fn sleep_saves_energy() {
        let e = EnergyModel::default();
        assert!(e.core_sleep_mw < e.core_active_mw / 2.0);
    }
}
