//! # spinn-machine — the SpiNNaker machine model
//!
//! Assembles the substrates into the full machine of §4 and §5.2–5.3
//! (1 tick = 1 ns):
//!
//! * [`config`] — machine geometry, the per-handler instruction cost
//!   model standing in for the ARM968 cores, and the energy model.
//! * [`chip`] — one chip: up to 20 cores, the System Controller with its
//!   **read-sensitive monitor-arbitration register** (§5.2: all cores
//!   that pass self-test bid to serve as Monitor; exactly one wins).
//! * [`boot`] — system bring-up: self-test, monitor election,
//!   nearest-neighbour rescue of failed nodes, coordinate propagation
//!   from (0,0), point-to-point readiness, and host check-in (§5.2).
//! * [`flood`] — application loading by flood-fill over nn packets, with
//!   a redundancy parameter trading load time against fault tolerance
//!   \[15\].
//! * [`machine`] — the running machine: every application core executes
//!   the Fig. 7 event-driven model (packet-received > DMA-complete >
//!   1 ms timer, then low-power wait-for-interrupt), with spikes carried
//!   by the `spinn-noc` fabric and synaptic rows DMA-fetched from the
//!   shared SDRAM.
//! * [`energy`] — energy metering and the §2/§3.3 cost-effectiveness
//!   arithmetic (MIPS/W, MIPS/mm², purchase-vs-energy crossover).
//!
//! # Example
//!
//! ```
//! use spinn_machine::chip::SystemController;
//!
//! let mut sc = SystemController::new();
//! // Three cores race to read the register; only the first becomes
//! // Monitor (§5.2).
//! assert!(sc.read_monitor_arbiter(4));
//! assert!(!sc.read_monitor_arbiter(9));
//! assert!(!sc.read_monitor_arbiter(0));
//! assert_eq!(sc.monitor(), Some(4));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod boot;
pub mod chip;
pub mod config;
pub mod energy;
pub mod flood;
pub mod machine;
pub mod snapshot;

pub use boot::{BootConfig, BootOutcome, BootSim};
pub use chip::{ChipState, SystemController};
pub use config::{CostModel, EnergyModel, MachineConfig};
pub use energy::{CostEffectiveness, EnergyMeter};
pub use flood::{FloodConfig, FloodOutcome, FloodSim};
pub use machine::{NeuralMachine, PendingEvent, SpikeRecord};
pub use snapshot::{RestoredRun, SnapshotError};
