//! One chip: its cores, the System Controller and monitor arbitration.
//!
//! §5.2: "one of these is set aside as Monitor Processor ... The choice
//! of Monitor Processor is not fixed in the hardware for reasons of fault
//! tolerance; instead all processors perform self-test at start-up and
//! then all those that pass the test can bid to serve as Monitor. There
//! is a read-sensitive register in the System Controller that effectively
//! serves as arbiter in this process, ensuring that one and only one
//! processor is chosen as Monitor."

/// The System Controller's monitor-arbitration register.
///
/// The first core to read the register after reset becomes Monitor; every
/// later read returns false. See the crate-level example.
#[derive(Clone, Debug, Default)]
pub struct SystemController {
    monitor: Option<u8>,
}

impl SystemController {
    /// A controller fresh out of reset (no monitor chosen).
    pub fn new() -> Self {
        SystemController { monitor: None }
    }

    /// A core reads the read-sensitive register: `true` (and the Monitor
    /// role) for the first reader only.
    pub fn read_monitor_arbiter(&mut self, core: u8) -> bool {
        if self.monitor.is_none() {
            self.monitor = Some(core);
            true
        } else {
            false
        }
    }

    /// The elected monitor core, if any.
    pub fn monitor(&self) -> Option<u8> {
        self.monitor
    }

    /// Resets the arbiter (chip reboot, or a neighbour-forced
    /// re-election during rescue, §5.2).
    pub fn reset(&mut self) {
        self.monitor = None;
    }

    /// Forces a specific monitor choice (used by nn-packet rescue:
    /// "Using nn packets they can change the choice of Monitor
    /// Processor").
    pub fn force_monitor(&mut self, core: u8) {
        self.monitor = Some(core);
    }
}

/// Per-chip bring-up state.
#[derive(Clone, Debug)]
pub struct ChipState {
    /// Which cores passed self-test.
    pub core_ok: Vec<bool>,
    /// The System Controller.
    pub controller: SystemController,
    /// Coordinates assigned during symmetry-breaking (None until the
    /// coordinate flood reaches this chip).
    pub coords: Option<(u32, u32)>,
    /// Whether the chip's p2p tables are configured (requires coords).
    pub p2p_ready: bool,
}

impl ChipState {
    /// A chip with `cores` untested cores.
    pub fn new(cores: u8) -> Self {
        ChipState {
            core_ok: vec![false; cores as usize],
            controller: SystemController::new(),
            coords: None,
            p2p_ready: false,
        }
    }

    /// Number of cores that passed self-test.
    pub fn healthy_cores(&self) -> usize {
        self.core_ok.iter().filter(|&&ok| ok).count()
    }

    /// Whether the chip has a functioning monitor.
    pub fn has_monitor(&self) -> bool {
        matches!(self.controller.monitor(), Some(m) if self.core_ok.get(m as usize) == Some(&true))
    }

    /// Application cores available to the mapper: healthy cores minus
    /// the Monitor.
    pub fn app_cores(&self) -> usize {
        self.healthy_cores()
            .saturating_sub(self.has_monitor() as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exactly_one_monitor_under_racing_reads() {
        let mut sc = SystemController::new();
        let winners: Vec<u8> = (0..20).filter(|&c| sc.read_monitor_arbiter(c)).collect();
        assert_eq!(winners.len(), 1);
        assert_eq!(sc.monitor(), Some(winners[0]));
    }

    #[test]
    fn any_order_still_one_winner() {
        // Simulate many random race orders.
        use spinn_sim::Xoshiro256;
        let mut rng = Xoshiro256::seed_from_u64(3);
        for _ in 0..100 {
            let mut order: Vec<u8> = (0..20).collect();
            rng.shuffle(&mut order);
            let mut sc = SystemController::new();
            let winners = order
                .iter()
                .filter(|&&c| sc.read_monitor_arbiter(c))
                .count();
            assert_eq!(winners, 1);
            assert_eq!(sc.monitor(), Some(order[0]));
        }
    }

    #[test]
    fn reset_allows_re_election() {
        let mut sc = SystemController::new();
        assert!(sc.read_monitor_arbiter(1));
        sc.reset();
        assert_eq!(sc.monitor(), None);
        assert!(sc.read_monitor_arbiter(7));
        assert_eq!(sc.monitor(), Some(7));
    }

    #[test]
    fn force_monitor_overrides() {
        let mut sc = SystemController::new();
        assert!(sc.read_monitor_arbiter(0));
        sc.force_monitor(5);
        assert_eq!(sc.monitor(), Some(5));
    }

    #[test]
    fn chip_state_accounting() {
        let mut chip = ChipState::new(20);
        assert_eq!(chip.healthy_cores(), 0);
        assert!(!chip.has_monitor());
        for i in 0..18 {
            chip.core_ok[i] = true;
        }
        chip.controller.force_monitor(2);
        assert!(chip.has_monitor());
        assert_eq!(chip.app_cores(), 17);
        // A monitor that failed self-test does not count.
        chip.controller.force_monitor(19);
        assert!(!chip.has_monitor());
        assert_eq!(chip.app_cores(), 18);
    }
}
