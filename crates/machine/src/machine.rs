//! The running machine: event-driven application cores (Fig. 7) over the
//! packet fabric, with DMA-fetched synaptic rows and energy metering.
//!
//! Every active application core executes the same three tasks in
//! response to interrupt events, at descending priority (§5.3, Fig. 7):
//!
//! 1. **Packet received** — identify the spiking neuron, resolve its
//!    connectivity block through the core's master population table
//!    (binary search of `(key, mask)` entries over the contiguous
//!    synaptic arena, [`spinn_neuron::synmatrix::SynapticMatrix`]),
//!    schedule a DMA fetch.
//! 2. **DMA complete** — process the synaptic row: deposit each synapse's
//!    weight in the deferred-event ring buffer at its programmed delay.
//! 3. **1 ms timer** — advance the neuronal differential equations,
//!    drain the current ring slot, emit spike packets.
//!
//! "When all tasks are completed the processor goes into a low-power
//! 'wait for interrupt' state." Time a core spends busy vs. sleeping is
//! metered for the energy accounting (E7), and a timer tick arriving
//! while the previous tick is still being processed counts as a
//! **real-time violation** (the machine's defining constraint, §3.1).

use std::collections::VecDeque;

use spinn_neuron::model::AnyNeuron;
use spinn_neuron::pool::NeuronPool;
use spinn_neuron::ring::InputRing;
use spinn_neuron::stdp::{apply_bounded, StdpParams};
use spinn_neuron::synapse::SynapticRow;
use spinn_neuron::synmatrix::SynapticMatrix;
use spinn_noc::direction::Direction;
use spinn_noc::fabric::{CtxScheduler, Delivery, DroppedPacket, Fabric, NocEvent, Partition};
use spinn_noc::mesh::NodeCoord;
use spinn_noc::packet::{Packet, PacketKind};
use spinn_noc::router::RouterStats;
use spinn_obs::{Counter, Observability, Phase, PhaseProbe, RunTelemetry, TraceKind};
use spinn_par::{ParEngine, RemoteEvent, ShardModel};
use spinn_sim::{
    CalendarQueue, Context, Engine, EventQueue, Histogram, Model, Queue, QueueKind, SimTime,
};

use crate::config::MachineConfig;
use crate::energy::EnergyMeter;

/// Nanoseconds per millisecond tick.
const MS: u64 = 1_000_000;

/// Events of the machine simulation.
#[derive(Copy, Clone, Debug)]
pub enum MachineEvent {
    /// Fabric internals.
    Noc(NocEvent),
    /// The 1 ms timer interrupt: fires once per machine (or per shard)
    /// and services every locally owned chip in ascending dense-id
    /// order — the same order per-chip timer events used to pop in, at
    /// a fraction of the queue traffic (one event per tick instead of
    /// one per chip per tick).
    Timer,
    /// A scheduled mid-run link failure (fault injection; see
    /// [`NeuralMachine::queue_fail_link`]).
    FailLink {
        /// Dense chip id of one end of the failing cable.
        chip: u32,
        /// Direction of the cable from `chip` (both directions fail).
        dir: Direction,
    },
    /// A scheduled mid-run link repair — the inverse of
    /// [`MachineEvent::FailLink`] (see
    /// [`NeuralMachine::queue_repair_link`]).
    RepairLink {
        /// Dense chip id of one end of the repaired cable.
        chip: u32,
        /// Direction of the cable from `chip` (both directions are
        /// restored).
        dir: Direction,
    },
    /// A core finishes its current handler.
    CoreDone {
        /// Dense chip id.
        chip: u32,
        /// Core index on the chip.
        core: u8,
    },
    /// A DMA transfer completes (synaptic row now in DTCM).
    DmaDone {
        /// Dense chip id.
        chip: u32,
        /// Core index on the chip.
        core: u8,
        /// Source AER key whose row was fetched.
        key: u32,
    },
    /// External stimulus: a spike packet enters the fabric.
    InjectSpike {
        /// Dense chip id at which to inject.
        chip: u32,
        /// AER key.
        key: u32,
    },
    /// The monitor processor re-issues a dropped spike packet (§5.3:
    /// "can recover the packet and re-issue it if appropriate").
    ReissueSpike {
        /// Dense chip id at which the packet was dropped.
        chip: u32,
        /// AER key.
        key: u32,
        /// Reissue generation (2-bit timestamp field; gives up at 3).
        timestamp: u8,
    },
}

/// One recorded spike.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct SpikeRecord {
    /// Timer tick at which the neuron fired, ms.
    pub time_ms: u32,
    /// The neuron's AER key.
    pub key: u32,
}

/// One event a paused run segment left queued — an in-flight packet
/// arrival, a blocked-link retry, a handler completion, a future
/// stimulus. [`NeuralMachine::run_segment`] returns them in canonical
/// `(time, tie rank)` order and accepts them back on the next segment,
/// whatever its thread count or queue kind.
#[derive(Clone, Debug)]
pub struct PendingEvent {
    /// Absolute simulation time, ns.
    pub at_ns: u64,
    /// The queued event.
    pub event: MachineEvent,
}

/// The shard that must handle an event when a segment runs sharded:
/// `Some(chip)` for chip-local events, `None` for events every shard
/// replays against its own replica (the coalesced timer, link
/// failures).
/// Whether `SPINN_FORCE_SHARDS=1` asks for shard counts beyond the
/// host's parallelism (checked once per process; see
/// [`MachineConfig::force_shards`] for the per-machine switch).
fn force_shards_env() -> bool {
    static FORCE: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *FORCE.get_or_init(|| {
        std::env::var("SPINN_FORCE_SHARDS")
            .is_ok_and(|v| v == "1" || v.eq_ignore_ascii_case("true"))
    })
}

fn event_chip(ev: &MachineEvent) -> Option<u32> {
    match ev {
        MachineEvent::Noc(NocEvent::Arrive { node, .. })
        | MachineEvent::Noc(NocEvent::LinkFree { node, .. })
        | MachineEvent::Noc(NocEvent::Retry { node, .. }) => Some(*node),
        MachineEvent::CoreDone { chip, .. }
        | MachineEvent::DmaDone { chip, .. }
        | MachineEvent::InjectSpike { chip, .. }
        | MachineEvent::ReissueSpike { chip, .. } => Some(*chip),
        MachineEvent::Timer | MachineEvent::FailLink { .. } | MachineEvent::RepairLink { .. } => {
            None
        }
    }
}

/// Merges per-shard drained queues into one canonical pending list:
/// stable-sorted by `(time, rank)` (so same-instant order stays a
/// function of event content, as in the queues themselves) with the
/// per-shard replicas of broadcast events collapsed back to one copy.
fn canonical_pending(per_shard: Vec<Vec<(SimTime, u128, MachineEvent)>>) -> Vec<PendingEvent> {
    use std::collections::HashSet;
    let mut flat: Vec<(u64, u128, MachineEvent)> = Vec::new();
    for shard in per_shard {
        flat.extend(shard.into_iter().map(|(t, r, e)| (t.ticks(), r, e)));
    }
    flat.sort_by_key(|&(t, r, _)| (t, r));
    let mut seen_timers: HashSet<u64> = HashSet::new();
    let mut seen_faults: HashSet<(u64, u32, u8)> = HashSet::new();
    let mut seen_repairs: HashSet<(u64, u32, u8)> = HashSet::new();
    let mut out = Vec::with_capacity(flat.len());
    for (at_ns, _rank, event) in flat {
        match event {
            MachineEvent::Timer if !seen_timers.insert(at_ns) => continue,
            MachineEvent::FailLink { chip, dir }
                if !seen_faults.insert((at_ns, chip, dir.index() as u8)) =>
            {
                continue
            }
            MachineEvent::RepairLink { chip, dir }
                if !seen_repairs.insert((at_ns, chip, dir.index() as u8)) =>
            {
                continue
            }
            _ => {}
        }
        out.push(PendingEvent { at_ns, event });
    }
    out
}

#[derive(Clone, Debug)]
pub(crate) enum WorkItem {
    /// An incoming packet's AER key, awaiting the MPT lookup.
    Packet(u32),
    /// A DMA-fetched row, by row index into the core's matrix.
    Row(u32),
    Timer,
}

/// The loadable contents of one application core (returned by
/// [`NeuralMachine::evict_core`] for functional migration).
#[derive(Clone, Debug)]
pub struct CorePayload {
    /// Neuron state vector.
    pub neurons: Vec<AnyNeuron>,
    /// Constant bias current per neuron, nA.
    pub bias_na: Vec<f32>,
    /// The core's synaptic matrix (master population table + arena),
    /// indexed by source AER key.
    pub matrix: SynapticMatrix,
    /// AER key of this core's neuron 0 (neuron `i` emits `base_key + i`).
    pub base_key: u32,
}

#[derive(Debug)]
pub(crate) struct AppCore {
    /// Neuron state, structure-of-arrays (flat per-tick update).
    pub(crate) neurons: NeuronPool,
    pub(crate) bias_na: Vec<f32>,
    pub(crate) base_key: u32,
    pub(crate) ring: InputRing,
    /// The §5.2/§6 memory model: master population table over one
    /// contiguous synaptic arena. Packet handling binary-searches the
    /// table; DMA sizes and STDP write-backs come from row slices.
    pub(crate) matrix: SynapticMatrix,
    pub(crate) q_packets: VecDeque<u32>,
    /// DMA-completed rows awaiting processing, by row index.
    pub(crate) q_rows: VecDeque<u32>,
    pub(crate) timer_pending: u32,
    pub(crate) current: Option<WorkItem>,
    pub(crate) pending_spikes: Vec<u32>,
    pub(crate) spikes_emitted: u64,
    pub(crate) overruns: u64,
    pub(crate) row_misses: u64,
    /// STDP state (when plasticity is enabled): per-row time of the
    /// previous pre-spike (indexed like the matrix rows), and
    /// per-neuron time of the last post-spike. Updates are applied
    /// synapse-centrically when a row is fetched, as on the real
    /// machine.
    pub(crate) row_last_pre_ms: Vec<f64>,
    pub(crate) last_post_ms: Vec<f64>,
    /// Rows whose weights STDP has rewritten since load (may contain
    /// duplicates; deduplicated at checkpoint). Snapshots serialize
    /// only these rows as arena deltas against the loader's matrix.
    pub(crate) dirty_rows: Vec<u32>,
}

/// DTCM bytes a core with this ring buffer and neuron count occupies —
/// the admission formula [`NeuralMachine::load_core`] checks and the
/// figure [`NeuralMachine::chip_occupancy`] reports (48 B of state per
/// neuron).
fn core_dtcm_bytes(ring: &InputRing, n_neurons: usize) -> usize {
    ring.size_bytes() + n_neurons * 48
}

impl AppCore {
    /// DTCM bytes this core's resident data occupies.
    fn dtcm_bytes(&self) -> usize {
        core_dtcm_bytes(&self.ring, self.neurons.len())
    }

    /// Keeps the STDP pre-spike timestamps consistent with the matrix.
    ///
    /// `row_last_pre_ms` is indexed by row, so any insertion that
    /// changes the row count may also have *shifted* existing rows
    /// (`SynapticMatrix::insert_row`'s block-grow path splices rows
    /// mid-vector). Timestamps attached to the wrong rows would corrupt
    /// STDP, so a structural change resets the history to "no previous
    /// pre-spike" — installing new connectivity invalidates cached
    /// timing state. In-place row replacement keeps the history.
    fn sync_stdp_rows(&mut self) {
        if self.row_last_pre_ms.len() != self.matrix.n_rows() {
            self.row_last_pre_ms = vec![f64::NEG_INFINITY; self.matrix.n_rows()];
            // Row indices may have shifted: previously recorded dirty
            // rows no longer name the same synapses, and the new
            // connectivity becomes the delta baseline.
            self.dirty_rows.clear();
        }
    }
}

/// Per-chip memory occupancy and packet-drop counters (see
/// [`NeuralMachine::chip_occupancy`]).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct ChipOccupancy {
    /// The chip.
    pub chip: NodeCoord,
    /// Application cores loaded on the chip.
    pub loaded_cores: u32,
    /// DTCM bytes in use across the chip's loaded cores (ring buffers
    /// plus neuron state at the admission budget).
    pub dtcm_bytes: u64,
    /// DTCM capacity: application cores × 64 KB.
    pub dtcm_capacity: u64,
    /// Synaptic-arena bytes resident in the chip's shared SDRAM.
    pub sdram_bytes: u64,
    /// The chip's shared SDRAM capacity, bytes.
    pub sdram_capacity: u64,
    /// Packets this chip's router dropped.
    pub dropped_packets: u64,
}

/// Error returned when a core's data would not fit in its 64 KB DTCM.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct DtcmOverflow {
    /// Bytes the configuration requires.
    pub required: usize,
    /// Bytes available.
    pub available: usize,
}

impl std::fmt::Display for DtcmOverflow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "core data ({} B) exceeds DTCM ({} B)",
            self.required, self.available
        )
    }
}

impl std::error::Error for DtcmOverflow {}

/// The whole neural machine: fabric + loaded application cores.
///
/// # Example
///
/// A two-neuron ping-pong across two chips:
///
/// ```
/// use spinn_machine::machine::NeuralMachine;
/// use spinn_machine::config::MachineConfig;
/// use spinn_neuron::izhikevich::{IzhikevichNeuron, IzhikevichParams};
/// use spinn_neuron::synapse::{SynapticRow, SynapticWord};
/// use spinn_noc::mesh::NodeCoord;
/// use spinn_noc::table::{McTableEntry, RouteSet};
///
/// let mut m = NeuralMachine::new(MachineConfig::new(2, 2));
/// let n = IzhikevichNeuron::new(IzhikevichParams::regular_spiking());
/// m.load_core(NodeCoord::new(0, 0), 1, vec![n.clone().into()], vec![10.0], 0x1000).unwrap();
/// // Deliver key 0x1000 spikes to the local core (loopback demo).
/// m.router_mut(NodeCoord::new(0, 0)).table.insert(McTableEntry {
///     key: 0x1000, mask: 0xFFFF_F000,
///     route: RouteSet::EMPTY.with_core(1),
/// }).unwrap();
/// let m = m.run(100);
/// assert!(m.spikes().len() > 0);
/// ```
#[derive(Debug)]
pub struct NeuralMachine {
    pub(crate) cfg: MachineConfig,
    pub(crate) fabric: Fabric,
    /// One slot per `(chip, core)` pair. Boxed so an empty slot costs a
    /// pointer, not a full [`AppCore`] of inline `Vec` headers: a
    /// million-core mesh has ~1.1 M slots, and sharded segments
    /// allocate a slot table *per shard* — inline, idle slots alone
    /// would dwarf the loaded state.
    pub(crate) cores: Vec<Option<Box<AppCore>>>,
    pub(crate) dma_free_at: Vec<u64>,
    pub(crate) stimuli: Vec<(u64, u32, u32)>, // (time_ns, chip, key)
    pub(crate) fault_plan: Vec<(u64, u32, Direction)>, // (time_ns, chip, direction)
    pub(crate) repair_plan: Vec<(u64, u32, Direction)>, // (time_ns, chip, direction)
    pub(crate) spikes: Vec<SpikeRecord>,
    pub(crate) meter: EnergyMeter,
    pub(crate) spike_latency: Histogram,
    pub(crate) duration_ms: u32,
    pub(crate) stdp: Option<StdpParams>,
    pub(crate) reissued_packets: u64,
    pub(crate) weight_writebacks: u64,
    par_stats: Option<spinn_par::ParStats>,
    /// The `(chip, core)` pairs this machine's coalesced
    /// [`MachineEvent::Timer`] services, in ascending `(chip, core)`
    /// order — exactly the order the per-slot scan used to visit loaded
    /// cores, so the replay is bit-identical. Rebuilt from the loaded
    /// slots at every segment start (all loaded cores serially; the
    /// owned cores when running as one shard), so a tick costs the
    /// loaded-core count, not `chips × cores_per_chip` slot checks —
    /// the difference between a million-chip mesh idling for free and
    /// every tick scanning 1.1 M empty `Option`s.
    timer_cores: Vec<(u32, u8)>,
    /// Reusable per-tick buffers (ring-slot snapshot) and per-event
    /// drain buffers (delivered/dropped packets): the hot path runs
    /// allocation-free once they reach steady-state capacity.
    tick_inputs: Vec<i32>,
    delivery_scratch: Vec<Delivery>,
    dropped_scratch: Vec<DroppedPacket>,
    /// Live telemetry handles for the current segment (shard-scoped
    /// while sharded; the fabric holds a clone of the counter handle).
    obs: Observability,
    /// Telemetry accumulated across completed segments
    /// ([`NeuralMachine::telemetry`]).
    telemetry: RunTelemetry,
    /// Events handled per chip, accumulated across segments — the
    /// measured load that seeds [`NeuralMachine::event_weighted_owner`]
    /// once a first segment has run (static estimates only predict
    /// structure, not activity; this is what the partition actually
    /// needs). Not part of the checkpoint wire state: a restored run
    /// re-seeds from its own first segment.
    chip_events: Vec<u64>,
    /// Per-link hop traffic: `chips * 6` counters indexed `chip * 6 +
    /// port`, one increment per packet arrival over that link. The
    /// arrival port identifies the sending neighbour, so summed over a
    /// candidate shard cut this measures exactly the traffic the cut
    /// would turn into cross-shard exchanges — including vertical and
    /// wraparound links that are invisible to the dense-id axis. Feeds
    /// the cross-cut term of [`NeuralMachine::event_weighted_owner`];
    /// like [`NeuralMachine::chip_events`], not checkpoint state.
    link_flux: Vec<u64>,
}

impl NeuralMachine {
    /// An empty machine of the given configuration.
    pub fn new(cfg: MachineConfig) -> Self {
        let chips = cfg.chips();
        let per = cfg.cores_per_chip as usize;
        let obs =
            Observability::for_shard_with_cap(cfg.obs, 0, Self::auto_trace_cap(cfg.trace_cap, 0));
        let mut fabric = Fabric::new(cfg.fabric);
        fabric.set_observability(obs.counters().clone());
        NeuralMachine {
            fabric,
            cores: (0..chips * per).map(|_| None).collect(),
            dma_free_at: vec![0; chips],
            stimuli: Vec::new(),
            fault_plan: Vec::new(),
            repair_plan: Vec::new(),
            spikes: Vec::new(),
            meter: EnergyMeter::new(),
            spike_latency: Histogram::new(4000, 250), // 250 ns buckets to 1 ms
            duration_ms: 0,
            stdp: None,
            reissued_packets: 0,
            weight_writebacks: 0,
            par_stats: None,
            timer_cores: Vec::new(),
            tick_inputs: Vec::new(),
            delivery_scratch: Vec::new(),
            dropped_scratch: Vec::new(),
            obs,
            telemetry: RunTelemetry::default(),
            chip_events: vec![0; chips],
            link_flux: vec![0; chips * 6],
            cfg,
        }
    }

    /// Re-creates the live telemetry handles scoped to `shard` and
    /// re-registers the counter handle with the fabric (which may have
    /// been replaced wholesale, e.g. by the shard-split clone). Called
    /// at segment start, when the loaded neuron count — which sizes the
    /// auto trace ring — is known.
    fn install_observability(&mut self, shard: u32) {
        let neurons: usize = self.cores.iter().flatten().map(|c| c.neurons.len()).sum();
        let cap = Self::auto_trace_cap(self.cfg.trace_cap, neurons);
        self.obs = Observability::for_shard_with_cap(self.cfg.obs, shard, cap);
        self.fabric.set_observability(self.obs.counters().clone());
    }

    /// Resolves [`MachineConfig::trace_cap`]: a nonzero configured value
    /// is used as-is; `0` (auto) scales the ring to ~4 records per
    /// loaded neuron, rounded to a power of two and bounded to
    /// `[DEFAULT_TRACE_CAP, 1 Mi]`. Small nets keep the historical
    /// default; a 100k-neuron run gets a 512 Ki ring instead of losing
    /// ~94% of its records to a 16 Ki one.
    fn auto_trace_cap(configured: usize, neurons: usize) -> usize {
        if configured != 0 {
            return configured;
        }
        neurons
            .saturating_mul(4)
            .next_power_of_two()
            .clamp(spinn_obs::DEFAULT_TRACE_CAP, 1 << 20)
    }

    /// Rebuilds the coalesced timer's dense service list from the
    /// loaded slots (ascending `(chip, core)` — slot order).
    fn rebuild_timer_cores(&mut self) {
        let per = self.cfg.cores_per_chip as usize;
        self.timer_cores.clear();
        self.timer_cores.extend(
            self.cores
                .iter()
                .enumerate()
                .filter(|(_, slot)| slot.is_some())
                .map(|(idx, _)| ((idx / per) as u32, (idx % per) as u8)),
        );
    }

    /// Telemetry accumulated by completed run segments (empty unless
    /// [`MachineConfig::obs`] enables collection).
    pub fn telemetry(&self) -> &RunTelemetry {
        &self.telemetry
    }

    /// Window/exchange counters of the last [`NeuralMachine::run_parallel`]
    /// call (`None` after a serial run).
    pub fn par_stats(&self) -> Option<&spinn_par::ParStats> {
        self.par_stats.as_ref()
    }

    /// Events handled per dense chip id, accumulated across all
    /// completed segments — the measured load that seeds the
    /// event-weighted shard partition.
    pub fn chip_event_counts(&self) -> &[u64] {
        &self.chip_events
    }

    /// Resets run-mode bookkeeping after a snapshot install: the
    /// restored machine behaves like one that has only run serially so
    /// far, whatever sharding produced the checkpoint.
    pub(crate) fn clear_par_stats(&mut self) {
        self.par_stats = None;
        self.rebuild_timer_cores();
        // Telemetry describes *this* process's run, not the restored
        // machine state: start the restored run's accounting fresh.
        self.telemetry = RunTelemetry::default();
        self.install_observability(0);
    }

    /// Enables pair-based STDP on every loaded core. Weight updates are
    /// applied when a synaptic row is fetched (synapse-centric, as on
    /// hardware) and modified rows are DMAed back to SDRAM (§5.3: "if
    /// the connectivity data is modified, a DMA must be scheduled to
    /// write the changes back into SDRAM").
    pub fn enable_stdp(&mut self, params: StdpParams) {
        self.stdp = Some(params);
    }

    /// Sets or clears the STDP rule — `None` freezes all weights. Safe
    /// to flip between run segments: plasticity state (pre/post spike
    /// timestamps) is kept, so re-enabling continues from the timing
    /// history the cores already hold.
    pub fn set_stdp(&mut self, params: Option<StdpParams>) {
        self.stdp = params;
    }

    /// The active STDP rule, if plasticity is enabled.
    pub fn stdp(&self) -> Option<StdpParams> {
        self.stdp
    }

    /// Dropped multicast packets the monitors recovered and re-issued.
    pub fn reissued_packets(&self) -> u64 {
        self.reissued_packets
    }

    /// Number of modified synaptic rows written back to SDRAM (STDP).
    pub fn weight_writebacks(&self) -> u64 {
        self.weight_writebacks
    }

    /// The current weight (8.8 fixed point) of the synapse from the
    /// neuron with AER key `src_key` to local `target` on `(chip,
    /// core)`, if present (inspection for plasticity experiments).
    pub fn weight_of(&self, chip: NodeCoord, core: u8, src_key: u32, target: u16) -> Option<i16> {
        let idx = self.core_index(chip, core);
        self.cores[idx].as_ref().and_then(|c| {
            c.matrix.lookup(src_key).and_then(|row| {
                // `row_words` regenerates lazily stored rows without
                // mutating the arena (inspection must not materialize).
                c.matrix
                    .row_words(row)
                    .iter()
                    .find(|w| w.target() == target)
                    .map(|w| w.weight_raw())
            })
        })
    }

    /// The machine configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// Mutable router access (table loading; core 0 is the Monitor, so
    /// application cores are 1..cores_per_chip).
    pub fn router_mut(&mut self, chip: NodeCoord) -> &mut spinn_noc::router::Router {
        self.fabric.router_mut(chip)
    }

    /// Loads a routing plan's per-chip tables into the routers through
    /// the fallible CAM path, returning the number of entries installed.
    /// Routers recompile their lookup structures lazily, so this also
    /// covers re-installation after fault-injection table edits.
    ///
    /// # Errors
    ///
    /// Returns [`spinn_noc::table::TableFull`] if any chip's table
    /// exceeds the router CAM capacity
    /// ([`spinn_noc::router::RouterConfig::table_capacity`]).
    ///
    /// # Panics
    ///
    /// Panics if the plan was built for a different mesh size.
    pub fn install_routing_plan(
        &mut self,
        plan: &spinn_map::route::RoutingPlan,
    ) -> Result<usize, spinn_noc::table::TableFull> {
        plan.install_into(&mut self.fabric)
    }

    /// Hot-swaps the routing tables of a (possibly mid-run) machine:
    /// every router CAM is cleared, then the plan is loaded through the
    /// same fallible path as [`NeuralMachine::install_routing_plan`].
    /// Safe between events — packets re-resolve their route at every
    /// chip — which is what live repair relies on.
    ///
    /// # Errors
    ///
    /// Returns [`spinn_noc::table::TableFull`] if any chip's table
    /// exceeds the router CAM capacity; treat that as fatal (tables are
    /// left partially swapped).
    ///
    /// # Panics
    ///
    /// Panics if the plan was built for a different mesh size.
    pub fn reinstall_routing_plan(
        &mut self,
        plan: &spinn_map::route::RoutingPlan,
    ) -> Result<usize, spinn_noc::table::TableFull> {
        plan.reinstall_into(&mut self.fabric)
    }

    /// Fails an inter-chip link (fault injection for E3/E4).
    pub fn fail_link(&mut self, chip: NodeCoord, d: spinn_noc::direction::Direction) {
        self.fabric.fail_link(chip, d);
    }

    /// Restores a previously failed inter-chip link (both directions of
    /// the cable) — the machine-level inverse of
    /// [`NeuralMachine::fail_link`].
    pub fn restore_link(&mut self, chip: NodeCoord, d: spinn_noc::direction::Direction) {
        self.fabric.repair_link(chip, d);
    }

    /// Loads neurons onto an application core.
    ///
    /// Neuron `i` fires with AER key `base_key + i`; incoming packets are
    /// matched against rows installed with [`NeuralMachine::set_row`].
    ///
    /// # Errors
    ///
    /// Returns [`DtcmOverflow`] if the neuron state plus ring buffer
    /// exceeds the 64 KB data memory.
    ///
    /// # Panics
    ///
    /// Panics if `core` is 0 (the Monitor) or out of range, if the core
    /// is already loaded, or if `bias_na` length differs from `neurons`.
    pub fn load_core(
        &mut self,
        chip: NodeCoord,
        core: u8,
        neurons: Vec<AnyNeuron>,
        bias_na: Vec<f32>,
        base_key: u32,
    ) -> Result<(), DtcmOverflow> {
        assert!(
            core != 0 && core < self.cfg.cores_per_chip,
            "core {core} is not an application core"
        );
        assert_eq!(neurons.len(), bias_na.len(), "bias length mismatch");
        let ring = InputRing::new(neurons.len());
        let required = core_dtcm_bytes(&ring, neurons.len());
        if required > self.cfg.dtcm_bytes as usize {
            return Err(DtcmOverflow {
                required,
                available: self.cfg.dtcm_bytes as usize,
            });
        }
        let idx = self.core_index(chip, core);
        assert!(self.cores[idx].is_none(), "core already loaded");
        let n = neurons.len();
        self.cores[idx] = Some(Box::new(AppCore {
            ring,
            neurons: NeuronPool::from_neurons(neurons),
            bias_na,
            base_key,
            matrix: SynapticMatrix::new(),
            q_packets: VecDeque::new(),
            q_rows: VecDeque::new(),
            timer_pending: 0,
            current: None,
            pending_spikes: Vec::new(),
            spikes_emitted: 0,
            overruns: 0,
            row_misses: 0,
            row_last_pre_ms: Vec::new(),
            last_post_ms: vec![f64::NEG_INFINITY; n],
            dirty_rows: Vec::new(),
        }));
        Ok(())
    }

    /// Installs a whole synaptic matrix on a loaded core in one move —
    /// the stream-load path `Simulation::build` uses (the matrix is
    /// assembled off-machine by the loader, then handed over without
    /// per-row copies).
    ///
    /// # Panics
    ///
    /// Panics if the core is not loaded.
    pub fn install_matrix(&mut self, chip: NodeCoord, core: u8, matrix: SynapticMatrix) {
        let idx = self.core_index(chip, core);
        let c = self.cores[idx].as_mut().expect("core not loaded");
        c.matrix = matrix;
        c.row_last_pre_ms = vec![f64::NEG_INFINITY; c.matrix.n_rows()];
        c.dirty_rows.clear();
    }

    /// Installs the synaptic row a core uses for incoming `key` spikes
    /// (the manual loading path; whole matrices go through
    /// [`NeuralMachine::install_matrix`]).
    ///
    /// # Panics
    ///
    /// Panics if the core is not loaded.
    pub fn set_row(&mut self, chip: NodeCoord, core: u8, key: u32, row: SynapticRow) {
        let idx = self.core_index(chip, core);
        let c = self.cores[idx].as_mut().expect("core not loaded");
        c.matrix.insert_row(key, row.words());
        c.sync_stdp_rows();
    }

    /// Removes a core and returns its contents (monitor-driven
    /// functional migration after a fault, §5.3).
    pub fn evict_core(&mut self, chip: NodeCoord, core: u8) -> Option<CorePayload> {
        let idx = self.core_index(chip, core);
        self.cores[idx].take().map(|c| {
            let c = *c;
            CorePayload {
                neurons: c.neurons.into_neurons(),
                bias_na: c.bias_na,
                matrix: c.matrix,
                base_key: c.base_key,
            }
        })
    }

    /// Installs a previously evicted payload on another core.
    ///
    /// # Errors
    ///
    /// Returns [`DtcmOverflow`] like [`NeuralMachine::load_core`].
    pub fn install_core(
        &mut self,
        chip: NodeCoord,
        core: u8,
        payload: CorePayload,
    ) -> Result<(), DtcmOverflow> {
        self.load_core(
            chip,
            core,
            payload.neurons,
            payload.bias_na,
            payload.base_key,
        )?;
        self.install_matrix(chip, core, payload.matrix);
        Ok(())
    }

    /// Queues an external stimulus spike (must be called before
    /// [`NeuralMachine::run`]).
    pub fn queue_stimulus(&mut self, time_ns: u64, chip: NodeCoord, key: u32) {
        let id = self.fabric.torus().id_of(chip) as u32;
        self.stimuli.push((time_ns, id, key));
    }

    /// Queues a mid-run link failure: at simulated time `time_ns` the
    /// cable between `chip` and its neighbour in direction `dir` fails
    /// in both directions (fault injection while traffic is in flight,
    /// as opposed to pre-run [`NeuralMachine::fail_link`]).
    ///
    /// Must be called before [`NeuralMachine::run`] /
    /// [`NeuralMachine::run_parallel`]. The failure is replayed
    /// identically by serial and sharded runs: every shard applies the
    /// same fault to its fabric replica when its clock reaches
    /// `time_ns`.
    pub fn queue_fail_link(&mut self, time_ns: u64, chip: NodeCoord, dir: Direction) {
        let id = self.fabric.torus().id_of(chip) as u32;
        self.fault_plan.push((time_ns, id, dir));
    }

    /// Queues a mid-run link repair: at simulated time `time_ns` the
    /// cable between `chip` and its neighbour in direction `dir` is
    /// restored in both directions — the queueable inverse of
    /// [`NeuralMachine::queue_fail_link`], scheduled and replayed under
    /// exactly the same rules (broadcast to every shard, deterministic
    /// ordering against same-instant traffic).
    pub fn queue_repair_link(&mut self, time_ns: u64, chip: NodeCoord, dir: Direction) {
        let id = self.fabric.torus().id_of(chip) as u32;
        self.repair_plan.push((time_ns, id, dir));
    }

    /// Discards every fault queued with
    /// [`NeuralMachine::queue_fail_link`] and every repair queued with
    /// [`NeuralMachine::queue_repair_link`] (e.g. to run a healthy
    /// control of an otherwise identical machine).
    pub fn clear_fault_plan(&mut self) {
        self.fault_plan.clear();
        self.repair_plan.clear();
    }

    /// Runs the machine for `ms` milliseconds of biological time and
    /// returns it with all statistics populated.
    ///
    /// The run is driven by the event queue selected in
    /// [`MachineConfig::queue`]; results are bit-identical across queue
    /// kinds.
    pub fn run(self, ms: u32) -> NeuralMachine {
        self.run_segment(Vec::new(), 0, ms, 1).0
    }

    /// Runs the machine for `ms` milliseconds across `threads` worker
    /// threads (`spinn-par`), producing the same [`SpikeRecord`] stream
    /// as [`NeuralMachine::run`].
    ///
    /// The chips are partitioned into contiguous, *event-weighted*
    /// blocks of dense ids — one shard per thread — and each shard
    /// advances its own event queue inside conservative windows bounded
    /// by the minimum inter-chip link latency
    /// ([`spinn_noc::fabric::FabricConfig::min_remote_delay_ns`]).
    /// Spike packets crossing a shard boundary are exchanged at window
    /// barriers with their exact arrival timestamps, so the parallel run
    /// is an event-exact replay of the serial one. `threads` is clamped
    /// to `[1, chips]`; with one thread this is exactly
    /// [`NeuralMachine::run`].
    ///
    /// The run is cut into rebalance epochs (segment chaining is
    /// bit-exact, so the cuts are invisible in the results): each
    /// epoch's measured per-chip event counts reseed the partition for
    /// the next, so a hot region that no static estimate could predict
    /// stops serializing the shards after the first epoch.
    ///
    /// Within every window the shard partition is *over-decomposed*
    /// into `threads ×` [`MachineConfig::chunk_factor`] chip-contiguous
    /// chunks (capped at the chip count and at 1024 — split/merge cost
    /// is per chunk), and the worker pool claims chunks off
    /// `spinn-par`'s shared atomic claim counter: a worker that drew a
    /// light chunk steals the tail of a hot one instead of idling at
    /// the barrier. `chunk_factor == 1` restores the static
    /// one-shard-per-worker split; either way the spike stream is
    /// bit-identical (`tests/work_stealing_conformance.rs`).
    pub fn run_parallel(self, ms: u32, threads: usize) -> NeuralMachine {
        /// Epoch length: long enough to amortize the shard split/merge,
        /// short enough that a run settles onto measured weights early.
        const EPOCH_MS: u32 = 5;
        if self.effective_threads(threads) <= 1 {
            // The shard clamp collapsed the run to one worker: rebalance
            // epochs would only cut the segment (and pay the drain /
            // canonicalize cost at every boundary) for a partition that
            // no longer exists. One serial segment is the same result.
            return self.run_segment(Vec::new(), 0, ms, 1).0;
        }
        let mut machine = self;
        let mut pending = Vec::new();
        let mut done = 0u32;
        while done < ms {
            let step = EPOCH_MS.min(ms - done);
            let (m, p) = machine.run_segment(pending, done, step, threads);
            machine = m;
            pending = p;
            done += step;
        }
        machine
    }

    /// Advances the machine by one **run segment**: `ms` milliseconds of
    /// biological time starting at `from_ms` (the machine must already
    /// hold the state of a run up to `from_ms`; pass 0 for a fresh
    /// machine). `pending` carries the events a previous segment left
    /// queued; the returned vector carries the events this segment
    /// leaves queued — in-flight packets, busy-link retries, handler
    /// completions — in canonical `(time, rank)` order.
    ///
    /// Chaining segments is **bit-exact**: `run_segment(p, 0, a+b, t)`
    /// produces the same machine as `run_segment(p, 0, a, t)` followed
    /// by `run_segment(p', a, b, t')`, for any segment lengths and any
    /// (possibly different) thread counts and queue kinds per segment.
    /// Segment `k` processes exactly the events in
    /// `(boundary(from), boundary(from + ms)]` with
    /// `boundary(x) = (x + 1) ms − 1 ns`, so the union over segments is
    /// independent of where the cuts fall; the boundary never coincides
    /// with a timer tick, and the coalesced 1 ms timer chain (which ends
    /// at `from + ms`) is restarted by the next segment at the same
    /// instant and tie rank it would have fired at in an unbroken run.
    ///
    /// [`NeuralMachine::run`] is `run_segment(vec![], 0, ms, 1)` with
    /// the leftover events discarded.
    pub fn run_segment(
        self,
        pending: Vec<PendingEvent>,
        from_ms: u32,
        ms: u32,
        threads: usize,
    ) -> (NeuralMachine, Vec<PendingEvent>) {
        if ms == 0 {
            return (self, pending);
        }
        let threads = self.effective_threads(threads);
        match (self.cfg.queue, threads) {
            (QueueKind::Heap, 1) => {
                self.segment_serial::<EventQueue<MachineEvent>>(pending, from_ms, ms)
            }
            (QueueKind::Calendar, 1) => {
                self.segment_serial::<CalendarQueue<MachineEvent>>(pending, from_ms, ms)
            }
            (QueueKind::Heap, t) => {
                self.segment_parallel::<EventQueue<MachineEvent>>(pending, from_ms, ms, t)
            }
            (QueueKind::Calendar, t) => {
                self.segment_parallel::<CalendarQueue<MachineEvent>>(pending, from_ms, ms, t)
            }
        }
    }

    /// The instant a segment starting at `from_ms` resumes from: time
    /// zero for a fresh run, else the previous segment's end boundary.
    fn segment_start_ns(from_ms: u32) -> u64 {
        if from_ms == 0 {
            0
        } else {
            (from_ms as u64 + 1) * MS - 1
        }
    }

    /// The inclusive event horizon of a segment ending at `target_ms`:
    /// one drain millisecond past the last timer tick, stopping one
    /// nanosecond short of the next tick's instant so a later segment
    /// can still interleave its restarted timer by rank.
    fn segment_end_ns(target_ms: u32) -> u64 {
        (target_ms as u64 + 1) * MS - 1
    }

    /// [`NeuralMachine::run_segment`] on one serial engine.
    fn segment_serial<Q: Queue<MachineEvent>>(
        mut self,
        pending: Vec<PendingEvent>,
        from_ms: u32,
        ms: u32,
    ) -> (NeuralMachine, Vec<PendingEvent>) {
        let target = from_ms + ms;
        self.duration_ms = target;
        self.rebuild_timer_cores();
        // Fresh segment-scoped telemetry: the previous segment's handles
        // were absorbed at its end, and the auto trace cap must be
        // re-resolved against whatever is loaded *now*.
        self.install_observability(0);
        let stimuli = std::mem::take(&mut self.stimuli);
        let faults = std::mem::take(&mut self.fault_plan);
        let repairs = std::mem::take(&mut self.repair_plan);
        let start = Self::segment_start_ns(from_ms);
        let mut engine: Engine<NeuralMachine, Q> = Engine::resume_at(self, SimTime::new(start));
        // The queue snapshot goes back first (Queue::restore resets the
        // insertion counter, so a restored queue replays like the one it
        // was drained from), then the timer restart and the newly queued
        // stimuli/faults — all ordered by content rank, never by which
        // call staged them.
        engine.restore_events(
            pending
                .into_iter()
                .map(|p| (SimTime::new(p.at_ns), Self::tie_rank(&p.event), p.event))
                .collect(),
        );
        engine.schedule_at(SimTime::new((from_ms as u64 + 1) * MS), MachineEvent::Timer);
        for (t, chip, key) in stimuli {
            engine.schedule_at(SimTime::new(t), MachineEvent::InjectSpike { chip, key });
        }
        for (t, chip, dir) in faults {
            engine.schedule_at(SimTime::new(t), MachineEvent::FailLink { chip, dir });
        }
        for (t, chip, dir) in repairs {
            engine.schedule_at(SimTime::new(t), MachineEvent::RepairLink { chip, dir });
        }
        engine.run_until(SimTime::new(Self::segment_end_ns(target)));
        let queue_peak = engine.queue_peak() as u64;
        let (mut m, drained) = engine.into_parts();
        let pending_out = canonical_pending(vec![drained]);
        m.obs.counters().gauge_max(Counter::QueuePeak, queue_peak);
        let mut telemetry = std::mem::take(&mut m.telemetry);
        telemetry.absorb(&mut m.obs);
        m.telemetry = telemetry;
        m.finalize();
        (m, pending_out)
    }

    /// The worker count a run request actually gets: clamped to `[1,
    /// chips]`, and — unless `force_shards` (config or
    /// `SPINN_FORCE_SHARDS=1`) asks otherwise — to the host's
    /// parallelism. Workers exist to occupy cores; a wider pool buys no
    /// parallelism yet still pays the window/exchange machinery, and
    /// results are shard-count-invariant, so the collapse is free.
    /// Public so benchmark rows can record the post-clamp parallelism
    /// honestly next to the requested one.
    pub fn effective_threads(&self, threads: usize) -> usize {
        let threads = threads.clamp(1, self.cfg.chips());
        if self.cfg.force_shards || force_shards_env() {
            threads
        } else {
            threads.min(std::thread::available_parallelism().map_or(1, |p| p.get()))
        }
    }

    /// Event-weighted contiguous chip partition.
    ///
    /// Chip weights come from *measured* load when available — the
    /// per-chip event counts accumulated by every previous segment —
    /// because activity (which chips the spike traffic actually hammers)
    /// is what the partition has to balance, and no static estimate
    /// predicts it. A fresh machine falls back to a structural estimate:
    /// every mapped neuron costs a tick event per millisecond and every
    /// synapse feeds the packet/DMA/row-walk path in proportion to
    /// activity, while empty chips only see the coalesced timer scan.
    /// The dense chip-id axis is cut where the *cumulative weight*
    /// crosses equal shares — row-major neighbours still land on the
    /// same shard (small barrier exchanges), but a mapping whose hot
    /// region sits on a prefix of the mesh no longer serializes behind
    /// shard 0 the way fixed-size chip blocks did.
    fn event_weighted_owner(&self, threads: usize) -> Vec<u32> {
        let chips = self.cfg.chips();
        debug_assert!(threads >= 2 && threads <= chips);
        let per = self.cfg.cores_per_chip as usize;
        // Floor of 16 per chip: timer scans keep even empty chips
        // slightly warm, and a nonzero floor keeps the split total-order
        // stable when whole regions are unmapped.
        let mut weight = vec![16u64; chips];
        let measured: u64 = self.chip_events.iter().sum();
        if measured >= 1024 {
            for (w, &n) in weight.iter_mut().zip(&self.chip_events) {
                *w += n;
            }
        } else {
            for (idx, slot) in self.cores.iter().enumerate() {
                if let Some(core) = slot.as_ref() {
                    weight[idx / per] +=
                        core.neurons.len() as u64 + core.matrix.total_synapses() / 64;
                }
            }
        }
        // The DP below is O(shards · B²) with a B² flux matrix over the
        // cut axis. Exact per-chip resolution is affordable to ~1k
        // chips; beyond that the dense-id axis is grouped into at most
        // 1024 contiguous *blocks* (cuts then land on block edges —
        // plenty for balancing, since any shard spans many blocks). At
        // or below 1024 chips the stride is 1 and the partition is
        // bit-identical to the exact DP; a 65k-chip mesh costs a
        // 1024-block DP instead of a 4-billion-entry flux matrix.
        let stride = chips.div_ceil(1024).min((chips / threads).max(1)).max(1);
        let nb = chips.div_ceil(stride);
        debug_assert!(nb >= threads);
        let mut bweight = vec![0u64; nb];
        for (chip, w) in weight.iter().enumerate() {
            bweight[chip / stride] += *w;
        }
        let total = bweight.iter().sum::<u64>().max(1) as f64;
        // Dynamic program over cut positions. Two costs compete:
        //
        //  * imbalance, as the sum of squared shard shares (1/threads
        //    each when perfectly balanced, approaching 1 when one shard
        //    eats everything), and
        //  * measured cross-shard traffic: every link hop recorded in
        //    `link_flux` whose endpoints land on different shards. A
        //    hop kept inside a shard is one queue push; the same hop
        //    across shards pays the outbox/mailbox exchange *and* — far
        //    worse — couples the two shards' conservative horizons, so
        //    they advance in lookahead-sized windows instead of running
        //    free. `CROSS_HOP_COST` is that measured machinery ratio:
        //    splitting a hot cluster (~2k extra cross hops on the 100k
        //    phase-breakdown net) multiplied windows 15x, i.e. each
        //    cross hop dragged in window machinery worth hundreds of
        //    local events.
        //
        // When the load is spread out, cut position barely moves the
        // (roughly uniform) cross traffic, so the quadratic term decides
        // and the cuts balance the shards; when one chatty cluster
        // dominates (a stimulus hot spot no shard count can split), the
        // flux term keeps the cluster intact on one shard, where the
        // per-shard horizon lets it run ahead of its idle neighbours
        // instead of barrier-stepping against them. Before any traffic
        // is measured the flux matrix is all zero and the DP degenerates
        // to pure load balancing.
        const CROSS_HOP_COST: f64 = 256.0;
        let torus = *self.fabric.torus();
        // Block-to-block hop counts, then 2-D prefix sums so the
        // traffic *inside* a contiguous block range is O(1) per DP
        // transition: intra[a..b) = F[b][b] - F[a][b] - F[b][a] + F[a][a].
        let mut flux = vec![0u64; nb * nb];
        for node in 0..chips {
            for port in 0..6 {
                let hops = self.link_flux[node * 6 + port];
                if hops > 0 {
                    let from = torus
                        .id_of(torus.neighbour(torus.coord_of(node), Direction::from_index(port)));
                    flux[(from / stride) * nb + node / stride] += hops;
                }
            }
        }
        let flux_total: u64 = flux.iter().sum();
        let mut fpre = vec![0.0f64; (nb + 1) * (nb + 1)];
        for i in 0..nb {
            for j in 0..nb {
                fpre[(i + 1) * (nb + 1) + (j + 1)] = flux[i * nb + j] as f64
                    + fpre[i * (nb + 1) + (j + 1)]
                    + fpre[(i + 1) * (nb + 1) + j]
                    - fpre[i * (nb + 1) + j];
            }
        }
        let intra = |a: usize, b: usize| {
            fpre[b * (nb + 1) + b] - fpre[a * (nb + 1) + b] - fpre[b * (nb + 1) + a]
                + fpre[a * (nb + 1) + a]
        };
        // Cross traffic = total - sum of intra-shard traffic, so the DP
        // equivalently *rewards* each shard's internal flux.
        let flux_gain = |a: usize, b: usize| {
            if flux_total == 0 {
                0.0
            } else {
                CROSS_HOP_COST * intra(a, b) / total
            }
        };
        let prefix: Vec<f64> = std::iter::once(0.0)
            .chain(bweight.iter().scan(0u64, |acc, &w| {
                *acc += w;
                Some(*acc as f64)
            }))
            .collect();
        let share = |a: usize, b: usize| (prefix[b] - prefix[a]) / total;
        // dp[s][c]: best cost splitting blocks [0, c) into s+1 shards,
        // each non-empty. Ties break toward the earliest cut, which is
        // deterministic — the partition is part of no result, but a
        // reproducible one keeps run traces comparable.
        let mut dp = vec![vec![f64::INFINITY; nb + 1]; threads];
        let mut cut_at = vec![vec![0usize; nb + 1]; threads];
        #[allow(clippy::needless_range_loop)] // indexes two tables in lockstep
        for c in 1..=nb {
            dp[0][c] = share(0, c) * share(0, c) - flux_gain(0, c);
        }
        for s in 1..threads {
            for c in (s + 1)..=nb {
                let mut best = f64::INFINITY;
                let mut best_b = s;
                #[allow(clippy::needless_range_loop)] // reads dp[s-1][b], not an iterable
                for b in s..c {
                    let sh = share(b, c);
                    let cost = dp[s - 1][b] + sh * sh - flux_gain(b, c);
                    if cost < best {
                        best = cost;
                        best_b = b;
                    }
                }
                dp[s][c] = best;
                cut_at[s][c] = best_b;
            }
        }
        let mut owner = vec![0u32; chips];
        let mut end = nb;
        for s in (1..threads).rev() {
            let start = cut_at[s][end];
            for o in owner
                .iter_mut()
                .take((end * stride).min(chips))
                .skip(start * stride)
            {
                *o = s as u32;
            }
            end = start;
        }
        owner
    }

    /// [`NeuralMachine::run_segment`] sharded across worker threads.
    fn segment_parallel<Q: Queue<MachineEvent> + Send>(
        mut self,
        pending: Vec<PendingEvent>,
        from_ms: u32,
        ms: u32,
        threads: usize,
    ) -> (NeuralMachine, Vec<PendingEvent>) {
        let chips = self.cfg.chips();
        debug_assert!(threads >= 2);
        let target = from_ms + ms;
        let lookahead = self.cfg.fabric.min_remote_delay_ns().max(1);
        // Over-decompose: cut `chunk_factor` times more chip-contiguous
        // shards than there are workers, so the pool's claim counters
        // steal chunks mid-window instead of each worker being chained
        // to one static block. Bounded by the chip count (shards must
        // be non-empty) and by 1024 (the split/merge cost is per
        // shard). `chunk_factor == 1` is the static split.
        let chunks = (threads * self.cfg.chunk_factor.max(1) as usize)
            .min(chips)
            .min(1024)
            .max(threads);
        let owner = self.event_weighted_owner(chunks);
        let stimuli = std::mem::take(&mut self.stimuli);
        let faults = std::mem::take(&mut self.fault_plan);
        let repairs = std::mem::take(&mut self.repair_plan);
        // Results accumulated by earlier segments are carried across the
        // shard split and merged back afterwards (fabric/router state
        // rides inside the cloned fabric instead).
        let carry_spikes = std::mem::take(&mut self.spikes);
        let carry_meter = std::mem::replace(&mut self.meter, EnergyMeter::new());
        let carry_latency = std::mem::replace(&mut self.spike_latency, Histogram::new(4000, 250));
        let carry_reissued = self.reissued_packets;
        let carry_writebacks = self.weight_writebacks;
        let mut carry_telemetry = std::mem::take(&mut self.telemetry);
        let carry_chip_events = std::mem::take(&mut self.chip_events);
        let carry_link_flux = std::mem::take(&mut self.link_flux);
        let carry_par = self.par_stats.take();
        let dma_free_at = self.dma_free_at.clone();
        let cfg = self.cfg;
        let per = cfg.cores_per_chip as usize;
        let mut shards: Vec<NeuralMachine> = (0..chunks)
            .map(|s| {
                let mut m = NeuralMachine::new(cfg);
                m.fabric = self.fabric.clone();
                m.fabric
                    .set_partition(Partition::new(owner.clone(), s as u32));
                m.stdp = self.stdp;
                m.duration_ms = target;
                m.dma_free_at = dma_free_at.clone();
                m
            })
            .collect();
        for (idx, slot) in self.cores.iter_mut().enumerate() {
            if let Some(core) = slot.take() {
                shards[owner[idx / per] as usize].cores[idx] = Some(core);
            }
        }
        for (s, m) in shards.iter_mut().enumerate() {
            // Each shard's coalesced timer services exactly its owned
            // loaded cores; the shard-scoped telemetry handles replace
            // the ones `new` wired up against the replaced fabric —
            // both only computable now that the cores have moved in,
            // and both needed before the engines are built (which
            // capture the phase probe).
            m.rebuild_timer_cores();
            m.install_observability(s as u32);
        }

        let start = Self::segment_start_ns(from_ms);
        let mut par: ParEngine<NeuralMachine, Q> =
            ParEngine::resume_in(shards, SimTime::new(start));
        for shard in 0..chunks {
            par.schedule(
                shard,
                SimTime::new((from_ms as u64 + 1) * MS),
                MachineEvent::Timer,
            );
        }
        // Carried-over events go to the shard owning their chip; events
        // that mutate replicated state (link failures, the coalesced
        // timer) are broadcast, exactly as a fresh schedule would be.
        for p in pending {
            let at = SimTime::new(p.at_ns);
            match event_chip(&p.event) {
                Some(chip) => par.schedule(owner[chip as usize] as usize, at, p.event),
                None => {
                    for shard in 0..chunks {
                        par.schedule(shard, at, p.event);
                    }
                }
            }
        }
        for (t, chip, key) in stimuli {
            par.schedule(
                owner[chip as usize] as usize,
                SimTime::new(t),
                MachineEvent::InjectSpike { chip, key },
            );
        }
        // Link failures and repairs mutate every shard's fabric replica:
        // broadcast the schedules so all replicas stay consistent at `t`.
        for (t, chip, dir) in faults {
            for shard in 0..chunks {
                par.schedule(shard, SimTime::new(t), MachineEvent::FailLink { chip, dir });
            }
        }
        for (t, chip, dir) in repairs {
            for shard in 0..chunks {
                par.schedule(
                    shard,
                    SimTime::new(t),
                    MachineEvent::RepairLink { chip, dir },
                );
            }
        }
        // The worker pool stays at the requested thread count: the
        // extra shards are there to be *stolen*, not to spawn threads.
        par.run_until_with_workers(
            SimTime::new(Self::segment_end_ns(target)),
            lookahead,
            threads,
        );
        let stats = par.stats().clone();
        let queue_peaks = par.queue_peaks();

        let mut parts = par.into_parts().into_iter();
        let (mut base, first_drained) = parts.next().expect("threads >= 2");
        base.obs
            .counters()
            .gauge_max(Counter::QueuePeak, queue_peaks[0] as u64);
        carry_telemetry.absorb(&mut base.obs);
        let mut drained = vec![first_drained];
        for (i, (mut m, d)) in parts.enumerate() {
            m.obs
                .counters()
                .gauge_max(Counter::QueuePeak, queue_peaks[i + 1] as u64);
            carry_telemetry.absorb(&mut m.obs);
            base.fabric.adopt_owned(&mut m.fabric, (i + 1) as u32);
            for (idx, slot) in m.cores.iter_mut().enumerate() {
                if let Some(core) = slot.take() {
                    base.cores[idx] = Some(core);
                }
            }
            base.spikes.extend(m.spikes);
            base.meter.merge(&m.meter);
            base.spike_latency.merge(&m.spike_latency);
            base.reissued_packets += m.reissued_packets;
            base.weight_writebacks += m.weight_writebacks;
            for (a, b) in base.chip_events.iter_mut().zip(&m.chip_events) {
                *a += *b;
            }
            for (a, b) in base.link_flux.iter_mut().zip(&m.link_flux) {
                *a += *b;
            }
            // Only a chip's owner advances its DMA port clock; everyone
            // else still holds the segment-start value.
            for (a, b) in base.dma_free_at.iter_mut().zip(&m.dma_free_at) {
                *a = (*a).max(*b);
            }
            drained.push(d);
        }
        base.fabric.clear_partition();
        base.duration_ms = target;
        // Window counters accumulate across segments (rebalance epochs
        // included), like every other run statistic.
        base.par_stats = Some(match carry_par {
            Some(prev) => spinn_par::ParStats {
                windows: prev.windows + stats.windows,
                events: prev.events + stats.events,
                exchanged: prev.exchanged + stats.exchanged,
            },
            None => stats,
        });
        base.rebuild_timer_cores();
        for (a, b) in base.chip_events.iter_mut().zip(&carry_chip_events) {
            *a += *b;
        }
        for (a, b) in base.link_flux.iter_mut().zip(&carry_link_flux) {
            *a += *b;
        }
        base.spikes.extend(carry_spikes);
        base.meter.merge(&carry_meter);
        base.spike_latency.merge(&carry_latency);
        base.reissued_packets += carry_reissued;
        base.weight_writebacks += carry_writebacks;
        base.telemetry = carry_telemetry;
        let pending_out = canonical_pending(drained);
        base.finalize();
        (base, pending_out)
    }

    /// All recorded spikes, in canonical `(time_ms, key)` order.
    pub fn spikes(&self) -> &[SpikeRecord] {
        &self.spikes
    }

    /// Drains the recorded spikes, leaving the machine's recording
    /// buffer empty — the per-job readout of warm multi-run serving
    /// (one resident machine, many [`NeuralMachine::run_segment`]
    /// calls). Note that drained spikes are gone from later
    /// checkpoints.
    pub fn take_spikes(&mut self) -> Vec<SpikeRecord> {
        std::mem::take(&mut self.spikes)
    }

    /// Histogram of spike fabric latency (injection to core delivery),
    /// ns.
    pub fn spike_latency(&self) -> &Histogram {
        &self.spike_latency
    }

    /// Total real-time violations (timer ticks that arrived while the
    /// previous tick was still being processed).
    pub fn realtime_violations(&self) -> u64 {
        self.cores.iter().flatten().map(|c| c.overruns).sum()
    }

    /// Packets whose synaptic row was missing (mapping errors).
    pub fn row_misses(&self) -> u64 {
        self.cores.iter().flatten().map(|c| c.row_misses).sum()
    }

    /// The energy meter (populated by [`NeuralMachine::run`]).
    pub fn meter(&self) -> &EnergyMeter {
        &self.meter
    }

    /// Wall-clock duration of the completed run, ns.
    pub fn duration_ns(&self) -> u64 {
        self.duration_ms as u64 * MS
    }

    /// Aggregated router statistics.
    pub fn router_stats(&self) -> RouterStats {
        self.fabric.total_stats()
    }

    /// Per-chip memory occupancy and drop counters: loaded cores, DTCM
    /// bytes in use (against `cores × 64 KB`), synaptic-arena SDRAM
    /// bytes in use (against the chip's shared SDRAM) and packets the
    /// chip's router dropped. The run report and the benchmark
    /// pipeline's structured occupancy section both read from here.
    pub fn chip_occupancy(&self) -> Vec<ChipOccupancy> {
        let per = self.cfg.cores_per_chip as usize;
        (0..self.cfg.chips())
            .map(|chip| {
                let coord = self.fabric.torus().coord_of(chip);
                let mut occ = ChipOccupancy {
                    chip: coord,
                    loaded_cores: 0,
                    dtcm_bytes: 0,
                    dtcm_capacity: (per.saturating_sub(1) as u64) * self.cfg.dtcm_bytes as u64,
                    sdram_bytes: 0,
                    sdram_capacity: self.cfg.sdram_bytes,
                    dropped_packets: self.fabric.router(coord).stats.dropped,
                };
                for c in self.cores[chip * per..(chip + 1) * per].iter().flatten() {
                    occ.loaded_cores += 1;
                    occ.dtcm_bytes += c.dtcm_bytes() as u64;
                    occ.sdram_bytes += c.matrix.sdram_bytes();
                }
                occ
            })
            .collect()
    }

    /// Whole-machine SDRAM in use by synaptic matrices, bytes (the sum
    /// of every core's arena — must equal the loader's total).
    pub fn total_sdram_bytes(&self) -> u64 {
        self.cores
            .iter()
            .flatten()
            .map(|c| c.matrix.sdram_bytes())
            .sum()
    }

    /// Whole-machine *host-resident* synaptic bytes: arenas, row
    /// tables, key blocks and compressed lazy recipes actually held in
    /// memory. For a lazily loaded machine this is far below
    /// [`NeuralMachine::total_sdram_bytes`] (the modelled DMA
    /// footprint) until spikes touch rows.
    pub fn total_resident_bytes(&self) -> u64 {
        self.cores
            .iter()
            .flatten()
            .map(|c| c.matrix.resident_bytes())
            .sum()
    }

    /// Whole-machine count of synaptic rows still stored compressed
    /// (generator recipe only, no materialized words). Falls as DMA
    /// touches materialize rows during a run.
    pub fn total_lazy_rows(&self) -> u64 {
        self.cores
            .iter()
            .flatten()
            .map(|c| c.matrix.lazy_rows())
            .sum()
    }

    /// Whole-machine synapse count across every loaded core's matrix.
    pub fn total_synapses(&self) -> u64 {
        self.cores
            .iter()
            .flatten()
            .map(|c| c.matrix.total_synapses())
            .sum()
    }

    /// Direct fabric access (advanced inspection).
    pub fn fabric(&self) -> &Fabric {
        &self.fabric
    }

    // ------------------------------------------------------------------

    fn core_index(&self, chip: NodeCoord, core: u8) -> usize {
        self.fabric.torus().id_of(chip) * self.cfg.cores_per_chip as usize + core as usize
    }

    fn finalize(&mut self) {
        // Canonical spike order: `(time_ms, key)` is unique (a neuron
        // fires at most once per tick), so serial and sharded runs
        // produce bit-identical streams whenever they record the same
        // spikes.
        self.spikes.sort_unstable_by_key(|s| (s.time_ms, s.key));
        let duration = self.duration_ns();
        let loaded = self.cores.iter().flatten().count() as u64;
        let busy = self.meter.core_active_ns;
        self.meter.core_sleep_ns = (loaded * duration).saturating_sub(busy);
        self.meter.chip_overhead_ns = self.cfg.chips() as u64 * duration;
        let stats = self.fabric.total_stats();
        self.meter.packets_routed =
            stats.mc_table_hits + stats.mc_default_routed + stats.p2p_forwarded;
    }

    fn charge(&mut self, instructions: u64) -> u64 {
        self.meter.instructions += instructions;
        let ns = self.cfg.instr_ns(instructions);
        self.meter.core_active_ns += ns;
        ns
    }

    fn dispatch(&mut self, chip: u32, core: u8, ctx: &mut Context<MachineEvent>) {
        let idx = chip as usize * self.cfg.cores_per_chip as usize + core as usize;
        let Some(c) = self.cores[idx].as_mut() else {
            return;
        };
        if c.current.is_some() {
            return;
        }
        let costs = self.cfg.costs;
        // Priority: packet received > DMA complete > timer (Fig. 7).
        if let Some(key) = c.q_packets.pop_front() {
            c.current = Some(WorkItem::Packet(key));
            let ns = self.charge(costs.packet_isr_instr);
            ctx.schedule_in(ns, MachineEvent::CoreDone { chip, core });
        } else if let Some(row) = c.q_rows.pop_front() {
            let len = c.matrix.row_len(row) as u64;
            c.current = Some(WorkItem::Row(row));
            let ns = self.charge(costs.dma_isr_instr + costs.per_synapse_instr * len);
            ctx.schedule_in(ns, MachineEvent::CoreDone { chip, core });
        } else if c.timer_pending > 0 {
            c.timer_pending -= 1;
            // Advance the neural dynamics now; emit the spikes when the
            // handler's compute time has elapsed. The ring-slot snapshot
            // reuses a machine-level buffer (allocation-free per tick).
            let tick_ms = (ctx.now().ticks() / MS) as u32;
            let mut inputs = std::mem::take(&mut self.tick_inputs);
            let c = self.cores[idx].as_mut().expect("checked above");
            inputs.clear();
            inputs.extend_from_slice(c.ring.tick());
            debug_assert!(c.pending_spikes.is_empty());
            // The SoA pool walks flat state arrays; the split borrow
            // keeps the spike/bias buffers out of the pool's way.
            let AppCore {
                neurons,
                bias_na,
                pending_spikes,
                last_post_ms,
                base_key,
                ..
            } = &mut **c;
            let base_key = *base_key;
            let tok = self.obs.phases().start();
            neurons.step_tick(
                |i| bias_na[i] + inputs[i] as f32 / 256.0,
                |i| {
                    pending_spikes.push(base_key + i as u32);
                    last_post_ms[i] = tick_ms as f64;
                },
            );
            self.obs.phases().record(Phase::NeuronTick, tok);
            c.spikes_emitted += c.pending_spikes.len() as u64;
            let n_neurons = c.neurons.len() as u64;
            let n_spikes = c.pending_spikes.len() as u64;
            self.obs.counters().add(Counter::NeuronsTicked, n_neurons);
            self.obs.counters().add(Counter::Spikes, n_spikes);
            c.current = Some(WorkItem::Timer);
            let now_ns = ctx.now().ticks();
            let tracing = self.obs.tracing();
            let c = self.cores[idx].as_ref().expect("checked above");
            for &key in &c.pending_spikes {
                self.spikes.push(SpikeRecord {
                    time_ms: tick_ms,
                    key,
                });
                if tracing {
                    self.obs.trace(now_ns, TraceKind::Spike, key, tick_ms);
                }
            }
            self.tick_inputs = inputs;
            let ns = self.charge(
                costs.timer_fixed_instr
                    + costs.per_neuron_instr * n_neurons
                    + costs.spike_emit_instr * n_spikes,
            );
            ctx.schedule_in(ns, MachineEvent::CoreDone { chip, core });
        }
        // Else: nothing to do — wait-for-interrupt sleep.
    }

    fn on_core_done(&mut self, chip: u32, core: u8, ctx: &mut Context<MachineEvent>) {
        let now = ctx.now().ticks();
        let idx = chip as usize * self.cfg.cores_per_chip as usize + core as usize;
        let Some(c) = self.cores[idx].as_mut() else {
            return;
        };
        match c.current.take() {
            Some(WorkItem::Packet(key)) => {
                // Master-population-table lookup: binary search over
                // the (key, mask) entries, neuron bits select the row.
                if let Some(row) = c.matrix.lookup(key) {
                    let bytes = c.matrix.row_bytes(row) as u64;
                    // The DMA controller transfers in the background; the
                    // chip's SDRAM port serializes transfers.
                    let start = now.max(self.dma_free_at[chip as usize]);
                    let done = start + self.cfg.dma_ns(bytes);
                    self.dma_free_at[chip as usize] = done;
                    self.meter.sdram_bytes += bytes;
                    self.obs.counters().add(Counter::DmaBytes, bytes);
                    ctx.schedule_at(
                        SimTime::new(done),
                        MachineEvent::DmaDone { chip, core, key },
                    );
                } else {
                    c.row_misses += 1;
                }
            }
            Some(WorkItem::Row(row)) => {
                let stdp = self.stdp;
                let now_ms = now as f64 / MS as f64;
                let mut writeback_bytes = None;
                let row_events = c.matrix.row_len(row) as u64;
                let tok = self.obs.phases().start();
                {
                    let mut modified = false;
                    if let Some(p) = stdp {
                        // Deferred pair-based STDP, applied at row fetch
                        // (pre-spike time): depress against the target's
                        // most recent post-spike; potentiate the
                        // *previous* pre-spike against any post that
                        // followed it. Weights are rewritten in place in
                        // the arena, as on hardware.
                        let last_pre =
                            std::mem::replace(&mut c.row_last_pre_ms[row as usize], now_ms);
                        let last_post_ms = &c.last_post_ms;
                        // `ensure_row_mut`: a lazily stored row is
                        // materialized on this first write touch, so
                        // STDP keeps rewriting arena words in place.
                        for w in c.matrix.ensure_row_mut(row) {
                            let n = w.target() as usize;
                            let last_post = last_post_ms[n];
                            let mut dw = 0i16;
                            if last_post.is_finite() && last_post <= now_ms {
                                let dt = (now_ms - last_post) as f32;
                                dw -= (p.a_minus * (-dt / p.tau_minus_ms).exp()).round() as i16;
                            }
                            if last_post.is_finite() && last_pre.is_finite() && last_post > last_pre
                            {
                                let dt = (last_post - last_pre) as f32;
                                dw += (p.a_plus * (-dt / p.tau_plus_ms).exp()).round() as i16;
                            }
                            if dw != 0 {
                                let updated = apply_bounded(w.weight_raw(), dw, &p);
                                if updated != w.weight_raw() {
                                    *w = w.with_weight_raw(updated);
                                    modified = true;
                                }
                            }
                        }
                    }
                    if modified {
                        c.dirty_rows.push(row);
                    }
                    let AppCore { matrix, ring, .. } = &mut **c;
                    // The DMA touch: a compressed (lazily stored) row is
                    // regenerated into the arena here, on first fetch.
                    for w in matrix.ensure_row(row) {
                        ring.deposit(w.delay_ms(), w.target() as usize, w.weight_raw() as i32);
                    }
                    if modified {
                        writeback_bytes = Some(matrix.row_bytes(row) as u64);
                    }
                }
                self.obs.phases().record(Phase::RowWalk, tok);
                self.obs.counters().add(Counter::SynapticEvents, row_events);
                if let Some(bytes) = writeback_bytes {
                    // §5.3: modified connectivity data is DMAed back.
                    self.weight_writebacks += 1;
                    self.meter.sdram_bytes += bytes;
                    self.obs.counters().add(Counter::DmaBytes, bytes);
                    let start = now.max(self.dma_free_at[chip as usize]);
                    self.dma_free_at[chip as usize] = start + self.cfg.dma_ns(bytes);
                }
            }
            Some(WorkItem::Timer) => {
                // The comms controller serializes packet emission: spikes
                // leave one per emit interval, not as an instantaneous
                // burst (which would overflow the output link queue).
                let gap = self.cfg.instr_ns(self.cfg.costs.spike_emit_instr).max(1);
                for (i, &key) in c.pending_spikes.iter().enumerate() {
                    ctx.schedule_in(i as u64 * gap, MachineEvent::InjectSpike { chip, key });
                }
                // Clear (not take): the buffer's capacity is reused on
                // the next tick.
                c.pending_spikes.clear();
            }
            None => {}
        }
        self.dispatch(chip, core, ctx);
    }

    /// The coalesced 1 ms timer: services every *loaded* core in
    /// `self.timer_cores` in ascending `(chip, core)` order — the same
    /// order per-chip timer events used to pop in (their tie rank was
    /// the chip id, then cores ascending within the chip), so the
    /// replay is bit-identical while the per-tick cost tracks loaded
    /// cores, not mesh size: a million-core mesh with ten loaded cores
    /// pays for ten, not for 1.3 M empty `Option` probes.
    fn on_timer(&mut self, ctx: &mut Context<MachineEvent>) {
        let tick_ms = ctx.now().ticks() / MS;
        for i in 0..self.timer_cores.len() {
            let (chip, core) = self.timer_cores[i];
            let idx = chip as usize * self.cfg.cores_per_chip as usize + core as usize;
            if let Some(c) = self.cores[idx].as_mut() {
                c.timer_pending += 1;
                if c.timer_pending > 1 {
                    // The previous tick has not even started: a
                    // real-time violation.
                    c.overruns += 1;
                }
                self.dispatch(chip, core, ctx);
            }
        }
        if tick_ms < self.duration_ms as u64 {
            ctx.schedule_in(MS, MachineEvent::Timer);
        }
    }

    fn drain_deliveries(&mut self, now: u64, ctx: &mut Context<MachineEvent>) {
        // §5.3: the monitor is informed of dropped packets and "can
        // recover the packet and re-issue it if appropriate". The 2-bit
        // timestamp field bounds the retries. Drains swap reusable
        // buffers with the fabric, so polling is allocation-free.
        let mut dropped_buf = std::mem::take(&mut self.dropped_scratch);
        self.fabric.swap_dropped(&mut dropped_buf);
        for dropped in dropped_buf.drain(..) {
            if self.obs.tracing() {
                let chip = self.fabric.torus().id_of(dropped.node) as u32;
                self.obs
                    .trace(dropped.time_ns, TraceKind::Drop, dropped.packet.key, chip);
            }
            if dropped.packet.kind == PacketKind::Multicast && dropped.packet.timestamp < 3 {
                let chip = self.fabric.torus().id_of(dropped.node) as u32;
                ctx.schedule_in(
                    20_000,
                    MachineEvent::ReissueSpike {
                        chip,
                        key: dropped.packet.key,
                        timestamp: dropped.packet.timestamp + 1,
                    },
                );
            }
        }
        self.dropped_scratch = dropped_buf;
        let _ = now;
        let now = ctx.now().ticks();
        let mut deliveries = std::mem::take(&mut self.delivery_scratch);
        self.fabric.swap_deliveries(&mut deliveries);
        for d in deliveries.drain(..) {
            if d.packet.kind != PacketKind::Multicast {
                continue; // p2p/nn system traffic is not used mid-run
            }
            self.obs.trace(now, TraceKind::Packet, d.packet.key, d.hops);
            self.spike_latency.record(now - d.injected_at_ns);
            self.meter.packet_hops += d.hops as u64;
            let chip = self.fabric.torus().id_of(d.node) as u32;
            for core in 1..self.cfg.cores_per_chip {
                if d.cores & (1 << core) != 0 {
                    let idx = chip as usize * self.cfg.cores_per_chip as usize + core as usize;
                    if let Some(c) = self.cores[idx].as_mut() {
                        c.q_packets.push_back(d.packet.key);
                        self.dispatch(chip, core, ctx);
                    }
                }
            }
        }
        self.delivery_scratch = deliveries;
    }
}

impl ShardModel for NeuralMachine {
    fn drain_outbox(&mut self) -> Vec<RemoteEvent<MachineEvent>> {
        self.fabric
            .take_remote()
            .into_iter()
            .map(|(at, dest, ev)| RemoteEvent {
                at: SimTime::new(at),
                dest: dest as usize,
                event: MachineEvent::Noc(ev),
            })
            .collect()
    }
}

impl Model for NeuralMachine {
    type Event = MachineEvent;

    fn phase_probe(&self) -> PhaseProbe {
        self.obs.phases().clone()
    }

    /// Content-derived same-instant ordering.
    ///
    /// Two events scheduled for the same nanosecond are handled in rank
    /// order rather than insertion order. Deriving the rank from the
    /// event's content makes the order identical between the serial
    /// engine and a sharded run — cross-shard arrivals are inserted at
    /// window barriers, so their insertion order differs, but their
    /// content does not. Events with equal rank at the same instant are
    /// identical packets (or duplicate interrupts) and commute.
    fn tie_rank(ev: &MachineEvent) -> u128 {
        // Layout: [tag:8 | a:56 | b:64].
        fn pack(tag: u8, a: u64, b: u64) -> u128 {
            ((tag as u128) << 120) | (((a & 0x00FF_FFFF_FFFF_FFFF) as u128) << 64) | b as u128
        }
        // The low 64 wire bits carry header + key + 24 payload bits;
        // multicast spikes (the only mid-run traffic) fit entirely, so
        // bits 56.. are free for the hop count.
        fn packet_bits(f: &spinn_noc::fabric::InFlight) -> u64 {
            (f.packet.encode() as u64 & 0x00FF_FFFF_FFFF_FFFF) | ((f.hops as u64) << 56)
        }
        match ev {
            MachineEvent::Noc(NocEvent::Arrive { node, port, flight }) => {
                pack(1, ((*node as u64) << 8) | *port as u64, packet_bits(flight))
            }
            MachineEvent::Noc(NocEvent::LinkFree { node, dir }) => {
                pack(2, ((*node as u64) << 8) | *dir as u64, 0)
            }
            MachineEvent::Noc(NocEvent::Retry {
                node,
                dir,
                phase,
                left,
                flight,
            }) => pack(
                3,
                ((*node as u64) << 24)
                    | ((*dir as u64) << 16)
                    | ((*phase as u64) << 8)
                    | *left as u64,
                packet_bits(flight),
            ),
            // Link failures and repairs sort before all same-instant
            // traffic (tag 0) so a packet routed at exactly the
            // transition time sees the new link state in serial and
            // sharded runs alike. A repair at the same instant as a
            // failure of the same cable ranks after it (b = 1): the link
            // ends the nanosecond repaired, deterministically.
            MachineEvent::FailLink { chip, dir } => pack(0, ((*chip as u64) << 8) | *dir as u64, 0),
            MachineEvent::RepairLink { chip, dir } => {
                pack(0, ((*chip as u64) << 8) | *dir as u64, 1)
            }
            MachineEvent::Timer => pack(4, 0, 0),
            MachineEvent::CoreDone { chip, core } => {
                pack(5, ((*chip as u64) << 8) | *core as u64, 0)
            }
            MachineEvent::DmaDone { chip, core, key } => {
                pack(6, ((*chip as u64) << 8) | *core as u64, *key as u64)
            }
            MachineEvent::InjectSpike { chip, key } => pack(7, *chip as u64, *key as u64),
            MachineEvent::ReissueSpike {
                chip,
                key,
                timestamp,
            } => pack(8, ((*chip as u64) << 8) | *timestamp as u64, *key as u64),
        }
    }

    fn handle(&mut self, ctx: &mut Context<MachineEvent>, ev: MachineEvent) {
        let now = ctx.now().ticks();
        self.obs.counters().add(Counter::Events, 1);
        if let Some(chip) = event_chip(&ev) {
            // Measured per-chip load, seeding the next segment's
            // event-weighted partition.
            self.chip_events[chip as usize] += 1;
        }
        match ev {
            MachineEvent::Noc(ev) => {
                if let NocEvent::Arrive { node, port, .. } = &ev {
                    self.link_flux[*node as usize * 6 + *port as usize] += 1;
                }
                let tok = self.obs.phases().start();
                self.fabric
                    .handle(now, ev, &mut CtxScheduler::new(ctx, MachineEvent::Noc));
                self.obs.phases().record(Phase::RouterLookup, tok);
            }
            MachineEvent::Timer => self.on_timer(ctx),
            MachineEvent::FailLink { chip, dir } => {
                let coord = self.fabric.torus().coord_of(chip as usize);
                self.fabric.fail_link(coord, dir);
                self.obs
                    .trace(now, TraceKind::Fault, chip, dir.index() as u32);
            }
            MachineEvent::RepairLink { chip, dir } => {
                let coord = self.fabric.torus().coord_of(chip as usize);
                self.fabric.repair_link(coord, dir);
                self.obs
                    .trace(now, TraceKind::Repair, chip, dir.index() as u32);
            }
            MachineEvent::CoreDone { chip, core } => self.on_core_done(chip, core, ctx),
            MachineEvent::DmaDone { chip, core, key } => {
                let idx = chip as usize * self.cfg.cores_per_chip as usize + core as usize;
                if let Some(c) = self.cores[idx].as_mut() {
                    // The row existed when the DMA was scheduled and
                    // rows are never removed mid-run, so the lookup
                    // re-resolves to the same row.
                    if let Some(row) = c.matrix.lookup(key) {
                        c.q_rows.push_back(row);
                        self.dispatch(chip, core, ctx);
                    }
                }
            }
            MachineEvent::InjectSpike { chip, key } => {
                let coord = self.fabric.torus().coord_of(chip as usize);
                self.fabric.inject(
                    now,
                    coord,
                    Packet::multicast(key),
                    &mut CtxScheduler::new(ctx, MachineEvent::Noc),
                );
            }
            MachineEvent::ReissueSpike {
                chip,
                key,
                timestamp,
            } => {
                let coord = self.fabric.torus().coord_of(chip as usize);
                let mut packet = Packet::multicast(key);
                packet.timestamp = timestamp;
                self.reissued_packets += 1;
                self.fabric.inject(
                    now,
                    coord,
                    packet,
                    &mut CtxScheduler::new(ctx, MachineEvent::Noc),
                );
            }
        }
        self.drain_deliveries(now, ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MachineConfig;
    use spinn_neuron::izhikevich::{IzhikevichNeuron, IzhikevichParams};
    use spinn_neuron::synapse::SynapticWord;
    use spinn_noc::direction::Direction;
    use spinn_noc::table::{McTableEntry, RouteSet};

    fn rs_neurons(n: usize) -> Vec<AnyNeuron> {
        (0..n)
            .map(|_| IzhikevichNeuron::new(IzhikevichParams::regular_spiking()).into())
            .collect()
    }

    /// Two chips: a driven source population on (0,0) core 1 projecting
    /// to a quiet target population on (1,0) core 1.
    fn two_chip_machine(weight_raw: i16, delay_ms: u8) -> NeuralMachine {
        let mut m = NeuralMachine::new(MachineConfig::new(4, 4));
        let src = NodeCoord::new(0, 0);
        let dst = NodeCoord::new(1, 0);
        m.load_core(src, 1, rs_neurons(10), vec![12.0; 10], 0x1000)
            .unwrap();
        m.load_core(dst, 1, rs_neurons(10), vec![0.0; 10], 0x2000)
            .unwrap();
        // Route source keys east then into the target core.
        m.router_mut(src)
            .table
            .insert(McTableEntry {
                key: 0x1000,
                mask: 0xFFFF_F000,
                route: RouteSet::EMPTY.with_link(Direction::East),
            })
            .unwrap();
        m.router_mut(dst)
            .table
            .insert(McTableEntry {
                key: 0x1000,
                mask: 0xFFFF_F000,
                route: RouteSet::EMPTY.with_core(1),
            })
            .unwrap();
        // All-to-all rows: every source neuron excites every target.
        for i in 0..10u32 {
            let row: SynapticRow = (0..10)
                .map(|t| SynapticWord::new(weight_raw, delay_ms, t as u16))
                .collect();
            m.set_row(dst, 1, 0x1000 + i, row);
        }
        m
    }

    #[test]
    fn driven_population_spikes_and_propagates() {
        let m = two_chip_machine(1200, 1).run(200);
        let src_spikes = m
            .spikes()
            .iter()
            .filter(|s| s.key & 0xF000 == 0x1000)
            .count();
        let dst_spikes = m
            .spikes()
            .iter()
            .filter(|s| s.key & 0xF000 == 0x2000)
            .count();
        assert!(src_spikes > 50, "driven sources must fire: {src_spikes}");
        assert!(
            dst_spikes > 10,
            "targets must be driven to fire: {dst_spikes}"
        );
        assert_eq!(m.row_misses(), 0);
        assert_eq!(m.realtime_violations(), 0);
    }

    #[test]
    fn spike_latency_well_within_one_ms() {
        // §5.3: "The communications fabric is designed to deliver mc
        // packets in significantly under 1 ms, whatever the distance."
        let m = two_chip_machine(800, 1).run(100);
        assert!(m.spike_latency().count() > 0);
        let worst = m.spike_latency().max();
        assert!(
            worst < MS / 10,
            "worst fabric latency {worst} ns not well within 1 ms"
        );
    }

    #[test]
    fn synaptic_delays_shift_response() {
        // With a 10 ms synaptic delay the target's first spike happens
        // later than with 1 ms.
        let first_dst_spike = |delay: u8| {
            let m = two_chip_machine(1500, delay).run(150);
            m.spikes()
                .iter()
                .find(|s| s.key & 0xF000 == 0x2000)
                .map(|s| s.time_ms)
                .expect("target fired")
        };
        let early = first_dst_spike(1);
        let late = first_dst_spike(10);
        assert!(
            late >= early + 5,
            "10 ms delays should shift the response: {early} vs {late}"
        );
    }

    #[test]
    fn no_input_no_spikes_and_cores_sleep() {
        let mut m = NeuralMachine::new(MachineConfig::new(2, 2));
        m.load_core(NodeCoord::new(0, 0), 1, rs_neurons(50), vec![0.0; 50], 0)
            .unwrap();
        let m = m.run(100);
        assert!(m.spikes().is_empty());
        // The core only runs its timer handler: it must sleep most of
        // the time (energy frugality, §3.3).
        let meter = m.meter();
        assert!(
            meter.core_sleep_ns > 9 * meter.core_active_ns,
            "active {} ns vs sleep {} ns",
            meter.core_active_ns,
            meter.core_sleep_ns
        );
    }

    #[test]
    fn external_stimulus_reaches_target() {
        let mut m = NeuralMachine::new(MachineConfig::new(4, 4));
        let dst = NodeCoord::new(2, 2);
        m.load_core(dst, 1, rs_neurons(5), vec![0.0; 5], 0x9000)
            .unwrap();
        let row: SynapticRow = (0..5)
            .map(|t| SynapticWord::new(2000, 1, t as u16))
            .collect();
        m.set_row(dst, 1, 0x42, row);
        // Route key 0x42 from (0,0) to (2,2): inject at the destination's
        // own chip for simplicity of the table.
        m.router_mut(dst)
            .table
            .insert(McTableEntry {
                key: 0x42,
                mask: u32::MAX,
                route: RouteSet::EMPTY.with_core(1),
            })
            .unwrap();
        for t in 1..50 {
            m.queue_stimulus(t * MS + 500, dst, 0x42);
        }
        let m = m.run(100);
        assert!(!m.spikes().is_empty(), "stimulated population must fire");
    }

    #[test]
    fn dtcm_overflow_rejected() {
        let mut m = NeuralMachine::new(MachineConfig::new(2, 2));
        let err = m
            .load_core(
                NodeCoord::new(0, 0),
                1,
                rs_neurons(2000),
                vec![0.0; 2000],
                0,
            )
            .unwrap_err();
        assert!(err.required > err.available);
        assert!(err.to_string().contains("DTCM"));
    }

    #[test]
    #[should_panic(expected = "not an application core")]
    fn monitor_core_rejected() {
        let mut m = NeuralMachine::new(MachineConfig::new(2, 2));
        let _ = m.load_core(NodeCoord::new(0, 0), 0, rs_neurons(1), vec![0.0], 0);
    }

    #[test]
    fn eviction_and_migration_preserve_function() {
        // Monitor-style functional migration: move a loaded core to a
        // different chip, fix the routing tables, and the target still
        // fires.
        let mut m = two_chip_machine(1200, 1);
        let dst_old = NodeCoord::new(1, 0);
        let dst_new = NodeCoord::new(0, 1);
        let payload = m.evict_core(dst_old, 1).expect("core was loaded");
        m.install_core(dst_new, 1, payload).unwrap();
        // Re-point the routes: source now sends north.
        let src = NodeCoord::new(0, 0);
        *m.router_mut(src) = spinn_noc::router::Router::new(Default::default());
        m.router_mut(src)
            .table
            .insert(McTableEntry {
                key: 0x1000,
                mask: 0xFFFF_F000,
                route: RouteSet::EMPTY.with_link(Direction::North),
            })
            .unwrap();
        m.router_mut(dst_new)
            .table
            .insert(McTableEntry {
                key: 0x1000,
                mask: 0xFFFF_F000,
                route: RouteSet::EMPTY.with_core(1),
            })
            .unwrap();
        let m = m.run(200);
        let dst_spikes = m
            .spikes()
            .iter()
            .filter(|s| s.key & 0xF000 == 0x2000)
            .count();
        assert!(dst_spikes > 10, "migrated core must keep functioning");
    }

    #[test]
    fn determinism() {
        let run = || {
            let m = two_chip_machine(1000, 2).run(100);
            m.spikes().to_vec()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn segmented_run_is_bit_exact() {
        // run(100) == run_segment(0..37) + run_segment(37..100), with
        // in-flight packets and handler completions carried across the
        // cut in the pending list.
        let whole = two_chip_machine(1200, 3).run(100);
        let (m, pending) = two_chip_machine(1200, 3).run_segment(Vec::new(), 0, 37, 1);
        let (m, _) = m.run_segment(pending, 37, 63, 1);
        assert_eq!(whole.spikes(), m.spikes());
        assert_eq!(
            whole.meter().instructions,
            m.meter().instructions,
            "energy accounting must survive the cut"
        );
        assert_eq!(whole.spike_latency().count(), m.spike_latency().count());
    }

    #[test]
    fn segmented_run_is_bit_exact_across_thread_counts() {
        let whole = two_chip_machine(1200, 1).run(80);
        // Cut at 29 ms; first segment sharded, second serial.
        let (m, pending) = two_chip_machine(1200, 1).run_segment(Vec::new(), 0, 29, 4);
        let (m, _) = m.run_segment(pending, 29, 51, 2);
        assert_eq!(whole.spikes(), m.spikes());
    }

    #[test]
    fn snapshot_restores_bit_exactly_onto_a_fresh_build() {
        let whole = two_chip_machine(1200, 2).run(90);
        let (m, pending) = two_chip_machine(1200, 2).run_segment(Vec::new(), 0, 40, 1);
        let bytes = m.snapshot(&pending);
        // Restore onto a freshly built (identical) machine and finish.
        let mut fresh = two_chip_machine(1200, 2);
        let restored = fresh.install_snapshot(&bytes).expect("snapshot installs");
        assert_eq!(restored.elapsed_ms, 40);
        let (done, _) = fresh.run_segment(restored.pending, 40, 50, 1);
        assert_eq!(whole.spikes(), done.spikes());
        assert_eq!(whole.meter().sdram_bytes, done.meter().sdram_bytes);
    }

    #[test]
    fn snapshot_with_stdp_carries_weight_deltas() {
        let run_with_stdp = || {
            let mut m = two_chip_machine(1500, 1);
            m.enable_stdp(StdpParams::default());
            m
        };
        let whole = run_with_stdp().run(200);
        let (m, pending) = run_with_stdp().run_segment(Vec::new(), 0, 80, 1);
        assert!(m.weight_writebacks() > 0, "plasticity must have fired");
        let bytes = m.snapshot(&pending);
        let mut fresh = run_with_stdp();
        let restored = fresh.install_snapshot(&bytes).unwrap();
        let (done, _) = fresh.run_segment(restored.pending, 80, 120, 1);
        assert_eq!(whole.spikes(), done.spikes());
        // The final weights match too, not just the raster.
        let at = NodeCoord::new(1, 0);
        for target in 0..10u16 {
            assert_eq!(
                whole.weight_of(at, 1, 0x1000, target),
                done.weight_of(at, 1, 0x1000, target)
            );
        }
        assert_eq!(whole.weight_writebacks(), done.weight_writebacks());
    }

    #[test]
    fn snapshot_rejects_out_of_range_event_ids() {
        // A crafted/corrupt snapshot naming a chip the machine does not
        // have must fail at install time, not panic mid-run later.
        let (m, mut pending) = two_chip_machine(1000, 1).run_segment(Vec::new(), 0, 10, 1);
        pending.push(PendingEvent {
            at_ns: 999 * MS,
            event: MachineEvent::InjectSpike { chip: 9999, key: 1 },
        });
        let bytes = m.snapshot(&pending);
        let mut fresh = two_chip_machine(1000, 1);
        assert!(matches!(
            fresh.install_snapshot(&bytes),
            Err(crate::snapshot::SnapshotError::Wire(_))
        ));
    }

    #[test]
    fn snapshot_rejects_mismatched_machines() {
        let (m, pending) = two_chip_machine(1000, 1).run_segment(Vec::new(), 0, 10, 1);
        let bytes = m.snapshot(&pending);
        // Different mesh size.
        let mut other = NeuralMachine::new(MachineConfig::new(2, 2));
        assert!(matches!(
            other.install_snapshot(&bytes),
            Err(crate::snapshot::SnapshotError::Mismatch(_))
        ));
        // Same config, different cores loaded.
        let mut empty = NeuralMachine::new(MachineConfig::new(4, 4));
        assert!(matches!(
            empty.install_snapshot(&bytes),
            Err(crate::snapshot::SnapshotError::Mismatch(_))
        ));
        // Truncated bytes.
        let mut same = two_chip_machine(1000, 1);
        assert!(matches!(
            same.install_snapshot(&bytes[..bytes.len() / 2]),
            Err(crate::snapshot::SnapshotError::Wire(_))
        ));
    }

    #[test]
    fn stdp_potentiates_causal_pathway_and_writes_back() {
        // Driven source reliably precedes target firing (pre -> post):
        // with STDP on, weights should grow toward the bound and rows be
        // written back.
        let mut m = two_chip_machine(1500, 1);
        m.enable_stdp(StdpParams::default());
        let before = m
            .weight_of(NodeCoord::new(1, 0), 1, 0x1000, 0)
            .expect("synapse exists");
        let m = m.run(400);
        let after = m
            .weight_of(NodeCoord::new(1, 0), 1, 0x1000, 0)
            .expect("synapse exists");
        assert!(m.weight_writebacks() > 0, "modified rows must write back");
        assert!(m.meter().sdram_bytes > 0);
        assert_ne!(before, after, "plastic weights must change");
    }

    #[test]
    fn stdp_depresses_uncorrelated_input() {
        // Target silent (no post spikes after the start): every pre
        // arrival only sees stale post history -> depression dominates.
        let mut m = two_chip_machine(200, 1); // weak: target rarely fires
        m.enable_stdp(StdpParams {
            a_minus: 20.0,
            ..Default::default()
        });
        let before = m.weight_of(NodeCoord::new(1, 0), 1, 0x1000, 3).unwrap();
        let m = m.run(300);
        let after = m.weight_of(NodeCoord::new(1, 0), 1, 0x1000, 3).unwrap();
        assert!(
            after <= before,
            "uncorrelated input must not potentiate: {before} -> {after}"
        );
    }

    #[test]
    fn without_stdp_weights_are_immutable() {
        let m = two_chip_machine(1500, 1);
        let before = m.weight_of(NodeCoord::new(1, 0), 1, 0x1000, 0).unwrap();
        let m = m.run(300);
        let after = m.weight_of(NodeCoord::new(1, 0), 1, 0x1000, 0).unwrap();
        assert_eq!(before, after);
        assert_eq!(m.weight_writebacks(), 0);
    }

    /// A congested two-chip stream whose East link dies mid-run: cap-1
    /// queues and short waits make the burst drop packets, and from
    /// 50 ms the dead link forces emergency detours (second legs that
    /// cross shard boundaries once sharded). Shared by the monitor
    /// re-issue and shard-merge regression tests.
    fn congested_faulted_machine() -> NeuralMachine {
        let mut cfg = MachineConfig::new(4, 4);
        cfg.fabric.out_queue_cap = 1;
        cfg.fabric.router.wait1_ns = 100;
        cfg.fabric.router.wait2_ns = 100;
        cfg.force_shards = true;
        let mut m = NeuralMachine::new(cfg);
        let src = NodeCoord::new(0, 0);
        let dst = NodeCoord::new(1, 0);
        m.load_core(src, 1, rs_neurons(80), vec![14.0; 80], 0x1000)
            .unwrap();
        m.load_core(dst, 1, rs_neurons(10), vec![0.0; 10], 0x2000)
            .unwrap();
        m.router_mut(src)
            .table
            .insert(McTableEntry {
                key: 0x1000,
                mask: 0xFFFF_F000,
                route: RouteSet::EMPTY.with_link(Direction::East),
            })
            .unwrap();
        m.router_mut(dst)
            .table
            .insert(McTableEntry {
                key: 0x1000,
                mask: 0xFFFF_F000,
                route: RouteSet::EMPTY.with_core(1),
            })
            .unwrap();
        for i in 0..80u32 {
            let row: SynapticRow = (0..10)
                .map(|t| SynapticWord::new(100, 1, t as u16))
                .collect();
            m.set_row(dst, 1, 0x1000 + i, row);
        }
        m.queue_fail_link(50 * MS, src, Direction::East);
        m
    }

    #[test]
    fn monitor_reissues_dropped_spikes() {
        // Emergency routing stays enabled and composes with the mid-run
        // East-link failure: the congested burst drops packets, the
        // dead link forces emergency detours, and the monitor re-issues
        // what was dropped — with bit-identical spikes at every thread
        // count even though the detour legs cross shard boundaries.
        let m = congested_faulted_machine()
            .run_segment(Vec::new(), 0, 100, 1)
            .0;
        let stats = m.router_stats();
        assert!(stats.dropped > 0, "setup should produce drops (got none)");
        assert!(
            m.reissued_packets() > 0,
            "monitor must re-issue dropped spikes"
        );
        assert!(
            stats.emergency_reroutes > 0,
            "the dead East link must invoke emergency routing"
        );
        assert!(
            stats.emergency_second_legs > 0,
            "emergency detours must complete their second leg"
        );
        for threads in [4, 16] {
            let p = congested_faulted_machine()
                .run_segment(Vec::new(), 0, 100, threads)
                .0;
            assert_eq!(
                p.spikes(),
                m.spikes(),
                "{threads}-shard spikes must match serial"
            );
        }
    }

    #[test]
    fn parallel_merge_preserves_router_stats() {
        // Regression guard for the shard merge: `adopt_owned` must
        // count every chip's router exactly once, so a multi-shard
        // report's emergency/drop counters equal the serial run's.
        let serial = congested_faulted_machine()
            .run_segment(Vec::new(), 0, 100, 1)
            .0
            .router_stats();
        assert!(serial.emergency_reroutes > 0, "no reroutes to undercount");
        for threads in [2, 4, 16] {
            let sharded = congested_faulted_machine()
                .run_segment(Vec::new(), 0, 100, threads)
                .0
                .router_stats();
            assert_eq!(
                sharded, serial,
                "{threads}-shard RouterStats diverge from serial"
            );
        }
    }

    #[test]
    fn queued_repair_restores_delivery() {
        // Fail the only route at 30 ms; with emergency routing off the
        // target goes silent, the monitor keeps re-issuing the dropped
        // spikes, and a RepairLink at 90 ms lets the backlog and the
        // live stream through again — unlike the unrepaired control,
        // and bit-exactly at every thread count.
        fn run(repair_at: Option<u32>, threads: usize) -> NeuralMachine {
            let mut cfg = MachineConfig::new(4, 4);
            cfg.fabric.router.emergency_enabled = false;
            cfg.force_shards = true;
            let mut m = NeuralMachine::new(cfg);
            let src = NodeCoord::new(0, 0);
            let dst = NodeCoord::new(1, 0);
            m.load_core(src, 1, rs_neurons(10), vec![12.0; 10], 0x1000)
                .unwrap();
            m.load_core(dst, 1, rs_neurons(10), vec![0.0; 10], 0x2000)
                .unwrap();
            m.router_mut(src)
                .table
                .insert(McTableEntry {
                    key: 0x1000,
                    mask: 0xFFFF_F000,
                    route: RouteSet::EMPTY.with_link(Direction::East),
                })
                .unwrap();
            m.router_mut(dst)
                .table
                .insert(McTableEntry {
                    key: 0x1000,
                    mask: 0xFFFF_F000,
                    route: RouteSet::EMPTY.with_core(1),
                })
                .unwrap();
            for i in 0..10u32 {
                let row: SynapticRow = (0..10)
                    .map(|t| SynapticWord::new(1200, 1, t as u16))
                    .collect();
                m.set_row(dst, 1, 0x1000 + i, row);
            }
            m.queue_fail_link(30 * MS, src, Direction::East);
            if let Some(at) = repair_at {
                m.queue_repair_link(at as u64 * MS, src, Direction::East);
            }
            m.run_segment(Vec::new(), 0, 150, threads).0
        }
        let dst_spikes = |m: &NeuralMachine| {
            m.spikes()
                .iter()
                .filter(|s| s.key & 0xF000 == 0x2000)
                .count()
        };
        let control = run(None, 1);
        let repaired = run(Some(90), 1);
        assert!(
            dst_spikes(&repaired) > dst_spikes(&control),
            "repair must recover deliveries ({} vs {})",
            dst_spikes(&repaired),
            dst_spikes(&control)
        );
        assert!(
            repaired
                .spikes()
                .iter()
                .any(|s| s.key & 0xF000 == 0x2000 && s.time_ms >= 95),
            "target must fire again after the repair lands"
        );
        assert!(
            control
                .spikes()
                .iter()
                .all(|s| s.key & 0xF000 != 0x2000 || s.time_ms < 40),
            "unrepaired control must stay silent past the failure"
        );
        for threads in [4, 16] {
            let p = run(Some(90), threads);
            assert_eq!(
                p.spikes(),
                repaired.spikes(),
                "{threads}-shard repair run must match serial"
            );
        }
    }

    #[test]
    fn install_routing_plan_loads_tables_and_reports_overflow() {
        use spinn_map::graph::{Connector, NetworkGraph, NeuronKind, Synapses};
        use spinn_map::place::{Placement, Placer};
        use spinn_map::route::RoutingPlan;
        use spinn_neuron::izhikevich::IzhikevichParams;

        let mut net = NetworkGraph::new();
        let kind = NeuronKind::Izhikevich(IzhikevichParams::regular_spiking());
        let a = net.population("a", 40, kind, 0.0);
        let b = net.population("b", 40, kind, 0.0);
        net.project(a, b, Connector::OneToOne, Synapses::constant(10, 1), 0);
        let placement = Placement::compute(&net, 4, 4, 20, 64, Placer::Random { seed: 3 }).unwrap();
        let plan = RoutingPlan::build(&net, &placement, 4, 4).minimized();

        let mut m = NeuralMachine::new(MachineConfig::new(4, 4));
        let installed = m.install_routing_plan(&plan).unwrap();
        assert_eq!(installed, plan.total_entries());
        let stats = m.router_stats();
        assert_eq!(
            stats.table_peak_entries,
            plan.stats().max_entries_per_chip as u64
        );
        assert_eq!(stats.table_capacity, 1024);

        // A 1-entry CAM must overflow through the fallible path.
        let mut cfg = MachineConfig::new(4, 4);
        cfg.fabric.router.table_capacity = 0;
        let mut tiny = NeuralMachine::new(cfg);
        let err = tiny.install_routing_plan(&plan).unwrap_err();
        assert_eq!(err.capacity, 0);
    }

    #[test]
    fn energy_meter_populated() {
        let m = two_chip_machine(1000, 1).run(100);
        let meter = m.meter();
        assert!(meter.instructions > 0);
        assert!(meter.core_active_ns > 0);
        assert!(meter.sdram_bytes > 0);
        assert!(meter.packet_hops > 0);
        let joules = meter.total_joules(&m.config().energy);
        assert!(joules > 0.0);
        let watts = meter.mean_watts(&m.config().energy, m.duration_ns());
        // 16 chips at ~120 mW overhead: a couple of watts, far from a
        // PC's hundreds.
        assert!(watts < 10.0, "{watts} W");
    }
}
