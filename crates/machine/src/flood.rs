//! Application loading by flood-fill (§5.2, \[15\]).
//!
//! "The flood-fill mechanism has been shown to give load times almost
//! independent of the size of the machine, with trade-offs between load
//! time and the degree of fault-tolerance, which can be controlled by the
//! number of times a node receives each component of the application."
//!
//! The host streams the application image block-by-block into node (0,0);
//! every chip forwards each block once to all six neighbours, and accepts
//! a block after receiving it `redundancy_k` times (more receipts = more
//! confidence under corrupting links, but a longer wait).

use spinn_noc::direction::ALL_DIRECTIONS;
use spinn_noc::fabric::{CtxScheduler, Fabric, FabricConfig, NocEvent};
use spinn_noc::packet::{Packet, PacketKind};
use spinn_sim::{Context, Engine, Model, SimTime};

/// Flood-fill configuration.
#[derive(Copy, Clone, Debug)]
pub struct FloodConfig {
    /// Mesh width, chips.
    pub width: u32,
    /// Mesh height, chips.
    pub height: u32,
    /// Number of application blocks to load.
    pub blocks: u32,
    /// Interval between host block injections, ns (Ethernet-side rate).
    pub block_interval_ns: u64,
    /// Copies of each block a chip must receive before accepting it
    /// (the fault-tolerance/load-time trade-off knob).
    pub redundancy_k: u8,
}

impl FloodConfig {
    /// Defaults: 32 blocks at 10 µs intervals, accept on first copy.
    pub fn new(width: u32, height: u32) -> Self {
        FloodConfig {
            width,
            height,
            blocks: 32,
            block_interval_ns: 10_000,
            redundancy_k: 1,
        }
    }
}

/// Events of the flood-fill simulation.
#[derive(Copy, Clone, Debug)]
pub enum FloodEvent {
    /// Fabric internals.
    Noc(NocEvent),
    /// The host injects one block into node (0,0).
    HostBlock {
        /// Block id.
        id: u32,
    },
}

/// Result of a flood-fill load.
#[derive(Clone, Debug)]
pub struct FloodOutcome {
    /// Time at which every chip had accepted every block, ns.
    pub load_complete_ns: Option<u64>,
    /// Total nn packets delivered during the load.
    pub nn_packets: u64,
    /// Copies of each block received, averaged over chips and blocks.
    pub mean_copies: f64,
}

/// The flood-fill loading simulation.
///
/// # Example
///
/// ```
/// use spinn_machine::flood::{FloodConfig, FloodSim};
///
/// let outcome = FloodSim::run(FloodConfig::new(4, 4));
/// assert!(outcome.load_complete_ns.is_some());
/// ```
#[derive(Debug)]
pub struct FloodSim {
    cfg: FloodConfig,
    /// The communications fabric (exposed for fault injection: §5.2's
    /// trade-off is precisely about loading through a damaged machine).
    pub fabric: Fabric,
    /// `copies[chip][block]`: receipts so far.
    copies: Vec<Vec<u8>>,
    /// `forwarded[chip][block]`.
    forwarded: Vec<Vec<bool>>,
    /// Accepted blocks per chip.
    accepted: Vec<u32>,
    chips_complete: usize,
    load_complete_ns: Option<u64>,
}

impl FloodSim {
    /// Builds the simulation.
    pub fn new(cfg: FloodConfig) -> Self {
        let n = (cfg.width * cfg.height) as usize;
        FloodSim {
            fabric: Fabric::new(FabricConfig::new(cfg.width, cfg.height)),
            copies: vec![vec![0; cfg.blocks as usize]; n],
            forwarded: vec![vec![false; cfg.blocks as usize]; n],
            accepted: vec![0; n],
            chips_complete: 0,
            load_complete_ns: None,
            cfg,
        }
    }

    /// Creates an engine with the host injection schedule queued.
    pub fn engine(cfg: FloodConfig) -> Engine<FloodSim> {
        let sim = FloodSim::new(cfg);
        let mut engine = Engine::new(sim);
        for id in 0..cfg.blocks {
            engine.schedule_at(
                SimTime::new(id as u64 * cfg.block_interval_ns),
                FloodEvent::HostBlock { id },
            );
        }
        engine
    }

    /// Runs a complete load and summarizes it.
    pub fn run(cfg: FloodConfig) -> FloodOutcome {
        let mut engine = FloodSim::engine(cfg);
        engine.run_to_completion(Some(500_000_000));
        engine.model().outcome()
    }

    /// Summarizes the current state.
    pub fn outcome(&self) -> FloodOutcome {
        let total: u64 = self
            .copies
            .iter()
            .flat_map(|c| c.iter())
            .map(|&c| c as u64)
            .sum();
        let cells = (self.copies.len() * self.cfg.blocks as usize).max(1);
        FloodOutcome {
            load_complete_ns: self.load_complete_ns,
            nn_packets: self.fabric.total_stats().nn_delivered,
            mean_copies: total as f64 / cells as f64,
        }
    }

    fn receive_block(&mut self, now: u64, chip: usize, id: u32, ctx: &mut Context<FloodEvent>) {
        let b = id as usize;
        let k = self.cfg.redundancy_k;
        let prev = self.copies[chip][b];
        self.copies[chip][b] = prev.saturating_add(1);
        // Forward once, on first receipt, to all six neighbours.
        if !self.forwarded[chip][b] {
            self.forwarded[chip][b] = true;
            let here = self.fabric.torus().coord_of(chip);
            for d in ALL_DIRECTIONS {
                self.fabric.inject_nn(
                    now,
                    here,
                    d,
                    Packet::nn(id, id),
                    &mut CtxScheduler::new(ctx, FloodEvent::Noc),
                );
            }
        }
        // Accept at the k-th copy.
        if prev + 1 == k {
            self.accepted[chip] += 1;
            if self.accepted[chip] == self.cfg.blocks {
                self.chips_complete += 1;
                if self.chips_complete == self.copies.len() && self.load_complete_ns.is_none() {
                    self.load_complete_ns = Some(now);
                }
            }
        }
    }
}

impl Model for FloodSim {
    type Event = FloodEvent;

    fn handle(&mut self, ctx: &mut Context<FloodEvent>, ev: FloodEvent) {
        let now = ctx.now().ticks();
        match ev {
            FloodEvent::Noc(ev) => {
                self.fabric
                    .handle(now, ev, &mut CtxScheduler::new(ctx, FloodEvent::Noc))
            }
            FloodEvent::HostBlock { id } => {
                // The host's Ethernet delivery counts as `k` receipts at
                // the origin (the host is trusted).
                for _ in 0..self.cfg.redundancy_k {
                    self.receive_block(now, 0, id, ctx);
                }
            }
        }
        let deliveries = self.fabric.take_deliveries();
        for d in deliveries {
            if d.packet.kind == PacketKind::NearestNeighbour {
                let chip = self.fabric.torus().id_of(d.node);
                self.receive_block(now, chip, d.packet.key, ctx);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_chip_receives_every_block() {
        let outcome = FloodSim::run(FloodConfig::new(6, 6));
        assert!(outcome.load_complete_ns.is_some());
        // Every chip forwards every block once on each of 6 links.
        assert_eq!(outcome.nn_packets, 36 * 32 * 6);
    }

    #[test]
    fn load_time_almost_independent_of_machine_size() {
        // The E5 claim: the wavefront pipelines behind the host stream,
        // so quadrupling the machine area adds only the extra diameter.
        let t_small = FloodSim::run(FloodConfig::new(4, 4))
            .load_complete_ns
            .unwrap();
        let t_large = FloodSim::run(FloodConfig::new(12, 12))
            .load_complete_ns
            .unwrap();
        let ratio = t_large as f64 / t_small as f64;
        assert!(
            ratio < 1.5,
            "9x the chips should cost <1.5x the load time, got {ratio:.2}x"
        );
    }

    #[test]
    fn redundancy_increases_copies_and_load_time() {
        let mut cfg = FloodConfig::new(6, 6);
        cfg.redundancy_k = 1;
        let k1 = FloodSim::run(cfg);
        cfg.redundancy_k = 3;
        let k3 = FloodSim::run(cfg);
        assert!(k3.load_complete_ns.unwrap() >= k1.load_complete_ns.unwrap());
        assert!(k3.mean_copies >= k1.mean_copies);
        assert!(k1.load_complete_ns.is_some() && k3.load_complete_ns.is_some());
    }

    #[test]
    fn blocks_scale_load_time_linearly() {
        let mut cfg = FloodConfig::new(4, 4);
        cfg.blocks = 8;
        let t8 = FloodSim::run(cfg).load_complete_ns.unwrap();
        cfg.blocks = 64;
        let t64 = FloodSim::run(cfg).load_complete_ns.unwrap();
        let ratio = t64 as f64 / t8 as f64;
        assert!(
            (4.0..12.0).contains(&ratio),
            "8x blocks should cost ~8x time, got {ratio:.2}x"
        );
    }

    #[test]
    fn mean_copies_reflects_six_neighbour_flood() {
        // Each chip hears each block from each of its 6 neighbours (plus
        // the host at the origin).
        let outcome = FloodSim::run(FloodConfig::new(6, 6));
        assert!(
            (5.5..7.5).contains(&outcome.mean_copies),
            "mean copies {}",
            outcome.mean_copies
        );
    }
}
