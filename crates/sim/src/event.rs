//! The time-ordered event queue.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::queue::Queue;
use crate::time::SimTime;

/// A priority queue of `(time, event)` pairs ordered by
/// `(time, rank, insertion sequence)`.
///
/// The *rank* is an optional content-derived key
/// ([`EventQueue::push_ranked`], [`crate::Model::tie_rank`]): two events
/// at the same instant are ordered by rank first, and only FIFO within
/// equal ranks. Content-derived ranks make the same-instant order a
/// function of *what* the events are rather than of who scheduled them
/// first — which is what lets a sharded run (`spinn-par`) replay a
/// serial run exactly, even though cross-shard events are inserted at
/// barriers rather than at their senders' convenience. Plain
/// [`EventQueue::push`] uses rank 0, i.e. pure FIFO tie-breaking.
///
/// # Example
///
/// ```
/// use spinn_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::new(10), "b");
/// q.push(SimTime::new(5), "a");
/// q.push(SimTime::new(10), "c");
/// assert_eq!(q.pop(), Some((SimTime::new(5), "a")));
/// assert_eq!(q.pop(), Some((SimTime::new(10), "b")));
/// assert_eq!(q.pop(), Some((SimTime::new(10), "c")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
    peak: usize,
}

#[derive(Debug)]
struct Entry<E> {
    time: SimTime,
    rank: u128,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.rank == other.rank && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest
        // (time, rank, seq) pops first.
        (other.time, other.rank, other.seq).cmp(&(self.time, self.rank, self.seq))
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            peak: 0,
        }
    }

    /// Schedules `event` at absolute time `time` (rank 0: FIFO among
    /// unranked same-instant events).
    pub fn push(&mut self, time: SimTime, event: E) {
        self.push_ranked(time, 0, event);
    }

    /// Schedules `event` at `time` with a content-derived tie-break
    /// `rank` (see the type-level docs).
    pub fn push_ranked(&mut self, time: SimTime, rank: u128, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry {
            time,
            rank,
            seq,
            event,
        });
        self.peak = self.peak.max(self.heap.len());
    }

    /// Removes and returns the earliest event, or `None` if empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.time, e.event))
    }

    /// The timestamp of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue holds no pending events.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Occupancy high-water mark (see [`Queue::peak_len`]).
    pub fn peak_len(&self) -> usize {
        self.peak
    }

    /// Removes every pending event and resets the insertion-order
    /// counter, returning the queue to its freshly-constructed state.
    ///
    /// Resetting the counter matters for replayability: a model that
    /// reuses a queue after `clear()` gets the same FIFO tie-break
    /// "seeds" as a fresh run, so the reused run is bit-identical to a
    /// fresh one.
    pub fn clear(&mut self) {
        self.heap.clear();
        self.seq = 0;
        self.peak = 0;
    }

    /// Drains the queue in canonical pop order as `(time, rank, event)`
    /// triples (see [`Queue::drain_ranked`]).
    pub fn drain_ranked(&mut self) -> Vec<(SimTime, u128, E)> {
        let mut out = Vec::with_capacity(self.heap.len());
        while let Some(e) = self.heap.pop() {
            out.push((e.time, e.rank, e.event));
        }
        self.seq = 0;
        self.peak = 0;
        out
    }
}

impl<E> Queue<E> for EventQueue<E> {
    fn push_ranked(&mut self, time: SimTime, rank: u128, event: E) {
        EventQueue::push_ranked(self, time, rank, event);
    }
    fn pop(&mut self) -> Option<(SimTime, E)> {
        EventQueue::pop(self)
    }
    fn peek_time(&self) -> Option<SimTime> {
        EventQueue::peek_time(self)
    }
    fn len(&self) -> usize {
        EventQueue::len(self)
    }
    fn peak_len(&self) -> usize {
        EventQueue::peak_len(self)
    }
    fn clear(&mut self) {
        EventQueue::clear(self);
    }
    fn drain_ranked(&mut self) -> Vec<(SimTime, u128, E)> {
        EventQueue::drain_ranked(self)
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        q.push(SimTime::new(30), 3);
        q.push(SimTime::new(10), 1);
        q.push(SimTime::new(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn fifo_on_ties() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(SimTime::new(7), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::new(5), ());
        q.push(SimTime::new(3), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(SimTime::new(3)));
        q.clear();
        assert!(q.is_empty());
    }

    #[test]
    fn clear_resets_insertion_order_seq() {
        // Regression: `clear()` used to keep the private `seq` counter,
        // so a queue reused after `clear()` replayed same-instant ties
        // with different (though still FIFO-consistent) internal seeds
        // than a fresh queue. The observable contract: a cleared queue
        // behaves exactly like a new one.
        let mut reused = EventQueue::new();
        for i in 0..17 {
            reused.push(SimTime::new(1), i);
        }
        reused.clear();
        assert_eq!(reused.seq, 0, "clear() must reset the seq counter");

        let mut fresh = EventQueue::new();
        // Identical push sequence into both; ranks collide on purpose.
        for i in 0..10 {
            reused.push_ranked(SimTime::new(5), (i % 3) as u128, i);
            fresh.push_ranked(SimTime::new(5), (i % 3) as u128, i);
        }
        loop {
            let (a, b) = (reused.pop(), fresh.pop());
            assert_eq!(a, b, "cleared queue must replay like a fresh one");
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::new(10), "late");
        q.push(SimTime::new(1), "early");
        assert_eq!(q.pop().unwrap().1, "early");
        q.push(SimTime::new(5), "mid");
        assert_eq!(q.pop().unwrap().1, "mid");
        assert_eq!(q.pop().unwrap().1, "late");
    }
}
