//! The queue contract shared by every event-queue implementation.
//!
//! The kernel ships two interchangeable implementations:
//!
//! * [`EventQueue`](crate::EventQueue) — a binary heap. Robust for any
//!   push pattern, `O(log n)` per operation.
//! * [`CalendarQueue`](crate::CalendarQueue) — a time-bucketed calendar
//!   (ring of per-tick buckets plus a sorted overflow tier). `O(1)`
//!   amortized for the machine's characteristic workload, where many
//!   events share a handful of distinct timestamps.
//!
//! # The ordering contract
//!
//! Both implementations MUST produce identical pop sequences for
//! identical push sequences. Events pop in ascending
//! `(time, rank, insertion sequence)` order:
//!
//! 1. **Time** — strictly earlier events pop first.
//! 2. **Rank** — among same-instant events, ascending content-derived
//!    rank ([`crate::Model::tie_rank`]). Ranks make the same-instant
//!    order a function of *what* the events are rather than of who
//!    scheduled them first, which is what lets a sharded run
//!    (`spinn-par`) replay a serial run exactly.
//! 3. **Insertion sequence** — FIFO among same-instant, same-rank
//!    events. Events mapping to the same rank at the same instant must
//!    be *interchangeable* (their handling order must not affect the
//!    model's final state); FIFO merely makes the choice deterministic.
//!
//! # The monotonic-push constraint
//!
//! Callers must never push an event earlier than the time of the most
//! recently popped event. The [`crate::Engine`] enforces this already
//! ("cannot schedule into the past"); direct users of a queue must
//! uphold it themselves. `EventQueue` happens to tolerate violations,
//! `CalendarQueue` panics on them — portable code must not rely on
//! either behaviour.
//!
//! # `clear()` semantics
//!
//! `clear()` returns the queue to its freshly-constructed state,
//! *including* the insertion-sequence counter: a model reusing a queue
//! after `clear()` replays with the same FIFO tie-breaking as a fresh
//! run.

use crate::time::SimTime;

/// A time-ordered event queue (see the [module docs](self) for the
/// ordering contract every implementation must honour).
pub trait Queue<E>: Default {
    /// Schedules `event` at `time` with a content-derived tie-break
    /// `rank`.
    fn push_ranked(&mut self, time: SimTime, rank: u128, event: E);

    /// Schedules `event` at `time` with rank 0 (pure FIFO among
    /// unranked same-instant events).
    fn push(&mut self, time: SimTime, event: E) {
        self.push_ranked(time, 0, event);
    }

    /// Removes and returns the earliest event, or `None` if empty.
    fn pop(&mut self) -> Option<(SimTime, E)>;

    /// The timestamp of the earliest pending event, if any.
    fn peek_time(&self) -> Option<SimTime>;

    /// Number of pending events.
    fn len(&self) -> usize;

    /// High-water mark of [`Queue::len`] — the occupancy gauge the
    /// telemetry layer reads.
    ///
    /// The gauge contract (identical across implementations, locked
    /// down by `tests/props_queue.rs`): the peak rises on every push,
    /// and resets to zero with [`Queue::clear`] and
    /// [`Queue::drain_ranked`] (both return the queue to its
    /// freshly-constructed state). After [`Queue::restore`], the peak
    /// equals the number of restored items — the re-push loop rebuilds
    /// it identically in every implementation.
    fn peak_len(&self) -> usize;

    /// Whether the queue holds no pending events.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Removes every pending event and resets the insertion-sequence
    /// counter (the queue behaves exactly like a fresh one afterwards).
    fn clear(&mut self);

    /// Drains the queue into `(time, rank, event)` triples in canonical
    /// pop order — the checkpoint form of the queue's contents.
    ///
    /// The triples omit the private insertion sequence on purpose: FIFO
    /// only breaks ties between events whose `(time, rank)` collide,
    /// and the ordering contract requires such events to be
    /// interchangeable. Re-inserting the triples in drain order through
    /// [`Queue::restore`] therefore reproduces the exact pop sequence,
    /// and a drained snapshot from one queue implementation restores
    /// into the other (or into a differently-sharded run) without loss.
    fn drain_ranked(&mut self) -> Vec<(SimTime, u128, E)>;

    /// Restores a [`Queue::drain_ranked`] snapshot: clears the queue,
    /// then re-inserts the triples in order with fresh ascending
    /// insertion sequences. After `restore`, the pop sequence equals the
    /// drain order, and events pushed later sort after restored events
    /// with the same `(time, rank)` — exactly as they would have in the
    /// original queue.
    fn restore(&mut self, items: Vec<(SimTime, u128, E)>) {
        self.clear();
        for (time, rank, event) in items {
            self.push_ranked(time, rank, event);
        }
    }
}

/// Which event-queue implementation a simulation should run on.
///
/// Selecting a kind changes wall-clock performance only: the two
/// implementations honour the same ordering contract, so every run is
/// bit-identical across kinds (locked down by the golden-trace
/// conformance suite and `tests/props_queue.rs`).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Hash)]
pub enum QueueKind {
    /// The binary-heap [`EventQueue`](crate::EventQueue).
    Heap,
    /// The time-bucketed [`CalendarQueue`](crate::CalendarQueue)
    /// (default: the machine's workload is dominated by dense
    /// same-timestamp bursts, which the calendar serves in `O(1)`).
    #[default]
    Calendar,
}

impl std::fmt::Display for QueueKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueueKind::Heap => f.write_str("heap"),
            QueueKind::Calendar => f.write_str("calendar"),
        }
    }
}
