//! # spinn-sim — deterministic discrete-event simulation kernel
//!
//! The substrate beneath every level of the SpiNNaker reproduction: the
//! transition-level self-timed link models (`spinn-link`), the packet-level
//! network-on-chip fabric (`spinn-noc`) and the full machine model
//! (`spinn-machine`) all drive their state machines from this kernel.
//!
//! The kernel is intentionally small and strictly deterministic:
//!
//! * [`SimTime`] is an opaque tick counter; each simulation domain decides
//!   what a tick means (picoseconds for circuits, nanoseconds for the
//!   system-level machine).
//! * Events are ordered by `(time, tie rank, insertion sequence)`: a
//!   content-derived rank ([`Model::tie_rank`]) orders same-instant
//!   events by *what* they are, and FIFO breaks the remaining ties — no
//!   hash-map iteration order or thread scheduling can perturb a run.
//!   Two interchangeable queue implementations honour that contract
//!   (see the [`queue`] module for its precise statement): the
//!   binary-heap [`EventQueue`] and the time-bucketed [`CalendarQueue`]
//!   (`O(1)` on workloads where many events share few distinct
//!   timestamps, as the machine's million-events-per-millisecond
//!   regime does). [`QueueKind`] names them for configuration knobs.
//! * [`Engine`] drives a user [`Model`]; models schedule future events
//!   through a [`Context`] handed to every handler. The engine is
//!   generic over the [`Queue`] implementation (defaulting to
//!   [`EventQueue`]), and a run's results are bit-identical whichever
//!   queue drives it.
//! * [`Xoshiro256`] is a self-contained seedable PRNG (xoshiro256**) with
//!   the distributions the experiments need (uniform, Bernoulli,
//!   exponential, normal, Poisson), so identical seeds reproduce identical
//!   experiments bit-for-bit on any platform.
//!
//! # Example
//!
//! A two-event ping/pong model:
//!
//! ```
//! use spinn_sim::{Engine, Model, Context, SimTime};
//!
//! #[derive(Debug)]
//! enum Ev { Ping, Pong }
//!
//! struct PingPong { pings: u32 }
//!
//! impl Model for PingPong {
//!     type Event = Ev;
//!     fn handle(&mut self, ctx: &mut Context<Ev>, ev: Ev) {
//!         match ev {
//!             Ev::Ping => {
//!                 self.pings += 1;
//!                 if self.pings < 3 {
//!                     ctx.schedule_in(10, Ev::Pong);
//!                 }
//!             }
//!             Ev::Pong => ctx.schedule_in(5, Ev::Ping),
//!         }
//!     }
//! }
//!
//! let mut engine = Engine::new(PingPong { pings: 0 });
//! engine.schedule_at(SimTime::ZERO, Ev::Ping);
//! engine.run_to_completion(None);
//! assert_eq!(engine.model().pings, 3);
//! assert_eq!(engine.now(), SimTime::new(30));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod calendar;
mod engine;
mod event;
pub mod queue;
mod rng;
mod stats;
mod time;
pub mod wire;

pub use calendar::CalendarQueue;
pub use engine::{Context, Engine, Model, RunOutcome};
pub use event::EventQueue;
pub use queue::{Queue, QueueKind};
pub use rng::Xoshiro256;
pub use stats::{Histogram, OnlineStats};
pub use time::SimTime;
