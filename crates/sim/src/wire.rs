//! A minimal hand-rolled binary codec for simulation snapshots.
//!
//! Checkpoint/restore (`spinn-machine`'s machine snapshots, the
//! `spinnaker` run sessions) needs a compact, deterministic, offline
//! serialization format. The build environment has no crates.io
//! access, so instead of serde the snapshot code writes through this
//! little-endian [`Enc`]/[`Dec`] pair: fixed-width integers, bit-cast
//! floats (so restored state is *bit*-identical, never rounded) and
//! length-prefixed sequences.
//!
//! # Example
//!
//! ```
//! use spinn_sim::wire::{Dec, Enc};
//!
//! let mut enc = Enc::new();
//! enc.u32(7).f64(0.25).str("hello");
//! let bytes = enc.into_bytes();
//! let mut dec = Dec::new(&bytes);
//! assert_eq!(dec.u32().unwrap(), 7);
//! assert_eq!(dec.f64().unwrap(), 0.25);
//! assert_eq!(dec.str().unwrap(), "hello");
//! assert!(dec.is_empty());
//! ```

use std::fmt;

/// Errors decoding a snapshot byte stream.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The stream ended before the expected value.
    Eof,
    /// A magic/section tag did not match.
    BadMagic,
    /// The format version is newer than this build understands.
    Version(u32),
    /// A structurally invalid value (named for diagnostics).
    Corrupt(&'static str),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Eof => write!(f, "snapshot truncated"),
            WireError::BadMagic => write!(f, "snapshot magic/tag mismatch"),
            WireError::Version(v) => write!(f, "unsupported snapshot version {v}"),
            WireError::Corrupt(what) => write!(f, "corrupt snapshot field: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

/// A little-endian byte-stream encoder. All methods return `&mut Self`
/// so fields chain.
#[derive(Clone, Debug, Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// An empty encoder.
    pub fn new() -> Self {
        Enc::default()
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes one byte.
    pub fn u8(&mut self, v: u8) -> &mut Self {
        self.buf.push(v);
        self
    }

    /// Writes a bool as one byte.
    pub fn bool(&mut self, v: bool) -> &mut Self {
        self.u8(v as u8)
    }

    /// Writes a `u16`.
    pub fn u16(&mut self, v: u16) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Writes a `u32`.
    pub fn u32(&mut self, v: u32) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Writes a `u64`.
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Writes a `u128`.
    pub fn u128(&mut self, v: u128) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Writes an `i16`.
    pub fn i16(&mut self, v: i16) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Writes an `i32`.
    pub fn i32(&mut self, v: i32) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Writes an `f32` bit pattern (restores bit-exactly, incl. NaN).
    pub fn f32(&mut self, v: f32) -> &mut Self {
        self.u32(v.to_bits())
    }

    /// Writes an `f64` bit pattern (restores bit-exactly, incl.
    /// infinities, which the STDP timestamps use as "never").
    pub fn f64(&mut self, v: f64) -> &mut Self {
        self.u64(v.to_bits())
    }

    /// Writes a sequence length (`u64`; lengths are validated against
    /// the remaining bytes on decode).
    pub fn seq(&mut self, len: usize) -> &mut Self {
        self.u64(len as u64)
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) -> &mut Self {
        self.seq(s.len());
        self.buf.extend_from_slice(s.as_bytes());
        self
    }

    /// Writes raw bytes with no length prefix (section magics).
    pub fn raw(&mut self, bytes: &[u8]) -> &mut Self {
        self.buf.extend_from_slice(bytes);
        self
    }
}

/// A little-endian byte-stream decoder over a borrowed buffer.
#[derive(Clone, Debug)]
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    /// A decoder at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Dec { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether the stream is fully consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Eof);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a bool (rejecting values other than 0/1).
    pub fn bool(&mut self) -> Result<bool, WireError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(WireError::Corrupt("bool")),
        }
    }

    /// Reads a `u16`.
    pub fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Reads a `u32`.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a `u64`.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a `u128`.
    pub fn u128(&mut self) -> Result<u128, WireError> {
        Ok(u128::from_le_bytes(self.take(16)?.try_into().unwrap()))
    }

    /// Reads an `i16`.
    pub fn i16(&mut self) -> Result<i16, WireError> {
        Ok(i16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Reads an `i32`.
    pub fn i32(&mut self) -> Result<i32, WireError> {
        Ok(i32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads an `f32` bit pattern.
    pub fn f32(&mut self) -> Result<f32, WireError> {
        Ok(f32::from_bits(self.u32()?))
    }

    /// Reads an `f64` bit pattern.
    pub fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a sequence length, bounding it by the remaining bytes so a
    /// corrupt length cannot trigger a huge allocation (`min_elem_bytes`
    /// is the smallest possible encoding of one element; pass 1 for
    /// variable-size elements).
    pub fn seq(&mut self, min_elem_bytes: usize) -> Result<usize, WireError> {
        let len = self.u64()?;
        let floor = min_elem_bytes.max(1);
        if len as usize > self.remaining() / floor + 1 {
            return Err(WireError::Corrupt("sequence length"));
        }
        Ok(len as usize)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<&'a str, WireError> {
        let len = self.seq(1)?;
        std::str::from_utf8(self.take(len)?).map_err(|_| WireError::Corrupt("utf-8"))
    }

    /// Reads `n` raw bytes and checks them against an expected magic.
    pub fn magic(&mut self, expect: &[u8]) -> Result<(), WireError> {
        if self.take(expect.len())? == expect {
            Ok(())
        } else {
            Err(WireError::BadMagic)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_every_width() {
        let mut e = Enc::new();
        e.u8(0xAB)
            .bool(true)
            .u16(0xBEEF)
            .u32(0xDEAD_BEEF)
            .u64(u64::MAX - 3)
            .u128(u128::MAX / 7)
            .i16(-12345)
            .i32(i32::MIN)
            .f32(-0.0)
            .f64(f64::NEG_INFINITY)
            .str("snapshot");
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        assert_eq!(d.u8().unwrap(), 0xAB);
        assert!(d.bool().unwrap());
        assert_eq!(d.u16().unwrap(), 0xBEEF);
        assert_eq!(d.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(d.u64().unwrap(), u64::MAX - 3);
        assert_eq!(d.u128().unwrap(), u128::MAX / 7);
        assert_eq!(d.i16().unwrap(), -12345);
        assert_eq!(d.i32().unwrap(), i32::MIN);
        assert_eq!(d.f32().unwrap().to_bits(), (-0.0f32).to_bits());
        assert_eq!(d.f64().unwrap(), f64::NEG_INFINITY);
        assert_eq!(d.str().unwrap(), "snapshot");
        assert!(d.is_empty());
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let mut e = Enc::new();
        e.u64(42);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes[..5]);
        assert_eq!(d.u64(), Err(WireError::Eof));
    }

    #[test]
    fn corrupt_lengths_rejected() {
        let mut e = Enc::new();
        e.seq(usize::MAX / 2);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        assert!(matches!(d.seq(4), Err(WireError::Corrupt(_))));
    }

    #[test]
    fn magic_mismatch() {
        let mut e = Enc::new();
        e.raw(b"SPNX");
        let bytes = e.into_bytes();
        assert_eq!(Dec::new(&bytes).magic(b"SPNY"), Err(WireError::BadMagic));
        assert!(Dec::new(&bytes).magic(b"SPNX").is_ok());
    }

    #[test]
    fn bad_bool_rejected() {
        let bytes = [7u8];
        assert!(matches!(
            Dec::new(&bytes).bool(),
            Err(WireError::Corrupt("bool"))
        ));
    }
}
