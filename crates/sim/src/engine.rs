//! The simulation engine: drives a [`Model`] from the event queue.

use spinn_obs::{Phase, PhaseProbe};

use crate::event::EventQueue;
use crate::queue::Queue;
use crate::time::SimTime;

/// A simulation model: owns all mutable state and reacts to events.
///
/// The engine pops the earliest event, advances the clock to its timestamp
/// and calls [`Model::handle`]. Handlers schedule follow-on events through
/// the [`Context`]; they never see the queue directly, which keeps the
/// borrow structure simple (the model may freely mutate itself while
/// scheduling).
pub trait Model {
    /// The event payload type this model reacts to.
    type Event;

    /// Reacts to one event. `ctx.now()` is the event's timestamp.
    fn handle(&mut self, ctx: &mut Context<Self::Event>, event: Self::Event);

    /// Content-derived tie-break rank for same-instant events.
    ///
    /// Events scheduled for the same tick are handled in
    /// `(tie_rank, insertion order)` order. The default (constant 0)
    /// gives pure FIFO, which is deterministic for a single engine.
    /// Models that are also run sharded (`spinn-par`) should derive the
    /// rank from the event's *content* so that the same-instant order is
    /// independent of which shard staged each event — that is what makes
    /// a parallel run replay the serial one bit-exactly. Events mapping
    /// to the same rank at the same instant must be interchangeable
    /// (their handling order must not affect the model's final state).
    fn tie_rank(_event: &Self::Event) -> u128 {
        0
    }

    /// The phase-timing probe the engine should record queue-pop (and,
    /// in drivers like `spinn-par`, barrier-wait) samples into.
    ///
    /// The engine captures this once at construction
    /// ([`Engine::new_in`] / [`Engine::resume_at`]). The default is a
    /// disabled probe: every timing hook reduces to a `None`-check, so
    /// uninstrumented models pay nothing.
    fn phase_probe(&self) -> PhaseProbe {
        PhaseProbe::default()
    }
}

/// Handed to every event handler: the current time plus a staging area for
/// newly scheduled events.
#[derive(Debug)]
pub struct Context<E> {
    now: SimTime,
    staged: Vec<(SimTime, E)>,
    stop: bool,
}

impl<E> Context<E> {
    /// The timestamp of the event being handled.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` to fire `delay` ticks from now.
    #[inline]
    pub fn schedule_in(&mut self, delay: u64, event: E) {
        self.staged.push((self.now + delay, event));
    }

    /// Schedules `event` at the absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past (before the current event's time):
    /// causality violations are always model bugs.
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "cannot schedule into the past: now={} at={}",
            self.now,
            at
        );
        self.staged.push((at, event));
    }

    /// Requests that the engine stop after this handler returns.
    #[inline]
    pub fn stop(&mut self) {
        self.stop = true;
    }
}

/// Why a call to [`Engine::run_until`] / [`Engine::run_to_completion`]
/// returned.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum RunOutcome {
    /// The event queue drained: nothing remains to simulate.
    Exhausted,
    /// A handler called [`Context::stop`].
    Stopped,
    /// The deadline passed; events at later times remain queued.
    DeadlineReached,
    /// The event budget was consumed (runaway-model backstop).
    BudgetExceeded,
}

/// The discrete-event simulation engine, generic over the event-queue
/// implementation.
///
/// The queue type parameter defaults to the binary-heap
/// [`EventQueue`]; pass [`CalendarQueue`](crate::CalendarQueue) for
/// the time-bucketed implementation (`Engine::<M, CalendarQueue<_>>`).
/// Both honour the same ordering contract ([`crate::queue`]), so the
/// choice changes wall-clock performance only — never a result.
///
/// See the [crate-level documentation](crate) for a complete example.
#[derive(Debug)]
pub struct Engine<M: Model, Q: Queue<M::Event> = EventQueue<<M as Model>::Event>> {
    queue: Q,
    model: M,
    now: SimTime,
    processed: u64,
    /// Reusable staging buffer handed to each [`Context`]: amortizes the
    /// per-event allocation of handler-scheduled follow-on events (a
    /// packet-heavy machine run stages one or more events per packet).
    staged: Vec<(SimTime, M::Event)>,
    /// Phase-timing probe captured from [`Model::phase_probe`] at
    /// construction (disabled unless the model enables telemetry).
    probe: PhaseProbe,
}

impl<M: Model> Engine<M> {
    /// Creates an engine at time zero around `model`, on the default
    /// binary-heap [`EventQueue`].
    pub fn new(model: M) -> Self {
        Engine::new_in(model)
    }
}

impl<M: Model, Q: Queue<M::Event>> Engine<M, Q> {
    /// Creates an engine at time zero around `model`, on an explicitly
    /// chosen queue implementation (e.g.
    /// `Engine::<M, CalendarQueue<_>>::new_in(model)`).
    pub fn new_in(model: M) -> Self {
        let probe = model.phase_probe();
        Engine {
            queue: Q::default(),
            model,
            now: SimTime::ZERO,
            processed: 0,
            staged: Vec::new(),
            probe,
        }
    }

    /// Creates an engine whose clock starts at `now` instead of zero —
    /// the resume path of checkpointed runs. The queue starts empty;
    /// feed the drained events back through
    /// [`Engine::restore_events`].
    pub fn resume_at(model: M, now: SimTime) -> Self {
        let mut e = Engine::new_in(model);
        e.now = now;
        e
    }

    /// Drains the pending events as canonical `(time, rank, event)`
    /// triples (see [`crate::Queue::drain_ranked`]). The engine's clock
    /// is unchanged; the queue is left empty.
    pub fn drain_events(&mut self) -> Vec<(SimTime, u128, M::Event)> {
        self.queue.drain_ranked()
    }

    /// Consumes the engine, returning the model together with the
    /// drained pending events — the checkpoint form of a paused run.
    pub fn into_parts(mut self) -> (M, Vec<(SimTime, u128, M::Event)>) {
        let events = self.queue.drain_ranked();
        (self.model, events)
    }

    /// Restores a [`Engine::drain_events`] snapshot into the queue (see
    /// [`crate::Queue::restore`]).
    ///
    /// # Panics
    ///
    /// Panics if any restored event lies before the engine's current
    /// time.
    pub fn restore_events(&mut self, items: Vec<(SimTime, u128, M::Event)>) {
        if let Some((t, _, _)) = items.first() {
            assert!(
                *t >= self.now,
                "cannot restore events into the past: now={} first={}",
                self.now,
                t
            );
        }
        self.queue.restore(items);
    }

    /// Schedules an event at an absolute time (before or during a run).
    pub fn schedule_at(&mut self, at: SimTime, event: M::Event) {
        assert!(
            at >= self.now,
            "cannot schedule into the past: now={} at={}",
            self.now,
            at
        );
        self.queue.push_ranked(at, M::tie_rank(&event), event);
    }

    /// Schedules an event `delay` ticks after the current time.
    pub fn schedule_in(&mut self, delay: u64, event: M::Event) {
        self.queue
            .push_ranked(self.now + delay, M::tie_rank(&event), event);
    }

    /// The current simulation time (timestamp of the last handled event).
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total number of events handled so far.
    #[inline]
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Number of events still pending.
    #[inline]
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Timestamp of the next pending event.
    pub fn next_event_time(&self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    /// Queue-occupancy high-water mark (see
    /// [`crate::Queue::peak_len`]).
    pub fn queue_peak(&self) -> usize {
        self.queue.peak_len()
    }

    /// The phase-timing probe captured at construction (cloneable;
    /// windowed drivers record their barrier waits through a clone).
    pub fn probe(&self) -> &PhaseProbe {
        &self.probe
    }

    /// Shared access to the model.
    #[inline]
    pub fn model(&self) -> &M {
        &self.model
    }

    /// Exclusive access to the model (e.g. to inject faults mid-run).
    #[inline]
    pub fn model_mut(&mut self) -> &mut M {
        &mut self.model
    }

    /// Consumes the engine, returning the model.
    pub fn into_model(self) -> M {
        self.model
    }

    /// Pops one event, advances the clock, runs the handler and flushes
    /// the staged follow-on events. Returns `(time, stop_requested)`.
    #[inline]
    fn dispatch_one(&mut self) -> Option<(SimTime, bool)> {
        let tok = self.probe.start();
        let popped = self.queue.pop();
        self.probe.record(Phase::QueuePop, tok);
        let (time, event) = popped?;
        debug_assert!(time >= self.now, "event queue went back in time");
        self.now = time;
        self.processed += 1;
        let mut ctx = Context {
            now: time,
            staged: std::mem::take(&mut self.staged),
            stop: false,
        };
        self.model.handle(&mut ctx, event);
        let stop = ctx.stop;
        let mut staged = ctx.staged;
        for (at, ev) in staged.drain(..) {
            self.queue.push_ranked(at, M::tie_rank(&ev), ev);
        }
        // Hand the (now empty) buffer back for the next event.
        self.staged = staged;
        Some((time, stop))
    }

    /// Handles exactly one event, returning its timestamp, or `None` if the
    /// queue is empty.
    pub fn step(&mut self) -> Option<SimTime> {
        self.dispatch_one().map(|(time, _)| time)
    }

    /// Runs until the queue drains, a handler stops the run, or the next
    /// event would be after `deadline` (events at exactly `deadline` are
    /// processed).
    pub fn run_until(&mut self, deadline: SimTime) -> RunOutcome {
        loop {
            match self.queue.peek_time() {
                None => return RunOutcome::Exhausted,
                Some(t) if t > deadline => {
                    // Advance the clock to the deadline so successive calls
                    // observe monotonic time.
                    self.now = deadline;
                    return RunOutcome::DeadlineReached;
                }
                Some(_) => {
                    let (_, stop) = self.dispatch_one().expect("peeked");
                    if stop {
                        return RunOutcome::Stopped;
                    }
                }
            }
        }
    }

    /// Runs one conservative window: handles every event strictly before
    /// `horizon`, then advances the clock to `horizon`.
    ///
    /// This is the building block of sharded execution (`spinn-par`): a
    /// shard may safely run all events below the global lower bound plus
    /// the cross-shard lookahead, because no in-flight remote event can
    /// land inside that window. Events at exactly `horizon` stay queued
    /// for the next window. [`Context::stop`] requests end the window
    /// early but are otherwise ignored by windowed drivers.
    pub fn run_before(&mut self, horizon: SimTime) -> RunOutcome {
        loop {
            match self.queue.peek_time() {
                Some(t) if t < horizon => {
                    let (_, stop) = self.dispatch_one().expect("peeked");
                    if stop {
                        return RunOutcome::Stopped;
                    }
                }
                Some(_) => {
                    self.now = self.now.max(horizon);
                    return RunOutcome::DeadlineReached;
                }
                None => {
                    self.now = self.now.max(horizon);
                    return RunOutcome::Exhausted;
                }
            }
        }
    }

    /// Runs until the queue drains or a handler stops the run, with an
    /// optional event budget as a backstop against livelocked models.
    pub fn run_to_completion(&mut self, budget: Option<u64>) -> RunOutcome {
        let mut remaining = budget;
        loop {
            if let Some(r) = remaining.as_mut() {
                if *r == 0 {
                    return RunOutcome::BudgetExceeded;
                }
                *r -= 1;
            }
            let Some((_, stop)) = self.dispatch_one() else {
                return RunOutcome::Exhausted;
            };
            if stop {
                return RunOutcome::Stopped;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calendar::CalendarQueue;

    /// Counts down; schedules itself until it hits zero.
    struct Countdown {
        remaining: u32,
        fired_at: Vec<u64>,
    }

    impl Model for Countdown {
        type Event = ();
        fn handle(&mut self, ctx: &mut Context<()>, _: ()) {
            self.fired_at.push(ctx.now().ticks());
            if self.remaining > 0 {
                self.remaining -= 1;
                ctx.schedule_in(10, ());
            }
        }
    }

    #[test]
    fn run_to_completion_drains() {
        let mut e = Engine::new(Countdown {
            remaining: 3,
            fired_at: vec![],
        });
        e.schedule_at(SimTime::ZERO, ());
        assert_eq!(e.run_to_completion(None), RunOutcome::Exhausted);
        assert_eq!(e.model().fired_at, vec![0, 10, 20, 30]);
        assert_eq!(e.processed(), 4);
    }

    #[test]
    fn run_until_respects_deadline() {
        let mut e = Engine::new(Countdown {
            remaining: 100,
            fired_at: vec![],
        });
        e.schedule_at(SimTime::ZERO, ());
        assert_eq!(e.run_until(SimTime::new(25)), RunOutcome::DeadlineReached);
        assert_eq!(e.model().fired_at, vec![0, 10, 20]);
        assert_eq!(e.now(), SimTime::new(25));
        // Resume: remaining events still fire.
        assert_eq!(e.run_until(SimTime::new(45)), RunOutcome::DeadlineReached);
        assert_eq!(e.model().fired_at, vec![0, 10, 20, 30, 40]);
    }

    #[test]
    fn budget_backstop() {
        let mut e = Engine::new(Countdown {
            remaining: u32::MAX,
            fired_at: vec![],
        });
        e.schedule_at(SimTime::ZERO, ());
        assert_eq!(e.run_to_completion(Some(5)), RunOutcome::BudgetExceeded);
        assert_eq!(e.processed(), 5);
    }

    struct Stopper;
    impl Model for Stopper {
        type Event = u32;
        fn handle(&mut self, ctx: &mut Context<u32>, ev: u32) {
            if ev == 2 {
                ctx.stop();
            }
        }
    }

    #[test]
    fn stop_from_handler() {
        let mut e = Engine::new(Stopper);
        for i in 0..10 {
            e.schedule_at(SimTime::new(i as u64), i);
        }
        assert_eq!(e.run_to_completion(None), RunOutcome::Stopped);
        assert_eq!(e.now(), SimTime::new(2));
        assert_eq!(e.pending(), 7);
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_past_panics() {
        struct Bad;
        impl Model for Bad {
            type Event = ();
            fn handle(&mut self, ctx: &mut Context<()>, _: ()) {
                ctx.schedule_at(SimTime::ZERO, ());
            }
        }
        let mut e = Engine::new(Bad);
        e.schedule_at(SimTime::new(5), ());
        e.run_to_completion(None);
    }

    #[test]
    fn step_single_event() {
        let mut e = Engine::new(Countdown {
            remaining: 1,
            fired_at: vec![],
        });
        e.schedule_at(SimTime::new(3), ());
        assert_eq!(e.step(), Some(SimTime::new(3)));
        assert_eq!(e.step(), Some(SimTime::new(13)));
        assert_eq!(e.step(), None);
    }

    #[test]
    fn into_model_returns_state() {
        let mut e = Engine::new(Countdown {
            remaining: 0,
            fired_at: vec![],
        });
        e.schedule_at(SimTime::ZERO, ());
        e.run_to_completion(None);
        let m = e.into_model();
        assert_eq!(m.fired_at.len(), 1);
    }

    #[test]
    fn calendar_engine_matches_heap_engine() {
        // The same model driven by both queue implementations produces
        // the same trace (incl. timer-style far-future self-scheduling).
        struct Pulse {
            left: u32,
            log: Vec<u64>,
        }
        impl Model for Pulse {
            type Event = u8;
            fn handle(&mut self, ctx: &mut Context<u8>, ev: u8) {
                self.log.push(ctx.now().ticks() * 10 + ev as u64);
                if ev == 0 && self.left > 0 {
                    self.left -= 1;
                    // Same-instant burst + a far-future (overflow) tick.
                    ctx.schedule_in(0, 1);
                    ctx.schedule_in(0, 2);
                    ctx.schedule_in(1_000_000, 0);
                }
            }
            fn tie_rank(ev: &u8) -> u128 {
                *ev as u128
            }
        }
        let run = |use_calendar: bool| {
            let model = Pulse {
                left: 20,
                log: vec![],
            };
            if use_calendar {
                let mut e: Engine<Pulse, CalendarQueue<u8>> = Engine::new_in(model);
                e.schedule_at(SimTime::ZERO, 0);
                e.run_to_completion(None);
                e.into_model().log
            } else {
                let mut e: Engine<Pulse> = Engine::new(model);
                e.schedule_at(SimTime::ZERO, 0);
                e.run_to_completion(None);
                e.into_model().log
            }
        };
        assert_eq!(run(false), run(true));
    }
}
