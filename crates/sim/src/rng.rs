//! Self-contained deterministic pseudo-random number generation.
//!
//! Implements xoshiro256\*\* (Blackman & Vigna) seeded through SplitMix64.
//! A local implementation (rather than an external crate in every
//! simulation crate) keeps cross-platform bit-for-bit determinism an
//! explicit, testable property of the kernel.

/// A seedable xoshiro256\*\* generator with the distributions used by the
/// experiments.
///
/// # Example
///
/// ```
/// use spinn_sim::Xoshiro256;
///
/// let mut a = Xoshiro256::seed_from_u64(42);
/// let mut b = Xoshiro256::seed_from_u64(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
/// let p = a.next_f64();
/// assert!((0.0..1.0).contains(&p));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Xoshiro256 {
    /// Expands a 64-bit seed into the full generator state via SplitMix64.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Xoshiro256 { s }
    }

    /// Derives an independent child generator (for per-trial substreams).
    ///
    /// Uses this generator's next output as the child's seed, so forks are
    /// deterministic functions of the parent state.
    pub fn fork(&mut self) -> Self {
        let seed = self.next_u64();
        Xoshiro256::seed_from_u64(seed)
    }

    /// The raw generator state (checkpointing: a restored generator
    /// continues the same stream bit-for-bit).
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuilds a generator from [`Xoshiro256::state`].
    ///
    /// # Panics
    ///
    /// Panics on the all-zero state, which xoshiro256** cannot leave
    /// (and which `seed_from_u64` can never produce).
    pub fn from_state(s: [u64; 4]) -> Self {
        assert!(
            s.iter().any(|&w| w != 0),
            "xoshiro256** state must be non-zero"
        );
        Xoshiro256 { s }
    }

    /// The next 64 uniformly distributed bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform `f64` in `[0, 1)` (53 random bits).
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform integer in `[0, n)` using Lemire's unbiased method.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn gen_range_u64(&mut self, n: u64) -> u64 {
        assert!(n > 0, "gen_range_u64: empty range");
        let mut x = self.next_u64();
        let mut m = (x as u128) * (n as u128);
        let mut low = m as u64;
        if low < n {
            let threshold = n.wrapping_neg() % n;
            while low < threshold {
                x = self.next_u64();
                m = (x as u128) * (n as u128);
                low = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// A uniform `usize` in `[0, n)`.
    pub fn gen_range_usize(&mut self, n: usize) -> usize {
        self.gen_range_u64(n as u64) as usize
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.next_f64() < p
        }
    }

    /// An exponential variate with the given rate (mean `1/rate`).
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not strictly positive.
    pub fn exp(&mut self, rate: f64) -> f64 {
        assert!(rate > 0.0, "exp: rate must be positive");
        // Avoid ln(0).
        let u = 1.0 - self.next_f64();
        -u.ln() / rate
    }

    /// A standard normal variate (Box–Muller).
    pub fn normal(&mut self) -> f64 {
        let u1 = 1.0 - self.next_f64();
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// A Poisson variate with mean `lambda`.
    ///
    /// Knuth's product method for small means, normal approximation above
    /// 30 (adequate for traffic generation).
    pub fn poisson(&mut self, lambda: f64) -> u64 {
        assert!(lambda >= 0.0, "poisson: lambda must be non-negative");
        if lambda == 0.0 {
            return 0;
        }
        if lambda < 30.0 {
            let l = (-lambda).exp();
            let mut k = 0u64;
            let mut p = 1.0;
            loop {
                p *= self.next_f64();
                if p <= l {
                    return k;
                }
                k += 1;
            }
        } else {
            let x = lambda + lambda.sqrt() * self.normal();
            if x < 0.0 {
                0
            } else {
                x.round() as u64
            }
        }
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.gen_range_usize(i + 1);
            slice.swap(i, j);
        }
    }

    /// Picks a uniformly random element, or `None` for an empty slice.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.gen_range_usize(slice.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = Xoshiro256::seed_from_u64(123);
        let mut b = Xoshiro256::seed_from_u64(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Xoshiro256::seed_from_u64(124);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn known_first_value_is_stable() {
        // Pin the stream so accidental algorithm changes are caught.
        let mut r = Xoshiro256::seed_from_u64(0);
        let first = r.next_u64();
        let mut r2 = Xoshiro256::seed_from_u64(0);
        assert_eq!(first, r2.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Xoshiro256::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x), "{x} out of [0,1)");
        }
    }

    #[test]
    fn range_bounds_respected() {
        let mut r = Xoshiro256::seed_from_u64(9);
        for n in [1u64, 2, 3, 7, 100, 1 << 40] {
            for _ in 0..200 {
                assert!(r.gen_range_u64(n) < n);
            }
        }
    }

    #[test]
    fn range_roughly_uniform() {
        let mut r = Xoshiro256::seed_from_u64(11);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[r.gen_range_usize(10)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn bool_probability() {
        let mut r = Xoshiro256::seed_from_u64(13);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((23_000..27_000).contains(&hits), "{hits}");
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }

    #[test]
    fn exponential_mean() {
        let mut r = Xoshiro256::seed_from_u64(17);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.exp(2.0)).sum();
        let mean = sum / n as f64;
        assert!((0.45..0.55).contains(&mean), "mean {mean}");
    }

    #[test]
    fn normal_moments() {
        let mut r = Xoshiro256::seed_from_u64(19);
        let n = 100_000;
        let xs: Vec<f64> = (0..n).map(|_| r.normal()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((0.95..1.05).contains(&var), "var {var}");
    }

    #[test]
    fn poisson_small_and_large_means() {
        let mut r = Xoshiro256::seed_from_u64(23);
        for lambda in [0.5, 5.0, 50.0] {
            let n = 50_000;
            let sum: u64 = (0..n).map(|_| r.poisson(lambda)).sum();
            let mean = sum as f64 / n as f64;
            assert!(
                (mean - lambda).abs() < lambda.max(1.0) * 0.05,
                "lambda {lambda} mean {mean}"
            );
        }
        assert_eq!(r.poisson(0.0), 0);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Xoshiro256::seed_from_u64(29);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_empty_and_nonempty() {
        let mut r = Xoshiro256::seed_from_u64(31);
        let empty: [u8; 0] = [];
        assert_eq!(r.choose(&empty), None);
        let v = [1, 2, 3];
        assert!(v.contains(r.choose(&v).unwrap()));
    }

    #[test]
    fn forked_streams_differ_but_are_deterministic() {
        let mut parent1 = Xoshiro256::seed_from_u64(99);
        let mut parent2 = Xoshiro256::seed_from_u64(99);
        let mut c1 = parent1.fork();
        let mut c2 = parent2.fork();
        assert_eq!(c1.next_u64(), c2.next_u64());
        let mut c3 = parent1.fork();
        assert_ne!(c1.next_u64(), c3.next_u64());
    }
}
