//! The time-bucketed calendar queue.
//!
//! Discrete-event practice on massively parallel machines exploits the
//! *bucketed* structure of the update schedule: in the machine
//! simulation, millions of same-millisecond timer and packet events
//! share a handful of distinct timestamps, so a comparison-based heap
//! pays `O(log n)` per event to rediscover an order that is almost
//! always "same tick as the last one". The calendar queue stores that
//! structure directly:
//!
//! * a **ring of per-tick buckets** covers the near future
//!   `[window_start, window_start + SLOTS)`; pushing into the window is
//!   an `O(1)` append, and a compact occupancy bitmap makes "find the
//!   next non-empty tick" a couple of word scans;
//! * a **sorted overflow tier** (`BTreeMap<tick, bucket>`) holds events
//!   beyond the window (e.g. the next 1 ms timer interrupt); same-tick
//!   overflow events share one map node, so the `log` cost is paid per
//!   *distinct timestamp*, not per event. When the ring drains, the
//!   window jumps forward and due overflow buckets migrate in wholesale.
//!
//! Within a tick, events pop in ascending `(rank, insertion sequence)`
//! order — the exact contract of [`EventQueue`](crate::EventQueue) (see
//! [`crate::queue`]). A bucket is sorted lazily on first pop of its
//! tick; a push into a tick that is already being drained inserts at
//! its ordered position.

use std::collections::BTreeMap;

use crate::queue::Queue;
use crate::time::SimTime;

/// Number of per-tick buckets in the ring (must be a power of two).
///
/// 2^15 ticks = 32.8 µs at the machine's 1 ns resolution: wide enough
/// that packet hops, handler completions, DMA transfers *and* the
/// 20 µs dropped-packet reissue delay land in the ring, while
/// millisecond-scale timer events take the overflow tier. (At 2^14 the
/// reissue storm of a congested run — more reissues than first-try
/// packets — churned through the overflow `BTreeMap`, and the map's
/// node traffic dominated `queue_pop`.)
const SLOTS: usize = 1 << 15;
const WORDS: usize = SLOTS / 64;

#[derive(Debug)]
struct Entry<E> {
    rank: u128,
    seq: u64,
    event: E,
}

/// One per-tick bucket. `sorted` means `entries` is in *descending*
/// `(rank, seq)` order so that popping the minimum is a pop from the
/// back.
#[derive(Debug)]
struct Bucket<E> {
    entries: Vec<Entry<E>>,
    sorted: bool,
}

impl<E> Default for Bucket<E> {
    fn default() -> Self {
        Bucket {
            entries: Vec::new(),
            sorted: false,
        }
    }
}

impl<E> Bucket<E> {
    /// Appends `entry`, keeping the bucket's order invariant.
    fn push(&mut self, entry: Entry<E>) {
        if self.sorted && !self.entries.is_empty() {
            // The bucket's tick is being drained: insert at the ordered
            // position (descending (rank, seq); seq is unique, so the
            // search key never collides).
            let key = (entry.rank, entry.seq);
            let pos = self.entries.partition_point(|e| (e.rank, e.seq) > key);
            self.entries.insert(pos, entry);
        } else {
            self.sorted = false;
            self.entries.push(entry);
        }
    }

    /// Removes and returns the minimum-`(rank, seq)` entry.
    fn pop_min(&mut self) -> Entry<E> {
        if !self.sorted {
            self.entries
                .sort_unstable_by_key(|e| std::cmp::Reverse((e.rank, e.seq)));
            self.sorted = true;
        }
        self.entries.pop().expect("pop_min on empty bucket")
    }
}

/// A time-bucketed calendar queue: drop-in replacement for
/// [`EventQueue`](crate::EventQueue) with `O(1)` amortized operations
/// on bucketed workloads — a ring of per-tick buckets (occupancy
/// bitmap for next-tick scans) plus a sorted overflow tier for times
/// beyond the ring window. See [`crate::queue`] for the ordering
/// contract both queue implementations honour.
///
/// # Example
///
/// ```
/// use spinn_sim::{CalendarQueue, Queue, SimTime};
///
/// let mut q = CalendarQueue::new();
/// q.push(SimTime::new(10), "b");
/// q.push(SimTime::new(5), "a");
/// q.push(SimTime::new(10), "c");
/// assert_eq!(q.pop(), Some((SimTime::new(5), "a")));
/// assert_eq!(q.pop(), Some((SimTime::new(10), "b")));
/// assert_eq!(q.pop(), Some((SimTime::new(10), "c")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug)]
pub struct CalendarQueue<E> {
    /// The ring: bucket `i` holds the events of the unique tick `t` in
    /// the current window with `t % SLOTS == i`.
    slots: Vec<Bucket<E>>,
    /// Occupancy bitmap over `slots` (bit set ⇔ bucket non-empty).
    words: [u64; WORDS],
    /// Inclusive lower bound of the ring's coverage. Only advances when
    /// the ring is completely empty, so every bucket belongs to exactly
    /// one tick of the current window.
    window_start: u64,
    /// Events currently in the ring.
    ring_entries: usize,
    /// Events at ticks `>= window_start + SLOTS`, keyed by tick.
    /// Bucket vectors are in insertion order (ascending `seq`).
    overflow: BTreeMap<u64, Vec<Entry<E>>>,
    overflow_entries: usize,
    /// Cached earliest pending tick (`None` ⇔ empty).
    next_tick: Option<u64>,
    /// Monotonic insertion counter (FIFO tie-break within equal ranks).
    seq: u64,
    /// Time of the most recent pop (monotonic-push floor).
    floor: u64,
    /// Occupancy high-water mark (see [`Queue::peak_len`]).
    peak: usize,
}

impl<E> CalendarQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        CalendarQueue {
            slots: (0..SLOTS).map(|_| Bucket::default()).collect(),
            words: [0u64; WORDS],
            window_start: 0,
            ring_entries: 0,
            overflow: BTreeMap::new(),
            overflow_entries: 0,
            next_tick: None,
            seq: 0,
            floor: 0,
            peak: 0,
        }
    }

    /// Schedules `event` at `time` (rank 0). See
    /// [`Queue::push`].
    ///
    /// # Panics
    ///
    /// Panics if `time` is earlier than the last popped time (the
    /// monotonic-push constraint of [`crate::queue`]).
    pub fn push(&mut self, time: SimTime, event: E) {
        self.push_ranked(time, 0, event);
    }

    /// Schedules `event` at `time` with a content-derived tie-break
    /// `rank`. See [`Queue::push_ranked`].
    ///
    /// # Panics
    ///
    /// Panics if `time` is earlier than the last popped time.
    pub fn push_ranked(&mut self, time: SimTime, rank: u128, event: E) {
        let t = time.ticks();
        assert!(
            t >= self.floor,
            "calendar queue requires monotonic pushes: t={} floor={}",
            t,
            self.floor
        );
        let seq = self.seq;
        self.seq += 1;
        let entry = Entry { rank, seq, event };
        if t < self.window_start + SLOTS as u64 {
            let i = (t % SLOTS as u64) as usize;
            self.slots[i].push(entry);
            self.words[i / 64] |= 1 << (i % 64);
            self.ring_entries += 1;
        } else {
            self.overflow.entry(t).or_default().push(entry);
            self.overflow_entries += 1;
        }
        self.peak = self.peak.max(self.ring_entries + self.overflow_entries);
        self.next_tick = Some(self.next_tick.map_or(t, |n| n.min(t)));
    }

    /// Removes and returns the earliest event (ties by `(rank, seq)`).
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.pop_entry().map(|(t, e)| (t, e.event))
    }

    /// Drains the queue in canonical pop order as `(time, rank, event)`
    /// triples (see [`Queue::drain_ranked`]), leaving the queue in its
    /// freshly-constructed state.
    pub fn drain_ranked(&mut self) -> Vec<(SimTime, u128, E)> {
        let mut out = Vec::with_capacity(self.len());
        while let Some((t, e)) = self.pop_entry() {
            out.push((t, e.rank, e.event));
        }
        self.clear();
        out
    }

    fn pop_entry(&mut self) -> Option<(SimTime, Entry<E>)> {
        let t = self.next_tick?;
        self.floor = t;
        if t >= self.window_start + SLOTS as u64 {
            // The ring is empty (the window only lags while it still
            // holds earlier events): jump it to `t` and migrate every
            // overflow bucket now inside the new window.
            debug_assert_eq!(self.ring_entries, 0);
            self.window_start = t;
            let horizon = t + SLOTS as u64;
            while let Some((&tick, _)) = self.overflow.first_key_value() {
                if tick >= horizon {
                    break;
                }
                let (tick, entries) = self.overflow.pop_first().expect("checked");
                let i = (tick % SLOTS as u64) as usize;
                self.overflow_entries -= entries.len();
                self.ring_entries += entries.len();
                self.words[i / 64] |= 1 << (i % 64);
                debug_assert!(self.slots[i].entries.is_empty());
                self.slots[i] = Bucket {
                    entries,
                    sorted: false,
                };
            }
        }
        let i = (t % SLOTS as u64) as usize;
        let entry = self.slots[i].pop_min();
        self.ring_entries -= 1;
        if self.slots[i].entries.is_empty() {
            self.slots[i].sorted = false;
            self.words[i / 64] &= !(1 << (i % 64));
            self.next_tick = self.earliest_pending(t + 1);
        }
        Some((SimTime::new(t), entry))
    }

    /// The timestamp of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.next_tick.map(SimTime::new)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.ring_entries + self.overflow_entries
    }

    /// Whether the queue holds no pending events.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Occupancy high-water mark (see [`Queue::peak_len`]).
    pub fn peak_len(&self) -> usize {
        self.peak
    }

    /// Removes every pending event and resets the insertion-sequence
    /// counter (same replay-after-reuse semantics as
    /// [`EventQueue::clear`](crate::EventQueue::clear)).
    pub fn clear(&mut self) {
        for slot in &mut self.slots {
            slot.entries.clear();
            slot.sorted = false;
        }
        self.words = [0u64; WORDS];
        self.window_start = 0;
        self.ring_entries = 0;
        self.overflow.clear();
        self.overflow_entries = 0;
        self.next_tick = None;
        self.seq = 0;
        self.floor = 0;
        self.peak = 0;
    }

    /// Earliest occupied tick at or after `from`, across ring and
    /// overflow. `from` must be within or past the current window.
    fn earliest_pending(&self, from: u64) -> Option<u64> {
        if self.ring_entries > 0 {
            // Scan the bitmap from `from` to the window's end. The scan
            // pointer only moves forward within a window era, so the
            // whole era costs O(WORDS) + O(1) per pop.
            let end = self.window_start + SLOTS as u64;
            let mut t = from.max(self.window_start);
            while t < end {
                let i = (t % SLOTS as u64) as usize;
                let word = self.words[i / 64] >> (i % 64);
                if word != 0 {
                    let hit = t + word.trailing_zeros() as u64;
                    // The word may extend past the window end on wrap;
                    // a hit past `end` cannot happen because those bits
                    // belong to ticks < `from` already drained.
                    debug_assert!(hit < end);
                    return Some(hit);
                }
                // Jump to the next word boundary.
                t += 64 - (i % 64) as u64;
            }
            unreachable!("ring_entries > 0 but no occupied bucket");
        }
        self.overflow.first_key_value().map(|(&t, _)| t)
    }
}

impl<E> Default for CalendarQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Queue<E> for CalendarQueue<E> {
    fn push_ranked(&mut self, time: SimTime, rank: u128, event: E) {
        CalendarQueue::push_ranked(self, time, rank, event);
    }
    fn pop(&mut self) -> Option<(SimTime, E)> {
        CalendarQueue::pop(self)
    }
    fn peek_time(&self) -> Option<SimTime> {
        CalendarQueue::peek_time(self)
    }
    fn len(&self) -> usize {
        CalendarQueue::len(self)
    }
    fn peak_len(&self) -> usize {
        CalendarQueue::peak_len(self)
    }
    fn clear(&mut self) {
        CalendarQueue::clear(self);
    }
    fn drain_ranked(&mut self) -> Vec<(SimTime, u128, E)> {
        CalendarQueue::drain_ranked(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventQueue;

    #[test]
    fn orders_by_time() {
        let mut q = CalendarQueue::new();
        q.push(SimTime::new(30), 3);
        q.push(SimTime::new(10), 1);
        q.push(SimTime::new(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn fifo_on_ties() {
        let mut q = CalendarQueue::new();
        for i in 0..100 {
            q.push(SimTime::new(7), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn rank_orders_before_seq() {
        let mut q = CalendarQueue::new();
        q.push_ranked(SimTime::new(5), 9, "late-rank");
        q.push_ranked(SimTime::new(5), 1, "early-rank");
        q.push_ranked(SimTime::new(5), 1, "early-rank-second");
        assert_eq!(q.pop().unwrap().1, "early-rank");
        assert_eq!(q.pop().unwrap().1, "early-rank-second");
        assert_eq!(q.pop().unwrap().1, "late-rank");
    }

    #[test]
    fn overflow_tier_round_trips() {
        let mut q = CalendarQueue::new();
        // Far beyond the ring window: must take the overflow tier.
        let far = SLOTS as u64 * 10;
        q.push(SimTime::new(far), "far");
        q.push(SimTime::new(far + 1), "farther");
        q.push(SimTime::new(3), "near");
        assert_eq!(q.len(), 3);
        assert_eq!(q.peek_time(), Some(SimTime::new(3)));
        assert_eq!(q.pop().unwrap().1, "near");
        assert_eq!(q.pop(), Some((SimTime::new(far), "far")));
        assert_eq!(q.pop(), Some((SimTime::new(far + 1), "farther")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn window_jump_preserves_fifo_within_overflow_tick() {
        let mut q = CalendarQueue::new();
        let far = SLOTS as u64 * 3 + 17;
        for i in 0..50 {
            q.push(SimTime::new(far), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn push_into_tick_being_drained() {
        let mut q = CalendarQueue::new();
        q.push_ranked(SimTime::new(10), 5, "b");
        q.push_ranked(SimTime::new(10), 7, "d");
        assert_eq!(q.pop().unwrap().1, "b");
        // Same-instant pushes while the tick drains: order by rank.
        q.push_ranked(SimTime::new(10), 6, "c");
        q.push_ranked(SimTime::new(10), 4, "a-too-late-rank-wise");
        assert_eq!(q.pop().unwrap().1, "a-too-late-rank-wise");
        assert_eq!(q.pop().unwrap().1, "c");
        assert_eq!(q.pop().unwrap().1, "d");
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        let mut q = CalendarQueue::new();
        q.push(SimTime::new(10), "late");
        q.push(SimTime::new(1), "early");
        assert_eq!(q.pop().unwrap().1, "early");
        q.push(SimTime::new(5), "mid");
        assert_eq!(q.pop().unwrap().1, "mid");
        assert_eq!(q.pop().unwrap().1, "late");
    }

    #[test]
    fn clear_resets_seq_and_state() {
        let mut q = CalendarQueue::new();
        q.push(SimTime::new(100), 1);
        q.push(SimTime::new(SLOTS as u64 * 2), 2);
        q.pop();
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        // After clear, earlier times are legal again and FIFO restarts.
        q.push(SimTime::new(4), 10);
        q.push(SimTime::new(4), 11);
        assert_eq!(q.pop().unwrap().1, 10);
        assert_eq!(q.pop().unwrap().1, 11);
    }

    #[test]
    #[should_panic(expected = "monotonic pushes")]
    fn pushing_into_past_panics() {
        let mut q = CalendarQueue::new();
        q.push(SimTime::new(50), ());
        q.pop();
        q.push(SimTime::new(10), ());
    }

    #[test]
    fn drain_restore_round_trips_across_queue_kinds() {
        // A drained snapshot restores into either implementation and
        // keeps interleaving with *new* pushes exactly as the original
        // queue would have.
        let fill = |q: &mut dyn FnMut(SimTime, u128, u64)| {
            q(SimTime::new(9), 2, 0);
            q(SimTime::new(5), 7, 1);
            q(SimTime::new(5), 1, 2);
            q(SimTime::new(5), 1, 3);
            q(SimTime::new(SLOTS as u64 * 4 + 3), 0, 4); // overflow tier
        };
        let mut cal = CalendarQueue::new();
        fill(&mut |t, r, e| cal.push_ranked(t, r, e));
        let snap = cal.drain_ranked();
        assert!(cal.is_empty());
        assert_eq!(
            snap.iter()
                .map(|&(t, r, e)| (t.ticks(), r, e))
                .collect::<Vec<_>>(),
            vec![
                (5, 1, 2),
                (5, 1, 3),
                (5, 7, 1),
                (9, 2, 0),
                (SLOTS as u64 * 4 + 3, 0, 4)
            ]
        );
        // Restore into a heap queue and a fresh calendar; push one new
        // same-(time, rank) event into each — it must pop *after* the
        // restored ones.
        let mut heap = EventQueue::new();
        Queue::restore(&mut heap, snap.clone());
        let mut cal2 = CalendarQueue::new();
        Queue::restore(&mut cal2, snap);
        heap.push_ranked(SimTime::new(5), 1, 99);
        cal2.push_ranked(SimTime::new(5), 1, 99);
        let a: Vec<u64> = std::iter::from_fn(|| heap.pop()).map(|(_, e)| e).collect();
        let b: Vec<u64> = std::iter::from_fn(|| cal2.pop()).map(|(_, e)| e).collect();
        assert_eq!(a, vec![2, 3, 99, 1, 0, 4]);
        assert_eq!(a, b);
    }

    /// Randomized equivalence against the heap queue (the fuller
    /// version lives in `tests/props_queue.rs`).
    #[test]
    fn matches_heap_queue_on_random_workload() {
        let mut rng = crate::Xoshiro256::seed_from_u64(0xCA1E);
        let mut heap = EventQueue::new();
        let mut cal = CalendarQueue::new();
        let mut now = 0u64;
        for step in 0..20_000u64 {
            if rng.next_f64() < 0.6 || (heap.is_empty()) {
                // Mix of same-tick, near and far-future (overflow) times.
                let delta = match rng.gen_range_u64(10) {
                    0..=4 => 0,
                    5..=7 => rng.gen_range_u64(2_000),
                    _ => rng.gen_range_u64(3 * SLOTS as u64),
                };
                let rank = rng.gen_range_u64(4) as u128;
                let t = SimTime::new(now + delta);
                heap.push_ranked(t, rank, step);
                cal.push_ranked(t, rank, step);
            } else {
                let a = heap.pop();
                let b = cal.pop();
                assert_eq!(a, b, "divergence at step {step}");
                if let Some((t, _)) = a {
                    now = t.ticks();
                }
            }
        }
        loop {
            let a = heap.pop();
            let b = cal.pop();
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }
}
