//! Small statistics helpers shared by the experiment harnesses.

use std::fmt;

/// Streaming mean/variance (Welford's algorithm).
///
/// # Example
///
/// ```
/// use spinn_sim::OnlineStats;
///
/// let mut s = OnlineStats::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.push(x);
/// }
/// assert!((s.mean() - 5.0).abs() < 1e-12);
/// assert!((s.population_variance() - 4.0).abs() < 1e-12);
/// ```
#[derive(Clone, Debug, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds a sample.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples seen.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 for an empty accumulator).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (divides by `n`).
    pub fn population_variance(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Sample variance (divides by `n - 1`; 0 with fewer than 2 samples).
    pub fn sample_variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Smallest sample (`+inf` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest sample (`-inf` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl fmt::Display for OnlineStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.4} sd={:.4} min={:.4} max={:.4}",
            self.n,
            self.mean(),
            self.std_dev(),
            self.min,
            self.max
        )
    }
}

/// A fixed-width linear histogram over `u64` samples with overflow bucket,
/// supporting approximate percentiles. Used for latency distributions.
///
/// # Example
///
/// ```
/// use spinn_sim::Histogram;
///
/// let mut h = Histogram::new(10, 100); // 10 buckets of width 100
/// for v in 0..1000u64 {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 1000);
/// let p50 = h.percentile(50.0);
/// assert!((400..=600).contains(&p50), "{p50}");
/// ```
#[derive(Clone, Debug)]
pub struct Histogram {
    buckets: Vec<u64>,
    width: u64,
    overflow: u64,
    count: u64,
    max: u64,
    sum: u128,
}

impl Histogram {
    /// Creates a histogram with `buckets` linear buckets of width `width`.
    ///
    /// # Panics
    ///
    /// Panics if `buckets == 0` or `width == 0`.
    pub fn new(buckets: usize, width: u64) -> Self {
        assert!(
            buckets > 0 && width > 0,
            "histogram needs buckets and width"
        );
        Histogram {
            buckets: vec![0; buckets],
            width,
            overflow: 0,
            count: 0,
            max: 0,
            sum: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        let idx = (value / self.width) as usize;
        if idx < self.buckets.len() {
            self.buckets[idx] += 1;
        } else {
            self.overflow += 1;
        }
        self.count += 1;
        self.max = self.max.max(value);
        self.sum += value as u128;
    }

    /// Total number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Number of samples above the last bucket.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Largest recorded sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of all recorded samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate percentile `p` (0–100): upper edge of the bucket where
    /// the cumulative count crosses `p`%. Returns `max()` if the crossing
    /// lies in the overflow bucket.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (p.clamp(0.0, 100.0) / 100.0 * self.count as f64).ceil() as u64;
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            cum += c;
            if cum >= target.max(1) {
                return (i as u64 + 1) * self.width;
            }
        }
        self.max
    }

    /// Merges another histogram recorded with the same geometry
    /// (per-shard latency histograms from a parallel run).
    ///
    /// # Panics
    ///
    /// Panics if bucket count or width differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.width, other.width, "histogram width mismatch");
        assert_eq!(
            self.buckets.len(),
            other.buckets.len(),
            "histogram bucket-count mismatch"
        );
        for (b, o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
        self.overflow += other.overflow;
        self.count += other.count;
        self.max = self.max.max(other.max);
        self.sum += other.sum;
    }

    /// Serializes the histogram (geometry + counts) for checkpoints.
    pub fn encode(&self, enc: &mut crate::wire::Enc) {
        enc.seq(self.buckets.len());
        enc.u64(self.width);
        for &b in &self.buckets {
            enc.u64(b);
        }
        enc.u64(self.overflow)
            .u64(self.count)
            .u64(self.max)
            .u128(self.sum);
    }

    /// Rebuilds a histogram from [`Histogram::encode`] bytes.
    pub fn decode(dec: &mut crate::wire::Dec<'_>) -> Result<Histogram, crate::wire::WireError> {
        let n = dec.seq(8)?;
        if n == 0 {
            return Err(crate::wire::WireError::Corrupt("histogram buckets"));
        }
        let width = dec.u64()?;
        if width == 0 {
            return Err(crate::wire::WireError::Corrupt("histogram width"));
        }
        let mut buckets = Vec::with_capacity(n);
        for _ in 0..n {
            buckets.push(dec.u64()?);
        }
        Ok(Histogram {
            buckets,
            width,
            overflow: dec.u64()?,
            count: dec.u64()?,
            max: dec.u64()?,
            sum: dec.u128()?,
        })
    }

    /// Iterates `(bucket_lower_bound, count)` for all non-empty buckets.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(move |(i, &c)| (i as u64 * self.width, c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_basic_moments() {
        let mut s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.count(), 0);
        for x in 1..=5 {
            s.push(x as f64);
        }
        assert_eq!(s.count(), 5);
        assert!((s.mean() - 3.0).abs() < 1e-12);
        assert!((s.population_variance() - 2.0).abs() < 1e-12);
        assert!((s.sample_variance() - 2.5).abs() < 1e-12);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 5.0);
    }

    #[test]
    fn stats_merge_matches_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = OnlineStats::new();
        for &x in &data {
            whole.push(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &data[..37] {
            a.push(x);
        }
        for &x in &data[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.sample_variance() - whole.sample_variance()).abs() < 1e-9);
    }

    #[test]
    fn stats_merge_with_empty() {
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        b.push(4.0);
        a.merge(&b);
        assert_eq!(a.count(), 1);
        let empty = OnlineStats::new();
        a.merge(&empty);
        assert_eq!(a.count(), 1);
    }

    #[test]
    fn histogram_percentiles_and_overflow() {
        let mut h = Histogram::new(10, 10); // covers [0, 100)
        for v in 0..100 {
            h.record(v);
        }
        h.record(500);
        assert_eq!(h.count(), 101);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.max(), 500);
        assert!(h.percentile(50.0) <= 60);
        assert_eq!(h.percentile(100.0), 500);
    }

    #[test]
    fn histogram_mean() {
        let mut h = Histogram::new(4, 25);
        h.record(0);
        h.record(100);
        assert!((h.mean() - 50.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_iter_skips_empty() {
        let mut h = Histogram::new(5, 10);
        h.record(12);
        h.record(13);
        h.record(44);
        let buckets: Vec<_> = h.iter().collect();
        assert_eq!(buckets, vec![(10, 2), (40, 1)]);
    }

    #[test]
    #[should_panic(expected = "histogram needs")]
    fn histogram_rejects_zero_width() {
        let _ = Histogram::new(10, 0);
    }
}
