//! Simulation time.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, measured in integer ticks since the start of
/// the simulation.
///
/// The kernel does not fix the physical meaning of a tick; each simulation
/// domain chooses its own resolution. Within this repository the
/// transition-level link simulations use **1 tick = 1 ps** and the
/// system-level machine simulations use **1 tick = 1 ns**.
///
/// # Example
///
/// ```
/// use spinn_sim::SimTime;
///
/// let t = SimTime::new(100) + 25;
/// assert_eq!(t.ticks(), 125);
/// assert!(t > SimTime::new(100));
/// ```
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);
    /// The greatest representable time (used as an "infinite" deadline).
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a time from a raw tick count.
    #[inline]
    pub const fn new(ticks: u64) -> Self {
        SimTime(ticks)
    }

    /// Returns the raw tick count.
    #[inline]
    pub const fn ticks(self) -> u64 {
        self.0
    }

    /// Saturating addition of a tick delta.
    #[inline]
    pub const fn saturating_add(self, delta: u64) -> Self {
        SimTime(self.0.saturating_add(delta))
    }

    /// The number of ticks from `earlier` to `self`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`.
    #[inline]
    pub fn since(self, earlier: SimTime) -> u64 {
        self.0
            .checked_sub(earlier.0)
            .expect("SimTime::since: `earlier` is later than `self`")
    }
}

impl Add<u64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: u64) -> SimTime {
        SimTime(self.0 + rhs)
    }
}

impl AddAssign<u64> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub for SimTime {
    type Output = u64;
    #[inline]
    fn sub(self, rhs: SimTime) -> u64 {
        self.since(rhs)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}", self.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u64> for SimTime {
    fn from(ticks: u64) -> Self {
        SimTime(ticks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        assert_eq!(SimTime::ZERO.ticks(), 0);
        assert_eq!(SimTime::new(42).ticks(), 42);
        assert_eq!(SimTime::from(7u64), SimTime::new(7));
    }

    #[test]
    fn ordering() {
        assert!(SimTime::new(1) < SimTime::new(2));
        assert!(SimTime::MAX > SimTime::new(u64::MAX - 1));
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::new(10);
        assert_eq!((t + 5).ticks(), 15);
        assert_eq!(SimTime::new(15) - t, 5);
        let mut u = t;
        u += 3;
        assert_eq!(u.ticks(), 13);
        assert_eq!(SimTime::MAX.saturating_add(10), SimTime::MAX);
    }

    #[test]
    #[should_panic(expected = "later than")]
    fn since_panics_when_reversed() {
        let _ = SimTime::new(1).since(SimTime::new(2));
    }

    #[test]
    fn display_and_debug() {
        assert_eq!(format!("{}", SimTime::new(9)), "9");
        assert_eq!(format!("{:?}", SimTime::new(9)), "t=9");
    }
}
