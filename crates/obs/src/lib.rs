//! # spinn-obs — low-overhead run telemetry
//!
//! SpiNNaker ships monitor cores and router diagnostic counters because
//! a million-core run is undebuggable without them. This crate is the
//! simulated machine's equivalent: a telemetry core the whole stack
//! threads through, cheap enough to leave compiled in everywhere.
//!
//! Three collection layers, each independently zero-cost when off:
//!
//! * **Counters** ([`CounterShard`]) — a per-shard, cache-line-padded
//!   registry of relaxed-atomic event counters ([`Counter`]): spikes,
//!   packets by route class, drops, DMA bytes, queue occupancy
//!   high-water, emergency-route hops. A disabled shard is a `None`
//!   handle; [`CounterShard::add`] on it is a branch and nothing else.
//! * **Phase timing** ([`PhaseProbe`]) — fixed-bucket log2 histograms
//!   over the tick phases ([`Phase`]): queue pop, neuron tick,
//!   synaptic-row walk, router lookup, barrier wait. Enabled only in
//!   [`ObsMode::CountersAndTrace`], because each sample costs two
//!   monotonic-clock reads.
//! * **Event tracing** ([`Tracer`]) — a bounded ring buffer of
//!   spike/packet/drop/fault records with overwrite accounting. The hot
//!   path never blocks and never allocates past the ring's capacity;
//!   the ring flushes to JSONL via [`RunTelemetry::trace_jsonl`].
//!
//! Per-run results accumulate in a [`RunTelemetry`], which merges any
//! number of per-shard [`Observability`] handles (serial runs are one
//! shard) and renders the per-loop ns/neuron and ns/synaptic-event rows
//! the benchmark pipeline records.
//!
//! **Determinism**: telemetry observes, it never steers. Simulation
//! results are bit-identical across every [`ObsMode`] — locked down by
//! the golden-trace conformance suite (`tests/telemetry_determinism.rs`
//! in the workspace root).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// How much telemetry a run collects.
///
/// The mode is a run knob, not part of a machine's identity: snapshots
/// taken under one mode restore under any other, and spike output is
/// bit-identical across all three.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Hash)]
pub enum ObsMode {
    /// No collection. Every hook is a `None`-check (the default).
    #[default]
    Disabled,
    /// Event counters only: relaxed-atomic increments, cheap enough
    /// for production runs (the CI overhead gate holds this within 5%
    /// of [`ObsMode::Disabled`] throughput).
    Counters,
    /// Counters plus tick-phase timing histograms plus the bounded
    /// event tracer — the debugging/profiling mode.
    CountersAndTrace,
}

impl std::fmt::Display for ObsMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ObsMode::Disabled => f.write_str("disabled"),
            ObsMode::Counters => f.write_str("counters"),
            ObsMode::CountersAndTrace => f.write_str("counters+trace"),
        }
    }
}

/// One entry of the counter registry.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum Counter {
    /// Neurons that fired.
    Spikes,
    /// Neurons stepped through their 1 ms tick update.
    NeuronsTicked,
    /// Synaptic words deposited by row walks.
    SynapticEvents,
    /// Multicast routing decisions taken.
    PacketsMc,
    /// Point-to-point packets delivered or forwarded.
    PacketsP2p,
    /// Nearest-neighbour packets delivered.
    PacketsNn,
    /// Packets dropped (unroutable, retry-exhausted or aged out).
    PacketsDropped,
    /// Bytes moved over the simulated SDRAM DMA ports.
    DmaBytes,
    /// Emergency-route hops (first legs taken plus second legs closed).
    EmergencyHops,
    /// Event-queue occupancy high-water mark (a gauge: merged with
    /// `max`, not summed).
    QueuePeak,
    /// Events dispatched by the discrete-event engine.
    Events,
}

impl Counter {
    /// Number of counters in the registry.
    pub const COUNT: usize = 11;

    /// Every counter, in registry order.
    pub const ALL: [Counter; Counter::COUNT] = [
        Counter::Spikes,
        Counter::NeuronsTicked,
        Counter::SynapticEvents,
        Counter::PacketsMc,
        Counter::PacketsP2p,
        Counter::PacketsNn,
        Counter::PacketsDropped,
        Counter::DmaBytes,
        Counter::EmergencyHops,
        Counter::QueuePeak,
        Counter::Events,
    ];

    /// Stable snake_case name (the JSON/JSONL key).
    pub fn name(self) -> &'static str {
        match self {
            Counter::Spikes => "spikes",
            Counter::NeuronsTicked => "neurons_ticked",
            Counter::SynapticEvents => "synaptic_events",
            Counter::PacketsMc => "packets_mc",
            Counter::PacketsP2p => "packets_p2p",
            Counter::PacketsNn => "packets_nn",
            Counter::PacketsDropped => "packets_dropped",
            Counter::DmaBytes => "dma_bytes",
            Counter::EmergencyHops => "emergency_hops",
            Counter::QueuePeak => "queue_peak",
            Counter::Events => "events",
        }
    }

    /// True for gauges (merged with `max` rather than summed).
    pub fn is_gauge(self) -> bool {
        matches!(self, Counter::QueuePeak)
    }
}

/// One atomic counter padded out to its own cache line, so shards (and
/// the fabric handle cloned from a shard) never false-share.
#[derive(Debug, Default)]
#[repr(align(128))]
struct PaddedU64(AtomicU64);

/// The per-shard counter storage.
#[derive(Debug)]
struct CounterSet {
    vals: [PaddedU64; Counter::COUNT],
}

impl CounterSet {
    fn new() -> CounterSet {
        CounterSet {
            vals: std::array::from_fn(|_| PaddedU64::default()),
        }
    }
}

/// A cloneable handle onto one shard's counter set (or onto nothing,
/// when telemetry is disabled). Clones share the same storage — the
/// machine hands one clone to its fabric so router increments land in
/// the owning shard's registry.
#[derive(Clone, Debug, Default)]
pub struct CounterShard(Option<Arc<CounterSet>>);

impl CounterShard {
    /// A live shard with fresh (all-zero) counters.
    pub fn enabled() -> CounterShard {
        CounterShard(Some(Arc::new(CounterSet::new())))
    }

    /// Whether increments on this handle are recorded anywhere.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Adds `n` to `c` (relaxed; a no-op branch when disabled).
    #[inline]
    pub fn add(&self, c: Counter, n: u64) {
        if let Some(set) = &self.0 {
            set.vals[c as usize].0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Raises gauge `c` to at least `v` (relaxed `fetch_max`).
    #[inline]
    pub fn gauge_max(&self, c: Counter, v: u64) {
        if let Some(set) = &self.0 {
            set.vals[c as usize].0.fetch_max(v, Ordering::Relaxed);
        }
    }

    /// Reads every counter (zeros when disabled).
    pub fn snapshot(&self) -> [u64; Counter::COUNT] {
        match &self.0 {
            Some(set) => std::array::from_fn(|i| set.vals[i].0.load(Ordering::Relaxed)),
            None => [0; Counter::COUNT],
        }
    }

    /// Reads and resets every counter (the segment-end harvest).
    pub fn drain(&self) -> [u64; Counter::COUNT] {
        match &self.0 {
            Some(set) => std::array::from_fn(|i| set.vals[i].0.swap(0, Ordering::Relaxed)),
            None => [0; Counter::COUNT],
        }
    }
}

/// The instrumented phases of the machine's event loop.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum Phase {
    /// Popping the next event off the event queue.
    QueuePop,
    /// Stepping a core's neuron pool through one 1 ms tick.
    NeuronTick,
    /// Walking a synaptic row into the input ring.
    RowWalk,
    /// A fabric event: router lookup, link arbitration, retries.
    RouterLookup,
    /// Waiting at a window barrier of the sharded engine.
    BarrierWait,
}

impl Phase {
    /// Number of instrumented phases.
    pub const COUNT: usize = 5;

    /// Every phase, in storage order.
    pub const ALL: [Phase; Phase::COUNT] = [
        Phase::QueuePop,
        Phase::NeuronTick,
        Phase::RowWalk,
        Phase::RouterLookup,
        Phase::BarrierWait,
    ];

    /// Stable snake_case name (the JSON key).
    pub fn name(self) -> &'static str {
        match self {
            Phase::QueuePop => "queue_pop",
            Phase::NeuronTick => "neuron_tick",
            Phase::RowWalk => "row_walk",
            Phase::RouterLookup => "router_lookup",
            Phase::BarrierWait => "barrier_wait",
        }
    }
}

/// Number of log2 duration buckets per phase: bucket 0 holds 0 ns,
/// bucket `i` holds durations in `[2^(i-1), 2^i)` ns, bucket 31 holds
/// everything from ~1 s up.
pub const PHASE_BUCKETS: usize = 32;

#[derive(Debug)]
struct PhaseSlot {
    count: AtomicU64,
    sum_ns: AtomicU64,
    buckets: [AtomicU64; PHASE_BUCKETS],
}

impl PhaseSlot {
    fn new() -> PhaseSlot {
        PhaseSlot {
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

#[derive(Debug)]
struct PhaseSet {
    slots: [PhaseSlot; Phase::COUNT],
}

/// The log2 bucket a duration falls in.
fn bucket_of(ns: u64) -> usize {
    if ns == 0 {
        0
    } else {
        ((ns.ilog2() as usize) + 1).min(PHASE_BUCKETS - 1)
    }
}

/// A started phase measurement (see [`PhaseProbe::start`]). Carries no
/// clock read when timing is disabled.
#[must_use = "pass the token back to PhaseProbe::record"]
#[derive(Debug)]
pub struct PhaseToken(Option<Instant>);

/// A cloneable handle onto one shard's phase-timing histograms (or onto
/// nothing). The engine and the parallel driver each hold a clone;
/// samples land in the shard's shared storage.
#[derive(Clone, Debug, Default)]
pub struct PhaseProbe(Option<Arc<PhaseSet>>);

impl PhaseProbe {
    /// A live probe with fresh histograms.
    pub fn enabled() -> PhaseProbe {
        PhaseProbe(Some(Arc::new(PhaseSet {
            slots: std::array::from_fn(|_| PhaseSlot::new()),
        })))
    }

    /// Whether samples on this handle are recorded anywhere.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Starts a measurement. Reads the monotonic clock only when the
    /// probe is live; a disabled probe returns an inert token.
    #[inline]
    pub fn start(&self) -> PhaseToken {
        PhaseToken(self.0.as_ref().map(|_| Instant::now()))
    }

    /// Completes a measurement, attributing the elapsed time to
    /// `phase`. Inert tokens are dropped for free.
    #[inline]
    pub fn record(&self, phase: Phase, token: PhaseToken) {
        if let (Some(set), Some(t0)) = (&self.0, token.0) {
            let ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
            let slot = &set.slots[phase as usize];
            slot.count.fetch_add(1, Ordering::Relaxed);
            slot.sum_ns.fetch_add(ns, Ordering::Relaxed);
            slot.buckets[bucket_of(ns)].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Reads and resets every phase histogram (the segment-end
    /// harvest). All zeros when disabled.
    pub fn drain(&self) -> [PhaseStats; Phase::COUNT] {
        match &self.0 {
            Some(set) => std::array::from_fn(|i| {
                let slot = &set.slots[i];
                PhaseStats {
                    count: slot.count.swap(0, Ordering::Relaxed),
                    sum_ns: slot.sum_ns.swap(0, Ordering::Relaxed),
                    buckets: std::array::from_fn(|b| slot.buckets[b].swap(0, Ordering::Relaxed)),
                }
            }),
            None => std::array::from_fn(|_| PhaseStats::default()),
        }
    }
}

/// A harvested phase histogram: sample count, total nanoseconds and the
/// log2 duration buckets.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PhaseStats {
    /// Samples recorded.
    pub count: u64,
    /// Total nanoseconds across all samples.
    pub sum_ns: u64,
    /// Log2 duration buckets (see [`PHASE_BUCKETS`]).
    pub buckets: [u64; PHASE_BUCKETS],
}

impl PhaseStats {
    /// Folds `other` into `self`.
    pub fn merge(&mut self, other: &PhaseStats) {
        self.count += other.count;
        self.sum_ns += other.sum_ns;
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
    }

    /// Mean sample duration, ns (0 when empty).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.count as f64
        }
    }
}

/// What kind of event a trace record describes.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum TraceKind {
    /// A neuron fired: `a` = routing key, `b` = tick (ms).
    Spike,
    /// A packet delivered: `a` = routing key, `b` = hop count.
    Packet,
    /// A packet dropped: `a` = routing key, `b` = chip id.
    Drop,
    /// A fault fired: `a` = chip id, `b` = link direction index.
    Fault,
    /// A failed link was repaired: `a` = chip id, `b` = link direction
    /// index.
    Repair,
}

impl TraceKind {
    /// Stable lowercase name (the JSONL `kind` value).
    pub fn name(self) -> &'static str {
        match self {
            TraceKind::Spike => "spike",
            TraceKind::Packet => "packet",
            TraceKind::Drop => "drop",
            TraceKind::Fault => "fault",
            TraceKind::Repair => "repair",
        }
    }
}

/// One traced event.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct TraceRecord {
    /// Simulation time of the event, ns.
    pub time_ns: u64,
    /// What happened.
    pub kind: TraceKind,
    /// First payload word (see [`TraceKind`] for the meaning).
    pub a: u32,
    /// Second payload word.
    pub b: u32,
}

/// Default per-shard trace ring capacity.
pub const DEFAULT_TRACE_CAP: usize = 16 * 1024;

/// A bounded ring buffer of [`TraceRecord`]s. Recording never blocks
/// and never grows past the capacity: when full, the oldest record is
/// overwritten and [`Tracer::overwritten`] counts the loss.
#[derive(Clone, Debug)]
pub struct Tracer {
    ring: VecDeque<TraceRecord>,
    cap: usize,
    overwritten: u64,
}

impl Tracer {
    /// A tracer bounded at `cap` records (at least 1).
    pub fn new(cap: usize) -> Tracer {
        let cap = cap.max(1);
        Tracer {
            ring: VecDeque::with_capacity(cap),
            cap,
            overwritten: 0,
        }
    }

    /// Appends a record, overwriting the oldest when full.
    #[inline]
    pub fn record(&mut self, time_ns: u64, kind: TraceKind, a: u32, b: u32) {
        if self.ring.len() == self.cap {
            self.ring.pop_front();
            self.overwritten += 1;
        }
        self.ring.push_back(TraceRecord {
            time_ns,
            kind,
            a,
            b,
        });
    }

    /// Records currently held.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Records lost to overwriting so far.
    pub fn overwritten(&self) -> u64 {
        self.overwritten
    }

    /// The ring's bound, records.
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Takes every record (oldest first) and resets the loss counter.
    pub fn drain(&mut self) -> (Vec<TraceRecord>, u64) {
        let lost = std::mem::take(&mut self.overwritten);
        (self.ring.drain(..).collect(), lost)
    }
}

/// One shard's complete telemetry handles for a run segment: the
/// counter registry, the phase probe and (in
/// [`ObsMode::CountersAndTrace`]) the event tracer.
#[derive(Debug, Default)]
pub struct Observability {
    mode: ObsMode,
    shard: u32,
    counters: CounterShard,
    phases: PhaseProbe,
    tracer: Option<Tracer>,
}

impl Observability {
    /// Telemetry for a serial run (shard 0).
    pub fn new(mode: ObsMode) -> Observability {
        Observability::for_shard(mode, 0)
    }

    /// Telemetry for one shard of a sharded run, with the default
    /// [`DEFAULT_TRACE_CAP`] trace ring.
    pub fn for_shard(mode: ObsMode, shard: u32) -> Observability {
        Observability::for_shard_with_cap(mode, shard, DEFAULT_TRACE_CAP)
    }

    /// Telemetry for one shard with an explicit trace ring capacity.
    ///
    /// The default 16 Ki-record ring keeps the hot path cheap but loses
    /// most records on event-heavy runs (E17 measured ~276 k overwrites
    /// over a 10 ms segment); callers that want the full tail — trace
    /// archaeology, conformance replay — size the ring to the run.
    pub fn for_shard_with_cap(mode: ObsMode, shard: u32, trace_cap: usize) -> Observability {
        let (counters, phases, tracer) = match mode {
            ObsMode::Disabled => (CounterShard::default(), PhaseProbe::default(), None),
            ObsMode::Counters => (CounterShard::enabled(), PhaseProbe::default(), None),
            ObsMode::CountersAndTrace => (
                CounterShard::enabled(),
                PhaseProbe::enabled(),
                Some(Tracer::new(trace_cap)),
            ),
        };
        Observability {
            mode,
            shard,
            counters,
            phases,
            tracer,
        }
    }

    /// The collection mode.
    pub fn mode(&self) -> ObsMode {
        self.mode
    }

    /// The shard this telemetry belongs to.
    pub fn shard(&self) -> u32 {
        self.shard
    }

    /// The counter registry handle (cloneable; hand clones to
    /// subsystems so their increments land here).
    pub fn counters(&self) -> &CounterShard {
        &self.counters
    }

    /// The phase-timing handle (cloneable).
    pub fn phases(&self) -> &PhaseProbe {
        &self.phases
    }

    /// Whether the tracer is live.
    pub fn tracing(&self) -> bool {
        self.tracer.is_some()
    }

    /// The live tracer's ring capacity (0 when not tracing).
    pub fn trace_cap(&self) -> usize {
        self.tracer.as_ref().map_or(0, Tracer::cap)
    }

    /// Appends a trace record (a no-op branch unless tracing).
    #[inline]
    pub fn trace(&mut self, time_ns: u64, kind: TraceKind, a: u32, b: u32) {
        if let Some(t) = &mut self.tracer {
            t.record(time_ns, kind, a, b);
        }
    }
}

/// One entry of the per-tenant serving-counter registry.
///
/// Unlike [`Counter`], these are *not* hot-path counters: the serving
/// layer (`spinn-serve`) records them once per job on the host side, so
/// they carry no atomic or padding machinery and are always on. They
/// live in [`RunTelemetry`] so a server's accounting rides the same
/// report/merge pipeline as the machine counters.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum TenantCounter {
    /// Jobs that passed admission control.
    JobsAdmitted,
    /// Jobs rejected at admission (queue full, quota breach, …).
    JobsRejected,
    /// Jobs run to completion.
    JobsCompleted,
    /// Biological milliseconds simulated on the tenant's behalf (the
    /// unit the tick budget is charged in).
    BioMs,
    /// Spikes returned to the tenant.
    Spikes,
    /// Jobs served on an already-resident warm session.
    WarmHits,
    /// Jobs that paid a cold build or a snapshot rehydrate first.
    ColdServes,
}

impl TenantCounter {
    /// Number of per-tenant counters.
    pub const COUNT: usize = 7;

    /// Every per-tenant counter, in registry order.
    pub const ALL: [TenantCounter; TenantCounter::COUNT] = [
        TenantCounter::JobsAdmitted,
        TenantCounter::JobsRejected,
        TenantCounter::JobsCompleted,
        TenantCounter::BioMs,
        TenantCounter::Spikes,
        TenantCounter::WarmHits,
        TenantCounter::ColdServes,
    ];

    /// Stable snake_case name (the JSON key).
    pub fn name(self) -> &'static str {
        match self {
            TenantCounter::JobsAdmitted => "jobs_admitted",
            TenantCounter::JobsRejected => "jobs_rejected",
            TenantCounter::JobsCompleted => "jobs_completed",
            TenantCounter::BioMs => "bio_ms",
            TenantCounter::Spikes => "spikes",
            TenantCounter::WarmHits => "warm_hits",
            TenantCounter::ColdServes => "cold_serves",
        }
    }
}

/// One tenant's accumulated serving counters.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TenantStats {
    /// The serving layer's tenant id.
    pub tenant: u32,
    /// Counter totals, indexed by [`TenantCounter`].
    pub counters: [u64; TenantCounter::COUNT],
}

/// Telemetry of one shard as accumulated into a [`RunTelemetry`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardTelemetry {
    /// The shard id (0 for serial runs).
    pub shard: u32,
    /// Counter totals, indexed by [`Counter`] (gauges hold the max).
    pub counters: [u64; Counter::COUNT],
    /// Phase histograms, indexed by [`Phase`].
    pub phases: [PhaseStats; Phase::COUNT],
}

/// Machine-level trace bound: segments append their shard rings here,
/// oldest records dropping first.
const RUN_TRACE_CAP: usize = 64 * 1024;

/// A whole run's accumulated telemetry: per-shard counters and phase
/// histograms plus the merged event trace. Built by absorbing each
/// segment's per-shard [`Observability`] handles; survives any mix of
/// thread counts across segments (shards merge by id).
#[derive(Clone, Debug, Default)]
pub struct RunTelemetry {
    mode: ObsMode,
    shards: Vec<ShardTelemetry>,
    /// Per-tenant serving counters, ordered by tenant id. Populated by
    /// the serving layer (machine runs leave this empty).
    tenants: Vec<TenantStats>,
    trace: VecDeque<TraceRecord>,
    trace_overwritten: u64,
    /// Largest per-shard trace ring capacity seen across absorbed
    /// segments — records which bound (configured or auto-scaled) the
    /// run actually traced under.
    trace_cap: u64,
}

impl RunTelemetry {
    /// The strongest collection mode absorbed so far.
    pub fn mode(&self) -> ObsMode {
        self.mode
    }

    /// Whether any telemetry was collected.
    pub fn is_enabled(&self) -> bool {
        self.mode != ObsMode::Disabled
    }

    /// Per-shard telemetry, ordered by shard id.
    pub fn shards(&self) -> &[ShardTelemetry] {
        &self.shards
    }

    /// Per-tenant serving counters, ordered by tenant id (empty unless
    /// a serving layer recorded into this telemetry).
    pub fn tenants(&self) -> &[TenantStats] {
        &self.tenants
    }

    /// Adds `n` to tenant `tenant`'s counter `c`, creating the tenant
    /// row on first touch. Host-side (no atomics): meant for the
    /// serving layer's once-per-job accounting, not the machine hot
    /// path.
    pub fn tenant_add(&mut self, tenant: u32, c: TenantCounter, n: u64) {
        let entry = match self.tenants.iter_mut().find(|t| t.tenant == tenant) {
            Some(e) => e,
            None => {
                self.tenants.push(TenantStats {
                    tenant,
                    counters: [0; TenantCounter::COUNT],
                });
                self.tenants.sort_by_key(|t| t.tenant);
                self.tenants
                    .iter_mut()
                    .find(|t| t.tenant == tenant)
                    .expect("just inserted")
            }
        };
        entry.counters[c as usize] += n;
    }

    /// One tenant's counter total (0 for unknown tenants).
    pub fn tenant_total(&self, tenant: u32, c: TenantCounter) -> u64 {
        self.tenants
            .iter()
            .find(|t| t.tenant == tenant)
            .map_or(0, |t| t.counters[c as usize])
    }

    /// The merged event trace, oldest first.
    pub fn trace(&self) -> impl Iterator<Item = &TraceRecord> {
        self.trace.iter()
    }

    /// Trace records lost to ring bounds (per-shard and merged).
    pub fn trace_overwritten(&self) -> u64 {
        self.trace_overwritten
    }

    /// The per-shard trace ring capacity the run traced under (the
    /// largest across absorbed segments; 0 when nothing traced). This
    /// is the *resolved* bound — when the machine config leaves
    /// `trace_cap` at auto, this reports what the auto-scaling chose.
    pub fn trace_cap(&self) -> u64 {
        self.trace_cap
    }

    /// Fraction of all recorded trace events lost to ring overwrites,
    /// in `[0, 1]` — `0.0` when nothing was recorded. A ratio near 1
    /// means the retained trace is a thin recent-history window of the
    /// run; size the ring up (machine `trace_cap`) before reading the
    /// trace as a record of the whole run.
    pub fn trace_overwrite_ratio(&self) -> f64 {
        let recorded = self.trace_overwritten + self.trace.len() as u64;
        if recorded == 0 {
            0.0
        } else {
            self.trace_overwritten as f64 / recorded as f64
        }
    }

    /// Folds one shard's segment telemetry into the run totals,
    /// draining (and so resetting) the live handles.
    pub fn absorb(&mut self, obs: &mut Observability) {
        if obs.mode == ObsMode::Disabled {
            return;
        }
        if self.mode == ObsMode::Disabled || obs.mode == ObsMode::CountersAndTrace {
            self.mode = obs.mode;
        }
        let counters = obs.counters.drain();
        let phases = obs.phases.drain();
        let entry = match self.shards.iter_mut().find(|s| s.shard == obs.shard) {
            Some(e) => e,
            None => {
                self.shards.push(ShardTelemetry {
                    shard: obs.shard,
                    counters: [0; Counter::COUNT],
                    phases: std::array::from_fn(|_| PhaseStats::default()),
                });
                self.shards.sort_by_key(|s| s.shard);
                self.shards
                    .iter_mut()
                    .find(|s| s.shard == obs.shard)
                    .expect("just inserted")
            }
        };
        for (i, c) in Counter::ALL.iter().enumerate() {
            if c.is_gauge() {
                entry.counters[i] = entry.counters[i].max(counters[i]);
            } else {
                entry.counters[i] += counters[i];
            }
        }
        for (slot, seg) in entry.phases.iter_mut().zip(phases.iter()) {
            slot.merge(seg);
        }
        if let Some(t) = &mut obs.tracer {
            self.trace_cap = self.trace_cap.max(t.cap() as u64);
            let (records, lost) = t.drain();
            self.trace_overwritten += lost;
            for r in records {
                if self.trace.len() == RUN_TRACE_CAP {
                    self.trace.pop_front();
                    self.trace_overwritten += 1;
                }
                self.trace.push_back(r);
            }
        }
    }

    /// Folds another run's telemetry into this one (shards merge by
    /// id, tenants by tenant id) — the segment-carry path of the
    /// sharded machine and the server-report path of the serving
    /// layer.
    pub fn merge(&mut self, other: &RunTelemetry) {
        // Tenant counters are host-side and mode-independent, so they
        // merge even from an otherwise-disabled telemetry.
        for ot in &other.tenants {
            for (i, &c) in TenantCounter::ALL.iter().enumerate() {
                if ot.counters[i] > 0 {
                    self.tenant_add(ot.tenant, c, ot.counters[i]);
                }
            }
        }
        if other.mode == ObsMode::Disabled {
            return;
        }
        if self.mode == ObsMode::Disabled || other.mode == ObsMode::CountersAndTrace {
            self.mode = other.mode;
        }
        for os in &other.shards {
            match self.shards.iter_mut().find(|s| s.shard == os.shard) {
                Some(e) => {
                    for (i, c) in Counter::ALL.iter().enumerate() {
                        if c.is_gauge() {
                            e.counters[i] = e.counters[i].max(os.counters[i]);
                        } else {
                            e.counters[i] += os.counters[i];
                        }
                    }
                    for (slot, seg) in e.phases.iter_mut().zip(os.phases.iter()) {
                        slot.merge(seg);
                    }
                }
                None => self.shards.push(os.clone()),
            }
        }
        self.shards.sort_by_key(|s| s.shard);
        self.trace_cap = self.trace_cap.max(other.trace_cap);
        self.trace_overwritten += other.trace_overwritten;
        for r in &other.trace {
            if self.trace.len() == RUN_TRACE_CAP {
                self.trace.pop_front();
                self.trace_overwritten += 1;
            }
            self.trace.push_back(*r);
        }
    }

    /// Counter total across shards (gauges report the max).
    pub fn total(&self, c: Counter) -> u64 {
        let i = c as usize;
        if c.is_gauge() {
            self.shards.iter().map(|s| s.counters[i]).max().unwrap_or(0)
        } else {
            self.shards.iter().map(|s| s.counters[i]).sum()
        }
    }

    /// Phase histogram merged across shards.
    pub fn phase_total(&self, p: Phase) -> PhaseStats {
        let mut out = PhaseStats::default();
        for s in &self.shards {
            out.merge(&s.phases[p as usize]);
        }
        out
    }

    /// Nanoseconds of neuron-tick phase per neuron update (NaN without
    /// phase timing).
    pub fn ns_per_neuron(&self) -> f64 {
        let n = self.total(Counter::NeuronsTicked);
        let t = self.phase_total(Phase::NeuronTick);
        if n == 0 || t.count == 0 {
            f64::NAN
        } else {
            t.sum_ns as f64 / n as f64
        }
    }

    /// Nanoseconds of row-walk phase per synaptic event (NaN without
    /// phase timing).
    pub fn ns_per_synaptic_event(&self) -> f64 {
        let n = self.total(Counter::SynapticEvents);
        let t = self.phase_total(Phase::RowWalk);
        if n == 0 || t.count == 0 {
            f64::NAN
        } else {
            t.sum_ns as f64 / n as f64
        }
    }

    /// Barrier-wait time as a fraction of all timed phase time (NaN
    /// without phase timing).
    pub fn barrier_wait_share(&self) -> f64 {
        let total: u64 = Phase::ALL.iter().map(|&p| self.phase_total(p).sum_ns).sum();
        if total == 0 {
            f64::NAN
        } else {
            self.phase_total(Phase::BarrierWait).sum_ns as f64 / total as f64
        }
    }

    /// Event-count skew across shards: `max/min` of per-shard
    /// dispatched events (1.0 for a single shard, NaN when empty).
    pub fn shard_skew(&self) -> f64 {
        let i = Counter::Events as usize;
        let counts: Vec<u64> = self
            .shards
            .iter()
            .map(|s| s.counters[i])
            .filter(|&c| c > 0)
            .collect();
        match (counts.iter().max(), counts.iter().min()) {
            (Some(&max), Some(&min)) if min > 0 => max as f64 / min as f64,
            _ => f64::NAN,
        }
    }

    /// The human-readable telemetry section of a run report.
    pub fn render_table(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "telemetry:           mode {}, {} shard(s)",
            self.mode,
            self.shards.len()
        );
        let _ = writeln!(
            out,
            "  counters:          {} spikes, {} mc / {} p2p / {} nn packets, {} dropped, {} emergency hops",
            self.total(Counter::Spikes),
            self.total(Counter::PacketsMc),
            self.total(Counter::PacketsP2p),
            self.total(Counter::PacketsNn),
            self.total(Counter::PacketsDropped),
            self.total(Counter::EmergencyHops),
        );
        let _ = writeln!(
            out,
            "  load:              {} events, {} neuron ticks, {} synaptic events, {} DMA B, queue peak {}",
            self.total(Counter::Events),
            self.total(Counter::NeuronsTicked),
            self.total(Counter::SynapticEvents),
            self.total(Counter::DmaBytes),
            self.total(Counter::QueuePeak),
        );
        if self.mode == ObsMode::CountersAndTrace {
            let mut phases = String::new();
            for &p in &Phase::ALL {
                let t = self.phase_total(p);
                if t.count == 0 {
                    continue;
                }
                let _ = write!(
                    phases,
                    "{} {:.2} ms ({} x {:.0} ns)  ",
                    p.name(),
                    t.sum_ns as f64 / 1e6,
                    t.count,
                    t.mean_ns()
                );
            }
            let _ = writeln!(out, "  phases:            {}", phases.trim_end());
            let _ = writeln!(
                out,
                "  per-loop:          {:.1} ns/neuron, {:.1} ns/synaptic-event, barrier share {:.1}%",
                self.ns_per_neuron(),
                self.ns_per_synaptic_event(),
                100.0 * if self.barrier_wait_share().is_nan() {
                    0.0
                } else {
                    self.barrier_wait_share()
                },
            );
            let _ = writeln!(
                out,
                "  trace:             {} record(s), {} overwritten ({:.1}% lost), ring cap {}",
                self.trace.len(),
                self.trace_overwritten,
                100.0 * self.trace_overwrite_ratio(),
                self.trace_cap
            );
        }
        if self.shards.len() > 1 {
            let skew = self.shard_skew();
            let _ = writeln!(
                out,
                "  shard skew:        events max/min {:.2}x across {} shards",
                skew,
                self.shards.len()
            );
        }
        for t in &self.tenants {
            let served = t.counters[TenantCounter::JobsCompleted as usize];
            let warm = t.counters[TenantCounter::WarmHits as usize];
            let _ = writeln!(
                out,
                "  tenant {:<4}        {} admitted / {} rejected / {} served, {} bio-ms, {} spikes, warm {}/{}",
                t.tenant,
                t.counters[TenantCounter::JobsAdmitted as usize],
                t.counters[TenantCounter::JobsRejected as usize],
                served,
                t.counters[TenantCounter::BioMs as usize],
                t.counters[TenantCounter::Spikes as usize],
                warm,
                served,
            );
        }
        out
    }

    /// Flushes the merged event trace as JSONL: one object per record
    /// (`{"t_ns":…,"kind":"…","a":…,"b":…}`), oldest first.
    pub fn trace_jsonl(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for r in &self.trace {
            let _ = writeln!(
                out,
                "{{\"t_ns\":{},\"kind\":\"{}\",\"a\":{},\"b\":{}}}",
                r.time_ns,
                r.kind.name(),
                r.a,
                r.b
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handles_are_inert() {
        let shard = CounterShard::default();
        shard.add(Counter::Spikes, 5);
        shard.gauge_max(Counter::QueuePeak, 9);
        assert_eq!(shard.snapshot(), [0; Counter::COUNT]);
        let probe = PhaseProbe::default();
        let tok = probe.start();
        probe.record(Phase::QueuePop, tok);
        assert!(probe.drain().iter().all(|p| p.count == 0));
    }

    #[test]
    fn counters_add_and_gauge() {
        let shard = CounterShard::enabled();
        shard.add(Counter::Spikes, 2);
        shard.add(Counter::Spikes, 3);
        shard.gauge_max(Counter::QueuePeak, 7);
        shard.gauge_max(Counter::QueuePeak, 4);
        let snap = shard.snapshot();
        assert_eq!(snap[Counter::Spikes as usize], 5);
        assert_eq!(snap[Counter::QueuePeak as usize], 7);
        // Clones share storage.
        let clone = shard.clone();
        clone.add(Counter::Spikes, 1);
        assert_eq!(shard.snapshot()[Counter::Spikes as usize], 6);
        // Drain resets.
        assert_eq!(shard.drain()[Counter::Spikes as usize], 6);
        assert_eq!(shard.snapshot()[Counter::Spikes as usize], 0);
    }

    #[test]
    fn log2_buckets() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), PHASE_BUCKETS - 1);
    }

    #[test]
    fn phase_probe_records() {
        let probe = PhaseProbe::enabled();
        let tok = probe.start();
        probe.record(Phase::NeuronTick, tok);
        let stats = probe.drain();
        assert_eq!(stats[Phase::NeuronTick as usize].count, 1);
        assert_eq!(
            stats[Phase::NeuronTick as usize]
                .buckets
                .iter()
                .sum::<u64>(),
            1
        );
        // Drained.
        assert_eq!(probe.drain()[Phase::NeuronTick as usize].count, 0);
    }

    #[test]
    fn tracer_bounds_and_accounts() {
        let mut t = Tracer::new(3);
        for i in 0..5u32 {
            t.record(i as u64, TraceKind::Spike, i, 0);
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.overwritten(), 2);
        let (records, lost) = t.drain();
        assert_eq!(lost, 2);
        assert_eq!(
            records.iter().map(|r| r.a).collect::<Vec<_>>(),
            vec![2, 3, 4]
        );
        assert!(t.is_empty());
        assert_eq!(t.overwritten(), 0);
    }

    #[test]
    fn telemetry_absorbs_shards_by_id() {
        let mut run = RunTelemetry::default();
        let mut s0 = Observability::for_shard(ObsMode::Counters, 0);
        let mut s1 = Observability::for_shard(ObsMode::Counters, 1);
        s0.counters().add(Counter::Spikes, 10);
        s0.counters().gauge_max(Counter::QueuePeak, 5);
        s1.counters().add(Counter::Spikes, 4);
        run.absorb(&mut s0);
        run.absorb(&mut s1);
        // A second segment on shard 0 accumulates.
        s0.counters().add(Counter::Spikes, 1);
        s0.counters().gauge_max(Counter::QueuePeak, 3);
        run.absorb(&mut s0);
        assert_eq!(run.shards().len(), 2);
        assert_eq!(run.total(Counter::Spikes), 15);
        assert_eq!(run.total(Counter::QueuePeak), 5);
        assert!(run.is_enabled());
    }

    #[test]
    fn telemetry_merges_traces_and_renders() {
        let mut run = RunTelemetry::default();
        let mut obs = Observability::new(ObsMode::CountersAndTrace);
        obs.counters().add(Counter::Spikes, 1);
        obs.counters().add(Counter::NeuronsTicked, 2);
        obs.counters().add(Counter::SynapticEvents, 3);
        let tok = obs.phases().start();
        obs.phases().record(Phase::NeuronTick, tok);
        obs.trace(1_000, TraceKind::Spike, 0x10, 0);
        obs.trace(2_000, TraceKind::Drop, 0x20, 3);
        run.absorb(&mut obs);
        assert_eq!(run.trace().count(), 2);
        let jsonl = run.trace_jsonl();
        assert!(jsonl.contains("\"kind\":\"spike\""), "{jsonl}");
        assert!(jsonl.contains("\"kind\":\"drop\""), "{jsonl}");
        assert_eq!(jsonl.lines().count(), 2);
        let table = run.render_table();
        assert!(table.contains("telemetry:"), "{table}");
        assert!(table.contains("counters+trace"), "{table}");
        assert!(table.contains("ns/neuron"), "{table}");
    }

    #[test]
    fn disabled_absorb_is_a_noop() {
        let mut run = RunTelemetry::default();
        let mut obs = Observability::new(ObsMode::Disabled);
        obs.counters().add(Counter::Spikes, 99);
        run.absorb(&mut obs);
        assert!(!run.is_enabled());
        assert!(run.shards().is_empty());
    }

    #[test]
    fn tenant_counters_accumulate_merge_and_render() {
        let mut a = RunTelemetry::default();
        a.tenant_add(1, TenantCounter::JobsAdmitted, 3);
        a.tenant_add(1, TenantCounter::JobsCompleted, 2);
        a.tenant_add(0, TenantCounter::JobsRejected, 1);
        assert_eq!(a.tenant_total(1, TenantCounter::JobsAdmitted), 3);
        assert_eq!(a.tenant_total(9, TenantCounter::JobsAdmitted), 0);
        // Rows stay ordered by tenant id.
        assert_eq!(
            a.tenants().iter().map(|t| t.tenant).collect::<Vec<_>>(),
            vec![0, 1]
        );
        // Merge folds tenants even from a mode-Disabled telemetry.
        let mut b = RunTelemetry::default();
        b.tenant_add(1, TenantCounter::JobsAdmitted, 4);
        b.tenant_add(2, TenantCounter::WarmHits, 5);
        a.merge(&b);
        assert!(!a.is_enabled());
        assert_eq!(a.tenant_total(1, TenantCounter::JobsAdmitted), 7);
        assert_eq!(a.tenant_total(2, TenantCounter::WarmHits), 5);
        let table = a.render_table();
        assert!(table.contains("tenant 1"), "{table}");
        assert!(table.contains("admitted"), "{table}");
    }

    #[test]
    fn run_merge_combines_by_shard() {
        let mut a = RunTelemetry::default();
        let mut b = RunTelemetry::default();
        let mut s = Observability::for_shard(ObsMode::Counters, 2);
        s.counters().add(Counter::Events, 7);
        a.absorb(&mut s);
        s.counters().add(Counter::Events, 5);
        b.absorb(&mut s);
        a.merge(&b);
        assert_eq!(a.total(Counter::Events), 12);
        assert_eq!(a.shards().len(), 1);
    }
}
