//! A minimal, offline, API-compatible stand-in for `proptest`.
//!
//! The build environment has no crates.io access, so this workspace
//! vendors the slice of the proptest API its property tests use:
//!
//! * the [`proptest!`] macro with `pattern in strategy` arguments and an
//!   optional `#![proptest_config(..)]` header,
//! * [`prop_assert!`] / [`prop_assert_eq!`],
//! * range and [`arbitrary::any`] strategies, tuple strategies,
//!   `prop_map`, [`collection::vec`] and [`array::uniform3`].
//!
//! Differences from the real crate: cases are generated from a
//! deterministic per-test RNG (seeded from the test name, so failures
//! reproduce exactly), there is **no shrinking**, and the default case
//! count is 64 rather than 256 to keep offline CI fast.

#![forbid(unsafe_code)]

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use crate::test_runner::TestRng;

    /// A generator of test values.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Produces one value from `rng`.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    /// Types that can be sampled uniformly from a half-open range.
    pub trait SampleUniform: Copy {
        /// Uniform draw from `[lo, hi)` (`hi` exclusive).
        fn sample(rng: &mut TestRng, lo: Self, hi: Self) -> Self;
        /// The successor value, saturating (used for inclusive ranges).
        fn successor(self) -> Self;
    }

    macro_rules! impl_sample_int {
        ($($t:ty),*) => {$(
            impl SampleUniform for $t {
                fn sample(rng: &mut TestRng, lo: Self, hi: Self) -> Self {
                    assert!(lo < hi, "empty range");
                    let span = (hi as i128) - (lo as i128);
                    let off = (rng.next_u64() as i128).rem_euclid(span);
                    (lo as i128 + off) as $t
                }
                fn successor(self) -> Self {
                    self.saturating_add(1)
                }
            }
        )*};
    }
    impl_sample_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_sample_float {
        ($($t:ty),*) => {$(
            impl SampleUniform for $t {
                fn sample(rng: &mut TestRng, lo: Self, hi: Self) -> Self {
                    assert!(lo < hi, "empty range");
                    let u = rng.next_f64() as $t;
                    lo + (hi - lo) * u
                }
                fn successor(self) -> Self {
                    self
                }
            }
        )*};
    }
    impl_sample_float!(f32, f64);

    impl<T: SampleUniform> Strategy for std::ops::Range<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::sample(rng, self.start, self.end)
        }
    }

    impl<T: SampleUniform> Strategy for std::ops::RangeInclusive<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::sample(rng, *self.start(), self.end().successor())
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($s:ident/$idx:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A / 0);
    impl_tuple_strategy!(A / 0, B / 1);
    impl_tuple_strategy!(A / 0, B / 1, C / 2);
    impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3);
    impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4);
    impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5);

    /// Marker strategy returned by [`crate::arbitrary::any`].
    pub struct Any<T>(pub(crate) std::marker::PhantomData<T>);

    impl<T: crate::arbitrary::Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

pub mod arbitrary {
    //! The [`Arbitrary`] trait: unconstrained value generation.

    use crate::strategy::Any;
    use crate::test_runner::TestRng;

    /// Types with a canonical unconstrained generator.
    pub trait Arbitrary {
        /// Produces one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// The strategy generating any value of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_f64()
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_f64() as f32
        }
    }

    impl<T: Arbitrary> Arbitrary for Option<T> {
        fn arbitrary(rng: &mut TestRng) -> Self {
            if rng.next_u64() & 1 == 0 {
                None
            } else {
                Some(T::arbitrary(rng))
            }
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for a `Vec` whose length is drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    /// A vector of `element`-generated values with a length in `len`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.clone().generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod array {
    //! Fixed-size array strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `[T; 3]` from one element strategy.
    pub struct Uniform3<S>(S);

    /// Three independent draws from `element`.
    pub fn uniform3<S: Strategy>(element: S) -> Uniform3<S> {
        Uniform3(element)
    }

    impl<S: Strategy> Strategy for Uniform3<S> {
        type Value = [S::Value; 3];
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            [
                self.0.generate(rng),
                self.0.generate(rng),
                self.0.generate(rng),
            ]
        }
    }
}

pub mod test_runner {
    //! Test execution: configuration, RNG and failure type.

    /// Per-test configuration (only `cases` is honoured by the stub).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        /// 64 cases, overridable through the `PROPTEST_CASES`
        /// environment variable — the same knob the real crate reads,
        /// which the nightly CI job sets to 1024. An explicit
        /// [`ProptestConfig::with_cases`] wins over the environment,
        /// as an explicit `cases` field does in the real crate.
        fn default() -> Self {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .filter(|&n| n > 0)
                .unwrap_or(64);
            ProptestConfig { cases }
        }
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Persists a failing case for CI artifact upload: when
    /// `PROPTEST_FAILURE_DIR` is set, appends a reproduction record to
    /// `<dir>/<test_name>.seed` before the test panics. The stub's RNG
    /// stream is a pure function of the test name, so the recorded
    /// `(test, case index)` pair *is* the failing seed.
    pub fn record_failure(test: &str, case: u32, cases: u32, message: &str) {
        let Ok(dir) = std::env::var("PROPTEST_FAILURE_DIR") else {
            return;
        };
        if dir.is_empty() {
            return;
        }
        let _ = std::fs::create_dir_all(&dir);
        let path = std::path::Path::new(&dir).join(format!("{test}.seed"));
        let record = format!(
            "test: {test}\ncase: {case} of {cases}\nreproduce: the stub RNG is \
             seeded from the test name; re-run `cargo test {test}` with \
             PROPTEST_CASES>={case} and it fails at the same case\nmessage: \
             {message}\n---\n"
        );
        use std::io::Write as _;
        if let Ok(mut f) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
        {
            let _ = f.write_all(record.as_bytes());
        }
    }

    /// A failed property case.
    #[derive(Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// Builds a failure with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Deterministic xoshiro256** RNG seeded from the test name.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// An RNG whose stream is a pure function of `name`.
        pub fn deterministic(name: &str) -> Self {
            // FNV-1a over the name, then splitmix64 to fill the state.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            let mut s = [0u64; 4];
            for slot in &mut s {
                h = h.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = h;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                *slot = z ^ (z >> 31);
            }
            TestRng { s }
        }

        /// Next 64 uniform random bits.
        pub fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        /// Uniform in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Declares property tests: `#[test] fn name(pat in strategy, ..) { .. }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            cfg = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr;
     $( $(#[$meta:meta])* fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng =
                    $crate::test_runner::TestRng::deterministic(stringify!($name));
                for case in 0..config.cases {
                    let outcome: ::core::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > = (|| {
                        $(
                            let $pat =
                                $crate::strategy::Strategy::generate(&($strat), &mut rng);
                        )+
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    if let ::core::result::Result::Err(e) = outcome {
                        $crate::test_runner::record_failure(
                            stringify!($name), case, config.cases, &e.to_string(),
                        );
                        panic!(
                            "proptest {} failed at case {}/{}: {}",
                            stringify!($name), case, config.cases, e
                        );
                    }
                }
            }
        )*
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    // No-message form: avoid format!() so stringified conditions that
    // contain braces (closures) cannot break the format parser.
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {:?} == {:?}: {}", l, r, format!($($fmt)+)
        );
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} != {:?}", l, r);
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = crate::test_runner::TestRng::deterministic("x");
        let mut b = crate::test_runner::TestRng::deterministic("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u32..10, y in -5i32..5, f in 0.0f64..1.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-5..5).contains(&y));
            prop_assert!((0.0..1.0).contains(&f));
        }

        #[test]
        fn inclusive_range_hits_upper(d in 1u8..=16) {
            prop_assert!((1..=16).contains(&d));
        }

        #[test]
        fn vec_and_tuple_strategies(v in crate::collection::vec((0u8..4, any::<u32>()), 0..9)) {
            prop_assert!(v.len() < 9);
            for (a, _) in v {
                prop_assert!(a < 4);
            }
        }

        #[test]
        fn map_and_array(arr in crate::array::uniform3(0u32..7).prop_map(|[a, b, c]| a + b + c)) {
            prop_assert!(arr <= 18);
        }
    }
}
