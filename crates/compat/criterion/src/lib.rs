//! A minimal, offline, API-compatible stand-in for the `criterion`
//! benchmark harness.
//!
//! The build environment has no crates.io access, so this workspace
//! vendors the small slice of the criterion API its benches actually use:
//! [`Criterion::bench_function`], [`Bencher::iter`], [`black_box`], and
//! the [`criterion_group!`]/[`criterion_main!`] macros. Measurements are
//! real (monotonic-clock timing with warm-up and multiple samples); the
//! statistics are deliberately simple — median and min/max over the
//! samples — and results are printed to stdout rather than saved to
//! `target/criterion`.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Re-export mirroring `criterion::black_box` (uses the std hint).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// The benchmark driver: collects timing samples and prints a summary.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_millis(600),
        }
    }
}

impl Criterion {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Accepted for API compatibility; command-line filters are ignored.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Sets the target total measurement time per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Runs one benchmark closure and prints its timing summary.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        // Warm-up + calibration pass: discover the per-iteration cost.
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let per_iter = b.elapsed.max(Duration::from_nanos(1));
        // Choose an iteration count so one sample is neither trivially
        // short nor longer than the measurement budget allows.
        let budget = self.measurement_time / self.sample_size as u32;
        let iters = (budget.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u64;

        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            samples.push(b.elapsed.as_secs_f64() / iters as f64);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite sample"));
        let median = samples[samples.len() / 2];
        let lo = samples[0];
        let hi = samples[samples.len() - 1];
        println!(
            "{name:<44} time: [{} {} {}]  ({} samples x {} iters)",
            fmt_time(lo),
            fmt_time(median),
            fmt_time(hi),
            samples.len(),
            iters
        );
        self
    }

    /// Prints the closing line (the real criterion writes reports here).
    pub fn final_summary(&mut self) {
        println!("(criterion stub: offline summary only)");
    }
}

/// Passed to the benchmark closure; times the routine under test.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it the harness-chosen number of times.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} us", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.2} s")
    }
}

/// Declares a benchmark group: a function running each listed benchmark.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $( $target(&mut c); )+
            c.final_summary();
        }
    };
}

/// Declares the bench `main` that runs the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_prints() {
        let mut c = Criterion::default().sample_size(3);
        let mut calls = 0u64;
        c.bench_function("noop", |b| {
            b.iter(|| {
                calls += 1;
            })
        });
        assert!(calls > 0);
    }

    #[test]
    fn time_formatting_scales() {
        assert!(fmt_time(2e-9).ends_with("ns"));
        assert!(fmt_time(2e-6).ends_with("us"));
        assert!(fmt_time(2e-3).ends_with("ms"));
        assert!(fmt_time(2.0).ends_with(" s"));
    }
}
