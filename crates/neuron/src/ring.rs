//! The deferred-event input ring buffer: §3.2's "soft delays".
//!
//! Electronic spike transit is effectively instantaneous on biological
//! timescales, but biological axonal/synaptic delays are "almost
//! certainly functional, so they can't simply be eliminated in the
//! model. Instead, they are made 'soft'": every synapse carries a 1–16 ms
//! delay that is re-inserted at the target neuron \[5\]. The mechanism is
//! this ring of 16 one-millisecond accumulator slots: a spike arriving
//! now with delay *d* deposits its weight into the slot that the timer
//! interrupt will drain *d* ticks later.

/// Number of delay slots (4-bit delay field: 1–16 ms).
pub const RING_SLOTS: usize = 16;

/// The per-core input ring buffer: `RING_SLOTS` slots × one 8.8
/// fixed-point accumulator per neuron.
///
/// # Example
///
/// ```
/// use spinn_neuron::ring::InputRing;
///
/// let mut ring = InputRing::new(4);
/// ring.deposit(3, 2, 256); // +1.0 nA to neuron 2, 3 ms from now
/// assert_eq!(ring.tick()[2], 0);   // t+1: nothing
/// assert_eq!(ring.tick()[2], 0);   // t+2: nothing
/// assert_eq!(ring.tick()[2], 256); // t+3: arrives
/// ```
#[derive(Clone, Debug)]
pub struct InputRing {
    slots: Vec<Vec<i32>>,
    cursor: usize,
    neurons: usize,
    drained: Vec<i32>,
}

impl InputRing {
    /// Creates a ring for `neurons` accumulators per slot.
    pub fn new(neurons: usize) -> Self {
        InputRing {
            slots: vec![vec![0; neurons]; RING_SLOTS],
            cursor: 0,
            neurons,
            drained: vec![0; neurons],
        }
    }

    /// Number of neurons per slot.
    pub fn neurons(&self) -> usize {
        self.neurons
    }

    /// Adds `weight_raw` (8.8 fixed point) to `neuron`'s accumulator
    /// `delay_ms` ticks in the future.
    ///
    /// # Panics
    ///
    /// Panics if `delay_ms` is outside `1..=16` or `neuron` is out of
    /// range.
    pub fn deposit(&mut self, delay_ms: u8, neuron: usize, weight_raw: i32) {
        assert!(
            (1..=RING_SLOTS as u8).contains(&delay_ms),
            "delay {delay_ms} outside 1..=16"
        );
        assert!(neuron < self.neurons, "neuron {neuron} out of range");
        let slot = (self.cursor + delay_ms as usize) % RING_SLOTS;
        self.slots[slot][neuron] = self.slots[slot][neuron].saturating_add(weight_raw);
    }

    /// Advances the ring by 1 ms and returns the accumulated input for
    /// the new current tick (8.8 fixed point per neuron). The returned
    /// slice is valid until the next call.
    pub fn tick(&mut self) -> &[i32] {
        self.cursor = (self.cursor + 1) % RING_SLOTS;
        std::mem::swap(&mut self.drained, &mut self.slots[self.cursor]);
        self.slots[self.cursor].fill(0);
        &self.drained
    }

    /// The input drained by the most recent [`InputRing::tick`].
    pub fn current(&self) -> &[i32] {
        &self.drained
    }

    /// Total absolute charge currently queued (diagnostics).
    pub fn queued_magnitude(&self) -> i64 {
        self.slots
            .iter()
            .flat_map(|s| s.iter())
            .map(|&w| (w as i64).abs())
            .sum()
    }

    /// Memory footprint of the ring in the core's DTCM, bytes.
    pub fn size_bytes(&self) -> usize {
        RING_SLOTS * self.neurons * 4
    }

    /// Serializes the ring's complete state — cursor, every delay
    /// slot's accumulators and the most recently drained slot — for
    /// checkpoints. Accumulators are stored sparsely (only non-zero
    /// entries), so a quiet ring costs a handful of bytes regardless of
    /// neuron count.
    pub fn encode(&self, enc: &mut spinn_sim::wire::Enc) {
        enc.seq(self.neurons);
        enc.u8(self.cursor as u8);
        let nonzero = |v: &[i32]| v.iter().filter(|&&w| w != 0).count();
        enc.seq(self.slots.iter().map(|s| nonzero(s)).sum());
        for (si, slot) in self.slots.iter().enumerate() {
            for (n, &w) in slot.iter().enumerate() {
                if w != 0 {
                    enc.u8(si as u8).u32(n as u32).i32(w);
                }
            }
        }
        enc.seq(nonzero(&self.drained));
        for (n, &w) in self.drained.iter().enumerate() {
            if w != 0 {
                enc.u32(n as u32).i32(w);
            }
        }
    }

    /// Rebuilds a ring from [`InputRing::encode`] bytes.
    ///
    /// # Errors
    ///
    /// Returns a [`spinn_sim::wire::WireError`] on truncated or corrupt
    /// input.
    pub fn decode(
        dec: &mut spinn_sim::wire::Dec<'_>,
    ) -> Result<InputRing, spinn_sim::wire::WireError> {
        use spinn_sim::wire::WireError;
        // The neuron count is a *logical* size (the slots are stored
        // sparsely), so it is not bounded by the remaining bytes.
        let neurons = dec.u64()?;
        if neurons > u32::MAX as u64 {
            return Err(WireError::Corrupt("ring size"));
        }
        let neurons = neurons as usize;
        let cursor = dec.u8()? as usize;
        if cursor >= RING_SLOTS {
            return Err(WireError::Corrupt("ring cursor"));
        }
        let mut ring = InputRing::new(neurons);
        ring.cursor = cursor;
        let n_slot_entries = dec.seq(9)?;
        for _ in 0..n_slot_entries {
            let slot = dec.u8()? as usize;
            let neuron = dec.u32()? as usize;
            if slot >= RING_SLOTS || neuron >= neurons {
                return Err(WireError::Corrupt("ring entry index"));
            }
            ring.slots[slot][neuron] = dec.i32()?;
        }
        let n_drained = dec.seq(8)?;
        for _ in 0..n_drained {
            let neuron = dec.u32()? as usize;
            if neuron >= neurons {
                return Err(WireError::Corrupt("ring drained index"));
            }
            ring.drained[neuron] = dec.i32()?;
        }
        Ok(ring)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delay_exactness_all_delays() {
        // A weight deposited with delay d arrives after exactly d ticks —
        // the soft-delay invariant of §3.2.
        for d in 1..=16u8 {
            let mut ring = InputRing::new(2);
            ring.deposit(d, 1, 100);
            for t in 1..=16 {
                let drained = ring.tick()[1];
                if t == d as usize {
                    assert_eq!(drained, 100, "delay {d} arrived at tick {t}");
                } else {
                    assert_eq!(drained, 0, "delay {d} leaked at tick {t}");
                }
            }
        }
    }

    #[test]
    fn accumulation_in_same_slot() {
        let mut ring = InputRing::new(1);
        ring.deposit(2, 0, 10);
        ring.deposit(2, 0, -3);
        ring.tick();
        assert_eq!(ring.tick()[0], 7);
    }

    #[test]
    fn wraparound_reuse() {
        let mut ring = InputRing::new(1);
        for round in 0..5 {
            ring.deposit(16, 0, round + 1);
            for t in 1..=16 {
                let v = ring.tick()[0];
                if t == 16 {
                    assert_eq!(v, round + 1);
                } else {
                    assert_eq!(v, 0);
                }
            }
        }
    }

    #[test]
    fn deposits_during_drain_cycle_do_not_collide() {
        let mut ring = InputRing::new(1);
        ring.deposit(1, 0, 5);
        assert_eq!(ring.tick()[0], 5);
        // Slot was cleared after draining: new deposit lands cleanly
        // 16 ticks out.
        ring.deposit(16, 0, 9);
        for t in 1..=16 {
            let v = ring.tick()[0];
            assert_eq!(v, if t == 16 { 9 } else { 0 }, "tick {t}");
        }
    }

    #[test]
    fn saturating_accumulator() {
        let mut ring = InputRing::new(1);
        ring.deposit(1, 0, i32::MAX);
        ring.deposit(1, 0, i32::MAX);
        assert_eq!(ring.tick()[0], i32::MAX);
    }

    #[test]
    fn current_mirrors_last_tick() {
        let mut ring = InputRing::new(3);
        ring.deposit(1, 2, 42);
        ring.tick();
        assert_eq!(ring.current(), &[0, 0, 42]);
    }

    #[test]
    fn queued_magnitude_and_size() {
        let mut ring = InputRing::new(10);
        assert_eq!(ring.size_bytes(), 16 * 10 * 4);
        ring.deposit(4, 0, -50);
        ring.deposit(9, 3, 30);
        assert_eq!(ring.queued_magnitude(), 80);
        ring.tick();
        assert_eq!(ring.queued_magnitude(), 80); // nothing drained yet
    }

    #[test]
    #[should_panic(expected = "outside 1..=16")]
    fn zero_delay_rejected() {
        InputRing::new(1).deposit(0, 0, 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn neuron_bounds_checked() {
        InputRing::new(1).deposit(1, 1, 1);
    }
}
