//! The common interface of all neuron models.

use crate::izhikevich::IzhikevichNeuron;
use crate::lif::LifNeuron;

/// A point-neuron model advanced in 1 ms steps by the timer interrupt
/// (Fig. 7 of the paper: "update_Neurons()" at priority 3).
pub trait NeuronModel {
    /// Advances the dynamics by 1 ms under `input_current` (nA summed
    /// from the deferred-event ring buffer) and reports whether the
    /// neuron fired.
    fn step_1ms(&mut self, input_current: f32) -> bool;

    /// Current membrane potential, mV.
    fn membrane_mv(&self) -> f32;

    /// Returns the neuron to its resting state.
    fn reset_state(&mut self);
}

/// Any supported neuron model (enum dispatch keeps per-neuron state
/// `Sized` and cache-friendly — a core simulates hundreds of these).
#[derive(Clone, Debug)]
pub enum AnyNeuron {
    /// Izhikevich in 16.16 fixed point.
    Izhikevich(IzhikevichNeuron),
    /// Leaky integrate-and-fire.
    Lif(LifNeuron),
}

impl AnyNeuron {
    /// Serializes the neuron's complete dynamic state (parameters and
    /// membrane variables, bit-exact) for checkpoints.
    pub fn encode(&self, enc: &mut spinn_sim::wire::Enc) {
        match self {
            AnyNeuron::Izhikevich(n) => {
                enc.u8(0);
                enc.f32(n.params.a)
                    .f32(n.params.b)
                    .f32(n.params.c)
                    .f32(n.params.d);
                for fx in [n.a, n.b, n.c, n.d, n.v, n.u] {
                    enc.i32(fx.to_bits());
                }
            }
            AnyNeuron::Lif(n) => {
                enc.u8(1);
                let p = &n.params;
                enc.f32(p.v_rest)
                    .f32(p.v_thresh)
                    .f32(p.v_reset)
                    .f32(p.tau_m)
                    .f32(p.r_m)
                    .u32(p.t_refract);
                enc.f32(n.v).u32(n.refract_left);
            }
        }
    }

    /// Rebuilds a neuron from [`AnyNeuron::encode`] bytes.
    ///
    /// # Errors
    ///
    /// Returns a [`spinn_sim::wire::WireError`] on truncated or corrupt
    /// input.
    pub fn decode(
        dec: &mut spinn_sim::wire::Dec<'_>,
    ) -> Result<AnyNeuron, spinn_sim::wire::WireError> {
        use crate::fixed::Fix1616;
        use crate::izhikevich::IzhikevichParams;
        use crate::lif::LifParams;
        match dec.u8()? {
            0 => {
                let params = IzhikevichParams {
                    a: dec.f32()?,
                    b: dec.f32()?,
                    c: dec.f32()?,
                    d: dec.f32()?,
                };
                let mut fx = [Fix1616::ZERO; 6];
                for slot in &mut fx {
                    *slot = Fix1616::from_bits(dec.i32()?);
                }
                Ok(AnyNeuron::Izhikevich(IzhikevichNeuron {
                    params,
                    a: fx[0],
                    b: fx[1],
                    c: fx[2],
                    d: fx[3],
                    v: fx[4],
                    u: fx[5],
                }))
            }
            1 => {
                let params = LifParams {
                    v_rest: dec.f32()?,
                    v_thresh: dec.f32()?,
                    v_reset: dec.f32()?,
                    tau_m: dec.f32()?,
                    r_m: dec.f32()?,
                    t_refract: dec.u32()?,
                };
                Ok(AnyNeuron::Lif(LifNeuron {
                    params,
                    v: dec.f32()?,
                    refract_left: dec.u32()?,
                }))
            }
            _ => Err(spinn_sim::wire::WireError::Corrupt("neuron model tag")),
        }
    }
}

impl NeuronModel for AnyNeuron {
    fn step_1ms(&mut self, input_current: f32) -> bool {
        match self {
            AnyNeuron::Izhikevich(n) => n.step_1ms(input_current),
            AnyNeuron::Lif(n) => n.step_1ms(input_current),
        }
    }

    fn membrane_mv(&self) -> f32 {
        match self {
            AnyNeuron::Izhikevich(n) => n.membrane_mv(),
            AnyNeuron::Lif(n) => n.membrane_mv(),
        }
    }

    fn reset_state(&mut self) {
        match self {
            AnyNeuron::Izhikevich(n) => n.reset_state(),
            AnyNeuron::Lif(n) => n.reset_state(),
        }
    }
}

impl From<IzhikevichNeuron> for AnyNeuron {
    fn from(n: IzhikevichNeuron) -> Self {
        AnyNeuron::Izhikevich(n)
    }
}

impl From<LifNeuron> for AnyNeuron {
    fn from(n: LifNeuron) -> Self {
        AnyNeuron::Lif(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::izhikevich::IzhikevichParams;
    use crate::lif::LifParams;

    #[test]
    fn enum_dispatch_matches_concrete() {
        let mut direct = IzhikevichNeuron::new(IzhikevichParams::regular_spiking());
        let mut any: AnyNeuron = IzhikevichNeuron::new(IzhikevichParams::regular_spiking()).into();
        for t in 0..500 {
            let i = if t % 3 == 0 { 12.0 } else { 4.0 };
            assert_eq!(direct.step_1ms(i), any.step_1ms(i), "tick {t}");
            assert_eq!(direct.membrane_mv(), any.membrane_mv());
        }
    }

    #[test]
    fn conversions() {
        let a: AnyNeuron = LifNeuron::new(LifParams::default()).into();
        assert!(matches!(a, AnyNeuron::Lif(_)));
        let b: AnyNeuron = IzhikevichNeuron::new(IzhikevichParams::chattering()).into();
        assert!(matches!(b, AnyNeuron::Izhikevich(_)));
    }

    #[test]
    fn reset_through_trait() {
        let mut a: AnyNeuron = LifNeuron::new(LifParams::default()).into();
        for _ in 0..20 {
            a.step_1ms(10.0);
        }
        a.reset_state();
        assert_eq!(a.membrane_mv(), -65.0);
    }
}
