//! The common interface of all neuron models.

use crate::izhikevich::IzhikevichNeuron;
use crate::lif::LifNeuron;

/// A point-neuron model advanced in 1 ms steps by the timer interrupt
/// (Fig. 7 of the paper: "update_Neurons()" at priority 3).
pub trait NeuronModel {
    /// Advances the dynamics by 1 ms under `input_current` (nA summed
    /// from the deferred-event ring buffer) and reports whether the
    /// neuron fired.
    fn step_1ms(&mut self, input_current: f32) -> bool;

    /// Current membrane potential, mV.
    fn membrane_mv(&self) -> f32;

    /// Returns the neuron to its resting state.
    fn reset_state(&mut self);
}

/// Any supported neuron model (enum dispatch keeps per-neuron state
/// `Sized` and cache-friendly — a core simulates hundreds of these).
#[derive(Clone, Debug)]
pub enum AnyNeuron {
    /// Izhikevich in 16.16 fixed point.
    Izhikevich(IzhikevichNeuron),
    /// Leaky integrate-and-fire.
    Lif(LifNeuron),
}

impl NeuronModel for AnyNeuron {
    fn step_1ms(&mut self, input_current: f32) -> bool {
        match self {
            AnyNeuron::Izhikevich(n) => n.step_1ms(input_current),
            AnyNeuron::Lif(n) => n.step_1ms(input_current),
        }
    }

    fn membrane_mv(&self) -> f32 {
        match self {
            AnyNeuron::Izhikevich(n) => n.membrane_mv(),
            AnyNeuron::Lif(n) => n.membrane_mv(),
        }
    }

    fn reset_state(&mut self) {
        match self {
            AnyNeuron::Izhikevich(n) => n.reset_state(),
            AnyNeuron::Lif(n) => n.reset_state(),
        }
    }
}

impl From<IzhikevichNeuron> for AnyNeuron {
    fn from(n: IzhikevichNeuron) -> Self {
        AnyNeuron::Izhikevich(n)
    }
}

impl From<LifNeuron> for AnyNeuron {
    fn from(n: LifNeuron) -> Self {
        AnyNeuron::Lif(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::izhikevich::IzhikevichParams;
    use crate::lif::LifParams;

    #[test]
    fn enum_dispatch_matches_concrete() {
        let mut direct = IzhikevichNeuron::new(IzhikevichParams::regular_spiking());
        let mut any: AnyNeuron = IzhikevichNeuron::new(IzhikevichParams::regular_spiking()).into();
        for t in 0..500 {
            let i = if t % 3 == 0 { 12.0 } else { 4.0 };
            assert_eq!(direct.step_1ms(i), any.step_1ms(i), "tick {t}");
            assert_eq!(direct.membrane_mv(), any.membrane_mv());
        }
    }

    #[test]
    fn conversions() {
        let a: AnyNeuron = LifNeuron::new(LifParams::default()).into();
        assert!(matches!(a, AnyNeuron::Lif(_)));
        let b: AnyNeuron = IzhikevichNeuron::new(IzhikevichParams::chattering()).into();
        assert!(matches!(b, AnyNeuron::Izhikevich(_)));
    }

    #[test]
    fn reset_through_trait() {
        let mut a: AnyNeuron = LifNeuron::new(LifParams::default()).into();
        for _ in 0..20 {
            a.step_1ms(10.0);
        }
        a.reset_state();
        assert_eq!(a.membrane_mv(), -65.0);
    }
}
