//! The §5.4 retina: centre-surround ganglion cells, lateral inhibition,
//! rank-order readout, and fault tolerance through receptive-field
//! overlap.
//!
//! "In the retina ... the spiking ganglion cells have characteristic
//! centre-on surround-off ('Mexican hat') ... receptive fields,
//! representing an array of two-dimensional filters ... The filters cover
//! the retina at different overlapping scales, and lateral inhibition
//! reduces the information redundancy ... If a neuron fails it will cease
//! to generate output and also cease to generate lateral inhibition, so a
//! near-neighbour with a similar receptive field will take over and very
//! little information will be lost."

use spinn_sim::Xoshiro256;

use crate::coding::{rank_order_encode, RankOrderCode};

/// A grayscale image (row-major, values typically in `[0, 1]`).
#[derive(Clone, Debug, PartialEq)]
pub struct Image {
    width: usize,
    height: usize,
    pixels: Vec<f64>,
}

impl Image {
    /// Creates an image filled with zeros.
    pub fn new(width: usize, height: usize) -> Self {
        Image {
            width,
            height,
            pixels: vec![0.0; width * height],
        }
    }

    /// Creates an image from raw pixels.
    ///
    /// # Panics
    ///
    /// Panics if `pixels.len() != width * height`.
    pub fn from_pixels(width: usize, height: usize, pixels: Vec<f64>) -> Self {
        assert_eq!(pixels.len(), width * height, "pixel count mismatch");
        Image {
            width,
            height,
            pixels,
        }
    }

    /// Image width, pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height, pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Pixel accessor (0.0 outside the frame).
    #[inline]
    pub fn get(&self, x: i64, y: i64) -> f64 {
        if x < 0 || y < 0 || x >= self.width as i64 || y >= self.height as i64 {
            0.0
        } else {
            self.pixels[y as usize * self.width + x as usize]
        }
    }

    /// Mutable pixel accessor.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn set(&mut self, x: usize, y: usize, v: f64) {
        assert!(x < self.width && y < self.height, "pixel out of bounds");
        self.pixels[y * self.width + x] = v;
    }

    /// The raw pixels.
    pub fn pixels(&self) -> &[f64] {
        &self.pixels
    }

    /// A Gaussian blob stimulus centred at `(cx, cy)`.
    pub fn gaussian_blob(width: usize, height: usize, cx: f64, cy: f64, sigma: f64) -> Self {
        let mut img = Image::new(width, height);
        for y in 0..height {
            for x in 0..width {
                let dx = x as f64 - cx;
                let dy = y as f64 - cy;
                img.pixels[y * width + x] = (-(dx * dx + dy * dy) / (2.0 * sigma * sigma)).exp();
            }
        }
        img
    }

    /// A vertical bar grating with the given period.
    pub fn bars(width: usize, height: usize, period: usize) -> Self {
        let mut img = Image::new(width, height);
        for y in 0..height {
            for x in 0..width {
                img.pixels[y * width + x] = if (x / period.max(1)).is_multiple_of(2) {
                    1.0
                } else {
                    0.0
                };
            }
        }
        img
    }

    /// Pearson correlation between two images (0 if either is constant).
    pub fn correlation(&self, other: &Image) -> f64 {
        assert_eq!(self.pixels.len(), other.pixels.len(), "size mismatch");
        let n = self.pixels.len() as f64;
        let ma = self.pixels.iter().sum::<f64>() / n;
        let mb = other.pixels.iter().sum::<f64>() / n;
        let mut cov = 0.0;
        let mut va = 0.0;
        let mut vb = 0.0;
        for (a, b) in self.pixels.iter().zip(&other.pixels) {
            cov += (a - ma) * (b - mb);
            va += (a - ma) * (a - ma);
            vb += (b - mb) * (b - mb);
        }
        if va == 0.0 || vb == 0.0 {
            0.0
        } else {
            cov / (va.sqrt() * vb.sqrt())
        }
    }
}

/// One ganglion cell: a difference-of-Gaussians receptive field.
#[derive(Clone, Debug)]
pub struct GanglionCell {
    /// Receptive-field centre x, pixels.
    pub cx: f64,
    /// Receptive-field centre y, pixels.
    pub cy: f64,
    /// Centre Gaussian sigma.
    pub sigma_centre: f64,
    /// Surround Gaussian sigma (> centre).
    pub sigma_surround: f64,
    /// Centre-on (true) or centre-off polarity.
    pub on_centre: bool,
}

impl GanglionCell {
    /// The DoG kernel value at an image location.
    pub fn kernel(&self, x: f64, y: f64) -> f64 {
        let d2 = (x - self.cx).powi(2) + (y - self.cy).powi(2);
        let g = |s: f64| (-d2 / (2.0 * s * s)).exp() / (2.0 * std::f64::consts::PI * s * s);
        let dog = g(self.sigma_centre) - g(self.sigma_surround);
        if self.on_centre {
            dog
        } else {
            -dog
        }
    }

    /// The cell's linear response to an image (kernel inner product over
    /// a ±3-surround-sigma window).
    pub fn response(&self, img: &Image) -> f64 {
        let r = (3.0 * self.sigma_surround).ceil() as i64;
        let cx = self.cx.round() as i64;
        let cy = self.cy.round() as i64;
        let mut acc = 0.0;
        for y in (cy - r)..=(cy + r) {
            for x in (cx - r)..=(cx + r) {
                acc += self.kernel(x as f64, y as f64) * img.get(x, y);
            }
        }
        acc
    }
}

/// A layer of ganglion cells covering the retina at overlapping scales,
/// with lateral inhibition and a rank-order readout.
#[derive(Clone, Debug)]
pub struct RetinaLayer {
    width: usize,
    height: usize,
    cells: Vec<GanglionCell>,
    alive: Vec<bool>,
    /// Index lists of each cell's lateral-inhibition neighbours.
    neighbours: Vec<Vec<u32>>,
    /// Lateral inhibition strength (0 disables).
    pub inhibition: f64,
}

impl RetinaLayer {
    /// Builds an on-centre layer covering a `width x height` retina at
    /// the given `(centre_sigma, grid_spacing)` scales. Surround sigma is
    /// 1.6x the centre (the classic DoG ratio); neighbours for lateral
    /// inhibition are cells of the same scale within `2 x spacing`.
    pub fn new(width: usize, height: usize, scales: &[(f64, usize)]) -> Self {
        let mut cells = Vec::new();
        let mut scale_of = Vec::new();
        for (s, &(sigma, spacing)) in scales.iter().enumerate() {
            assert!(spacing > 0, "grid spacing must be positive");
            let mut y = spacing / 2;
            while y < height {
                let mut x = spacing / 2;
                while x < width {
                    cells.push(GanglionCell {
                        cx: x as f64,
                        cy: y as f64,
                        sigma_centre: sigma,
                        sigma_surround: sigma * 1.6,
                        on_centre: true,
                    });
                    scale_of.push(s);
                    x += spacing;
                }
                y += spacing;
            }
        }
        // Same-scale neighbour lists for lateral inhibition.
        let mut neighbours = vec![Vec::new(); cells.len()];
        for i in 0..cells.len() {
            for j in 0..cells.len() {
                if i == j || scale_of[i] != scale_of[j] {
                    continue;
                }
                let d2 = (cells[i].cx - cells[j].cx).powi(2) + (cells[i].cy - cells[j].cy).powi(2);
                let range = (2 * scales[scale_of[i]].1) as f64;
                if d2 <= range * range {
                    neighbours[i].push(j as u32);
                }
            }
        }
        let n = cells.len();
        RetinaLayer {
            width,
            height,
            cells,
            alive: vec![true; n],
            neighbours,
            inhibition: 0.6,
        }
    }

    /// Number of ganglion cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the layer has no cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// The cells.
    pub fn cells(&self) -> &[GanglionCell] {
        &self.cells
    }

    /// Number of cells still alive.
    pub fn alive_count(&self) -> usize {
        self.alive.iter().filter(|&&a| a).count()
    }

    /// Kills a random `fraction` of the cells ("the average adult human
    /// loses a neuron every second of their lives").
    pub fn kill_fraction(&mut self, fraction: f64, rng: &mut Xoshiro256) {
        let targets = (self.cells.len() as f64 * fraction).round() as usize;
        let mut order: Vec<usize> = (0..self.cells.len()).collect();
        rng.shuffle(&mut order);
        for &i in order.iter().take(targets) {
            self.alive[i] = false;
        }
    }

    /// Kills one specific cell.
    pub fn kill_cell(&mut self, idx: usize) {
        self.alive[idx] = false;
    }

    /// The layer's response to an image: DoG filtering, then lateral
    /// inhibition (dead cells produce no output **and no inhibition** —
    /// the §5.4 takeover mechanism), then half-rectification.
    pub fn responses(&self, img: &Image) -> Vec<f64> {
        // Half-rectified DoG responses (ganglion firing rates are
        // non-negative); dead cells output zero.
        let rect: Vec<f64> = self
            .cells
            .iter()
            .enumerate()
            .map(|(i, c)| {
                if self.alive[i] {
                    c.response(img).max(0.0)
                } else {
                    0.0
                }
            })
            .collect();
        let mut out = vec![0.0; rect.len()];
        for i in 0..rect.len() {
            if !self.alive[i] {
                continue;
            }
            let (sum, n) = self.neighbours[i]
                .iter()
                .filter(|&&j| self.alive[j as usize])
                .fold((0.0, 0usize), |(s, n), &j| (s + rect[j as usize], n + 1));
            let inhibition = if n > 0 {
                self.inhibition * sum / n as f64
            } else {
                0.0
            };
            out[i] = (rect[i] - inhibition).max(0.0);
        }
        out
    }

    /// Encodes an image as a rank-order code over the `n` most active
    /// live cells.
    pub fn encode(&self, img: &Image, n: usize) -> RankOrderCode {
        rank_order_encode(&self.responses(img), n, 1e-12)
    }

    /// Reconstructs an image estimate from a rank-order code by
    /// superposing the firing cells' *centre* Gaussians with geometric
    /// rank weights (the low-pass readout used for rank-order decoding;
    /// the inhibitory surrounds encode redundancy reduction, not
    /// luminance).
    pub fn reconstruct(&self, code: &RankOrderCode, alpha: f64) -> Image {
        let mut img = Image::new(self.width, self.height);
        let mut w = 1.0;
        for &i in &code.order {
            let cell = &self.cells[i as usize];
            let s2 = 2.0 * cell.sigma_centre * cell.sigma_centre;
            for y in 0..self.height {
                for x in 0..self.width {
                    let d2 = (x as f64 - cell.cx).powi(2) + (y as f64 - cell.cy).powi(2);
                    let v = img.get(x as i64, y as i64) + w * (-d2 / s2).exp();
                    img.set(x, y, v);
                }
            }
            w *= alpha;
        }
        img
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layer() -> RetinaLayer {
        RetinaLayer::new(32, 32, &[(1.2, 4), (2.4, 8)])
    }

    #[test]
    fn image_accessors_and_bounds() {
        let mut img = Image::new(4, 3);
        img.set(2, 1, 0.5);
        assert_eq!(img.get(2, 1), 0.5);
        assert_eq!(img.get(-1, 0), 0.0);
        assert_eq!(img.get(4, 0), 0.0);
        assert_eq!(img.width(), 4);
        assert_eq!(img.height(), 3);
    }

    #[test]
    fn correlation_properties() {
        let a = Image::gaussian_blob(16, 16, 8.0, 8.0, 3.0);
        assert!((a.correlation(&a) - 1.0).abs() < 1e-12);
        let b = Image::gaussian_blob(16, 16, 2.0, 2.0, 2.0);
        assert!(a.correlation(&b) < 0.99);
        let flat = Image::new(16, 16);
        assert_eq!(a.correlation(&flat), 0.0);
    }

    #[test]
    fn dog_kernel_is_mexican_hat() {
        let c = GanglionCell {
            cx: 0.0,
            cy: 0.0,
            sigma_centre: 1.0,
            sigma_surround: 1.6,
            on_centre: true,
        };
        assert!(c.kernel(0.0, 0.0) > 0.0, "positive centre");
        assert!(c.kernel(2.5, 0.0) < 0.0, "negative surround");
        assert!(c.kernel(10.0, 0.0).abs() < 1e-6, "vanishes far away");
    }

    #[test]
    fn off_centre_inverts() {
        let on = GanglionCell {
            cx: 0.0,
            cy: 0.0,
            sigma_centre: 1.0,
            sigma_surround: 1.6,
            on_centre: true,
        };
        let off = GanglionCell {
            on_centre: false,
            ..on.clone()
        };
        assert_eq!(on.kernel(1.0, 1.0), -off.kernel(1.0, 1.0));
    }

    #[test]
    fn cell_over_blob_responds_strongest() {
        let img = Image::gaussian_blob(32, 32, 10.0, 10.0, 2.0);
        let near = GanglionCell {
            cx: 10.0,
            cy: 10.0,
            sigma_centre: 1.5,
            sigma_surround: 2.4,
            on_centre: true,
        };
        let far = GanglionCell {
            cx: 25.0,
            cy: 25.0,
            ..near.clone()
        };
        assert!(near.response(&img) > far.response(&img));
        assert!(near.response(&img) > 0.0);
    }

    #[test]
    fn layer_covers_retina_at_two_scales() {
        let l = layer();
        assert_eq!(l.len(), 8 * 8 + 4 * 4);
        assert_eq!(l.alive_count(), l.len());
        assert!(!l.is_empty());
    }

    #[test]
    fn lateral_inhibition_sparsifies() {
        // "lateral inhibition reduces the information redundancy in the
        // resultant stream of spikes": a smooth blob excites many
        // overlapping cells; inhibition silences the weaker ones.
        let img = Image::gaussian_blob(32, 32, 16.0, 16.0, 5.0);
        let mut l = layer();
        l.inhibition = 0.0;
        let dense = l.responses(&img).iter().filter(|&&r| r > 1e-9).count();
        l.inhibition = 0.9;
        let sparse = l.responses(&img).iter().filter(|&&r| r > 1e-9).count();
        assert!(
            sparse < dense,
            "inhibition should reduce active cells: {sparse} vs {dense}"
        );
        assert!(sparse > 0, "the strongest cells must survive");
    }

    #[test]
    fn encode_produces_rank_order_code() {
        let img = Image::gaussian_blob(32, 32, 16.0, 16.0, 3.0);
        let l = layer();
        let code = l.encode(&img, 12);
        assert!(!code.is_empty());
        assert!(code.len() <= 12);
        // The first firing cell should be near the blob centre.
        let first = &l.cells()[code.order[0] as usize];
        let d = ((first.cx - 16.0).powi(2) + (first.cy - 16.0).powi(2)).sqrt();
        assert!(d < 6.0, "first spike {d} px from stimulus centre");
    }

    #[test]
    fn dead_cells_never_fire_and_neighbours_take_over() {
        let img = Image::gaussian_blob(32, 32, 16.0, 16.0, 3.0);
        let mut l = layer();
        let code = l.encode(&img, 8);
        let winner = code.order[0] as usize;
        let before = l.responses(&img);
        l.kill_cell(winner);
        let after = l.responses(&img);
        let code2 = l.encode(&img, 8);
        assert!(!code2.order.contains(&(winner as u32)));
        // Takeover: at least one live neighbour's response increased
        // because the dead cell stopped inhibiting it.
        let took_over = l.neighbours[winner]
            .iter()
            .any(|&j| after[j as usize] > before[j as usize] + 1e-12);
        assert!(took_over, "no neighbour took over after cell death");
    }

    #[test]
    fn reconstruction_resembles_stimulus() {
        let img = Image::gaussian_blob(32, 32, 16.0, 16.0, 3.0);
        let l = layer();
        let code = l.encode(&img, 20);
        let recon = l.reconstruct(&code, 0.9);
        let corr = img.correlation(&recon);
        assert!(corr > 0.4, "reconstruction correlation {corr} too low");
    }

    #[test]
    fn graceful_degradation_under_cell_loss() {
        // The E11 claim in miniature: 10% cell loss barely moves the
        // reconstruction; 70% loss hurts it much more.
        let img = Image::gaussian_blob(32, 32, 14.0, 18.0, 3.0);
        let healthy = layer();
        let base = healthy.reconstruct(&healthy.encode(&img, 20), 0.9);
        let mut rng = Xoshiro256::seed_from_u64(5);
        let quality = |frac: f64, rng: &mut Xoshiro256| {
            let mut l = layer();
            l.kill_fraction(frac, rng);
            let recon = l.reconstruct(&l.encode(&img, 20), 0.9);
            base.correlation(&recon)
        };
        let q10 = quality(0.10, &mut rng);
        let q70 = quality(0.70, &mut rng);
        assert!(q10 > 0.8, "10% loss should be nearly invisible: {q10}");
        assert!(q10 > q70, "{q10} vs {q70}");
    }

    #[test]
    fn kill_fraction_counts() {
        let mut l = layer();
        let mut rng = Xoshiro256::seed_from_u64(1);
        let n = l.len();
        l.kill_fraction(0.25, &mut rng);
        assert_eq!(l.alive_count(), n - (n as f64 * 0.25).round() as usize);
    }
}
