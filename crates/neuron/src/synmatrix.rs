//! The per-core synaptic memory model: a **master population table**
//! over one contiguous **synaptic arena** (CSR layout).
//!
//! §5.2/§6 of the paper: each SpiNNaker node stores its cores' synaptic
//! state as dense blocks in the shared SDRAM, and on spike arrival the
//! processor maps the source neuron's AER key to "the associated block
//! of connectivity data" and DMAs that row into local memory. The real
//! toolchain implements the mapping as a *master population table*: a
//! small sorted array of `(key, mask)` entries, one per source
//! population/core block, each pointing at a run of row descriptors in
//! SDRAM; the neuron bits of the incoming key then select the row
//! within the run.
//!
//! [`SynapticMatrix`] reproduces that layout in the simulator:
//!
//! ```text
//! entries:  [ (key, mask, first_row, n_rows) ... ]   sorted by key
//! rows:     [ (offset, len) ... ]                    one per source neuron
//! words:    [ SynapticWord ... ]                     one packed arena
//! ```
//!
//! Lookup is a binary search over the entries plus an index into `rows`
//! — no hashing on the packet hot path — and every row is a slice of
//! the single `words` allocation, so the resident footprint is
//! `4 bytes/synapse + 8 bytes/row + 16 bytes/source block` instead of a
//! `HashMap<u32, Vec<_>>` per core. STDP rewrites weights in place
//! through [`SynapticMatrix::row_mut`], exactly like the hardware's
//! DMA write-back of a modified row.
//!
//! [`SynapticMatrixBuilder`] assembles a matrix from a *stream* of
//! `(row, word)` pairs in any order (the loader expands projections one
//! at a time and never materializes a global edge list), then packs the
//! arena with a stable counting sort in `finish`.

use crate::gen::{GenSpec, GenState};
use crate::synapse::SynapticWord;

/// Bytes of SDRAM a row of `len` synapses occupies (one header word
/// plus one word per synapse — the unit of DMA transfer).
#[inline]
pub const fn row_sdram_bytes(len: usize) -> usize {
    4 + 4 * len
}

/// Sentinel arena offset marking a row whose words have not been
/// materialized yet (the row's recipe lives in the lazy arena). Row
/// *lengths* are always concrete — only the words are deferred.
const LAZY_OFFSET: u32 = u32::MAX;

/// One projection's generator recipe for a contiguous run of rows
/// (one source slice's block as seen by one destination core).
#[derive(Clone, Debug, PartialEq)]
pub struct Contribution {
    /// The projection recipe (connector, distribution, target window).
    pub spec: GenSpec,
    /// First row this contribution covers.
    pub first_row: u32,
    /// Rows covered: `first_row .. first_row + n_rows`.
    pub n_rows: u32,
    /// Global source index of `first_row`'s source neuron.
    pub src_lo: u32,
    /// Per-row RNG stream positions; empty for analytic specs,
    /// otherwise exactly `n_rows` entries.
    pub states: Vec<GenState>,
}

/// The compressed side of a lazily-built matrix: generator recipes in
/// projection order (row regeneration replays them in this order, which
/// is exactly the eager build's push order).
#[derive(Clone, Debug, Default, PartialEq)]
struct LazyArena {
    contribs: Vec<Contribution>,
}

impl LazyArena {
    fn resident_bytes(&self) -> u64 {
        self.contribs
            .iter()
            .map(|c| {
                std::mem::size_of::<Contribution>() as u64
                    + (c.states.len() * std::mem::size_of::<GenState>()) as u64
            })
            .sum()
    }
}

/// One master-population-table entry: all keys matching
/// `key` under `mask` map to rows `first_row + (key & !mask)`.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
struct MptEntry {
    /// Base key of the block (low `!mask` bits zero).
    key: u32,
    /// Ternary mask: set bits must match `key`.
    mask: u32,
    /// Index of the block's first row in `rows`.
    first_row: u32,
    /// Rows in the block (the source slice's neuron count).
    n_rows: u32,
}

/// One row descriptor: a slice of the arena.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
struct RowRef {
    offset: u32,
    len: u32,
}

/// A core's complete synaptic state: master population table + packed
/// row arena.
///
/// # Example
///
/// ```
/// use spinn_neuron::synapse::SynapticWord;
/// use spinn_neuron::synmatrix::SynapticMatrixBuilder;
///
/// let mut b = SynapticMatrixBuilder::new();
/// // A 4-neuron source block whose keys are 0x1000..0x1004.
/// let first = b.block(0x1000, !0xFFF, 4);
/// b.push(first + 2, SynapticWord::new(300, 1, 7));
/// let m = b.finish();
/// let row = m.lookup(0x1002).unwrap();
/// assert_eq!(m.row(row)[0].target(), 7);
/// assert!(m.row(m.lookup(0x1003).unwrap()).is_empty());
/// assert_eq!(m.lookup(0x1004), None);
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SynapticMatrix {
    entries: Vec<MptEntry>,
    rows: Vec<RowRef>,
    words: Vec<SynapticWord>,
    /// Generator recipes for rows still in compressed form (`None` for
    /// a fully eager matrix).
    lazy: Option<Box<LazyArena>>,
}

impl SynapticMatrix {
    /// An empty matrix (no blocks, no rows).
    pub fn new() -> Self {
        Self::default()
    }

    /// Maps an incoming AER key to its row index: binary search of the
    /// master population table, then the key's neuron bits select the
    /// row within the matched block. `None` means no block covers the
    /// key — a mapping error the machine counts as a row miss.
    #[inline]
    pub fn lookup(&self, key: u32) -> Option<u32> {
        let i = self.entries.partition_point(|e| e.key <= key);
        let e = self.entries.get(i.checked_sub(1)?)?;
        if key & e.mask != e.key {
            return None;
        }
        let neuron = key & !e.mask;
        if neuron >= e.n_rows {
            return None;
        }
        Some(e.first_row + neuron)
    }

    /// The synapses of row `row` (a slice of the arena).
    ///
    /// # Panics
    ///
    /// Panics if the row is still in compressed (lazy) form — DMA touch
    /// points go through [`SynapticMatrix::ensure_row`] first.
    #[inline]
    pub fn row(&self, row: u32) -> &[SynapticWord] {
        let r = self.rows[row as usize];
        assert!(
            r.offset != LAZY_OFFSET || r.len == 0,
            "row {row} not materialized (lazy arena); call ensure_row first"
        );
        if r.len == 0 {
            return &[];
        }
        &self.words[r.offset as usize..(r.offset + r.len) as usize]
    }

    /// Mutable access to row `row` — STDP rewrites weights in place
    /// before the row is DMAed back to SDRAM.
    ///
    /// # Panics
    ///
    /// Panics on an unmaterialized row, like [`SynapticMatrix::row`].
    #[inline]
    pub fn row_mut(&mut self, row: u32) -> &mut [SynapticWord] {
        let r = self.rows[row as usize];
        assert!(
            r.offset != LAZY_OFFSET || r.len == 0,
            "row {row} not materialized (lazy arena); call ensure_row_mut first"
        );
        if r.len == 0 {
            return &mut [];
        }
        &mut self.words[r.offset as usize..(r.offset + r.len) as usize]
    }

    /// [`SynapticMatrix::row`], materializing the row first if it is
    /// still compressed — the entry point of every DMA touch.
    #[inline]
    pub fn ensure_row(&mut self, row: u32) -> &[SynapticWord] {
        self.materialize(row);
        self.row(row)
    }

    /// [`SynapticMatrix::row_mut`] with on-demand materialization.
    #[inline]
    pub fn ensure_row_mut(&mut self, row: u32) -> &mut [SynapticWord] {
        self.materialize(row);
        self.row_mut(row)
    }

    /// The row's words without mutating the matrix: a borrowed slice
    /// when materialized, a regenerated copy otherwise (inspection
    /// paths — the hot path uses [`SynapticMatrix::ensure_row`]).
    pub fn row_words(&self, row: u32) -> std::borrow::Cow<'_, [SynapticWord]> {
        let r = self.rows[row as usize];
        if r.offset != LAZY_OFFSET || r.len == 0 {
            std::borrow::Cow::Borrowed(self.row(row))
        } else {
            std::borrow::Cow::Owned(self.generate(row))
        }
    }

    /// Whether `row`'s words are resident in the arena.
    #[inline]
    pub fn is_row_materialized(&self, row: u32) -> bool {
        let r = self.rows[row as usize];
        r.offset != LAZY_OFFSET || r.len == 0
    }

    /// Rows still in compressed form.
    pub fn lazy_rows(&self) -> u64 {
        if self.lazy.is_none() {
            return 0;
        }
        self.rows
            .iter()
            .filter(|r| r.offset == LAZY_OFFSET && r.len > 0)
            .count() as u64
    }

    /// Materializes every remaining lazy row (tests and full-fidelity
    /// snapshots; runs rely on touch-driven materialization instead).
    pub fn materialize_all(&mut self) {
        if self.lazy.is_none() {
            return;
        }
        for row in 0..self.rows.len() as u32 {
            self.materialize(row);
        }
    }

    /// Regenerates an unmaterialized row's words from its recipes.
    fn generate(&self, row: u32) -> Vec<SynapticWord> {
        let r = self.rows[row as usize];
        let lazy = self.lazy.as_ref().expect("lazy row without arena");
        let mut out = Vec::with_capacity(r.len as usize);
        for c in &lazy.contribs {
            if row < c.first_row || row >= c.first_row + c.n_rows {
                continue;
            }
            let i = row - c.first_row;
            let state = (!c.states.is_empty()).then(|| &c.states[i as usize]);
            c.spec.append_row(c.src_lo + i, state, &mut out);
        }
        debug_assert_eq!(
            out.len(),
            r.len as usize,
            "regenerated row {row} length diverged from the build pass"
        );
        out
    }

    /// Expands `row` into the arena if it is still compressed.
    fn materialize(&mut self, row: u32) {
        let r = self.rows[row as usize];
        if r.offset != LAZY_OFFSET || r.len == 0 {
            return;
        }
        let words = self.generate(row);
        let offset = self.words.len() as u32;
        self.words.extend_from_slice(&words);
        self.rows[row as usize].offset = offset;
    }

    /// Number of synapses in row `row`.
    #[inline]
    pub fn row_len(&self, row: u32) -> usize {
        self.rows[row as usize].len as usize
    }

    /// SDRAM bytes of row `row` (header + synapses; the DMA transfer
    /// size).
    #[inline]
    pub fn row_bytes(&self, row: u32) -> usize {
        row_sdram_bytes(self.row_len(row))
    }

    /// Total number of rows (source neurons with a block on this core).
    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    /// Whether the matrix holds no rows at all.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Total synapse count.
    pub fn total_synapses(&self) -> u64 {
        self.rows.iter().map(|r| r.len as u64).sum()
    }

    /// SDRAM footprint: the summed DMA size of every row.
    pub fn sdram_bytes(&self) -> u64 {
        self.rows
            .iter()
            .map(|r| row_sdram_bytes(r.len as usize) as u64)
            .sum()
    }

    /// Host-resident bytes of the matrix itself (arena + descriptors +
    /// table + compressed recipes) — the "resident synapse bytes"
    /// figure of experiments E15/E20. Only *materialized* words count:
    /// a lazy matrix's untouched rows cost their recipe, not their
    /// expansion.
    pub fn resident_bytes(&self) -> u64 {
        (self.words.len() * std::mem::size_of::<SynapticWord>()
            + self.rows.len() * std::mem::size_of::<RowRef>()
            + self.entries.len() * std::mem::size_of::<MptEntry>()) as u64
            + self.lazy.as_ref().map_or(0, |l| l.resident_bytes())
    }

    /// Iterates `(key, row_index)` over every row of every block, keys
    /// ascending within each block.
    pub fn iter_rows(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.entries
            .iter()
            .flat_map(|e| (0..e.n_rows).map(move |i| (e.key | i, e.first_row + i)))
    }

    /// Installs (or replaces) the row for a single exact `key` — the
    /// manual loading path used by hand-built machines and tests. Rows
    /// covered by an existing block entry are rewritten in place (new
    /// words are appended to the arena when the replacement is longer);
    /// unknown keys get an exact-match table entry of their own.
    pub fn insert_row(&mut self, key: u32, words: &[SynapticWord]) {
        if let Some(row) = self.lookup(key) {
            self.replace_row(row, words);
            return;
        }
        // A covering block that is merely too short? Grow it so the
        // block's rows stay contiguous (cold path: pre-run loading
        // only).
        let i = self.entries.partition_point(|e| e.key <= key);
        if let Some(slot) = i.checked_sub(1) {
            let e = self.entries[slot];
            if key & e.mask == e.key {
                let neuron = key & !e.mask;
                let grow = neuron + 1 - e.n_rows;
                let insert_at = (e.first_row + e.n_rows) as usize;
                self.rows.splice(
                    insert_at..insert_at,
                    std::iter::repeat_n(RowRef::default(), grow as usize),
                );
                for (j, other) in self.entries.iter_mut().enumerate() {
                    if j != slot && other.first_row as usize >= insert_at {
                        other.first_row += grow;
                    }
                }
                self.entries[slot].n_rows = neuron + 1;
                let row = self.entries[slot].first_row + neuron;
                self.replace_row(row, words);
                return;
            }
        }
        // A brand-new exact entry pointing at a fresh row.
        self.entries.insert(
            i,
            MptEntry {
                key,
                mask: u32::MAX,
                first_row: self.rows.len() as u32,
                n_rows: 1,
            },
        );
        self.rows.push(RowRef {
            offset: self.words.len() as u32,
            len: words.len() as u32,
        });
        self.words.extend_from_slice(words);
    }

    /// Serializes the given rows' current arena contents — the
    /// checkpoint form of STDP weight changes. Snapshots store only the
    /// rows plasticity actually touched (deltas against the loader's
    /// freshly built matrix), so an unplastic network costs zero
    /// synaptic bytes per checkpoint.
    pub fn encode_rows(&self, rows: &[u32], enc: &mut spinn_sim::wire::Enc) {
        enc.seq(rows.len());
        for &row in rows {
            enc.u32(row);
            let words = self.row(row);
            enc.seq(words.len());
            for w in words {
                enc.u32(w.bits());
            }
        }
    }

    /// Applies an [`SynapticMatrix::encode_rows`] delta onto this
    /// matrix, overwriting each row's words in place, and returns the
    /// indices of the rows it rewrote (so the caller can keep tracking
    /// them as dirty for subsequent checkpoints).
    ///
    /// The matrix must be structurally identical to the one the delta
    /// was taken from (same rows, same row lengths): STDP rewrites
    /// weights but never adds or removes synapses.
    ///
    /// # Errors
    ///
    /// Returns a [`spinn_sim::wire::WireError`] if the input is
    /// truncated, names a row this matrix does not have, or changes a
    /// row's length.
    pub fn apply_rows(
        &mut self,
        dec: &mut spinn_sim::wire::Dec<'_>,
    ) -> Result<Vec<u32>, spinn_sim::wire::WireError> {
        use spinn_sim::wire::WireError;
        let n = dec.seq(12)?;
        let mut applied = Vec::with_capacity(n);
        for _ in 0..n {
            let row = dec.u32()?;
            if row as usize >= self.rows.len() {
                return Err(WireError::Corrupt("delta row index"));
            }
            let len = dec.seq(4)?;
            if len != self.row_len(row) {
                return Err(WireError::Corrupt("delta row length"));
            }
            // A delta can land on a freshly rebuilt lazy matrix
            // (restore path): give the row arena backing first, then
            // overwrite it with the checkpointed words.
            for w in self.ensure_row_mut(row) {
                *w = SynapticWord::from_bits(dec.u32()?);
            }
            applied.push(row);
        }
        Ok(applied)
    }

    /// Rewrites row `row` with `words`: in place when it fits, else as
    /// a fresh run at the end of the arena. An unmaterialized row is
    /// simply replaced wholesale — its recipe is abandoned.
    fn replace_row(&mut self, row: u32, words: &[SynapticWord]) {
        let r = &mut self.rows[row as usize];
        if r.offset != LAZY_OFFSET && words.len() <= r.len as usize {
            r.len = words.len() as u32;
            let start = r.offset as usize;
            self.words[start..start + words.len()].copy_from_slice(words);
        } else {
            *r = RowRef {
                offset: self.words.len() as u32,
                len: words.len() as u32,
            };
            self.words.extend_from_slice(words);
        }
    }
}

/// Assembles a [`SynapticMatrix`] from a stream of `(row, word)`
/// pushes: declare the source blocks up front, stage synapses in any
/// order, and `finish` packs them into the contiguous arena with a
/// stable counting sort (insertion order is preserved within each row).
#[derive(Clone, Debug, Default)]
pub struct SynapticMatrixBuilder {
    entries: Vec<MptEntry>,
    n_rows: u32,
    staged: Vec<(u32, SynapticWord)>,
    lazy_contribs: Vec<Contribution>,
    lazy_lens: Vec<(u32, u32)>,
}

impl SynapticMatrixBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares (or re-finds) the block covering `base_key` under
    /// `mask` with `n_rows` rows, returning the block's first row
    /// index. Re-declaring an existing block (e.g. the same source
    /// slice reached through a second projection) is idempotent.
    ///
    /// # Panics
    ///
    /// Panics if `base_key` has bits outside `mask`, if `n_rows`
    /// exceeds the mask's key span (rows lookup could never resolve),
    /// if a re-declared block changes its row count, or if the new
    /// block's key range overlaps an existing one.
    pub fn block(&mut self, base_key: u32, mask: u32, n_rows: u32) -> u32 {
        assert_eq!(base_key & !mask, 0, "block base key must be mask-aligned");
        assert!(
            n_rows as u64 <= !mask as u64 + 1,
            "block of {n_rows} rows exceeds its {}-key mask span",
            !mask as u64 + 1
        );
        let i = self.entries.partition_point(|e| e.key < base_key);
        if let Some(e) = self.entries.get(i) {
            if e.key == base_key {
                assert_eq!(
                    (e.mask, e.n_rows),
                    (mask, n_rows),
                    "block {base_key:#x} re-declared with a different shape"
                );
                return e.first_row;
            }
        }
        // Disjointness with both neighbours: a block's span is
        // `key ..= key | !mask`.
        if let Some(prev) = i.checked_sub(1).map(|p| self.entries[p]) {
            assert!(prev.key | !prev.mask < base_key, "overlapping key blocks");
        }
        if let Some(next) = self.entries.get(i) {
            assert!(base_key | !mask < next.key, "overlapping key blocks");
        }
        let first_row = self.n_rows;
        self.entries.insert(
            i,
            MptEntry {
                key: base_key,
                mask,
                first_row,
                n_rows,
            },
        );
        self.n_rows += n_rows;
        first_row
    }

    /// Stages one synapse into row `row` (a block's `first_row` plus
    /// the source neuron's index within the block).
    #[inline]
    pub fn push(&mut self, row: u32, word: SynapticWord) {
        debug_assert!(row < self.n_rows, "row {row} outside declared blocks");
        self.staged.push((row, word));
    }

    /// Synapses staged so far.
    pub fn staged_len(&self) -> usize {
        self.staged.len()
    }

    /// Registers a generator recipe covering `n_rows` rows starting at
    /// `first_row` (sources `src_lo..`), returning its handle for
    /// [`SynapticMatrixBuilder::lazy_state`]. A builder is either fully
    /// lazy or fully eager: mixing recipes and [`push`]ed words on one
    /// core is rejected in `finish` (the loader decides per core).
    ///
    /// [`push`]: SynapticMatrixBuilder::push
    pub fn lazy_contribution(
        &mut self,
        first_row: u32,
        n_rows: u32,
        src_lo: u32,
        spec: GenSpec,
    ) -> usize {
        debug_assert!(
            first_row + n_rows <= self.n_rows,
            "contribution outside declared blocks"
        );
        self.lazy_contribs.push(Contribution {
            spec,
            first_row,
            n_rows,
            src_lo,
            states: Vec::new(),
        });
        self.lazy_contribs.len() - 1
    }

    /// Appends the next row's captured RNG state to a contribution
    /// (rows in ascending order; exactly `n_rows` calls for stateful
    /// specs, none for analytic ones).
    pub fn lazy_state(&mut self, contrib: usize, state: GenState) {
        let c = &mut self.lazy_contribs[contrib];
        debug_assert!((c.states.len() as u32) < c.n_rows, "too many states");
        c.states.push(state);
    }

    /// Adds `len` lazily-generated synapses to `row`'s length (the
    /// build pass counts what the recipe will regenerate).
    #[inline]
    pub fn lazy_len(&mut self, row: u32, len: u32) {
        debug_assert!(row < self.n_rows, "row {row} outside declared blocks");
        if len > 0 {
            self.lazy_lens.push((row, len));
        }
    }

    /// Whether any generator recipes were registered.
    pub fn is_lazy(&self) -> bool {
        !self.lazy_contribs.is_empty()
    }

    /// Packs the staged synapses into the contiguous arena. Stable: the
    /// words of each row keep their push order. A lazy builder instead
    /// records row lengths and keeps the recipes — rows materialize on
    /// first DMA touch.
    pub fn finish(self) -> SynapticMatrix {
        let n = self.n_rows as usize;
        if !self.lazy_contribs.is_empty() {
            assert!(
                self.staged.is_empty(),
                "a core's builder cannot mix lazy recipes with eager words"
            );
            for c in &self.lazy_contribs {
                debug_assert!(
                    c.states.is_empty() || c.states.len() == c.n_rows as usize,
                    "contribution states must cover all rows or none"
                );
            }
            let mut counts = vec![0u32; n];
            for &(row, len) in &self.lazy_lens {
                counts[row as usize] += len;
            }
            let rows = counts
                .into_iter()
                .map(|len| RowRef {
                    offset: LAZY_OFFSET,
                    len,
                })
                .collect();
            return SynapticMatrix {
                entries: self.entries,
                rows,
                words: Vec::new(),
                lazy: Some(Box::new(LazyArena {
                    contribs: self.lazy_contribs,
                })),
            };
        }
        let mut counts = vec![0u32; n];
        for &(row, _) in &self.staged {
            counts[row as usize] += 1;
        }
        let mut rows = Vec::with_capacity(n);
        let mut offset = 0u32;
        for &len in &counts {
            rows.push(RowRef { offset, len });
            offset += len;
        }
        let mut words = vec![SynapticWord::from_bits(0); self.staged.len()];
        let mut cursor: Vec<u32> = rows.iter().map(|r| r.offset).collect();
        for (row, word) in self.staged {
            let c = &mut cursor[row as usize];
            words[*c as usize] = word;
            *c += 1;
        }
        SynapticMatrix {
            entries: self.entries,
            rows,
            words,
            lazy: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synapse::SynapticRow;

    fn w(weight: i16, target: u16) -> SynapticWord {
        SynapticWord::new(weight, 1, target)
    }

    #[test]
    fn builder_packs_csr_and_lookup_resolves() {
        let mut b = SynapticMatrixBuilder::new();
        let blk_a = b.block(0x1000, !0xFFF, 3);
        let blk_b = b.block(0x4000, !0xFFF, 2);
        // Interleaved pushes across blocks; order within a row must
        // survive the counting sort.
        b.push(blk_b, w(9, 0));
        b.push(blk_a + 1, w(1, 1));
        b.push(blk_a + 1, w(2, 2));
        b.push(blk_b, w(8, 3));
        b.push(blk_a, w(7, 4));
        let m = b.finish();
        assert_eq!(m.n_rows(), 5);
        assert_eq!(m.total_synapses(), 5);
        let r = m.lookup(0x1001).unwrap();
        assert_eq!(
            m.row(r).iter().map(|x| x.weight_raw()).collect::<Vec<_>>(),
            vec![1, 2]
        );
        let r = m.lookup(0x4000).unwrap();
        assert_eq!(
            m.row(r).iter().map(|x| x.weight_raw()).collect::<Vec<_>>(),
            vec![9, 8]
        );
        // Empty row within a declared block: present, zero-length.
        let r = m.lookup(0x1002).unwrap();
        assert!(m.row(r).is_empty());
        assert_eq!(m.row_bytes(r), 4);
        // Outside every block: a miss.
        assert_eq!(m.lookup(0x1003), None);
        assert_eq!(m.lookup(0x2000), None);
        assert_eq!(m.lookup(0x0FFF), None);
    }

    #[test]
    fn block_declaration_is_idempotent_and_checked() {
        let mut b = SynapticMatrixBuilder::new();
        let first = b.block(0x1000, !0xFFF, 4);
        assert_eq!(b.block(0x1000, !0xFFF, 4), first);
        assert_eq!(b.block(0x2000, !0xFFF, 1), 4);
    }

    #[test]
    #[should_panic(expected = "different shape")]
    fn block_shape_change_rejected() {
        let mut b = SynapticMatrixBuilder::new();
        b.block(0x1000, !0xFFF, 4);
        b.block(0x1000, !0xFFF, 5);
    }

    #[test]
    #[should_panic(expected = "overlapping")]
    fn overlapping_blocks_rejected() {
        let mut b = SynapticMatrixBuilder::new();
        b.block(0x1000, !0xFFF, 4);
        b.block(0x1800, !0x7FF, 1);
    }

    #[test]
    #[should_panic(expected = "exceeds its")]
    fn oversized_block_rejected() {
        // 3000 rows cannot be addressed through a 2048-key mask span:
        // rows past 2047 would be unreachable and their iter_rows keys
        // would alias the next block.
        let mut b = SynapticMatrixBuilder::new();
        b.block(0, !0x7FF, 3000);
    }

    #[test]
    fn sdram_accounting_matches_row_shapes() {
        let mut b = SynapticMatrixBuilder::new();
        let blk = b.block(0, !0xFFF, 2);
        for i in 0..10 {
            b.push(blk, w(i, i as u16));
        }
        let m = b.finish();
        // Row 0: 4 + 40; row 1 empty: 4.
        assert_eq!(m.sdram_bytes(), 48);
        assert!(m.resident_bytes() >= 40);
    }

    #[test]
    fn insert_row_exact_keys_sorted_lookup() {
        let mut m = SynapticMatrix::new();
        for key in [0x3000u32, 0x1000, 0x2000] {
            m.insert_row(key, &[w(5, 1), w(6, 2)]);
        }
        for key in [0x1000u32, 0x2000, 0x3000] {
            let r = m.lookup(key).unwrap();
            assert_eq!(m.row_len(r), 2, "{key:#x}");
        }
        assert_eq!(m.lookup(0x1001), None);
        // Replacement: shorter fits in place, longer reallocates.
        m.insert_row(0x2000, &[w(1, 1)]);
        assert_eq!(m.row_len(m.lookup(0x2000).unwrap()), 1);
        let long: Vec<_> = (0..5).map(|i| w(i, i as u16)).collect();
        m.insert_row(0x2000, &long);
        let r = m.lookup(0x2000).unwrap();
        assert_eq!(m.row(r).len(), 5);
        assert_eq!(m.row(r)[4].weight_raw(), 4);
        // Other rows untouched.
        assert_eq!(m.row_len(m.lookup(0x1000).unwrap()), 2);
    }

    #[test]
    fn insert_row_grows_covering_block() {
        let mut b = SynapticMatrixBuilder::new();
        let blk = b.block(0x1000, !0xFFF, 2);
        b.push(blk, w(1, 0));
        b.push(blk + 1, w(2, 0));
        let mut m = b.finish();
        m.insert_row(0x2000, &[w(9, 9)]);
        // Key inside the block but beyond its declared rows: the block
        // grows, later rows keep resolving.
        m.insert_row(0x1004, &[w(3, 3)]);
        assert_eq!(m.row(m.lookup(0x1004).unwrap())[0].weight_raw(), 3);
        assert!(m.row(m.lookup(0x1002).unwrap()).is_empty());
        assert_eq!(m.row(m.lookup(0x1000).unwrap())[0].weight_raw(), 1);
        assert_eq!(m.row(m.lookup(0x2000).unwrap())[0].weight_raw(), 9);
        assert_eq!(m.n_rows(), 6);
    }

    #[test]
    fn iter_rows_reconstructs_keys() {
        let mut b = SynapticMatrixBuilder::new();
        b.block(0x1000, !0xFFF, 2);
        b.block(0x5000, !0xFFF, 1);
        let m = b.finish();
        let keys: Vec<u32> = m.iter_rows().map(|(k, _)| k).collect();
        assert_eq!(keys, vec![0x1000, 0x1001, 0x5000]);
    }

    #[test]
    fn row_mut_rewrites_in_place() {
        let mut m = SynapticMatrix::new();
        m.insert_row(7, &[w(100, 0), w(200, 1)]);
        let r = m.lookup(7).unwrap();
        for word in m.row_mut(r) {
            *word = word.with_weight_raw(word.weight_raw() / 2);
        }
        assert_eq!(
            m.row(r).iter().map(|x| x.weight_raw()).collect::<Vec<_>>(),
            vec![50, 100]
        );
    }

    fn lazy_a2a_builder(n_rows: u32, window: (u32, u32)) -> SynapticMatrixBuilder {
        use crate::gen::{GenConnector, GenSpec, GenSynapses};
        let mut b = SynapticMatrixBuilder::new();
        let first = b.block(0x1000, !0xFFF, n_rows);
        let spec = GenSpec {
            conn: GenConnector::AllToAll { skip_self: false },
            syn: GenSynapses {
                weight_min_raw: 320,
                weight_max_raw: 320,
                delay_min_ms: 2,
                delay_max_ms: 2,
            },
            n_src: n_rows,
            n_dst: 16,
            dst_lo: window.0,
            dst_hi: window.1,
        };
        for row in 0..n_rows {
            let len = spec.row_len(row).unwrap();
            b.lazy_len(first + row, len);
        }
        b.lazy_contribution(first, n_rows, 0, spec);
        b
    }

    #[test]
    fn lazy_rows_materialize_on_touch() {
        let mut m = lazy_a2a_builder(4, (4, 8)).finish();
        assert_eq!(m.n_rows(), 4);
        assert_eq!(m.total_synapses(), 16); // lens known without words
        assert_eq!(m.lazy_rows(), 4);
        let before = m.resident_bytes();
        let row = m.lookup(0x1002).unwrap();
        assert!(!m.is_row_materialized(row));
        let words: Vec<_> = m.ensure_row(row).to_vec();
        assert_eq!(words.len(), 4);
        assert_eq!(
            words.iter().map(|w| w.target()).collect::<Vec<_>>(),
            vec![0, 1, 2, 3]
        );
        assert!(m.is_row_materialized(row));
        assert_eq!(m.lazy_rows(), 3);
        assert!(m.resident_bytes() > before, "touch grows the arena");
        // Touch again: idempotent, same slice.
        assert_eq!(m.ensure_row(row), &words[..]);
        // Non-mutating inspection of an untouched row.
        let other = m.lookup(0x1003).unwrap();
        let cow = m.row_words(other);
        assert_eq!(cow.len(), 4);
        assert!(!m.is_row_materialized(other), "row_words must not touch");
    }

    #[test]
    fn lazy_matrix_matches_eager_equivalent() {
        let mut lazy = lazy_a2a_builder(16, (0, 16)).finish();
        // The eager twin: same block, words pushed as the stream would.
        let mut b = SynapticMatrixBuilder::new();
        let first = b.block(0x1000, !0xFFF, 16);
        for row in 0..16 {
            for d in 0u32..16 {
                b.push(first + row, SynapticWord::new(320, 2, d as u16));
            }
        }
        let eager = b.finish();
        assert!(
            lazy.resident_bytes() < eager.resident_bytes(),
            "recipe ({} B) must undercut the expansion ({} B)",
            lazy.resident_bytes(),
            eager.resident_bytes()
        );
        assert_eq!(lazy.sdram_bytes(), eager.sdram_bytes());
        lazy.materialize_all();
        for row in 0..16 {
            assert_eq!(lazy.row(row), eager.row(row), "row {row}");
        }
    }

    #[test]
    fn lazy_rows_survive_stdp_delta_roundtrip() {
        let mut m = lazy_a2a_builder(3, (0, 5)).finish();
        // STDP-style in-place rewrite through the ensure path.
        let row = m.lookup(0x1001).unwrap();
        for w in m.ensure_row_mut(row) {
            *w = w.with_weight_raw(99);
        }
        let mut enc = spinn_sim::wire::Enc::new();
        m.encode_rows(&[row], &mut enc);
        let bytes = enc.into_bytes();
        // Restore onto a *fresh, unmaterialized* twin: apply_rows must
        // materialize the target row before overwriting it.
        let mut fresh = lazy_a2a_builder(3, (0, 5)).finish();
        assert_eq!(fresh.lazy_rows(), 3);
        let mut dec = spinn_sim::wire::Dec::new(&bytes);
        let applied = fresh.apply_rows(&mut dec).unwrap();
        assert_eq!(applied, vec![row]);
        assert!(fresh.row(row).iter().all(|w| w.weight_raw() == 99));
        // Untouched rows still lazy, still regenerate identically.
        fresh.materialize_all();
        m.materialize_all();
        for r in 0..3 {
            assert_eq!(fresh.row(r), m.row(r), "row {r}");
        }
    }

    #[test]
    #[should_panic(expected = "not materialized")]
    fn immutable_row_access_rejects_lazy_rows() {
        let m = lazy_a2a_builder(2, (0, 4)).finish();
        let _ = m.row(0);
    }

    #[test]
    fn from_synaptic_row_roundtrip() {
        let row: SynapticRow = (0..4).map(|i| w(i, i as u16)).collect();
        let mut m = SynapticMatrix::new();
        m.insert_row(0x42, row.words());
        let r = m.lookup(0x42).unwrap();
        assert_eq!(m.row(r), row.words());
        assert_eq!(m.row_bytes(r), row.size_bytes());
    }
}
