//! The Izhikevich spiking neuron in 16.16 fixed point.
//!
//! SpiNNaker's reference neuron model \[17\]:
//!
//! ```text
//! v' = 0.04 v² + 5 v + 140 − u + I
//! u' = a (b v − u)
//! if v ≥ 30 mV: v ← c, u ← u + d
//! ```
//!
//! integrated with two 0.5 ms Euler half-steps for `v` and one 1 ms step
//! for `u` per millisecond tick, the scheme used by the SpiNNaker
//! kernels.

use crate::fixed::Fix1616;
use crate::model::NeuronModel;

/// Izhikevich model parameters `(a, b, c, d)`.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct IzhikevichParams {
    /// Recovery time scale.
    pub a: f32,
    /// Recovery sensitivity to `v`.
    pub b: f32,
    /// Post-spike reset value of `v` (mV).
    pub c: f32,
    /// Post-spike increment of `u`.
    pub d: f32,
}

impl IzhikevichParams {
    /// Cortical regular-spiking (RS) cell: `(0.02, 0.2, −65, 8)`.
    pub fn regular_spiking() -> Self {
        IzhikevichParams {
            a: 0.02,
            b: 0.2,
            c: -65.0,
            d: 8.0,
        }
    }

    /// Fast-spiking (FS) interneuron: `(0.1, 0.2, −65, 2)`.
    pub fn fast_spiking() -> Self {
        IzhikevichParams {
            a: 0.1,
            b: 0.2,
            c: -65.0,
            d: 2.0,
        }
    }

    /// Chattering (CH) cell: `(0.02, 0.2, −50, 2)`.
    pub fn chattering() -> Self {
        IzhikevichParams {
            a: 0.02,
            b: 0.2,
            c: -50.0,
            d: 2.0,
        }
    }

    /// Intrinsically bursting (IB) cell: `(0.02, 0.2, −55, 4)`.
    pub fn intrinsically_bursting() -> Self {
        IzhikevichParams {
            a: 0.02,
            b: 0.2,
            c: -55.0,
            d: 4.0,
        }
    }

    /// Low-threshold spiking (LTS) interneuron: `(0.02, 0.25, −65, 2)`.
    pub fn low_threshold_spiking() -> Self {
        IzhikevichParams {
            a: 0.02,
            b: 0.25,
            c: -65.0,
            d: 2.0,
        }
    }
}

/// One Izhikevich neuron's state, in fixed point.
///
/// # Example
///
/// ```
/// use spinn_neuron::izhikevich::{IzhikevichNeuron, IzhikevichParams};
/// use spinn_neuron::model::NeuronModel;
///
/// let mut n = IzhikevichNeuron::new(IzhikevichParams::fast_spiking());
/// // No input: the neuron stays quiet.
/// assert!((0..100).all(|_| !n.step_1ms(0.0)));
/// ```
#[derive(Clone, Debug)]
pub struct IzhikevichNeuron {
    pub(crate) params: IzhikevichParams,
    pub(crate) a: Fix1616,
    pub(crate) b: Fix1616,
    pub(crate) c: Fix1616,
    pub(crate) d: Fix1616,
    pub(crate) v: Fix1616,
    pub(crate) u: Fix1616,
}

const SPIKE_THRESHOLD_MV: f32 = 30.0;

impl IzhikevichNeuron {
    /// Creates a neuron at the resting state `v = c`, `u = b·c`.
    pub fn new(params: IzhikevichParams) -> Self {
        let v = Fix1616::from_f32(params.c);
        let b = Fix1616::from_f32(params.b);
        IzhikevichNeuron {
            params,
            a: Fix1616::from_f32(params.a),
            b,
            c: Fix1616::from_f32(params.c),
            d: Fix1616::from_f32(params.d),
            v,
            u: b * v,
        }
    }

    /// The neuron's parameters.
    pub fn params(&self) -> IzhikevichParams {
        self.params
    }

    /// The recovery variable `u`.
    pub fn recovery(&self) -> f32 {
        self.u.to_f32()
    }
}

impl NeuronModel for IzhikevichNeuron {
    fn step_1ms(&mut self, input_current: f32) -> bool {
        let i = Fix1616::from_f32(input_current);
        let half = Fix1616::from_f32(0.5);
        let k004 = Fix1616::from_f32(0.04);
        let k5 = Fix1616::from_int(5);
        let k140 = Fix1616::from_int(140);
        // Two 0.5 ms half-steps for v (numerical stability near spike).
        for _ in 0..2 {
            let dv = k004 * self.v * self.v + k5 * self.v + k140 - self.u + i;
            self.v += dv * half;
        }
        // One 1 ms step for u.
        let du = self.a * (self.b * self.v - self.u);
        self.u += du;
        if self.v.to_f32() >= SPIKE_THRESHOLD_MV {
            self.v = self.c;
            self.u += self.d;
            true
        } else {
            false
        }
    }

    fn membrane_mv(&self) -> f32 {
        self.v.to_f32()
    }

    fn reset_state(&mut self) {
        self.v = self.c;
        self.u = self.b * self.c;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn count_spikes(params: IzhikevichParams, input: f32, ms: usize) -> usize {
        let mut n = IzhikevichNeuron::new(params);
        (0..ms).filter(|_| n.step_1ms(input)).count()
    }

    #[test]
    fn quiescent_without_input() {
        for p in [
            IzhikevichParams::regular_spiking(),
            IzhikevichParams::fast_spiking(),
            IzhikevichParams::chattering(),
        ] {
            assert_eq!(count_spikes(p, 0.0, 500), 0);
        }
    }

    #[test]
    fn regular_spiking_rate_increases_with_current() {
        let lo = count_spikes(IzhikevichParams::regular_spiking(), 6.0, 1000);
        let hi = count_spikes(IzhikevichParams::regular_spiking(), 14.0, 1000);
        assert!(lo > 0, "6 nA should elicit spikes");
        assert!(hi > lo, "rate must grow with drive: {lo} vs {hi}");
    }

    #[test]
    fn fast_spiking_outpaces_regular_spiking() {
        let rs = count_spikes(IzhikevichParams::regular_spiking(), 10.0, 1000);
        let fs = count_spikes(IzhikevichParams::fast_spiking(), 10.0, 1000);
        assert!(
            fs > rs,
            "FS cells fire faster than RS at equal drive: {fs} vs {rs}"
        );
    }

    #[test]
    fn membrane_resets_after_spike() {
        let mut n = IzhikevichNeuron::new(IzhikevichParams::regular_spiking());
        let mut spiked = false;
        for _ in 0..200 {
            if n.step_1ms(15.0) {
                spiked = true;
                assert!(
                    n.membrane_mv() <= -50.0,
                    "v must reset to c after a spike, got {}",
                    n.membrane_mv()
                );
                break;
            }
        }
        assert!(spiked);
    }

    #[test]
    fn fixed_point_tracks_f64_reference_spike_raster() {
        // The hardware-fidelity property that matters: the fixed-point
        // kernel produces (nearly) the same spike raster as an f64
        // reference. Membrane trajectories diverge chaotically near
        // threshold, so spike counts/times are the right comparison.
        let p = IzhikevichParams::regular_spiking();
        let input = 10.0f64;
        let mut n = IzhikevichNeuron::new(p);
        let mut fx_spikes = Vec::new();
        for t in 0..1000 {
            if n.step_1ms(input as f32) {
                fx_spikes.push(t);
            }
        }
        let (mut v, mut u) = (p.c as f64, (p.b as f64) * (p.c as f64));
        let mut ref_spikes = Vec::new();
        for t in 0..1000 {
            for _ in 0..2 {
                let dv = 0.04 * v * v + 5.0 * v + 140.0 - u + input;
                v += dv * 0.5;
            }
            u += p.a as f64 * (p.b as f64 * v - u);
            if v >= 30.0 {
                v = p.c as f64;
                u += p.d as f64;
                ref_spikes.push(t);
            }
        }
        assert!(!ref_spikes.is_empty());
        let diff = (fx_spikes.len() as i64 - ref_spikes.len() as i64).abs();
        assert!(
            diff <= 1 + ref_spikes.len() as i64 / 10,
            "spike counts diverge: fixed {} vs reference {}",
            fx_spikes.len(),
            ref_spikes.len()
        );
        // First spike within a few ms of the reference.
        let skew = (fx_spikes[0] as i64 - ref_spikes[0] as i64).abs();
        assert!(skew <= 5, "first-spike skew {skew} ms");
    }

    #[test]
    fn reset_state_restores_rest() {
        let mut n = IzhikevichNeuron::new(IzhikevichParams::regular_spiking());
        for _ in 0..50 {
            n.step_1ms(20.0);
        }
        n.reset_state();
        assert_eq!(n.membrane_mv(), -65.0);
        assert!((n.recovery() - (-65.0 * 0.2)).abs() < 0.01);
    }

    #[test]
    fn presets_are_distinct() {
        let presets = [
            IzhikevichParams::regular_spiking(),
            IzhikevichParams::fast_spiking(),
            IzhikevichParams::chattering(),
            IzhikevichParams::intrinsically_bursting(),
            IzhikevichParams::low_threshold_spiking(),
        ];
        for i in 0..presets.len() {
            for j in (i + 1)..presets.len() {
                assert_ne!(presets[i], presets[j]);
            }
        }
    }
}
