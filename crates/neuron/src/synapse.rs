//! Synaptic data: the packed word format and the source-indexed rows held
//! in SDRAM.
//!
//! §4 of the paper: on an incoming spike the processor maps the source
//! neuron to "the associated block of connectivity data in SDRAM" and
//! DMAs it into local memory. §3.2: each synapse carries a programmable
//! delay "re-inserted algorithmically at the target neuron" — and that
//! per-synapse delay is "one of the most expensive functions ... in terms
//! of the cost of data storage", which is why it is squeezed into 4 bits
//! of the packed word.

/// One synapse, packed into 32 bits exactly as a SpiNNaker synaptic row
/// word: `[31:16]` weight (signed 8.8 fixed point, nA), `[15:12]` delay
/// minus one (1–16 ms), `[11:0]` target neuron index within the core.
///
/// # Example
///
/// ```
/// use spinn_neuron::synapse::SynapticWord;
///
/// let w = SynapticWord::new(256, 3, 42); // weight 1.0 nA, 3 ms, neuron 42
/// assert_eq!(w.weight_raw(), 256);
/// assert_eq!(w.weight_na(), 1.0);
/// assert_eq!(w.delay_ms(), 3);
/// assert_eq!(w.target(), 42);
/// ```
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct SynapticWord(u32);

/// Maximum programmable synaptic delay, ms (4-bit field).
pub const MAX_DELAY_MS: u8 = 16;

/// Maximum target neuron index (12-bit field).
pub const MAX_TARGET: u16 = 0xFFF;

impl SynapticWord {
    /// Packs a synapse.
    ///
    /// `weight_raw` is in 8.8 fixed point (so `256` = 1.0 nA); negative
    /// weights are inhibitory.
    ///
    /// # Panics
    ///
    /// Panics if `delay_ms` is outside `1..=16` or `target > 0xFFF`.
    pub fn new(weight_raw: i16, delay_ms: u8, target: u16) -> Self {
        assert!(
            (1..=MAX_DELAY_MS).contains(&delay_ms),
            "synaptic delay {delay_ms} outside 1..=16 ms"
        );
        assert!(
            target <= MAX_TARGET,
            "target index {target} exceeds 12 bits"
        );
        let w = (weight_raw as u16 as u32) << 16;
        let d = ((delay_ms - 1) as u32) << 12;
        SynapticWord(w | d | target as u32)
    }

    /// Creates from raw bits (e.g. after a DMA transfer).
    pub const fn from_bits(bits: u32) -> Self {
        SynapticWord(bits)
    }

    /// The raw 32-bit word.
    pub const fn bits(self) -> u32 {
        self.0
    }

    /// The weight in 8.8 fixed point.
    pub fn weight_raw(self) -> i16 {
        (self.0 >> 16) as u16 as i16
    }

    /// The weight in nA.
    pub fn weight_na(self) -> f32 {
        self.weight_raw() as f32 / 256.0
    }

    /// The programmable axonal/synaptic delay, ms (1–16).
    pub fn delay_ms(self) -> u8 {
        ((self.0 >> 12) & 0xF) as u8 + 1
    }

    /// The target neuron index within the destination core.
    pub fn target(self) -> u16 {
        (self.0 & 0xFFF) as u16
    }

    /// Replaces the weight (used by STDP write-back).
    pub fn with_weight_raw(self, weight_raw: i16) -> Self {
        SynapticWord((self.0 & 0x0000_FFFF) | ((weight_raw as u16 as u32) << 16))
    }
}

/// The synaptic row for one (source neuron → destination core) pair: the
/// unit of DMA transfer from SDRAM.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SynapticRow {
    words: Vec<SynapticWord>,
}

impl SynapticRow {
    /// An empty row.
    pub fn new() -> Self {
        SynapticRow { words: Vec::new() }
    }

    /// Adds a synapse.
    pub fn push(&mut self, word: SynapticWord) {
        self.words.push(word);
    }

    /// The synapses in the row.
    pub fn words(&self) -> &[SynapticWord] {
        &self.words
    }

    /// Mutable access (STDP updates rewrite weights in place before the
    /// row is DMAed back to SDRAM).
    pub fn words_mut(&mut self) -> &mut [SynapticWord] {
        &mut self.words
    }

    /// Number of synapses.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Whether the row is empty.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Size of the row in SDRAM, bytes (one header word + one word per
    /// synapse).
    pub fn size_bytes(&self) -> usize {
        4 + 4 * self.words.len()
    }
}

impl FromIterator<SynapticWord> for SynapticRow {
    fn from_iter<T: IntoIterator<Item = SynapticWord>>(iter: T) -> Self {
        SynapticRow {
            words: iter.into_iter().collect(),
        }
    }
}

impl Extend<SynapticWord> for SynapticRow {
    fn extend<T: IntoIterator<Item = SynapticWord>>(&mut self, iter: T) {
        self.words.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_roundtrip() {
        for (w, d, t) in [
            (0i16, 1u8, 0u16),
            (256, 16, 0xFFF),
            (-256, 8, 100),
            (i16::MAX, 1, 1),
            (i16::MIN, 16, 2),
        ] {
            let s = SynapticWord::new(w, d, t);
            assert_eq!(s.weight_raw(), w, "{w} {d} {t}");
            assert_eq!(s.delay_ms(), d);
            assert_eq!(s.target(), t);
            assert_eq!(SynapticWord::from_bits(s.bits()), s);
        }
    }

    #[test]
    fn weight_na_scaling() {
        assert_eq!(SynapticWord::new(256, 1, 0).weight_na(), 1.0);
        assert_eq!(SynapticWord::new(-128, 1, 0).weight_na(), -0.5);
        assert_eq!(SynapticWord::new(64, 1, 0).weight_na(), 0.25);
    }

    #[test]
    #[should_panic(expected = "outside 1..=16")]
    fn zero_delay_rejected() {
        let _ = SynapticWord::new(1, 0, 0);
    }

    #[test]
    #[should_panic(expected = "outside 1..=16")]
    fn delay_17_rejected() {
        let _ = SynapticWord::new(1, 17, 0);
    }

    #[test]
    #[should_panic(expected = "exceeds 12 bits")]
    fn target_overflow_rejected() {
        let _ = SynapticWord::new(1, 1, 0x1000);
    }

    #[test]
    fn with_weight_preserves_rest() {
        let s = SynapticWord::new(100, 5, 321);
        let s2 = s.with_weight_raw(-77);
        assert_eq!(s2.weight_raw(), -77);
        assert_eq!(s2.delay_ms(), 5);
        assert_eq!(s2.target(), 321);
    }

    #[test]
    fn row_accounting() {
        let mut row = SynapticRow::new();
        assert!(row.is_empty());
        assert_eq!(row.size_bytes(), 4);
        for i in 0..10 {
            row.push(SynapticWord::new(i, 1, i as u16));
        }
        assert_eq!(row.len(), 10);
        assert_eq!(row.size_bytes(), 44);
    }

    #[test]
    fn row_collect_and_extend() {
        let mut row: SynapticRow = (0..3).map(|i| SynapticWord::new(i, 1, i as u16)).collect();
        row.extend((3..5).map(|i| SynapticWord::new(i, 2, i as u16)));
        assert_eq!(row.len(), 5);
        assert_eq!(row.words()[4].delay_ms(), 2);
    }
}
