//! Spike sources: Poisson and regular.
//!
//! Stimulus generators for driving networks (Fig. 7's
//! `update_Stimulus()` task).

use spinn_sim::Xoshiro256;

/// A Poisson spike source with a fixed mean rate.
///
/// # Example
///
/// ```
/// use spinn_neuron::poisson::PoissonSource;
///
/// let mut src = PoissonSource::new(100.0, 42); // 100 Hz
/// let spikes: usize = (0..10_000).map(|_| src.tick_1ms() as usize).sum();
/// assert!((800..1200).contains(&spikes), "{spikes}");
/// ```
#[derive(Clone, Debug)]
pub struct PoissonSource {
    rate_hz: f64,
    rng: Xoshiro256,
}

impl PoissonSource {
    /// Creates a source with the given mean rate.
    ///
    /// # Panics
    ///
    /// Panics if `rate_hz` is negative.
    pub fn new(rate_hz: f64, seed: u64) -> Self {
        assert!(rate_hz >= 0.0, "rate must be non-negative");
        PoissonSource {
            rate_hz,
            rng: Xoshiro256::seed_from_u64(seed),
        }
    }

    /// The configured rate, Hz.
    pub fn rate_hz(&self) -> f64 {
        self.rate_hz
    }

    /// Advances 1 ms; `true` if the source fires in this tick.
    ///
    /// (At most one spike per tick, like the hardware implementation —
    /// accurate for rates well below 1 kHz.)
    pub fn tick_1ms(&mut self) -> bool {
        let p = 1.0 - (-self.rate_hz / 1000.0).exp();
        self.rng.gen_bool(p)
    }
}

/// A regular (clock-driven) spike source.
#[derive(Clone, Debug)]
pub struct RegularSource {
    period_ms: u32,
    phase: u32,
}

impl RegularSource {
    /// Fires every `period_ms` milliseconds, starting after one period.
    ///
    /// # Panics
    ///
    /// Panics if `period_ms` is zero.
    pub fn new(period_ms: u32) -> Self {
        assert!(period_ms > 0, "period must be positive");
        RegularSource {
            period_ms,
            phase: 0,
        }
    }

    /// Advances 1 ms; `true` on firing ticks.
    pub fn tick_1ms(&mut self) -> bool {
        self.phase += 1;
        if self.phase >= self.period_ms {
            self.phase = 0;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_rate_is_calibrated() {
        // With at most one spike per 1 ms tick, the firing probability
        // per tick is 1 - exp(-rate/1000) (≈ rate/1000 at low rates).
        for rate in [10.0f64, 100.0, 500.0] {
            let mut src = PoissonSource::new(rate, 7);
            let n = 100_000;
            let spikes: usize = (0..n).map(|_| src.tick_1ms() as usize).sum();
            let expected = (1.0 - (-rate / 1000.0).exp()) * n as f64;
            let got = spikes as f64;
            assert!(
                (got - expected).abs() < expected * 0.05 + 10.0,
                "rate {rate}: {got} vs {expected}"
            );
        }
    }

    #[test]
    fn zero_rate_never_fires() {
        let mut src = PoissonSource::new(0.0, 1);
        assert!((0..1000).all(|_| !src.tick_1ms()));
    }

    #[test]
    fn poisson_deterministic_per_seed() {
        let run = |seed| {
            let mut s = PoissonSource::new(50.0, seed);
            (0..1000).map(|_| s.tick_1ms()).collect::<Vec<_>>()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }

    #[test]
    fn regular_source_period() {
        let mut src = RegularSource::new(4);
        let pattern: Vec<bool> = (0..12).map(|_| src.tick_1ms()).collect();
        let fire_ticks: Vec<usize> = pattern
            .iter()
            .enumerate()
            .filter(|(_, &f)| f)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(fire_ticks, vec![3, 7, 11]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_period_rejected() {
        let _ = RegularSource::new(0);
    }
}
