//! # spinn-neuron — spiking neuron models and neural codes
//!
//! The application layer of the SpiNNaker reproduction: everything a
//! processor core computes when its 1 ms timer fires (§3.1, Fig. 7) and
//! the coding schemes §5.4 of the paper discusses.
//!
//! * [`fixed`] — 16.16 fixed-point arithmetic, as used by the ARM968
//!   neuron kernels (no FPU on the real chip).
//! * [`izhikevich`] — the Izhikevich neuron in fixed point, SpiNNaker's
//!   workhorse model, with the standard parameter presets.
//! * [`lif`] — leaky integrate-and-fire, a second "local algorithm"
//!   (§5.3 notes processors may run different local algorithms).
//! * [`model`] — the [`model::NeuronModel`] trait unifying them.
//! * [`synapse`] — the packed 32-bit synaptic word and the
//!   source-indexed synaptic rows stored in SDRAM and DMA-fetched on
//!   spike arrival (§4).
//! * [`synmatrix`] — the per-core **master population table** over one
//!   contiguous synaptic arena (CSR layout), the §5.2/§6 SDRAM memory
//!   model the machine's packet hot path indexes into.
//! * [`gen`] — generator recipes for **compressed, lazily materialized**
//!   rows: a full-machine build stores connector specs and RNG stream
//!   positions instead of expanded words, regenerating rows bit-exactly
//!   on first DMA touch.
//! * [`pool`] — structure-of-arrays neuron state, the flat-array form
//!   of the timer handler's per-tick update.
//! * [`ring`] — the **deferred-event input ring buffer** implementing
//!   §3.2's "soft delays": each synapse's programmable 1–16 ms delay is
//!   re-inserted algorithmically at the target neuron.
//! * [`stdp`] — pair-based spike-timing-dependent plasticity (the
//!   adaptive networks the paper's conclusions call for).
//! * [`poisson`] — stochastic and regular spike sources.
//! * [`coding`] — N-of-M population codes and rank-order codes \[20\].
//! * [`retina`] — the §5.4 retina: difference-of-Gaussians
//!   (centre-surround) ganglion cells at overlapping scales with lateral
//!   inhibition, rank-order readout, and graceful degradation under cell
//!   loss.
//!
//! # Example
//!
//! ```
//! use spinn_neuron::izhikevich::{IzhikevichNeuron, IzhikevichParams};
//! use spinn_neuron::model::NeuronModel;
//!
//! let mut n = IzhikevichNeuron::new(IzhikevichParams::regular_spiking());
//! let mut spikes = 0;
//! for _ in 0..1000 {
//!     if n.step_1ms(10.0) {
//!         spikes += 1;
//!     }
//! }
//! assert!(spikes > 5, "tonic drive must elicit regular spiking");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coding;
pub mod fixed;
pub mod gen;
pub mod izhikevich;
pub mod lif;
pub mod model;
pub mod poisson;
pub mod pool;
pub mod retina;
pub mod ring;
pub mod stdp;
pub mod synapse;
pub mod synmatrix;

pub use fixed::Fix1616;
pub use izhikevich::{IzhikevichNeuron, IzhikevichParams};
pub use lif::{LifNeuron, LifParams};
pub use model::{AnyNeuron, NeuronModel};
pub use pool::NeuronPool;
pub use ring::InputRing;
pub use synapse::{SynapticRow, SynapticWord};
pub use synmatrix::{SynapticMatrix, SynapticMatrixBuilder};
