//! Leaky integrate-and-fire neuron.
//!
//! A second "local algorithm" (§5.3 of the paper notes that active
//! processors execute the same three tasks "possibly with different local
//! algorithms" \[16\]): cheap, widely used, and the model of choice for the
//! rate-based layers of the retina example.

use crate::model::NeuronModel;

/// LIF parameters.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct LifParams {
    /// Resting potential, mV.
    pub v_rest: f32,
    /// Spike threshold, mV.
    pub v_thresh: f32,
    /// Post-spike reset potential, mV.
    pub v_reset: f32,
    /// Membrane time constant, ms.
    pub tau_m: f32,
    /// Membrane resistance, MΩ (input current in nA).
    pub r_m: f32,
    /// Absolute refractory period, ms.
    pub t_refract: u32,
}

impl Default for LifParams {
    fn default() -> Self {
        LifParams {
            v_rest: -65.0,
            v_thresh: -50.0,
            v_reset: -65.0,
            tau_m: 20.0,
            r_m: 10.0,
            t_refract: 2,
        }
    }
}

/// One LIF neuron's state.
///
/// # Example
///
/// ```
/// use spinn_neuron::lif::{LifNeuron, LifParams};
/// use spinn_neuron::model::NeuronModel;
///
/// let mut n = LifNeuron::new(LifParams::default());
/// let spikes = (0..1000).filter(|_| n.step_1ms(2.0)).count();
/// assert!(spikes > 0);
/// ```
#[derive(Clone, Debug)]
pub struct LifNeuron {
    pub(crate) params: LifParams,
    pub(crate) v: f32,
    pub(crate) refract_left: u32,
}

impl LifNeuron {
    /// Creates a neuron at its resting potential.
    pub fn new(params: LifParams) -> Self {
        LifNeuron {
            v: params.v_rest,
            refract_left: 0,
            params,
        }
    }

    /// The neuron's parameters.
    pub fn params(&self) -> LifParams {
        self.params
    }

    /// Whether the neuron is currently refractory.
    pub fn is_refractory(&self) -> bool {
        self.refract_left > 0
    }
}

impl NeuronModel for LifNeuron {
    fn step_1ms(&mut self, input_current: f32) -> bool {
        if self.refract_left > 0 {
            self.refract_left -= 1;
            return false;
        }
        let p = &self.params;
        // Exact exponential-Euler update over 1 ms.
        let alpha = (-1.0 / p.tau_m).exp();
        let v_inf = p.v_rest + p.r_m * input_current;
        self.v = v_inf + (self.v - v_inf) * alpha;
        if self.v >= p.v_thresh {
            self.v = p.v_reset;
            self.refract_left = p.t_refract;
            true
        } else {
            false
        }
    }

    fn membrane_mv(&self) -> f32 {
        self.v
    }

    fn reset_state(&mut self) {
        self.v = self.params.v_rest;
        self.refract_left = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stays_at_rest_without_input() {
        let mut n = LifNeuron::new(LifParams::default());
        for _ in 0..100 {
            assert!(!n.step_1ms(0.0));
        }
        assert!((n.membrane_mv() - (-65.0)).abs() < 1e-3);
    }

    #[test]
    fn subthreshold_drive_never_spikes() {
        // v_inf = -65 + 10 * 1.0 = -55 < -50 threshold.
        let mut n = LifNeuron::new(LifParams::default());
        assert!((0..2000).all(|_| !n.step_1ms(1.0)));
        assert!((n.membrane_mv() - (-55.0)).abs() < 0.1);
    }

    #[test]
    fn suprathreshold_drive_spikes_regularly() {
        let mut n = LifNeuron::new(LifParams::default());
        let spikes = (0..1000).filter(|_| n.step_1ms(3.0)).count();
        assert!(spikes >= 20, "got {spikes}");
    }

    #[test]
    fn rate_monotone_in_current() {
        let rate = |i: f32| {
            let mut n = LifNeuron::new(LifParams::default());
            (0..2000).filter(|_| n.step_1ms(i)).count()
        };
        let (r1, r2, r3) = (rate(2.0), rate(4.0), rate(8.0));
        assert!(r1 < r2 && r2 < r3, "{r1} {r2} {r3}");
    }

    #[test]
    fn refractory_period_enforced() {
        let p = LifParams {
            t_refract: 5,
            ..Default::default()
        };
        let mut n = LifNeuron::new(p);
        let mut last_spike: Option<i32> = None;
        for t in 0..2000 {
            if n.step_1ms(10.0) {
                if let Some(prev) = last_spike {
                    assert!(t - prev > 5, "ISI {} violates refractory", t - prev);
                }
                last_spike = Some(t);
            }
        }
        assert!(last_spike.is_some());
    }

    #[test]
    fn refractory_flag_visible() {
        let p = LifParams {
            t_refract: 3,
            ..Default::default()
        };
        let mut n = LifNeuron::new(p);
        while !n.step_1ms(10.0) {}
        assert!(n.is_refractory());
    }

    #[test]
    fn reset_state_restores_rest() {
        let mut n = LifNeuron::new(LifParams::default());
        for _ in 0..10 {
            n.step_1ms(10.0);
        }
        n.reset_state();
        assert_eq!(n.membrane_mv(), -65.0);
        assert!(!n.is_refractory());
    }
}
