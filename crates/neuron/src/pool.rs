//! Structure-of-arrays neuron state for the per-core tick update.
//!
//! The 1 ms timer handler (Fig. 7, priority 3) walks every neuron on
//! the core. With an array-of-structs (`Vec<AnyNeuron>`) each step
//! pays an enum-discriminant branch per neuron and drags the model
//! parameters through the cache interleaved with the state. A core
//! runs one population slice, so in practice every neuron shares a
//! model kind; [`NeuronPool`] exploits that by storing the state as
//! flat parallel arrays (one `match` per *tick*, not per neuron) while
//! producing bit-identical dynamics — the arithmetic is the same
//! fixed-point/f32 sequence as the per-neuron
//! [`step_1ms`](crate::model::NeuronModel::step_1ms) implementations,
//! verified by the golden-trace suite.
//!
//! Mixed-model cores (possible through the manual machine API, never
//! produced by the loader) fall back to the enum-dispatch path.
//!
//! # Wide tick path
//!
//! Homogeneous pools step in `LANES`-wide chunks: the drive gather,
//! the state update and the threshold test each run as short
//! straight-line loops over a chunk (no per-neuron callback between
//! them), and threshold crossings collect into a per-chunk bitmask
//! that a trailing sweep turns into ascending-index `on_spike` calls.
//! The arithmetic per neuron is exactly the scalar sequence — the
//! Izhikevich update is integer 16.16 fixed point and the LIF decay
//! factor is a cached value of the same `exp` call the scalar path
//! makes — so chunking changes instruction scheduling, never results.
//! Setting `SPINN_SCALAR_TICK=1` forces the per-neuron scalar path at
//! run time (checked once per process); CI runs the conformance suite
//! both ways.

use crate::fixed::Fix1616;
use crate::izhikevich::{IzhikevichNeuron, IzhikevichParams};
use crate::lif::{LifNeuron, LifParams};
use crate::model::{AnyNeuron, NeuronModel};

/// Chunk width of the wide tick path. Eight 32-bit lanes span one
/// 256-bit vector register; the update loops are written per-chunk so
/// the autovectorizer can pick whatever width the target offers.
const LANES: usize = 8;

/// Whether the wide chunked tick path is active (the default).
/// `SPINN_SCALAR_TICK=1` (or `true`) forces the per-neuron scalar
/// fallback — same results, exercised by CI so the fallback stays
/// correct on every runner.
fn wide_tick_enabled() -> bool {
    static WIDE: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *WIDE.get_or_init(|| {
        !std::env::var("SPINN_SCALAR_TICK")
            .is_ok_and(|v| v == "1" || v.eq_ignore_ascii_case("true"))
    })
}

/// Izhikevich state as parallel 16.16 fixed-point arrays.
#[derive(Clone, Debug, Default)]
pub struct IzhikevichPool {
    params: Vec<IzhikevichParams>,
    a: Vec<Fix1616>,
    b: Vec<Fix1616>,
    c: Vec<Fix1616>,
    d: Vec<Fix1616>,
    v: Vec<Fix1616>,
    u: Vec<Fix1616>,
    /// Set when any neuron's `|a|` or `|b|` reaches 1.0 — outside the
    /// clamp-free fast path's range proof (biological presets sit well
    /// below; only the manual API can get here). Checked once per
    /// chunk, not per tick, since parameters are fixed after `push`.
    params_wild: bool,
}

impl IzhikevichPool {
    fn push(&mut self, n: IzhikevichNeuron) {
        self.params_wild |=
            n.a.to_bits().unsigned_abs() >= 1 << 16 || n.b.to_bits().unsigned_abs() >= 1 << 16;
        self.params.push(n.params);
        self.a.push(n.a);
        self.b.push(n.b);
        self.c.push(n.c);
        self.d.push(n.d);
        self.v.push(n.v);
        self.u.push(n.u);
    }

    fn neuron(&self, i: usize) -> IzhikevichNeuron {
        IzhikevichNeuron {
            params: self.params[i],
            a: self.a[i],
            b: self.b[i],
            c: self.c[i],
            d: self.d[i],
            v: self.v[i],
            u: self.u[i],
        }
    }

    /// One 1 ms step of neuron `i` — the exact fixed-point sequence of
    /// [`IzhikevichNeuron::step_1ms`].
    #[inline]
    fn step(&mut self, i: usize, input_current: f32) -> bool {
        let inj = Fix1616::from_f32(input_current);
        let half = Fix1616::from_f32(0.5);
        let k004 = Fix1616::from_f32(0.04);
        let k5 = Fix1616::from_int(5);
        let k140 = Fix1616::from_int(140);
        let (mut v, mut u) = (self.v[i], self.u[i]);
        for _ in 0..2 {
            let dv = k004 * v * v + k5 * v + k140 - u + inj;
            v += dv * half;
        }
        u += self.a[i] * (self.b[i] * v - u);
        let fired = v.to_f32() >= 30.0;
        if fired {
            v = self.c[i];
            u += self.d[i];
        }
        self.v[i] = v;
        self.u[i] = u;
        fired
    }

    /// Chunked tick: the same fixed-point sequence as
    /// [`IzhikevichPool::step`], restructured as straight-line loops
    /// over `LANES`-wide blocks with a bitmask spike sweep. The
    /// update is integer arithmetic on independent lanes, so the
    /// result is bit-identical to the scalar walk.
    ///
    /// Chunks whose state is small enough that no intermediate of the
    /// update can reach the `i32` boundary take a clamp-free `i64`
    /// path: `saturating_add`/`saturating_mul` degenerate to plain
    /// add/widening-mul-shift when their clamps cannot trigger, so
    /// eliding them is exact — and it removes two compare/selects per
    /// arithmetic op from the hot loop. Interval propagation with
    /// entry bounds `v ∈ [-160, 96)`, `|u| ≤ 64`, `|inj| ≤ 64` and
    /// `|a|, |b| < 1` (see [`IzhikevichPool::params_wild`]) bounds the
    /// worst intermediate — `0.04·v₁²` on the second substep with
    /// `v₁ ≤ 654` — near 20,400 and `|v₂| ≤ 11,000`: everything stays
    /// inside the ±32,768 value range, so no clamp can fire. The `v`
    /// window covers rest (≈ -65), reset and hyperpolarized states;
    /// the spike upstroke past +96 (which genuinely saturates around
    /// `v ≈ 1,500`) falls back to the clamped walk for that chunk.
    fn step_tick_wide(&mut self, input: &impl Fn(usize) -> f32, on_spike: &mut impl FnMut(usize)) {
        let n = self.v.len();
        let half = Fix1616::from_f32(0.5);
        let k004 = Fix1616::from_f32(0.04);
        let k5 = Fix1616::from_int(5);
        let k140 = Fix1616::from_int(140);
        let mut base = 0;
        while base < n {
            let m = LANES.min(n - base);
            // Gather the drive first so the update loop is pure lane
            // arithmetic with no interleaved calls. `spread` folds the
            // clamp-free guard: zero iff every lane has
            // `v + 160 ∈ [0, 256)` and `|u|, |inj| < 64` in value.
            let mut inj = [Fix1616::from_int(0); LANES];
            let mut spread: u64 = 0;
            for (k, lane) in inj.iter_mut().enumerate().take(m) {
                *lane = Fix1616::from_f32(input(base + k));
                let i = base + k;
                spread |= ((self.v[i].to_bits() as i64 + (160 << 16)) as u64) >> 24;
                spread |= (self.u[i].to_bits().unsigned_abs() as u64) >> 22;
                spread |= (lane.to_bits().unsigned_abs() as u64) >> 22;
            }
            let mut fired: u32 = 0;
            if spread == 0 && !self.params_wild {
                for k in 0..m {
                    let i = base + k;
                    let (mut v, mut u) = (self.v[i].to_bits() as i64, self.u[i].to_bits() as i64);
                    let (a, b) = (self.a[i].to_bits() as i64, self.b[i].to_bits() as i64);
                    let inj = inj[k].to_bits() as i64;
                    let (k004, k5, k140) = (
                        k004.to_bits() as i64,
                        k5.to_bits() as i64,
                        k140.to_bits() as i64,
                    );
                    for _ in 0..2 {
                        // Same association as `k004 * v * v + ...`; the
                        // `* half` is an exact arithmetic halving.
                        let t = ((((k004 * v) >> 16) * v) >> 16) + ((k5 * v) >> 16);
                        let dv = t + k140 - u + inj;
                        v += dv >> 1;
                    }
                    u += (a * (((b * v) >> 16) - u)) >> 16;
                    fired |= u32::from(v >= (30 << 16)) << k;
                    self.v[i] = Fix1616::from_bits(v as i32);
                    self.u[i] = Fix1616::from_bits(u as i32);
                }
            } else {
                for (k, &inj_k) in inj.iter().enumerate().take(m) {
                    let i = base + k;
                    let (mut v, mut u) = (self.v[i], self.u[i]);
                    for _ in 0..2 {
                        let dv = k004 * v * v + k5 * v + k140 - u + inj_k;
                        v += dv * half;
                    }
                    u += self.a[i] * (self.b[i] * v - u);
                    // `v.to_f32() >= 30.0` in the fixed domain: the
                    // conversion is exact for |bits| <= 2^24 and both
                    // sides agree for saturated magnitudes, so the
                    // integer compare decides identically.
                    fired |= u32::from(v.to_bits() >= 30 << 16) << k;
                    self.v[i] = v;
                    self.u[i] = u;
                }
            }
            // Spike sweep: resets and callbacks only for set lanes, in
            // ascending index order (the scalar path's order).
            while fired != 0 {
                let i = base + fired.trailing_zeros() as usize;
                fired &= fired - 1;
                self.v[i] = self.c[i];
                self.u[i] += self.d[i];
                on_spike(i);
            }
            base += m;
        }
    }
}

/// LIF state as parallel arrays.
#[derive(Clone, Debug, Default)]
pub struct LifPool {
    params: Vec<LifParams>,
    v: Vec<f32>,
    refract_left: Vec<u32>,
    /// Cached membrane decay `exp(-1/tau_m)` per neuron. Parameters are
    /// fixed after `push`, and this is the very expression
    /// [`LifPool::step`] evaluates, so caching it cannot change a bit
    /// of the dynamics — it only lifts a transcendental out of the
    /// per-tick loop.
    alpha: Vec<f32>,
}

impl LifPool {
    fn push(&mut self, n: LifNeuron) {
        self.alpha.push((-1.0 / n.params.tau_m).exp());
        self.params.push(n.params);
        self.v.push(n.v);
        self.refract_left.push(n.refract_left);
    }

    fn neuron(&self, i: usize) -> LifNeuron {
        LifNeuron {
            params: self.params[i],
            v: self.v[i],
            refract_left: self.refract_left[i],
        }
    }

    /// One 1 ms step of neuron `i` — the exact f32 sequence of
    /// [`LifNeuron::step_1ms`].
    #[inline]
    fn step(&mut self, i: usize, input_current: f32) -> bool {
        if self.refract_left[i] > 0 {
            self.refract_left[i] -= 1;
            return false;
        }
        let p = &self.params[i];
        let alpha = (-1.0 / p.tau_m).exp();
        let v_inf = p.v_rest + p.r_m * input_current;
        let v = v_inf + (self.v[i] - v_inf) * alpha;
        if v >= p.v_thresh {
            self.v[i] = p.v_reset;
            self.refract_left[i] = p.t_refract;
            true
        } else {
            self.v[i] = v;
            false
        }
    }

    /// Chunked tick: the same f32 sequence as [`LifPool::step`] with
    /// the decay factor taken from the [`LifPool::alpha`] cache and
    /// threshold crossings gathered into a bitmask before the reset
    /// sweep. Refractory bookkeeping stays inline — it is a counter
    /// decrement, not worth a separate pass.
    fn step_tick_wide(&mut self, input: &impl Fn(usize) -> f32, on_spike: &mut impl FnMut(usize)) {
        let n = self.v.len();
        let mut base = 0;
        while base < n {
            let m = LANES.min(n - base);
            let mut fired: u32 = 0;
            for k in 0..m {
                let i = base + k;
                if self.refract_left[i] > 0 {
                    self.refract_left[i] -= 1;
                    continue;
                }
                let p = &self.params[i];
                let v_inf = p.v_rest + p.r_m * input(i);
                let v = v_inf + (self.v[i] - v_inf) * self.alpha[i];
                if v >= p.v_thresh {
                    fired |= 1 << k;
                } else {
                    self.v[i] = v;
                }
            }
            while fired != 0 {
                let i = base + fired.trailing_zeros() as usize;
                fired &= fired - 1;
                self.v[i] = self.params[i].v_reset;
                self.refract_left[i] = self.params[i].t_refract;
                on_spike(i);
            }
            base += m;
        }
    }
}

/// A core's neuron state vector in structure-of-arrays form.
///
/// # Example
///
/// ```
/// use spinn_neuron::izhikevich::{IzhikevichNeuron, IzhikevichParams};
/// use spinn_neuron::pool::NeuronPool;
///
/// let neurons = (0..4)
///     .map(|_| IzhikevichNeuron::new(IzhikevichParams::regular_spiking()).into())
///     .collect();
/// let mut pool = NeuronPool::from_neurons(neurons);
/// let mut fired = Vec::new();
/// pool.step_tick(|_| 15.0, |i| fired.push(i));
/// assert_eq!(pool.len(), 4);
/// ```
#[derive(Clone, Debug)]
pub enum NeuronPool {
    /// All neurons Izhikevich (the loader's common case).
    Izhikevich(IzhikevichPool),
    /// All neurons LIF.
    Lif(LifPool),
    /// Heterogeneous models on one core: enum-dispatch fallback.
    Mixed(Vec<AnyNeuron>),
}

impl NeuronPool {
    /// Converts a neuron vector into SoA form (or the mixed fallback
    /// when models are heterogeneous).
    pub fn from_neurons(neurons: Vec<AnyNeuron>) -> Self {
        let all_izh = neurons
            .iter()
            .all(|n| matches!(n, AnyNeuron::Izhikevich(_)));
        let all_lif = neurons.iter().all(|n| matches!(n, AnyNeuron::Lif(_)));
        if all_izh {
            let mut pool = IzhikevichPool::default();
            for n in neurons {
                match n {
                    AnyNeuron::Izhikevich(n) => pool.push(n),
                    AnyNeuron::Lif(_) => unreachable!(),
                }
            }
            NeuronPool::Izhikevich(pool)
        } else if all_lif {
            let mut pool = LifPool::default();
            for n in neurons {
                match n {
                    AnyNeuron::Lif(n) => pool.push(n),
                    AnyNeuron::Izhikevich(_) => unreachable!(),
                }
            }
            NeuronPool::Lif(pool)
        } else {
            NeuronPool::Mixed(neurons)
        }
    }

    /// Converts back to the per-neuron representation (core eviction /
    /// functional migration).
    pub fn into_neurons(self) -> Vec<AnyNeuron> {
        match self {
            NeuronPool::Izhikevich(p) => (0..p.v.len())
                .map(|i| AnyNeuron::Izhikevich(p.neuron(i)))
                .collect(),
            NeuronPool::Lif(p) => (0..p.v.len())
                .map(|i| AnyNeuron::Lif(p.neuron(i)))
                .collect(),
            NeuronPool::Mixed(v) => v,
        }
    }

    /// Number of neurons.
    pub fn len(&self) -> usize {
        match self {
            NeuronPool::Izhikevich(p) => p.v.len(),
            NeuronPool::Lif(p) => p.v.len(),
            NeuronPool::Mixed(v) => v.len(),
        }
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Serializes the pool's complete state (checkpointing).
    ///
    /// The encoding is per-neuron ([`AnyNeuron::encode`]); decode
    /// rebuilds the SoA form through [`NeuronPool::from_neurons`], which
    /// reproduces the exact layout `from_neurons` would have produced on
    /// the original neuron vector — restored dynamics are bit-exact.
    pub fn encode(&self, enc: &mut spinn_sim::wire::Enc) {
        enc.seq(self.len());
        match self {
            NeuronPool::Izhikevich(p) => {
                for i in 0..p.v.len() {
                    AnyNeuron::Izhikevich(p.neuron(i)).encode(enc);
                }
            }
            NeuronPool::Lif(p) => {
                for i in 0..p.v.len() {
                    AnyNeuron::Lif(p.neuron(i)).encode(enc);
                }
            }
            NeuronPool::Mixed(v) => {
                for n in v {
                    n.encode(enc);
                }
            }
        }
    }

    /// Rebuilds a pool from [`NeuronPool::encode`] bytes.
    ///
    /// # Errors
    ///
    /// Returns a [`spinn_sim::wire::WireError`] on truncated or corrupt
    /// input.
    pub fn decode(
        dec: &mut spinn_sim::wire::Dec<'_>,
    ) -> Result<NeuronPool, spinn_sim::wire::WireError> {
        let n = dec.seq(9)?;
        let mut neurons = Vec::with_capacity(n);
        for _ in 0..n {
            neurons.push(AnyNeuron::decode(dec)?);
        }
        Ok(NeuronPool::from_neurons(neurons))
    }

    /// Advances every neuron by 1 ms: `input(i)` supplies the summed
    /// drive in nA, `on_spike(i)` fires for each neuron that crossed
    /// threshold, in ascending index order.
    /// Homogeneous pools take the chunked wide path (see the module
    /// docs) unless `SPINN_SCALAR_TICK=1` pins the scalar fallback;
    /// both orders of evaluation are bit-identical.
    #[inline]
    pub fn step_tick(&mut self, input: impl Fn(usize) -> f32, mut on_spike: impl FnMut(usize)) {
        let wide = wide_tick_enabled();
        match self {
            NeuronPool::Izhikevich(p) => {
                if wide {
                    p.step_tick_wide(&input, &mut on_spike);
                } else {
                    for i in 0..p.v.len() {
                        if p.step(i, input(i)) {
                            on_spike(i);
                        }
                    }
                }
            }
            NeuronPool::Lif(p) => {
                if wide {
                    p.step_tick_wide(&input, &mut on_spike);
                } else {
                    for i in 0..p.v.len() {
                        if p.step(i, input(i)) {
                            on_spike(i);
                        }
                    }
                }
            }
            NeuronPool::Mixed(v) => {
                for (i, n) in v.iter_mut().enumerate() {
                    if n.step_1ms(input(i)) {
                        on_spike(i);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive(t: usize, i: usize) -> f32 {
        match (t + i) % 4 {
            0 => 14.0,
            1 => 6.5,
            2 => 0.0,
            _ => 9.0,
        }
    }

    /// SoA stepping must match per-neuron enum dispatch bit for bit —
    /// the property the golden traces rely on.
    fn assert_pool_matches_aos(mk: impl Fn(usize) -> AnyNeuron, n: usize, ticks: usize) {
        let mut aos: Vec<AnyNeuron> = (0..n).map(&mk).collect();
        let mut pool = NeuronPool::from_neurons((0..n).map(&mk).collect());
        for t in 0..ticks {
            let mut expect = Vec::new();
            for (i, neuron) in aos.iter_mut().enumerate() {
                if neuron.step_1ms(drive(t, i)) {
                    expect.push(i);
                }
            }
            let mut got = Vec::new();
            pool.step_tick(|i| drive(t, i), |i| got.push(i));
            assert_eq!(got, expect, "tick {t}");
        }
        // Round-tripped state is identical too.
        let back = pool.into_neurons();
        for (a, b) in aos.iter().zip(&back) {
            assert_eq!(a.membrane_mv(), b.membrane_mv());
        }
    }

    #[test]
    fn izhikevich_pool_bit_exact() {
        let presets = [
            IzhikevichParams::regular_spiking(),
            IzhikevichParams::fast_spiking(),
            IzhikevichParams::chattering(),
        ];
        assert_pool_matches_aos(
            |i| AnyNeuron::Izhikevich(IzhikevichNeuron::new(presets[i % 3])),
            32,
            600,
        );
    }

    #[test]
    fn lif_pool_bit_exact() {
        assert_pool_matches_aos(
            |i| {
                AnyNeuron::Lif(LifNeuron::new(LifParams {
                    t_refract: (i % 5) as u32,
                    ..Default::default()
                }))
            },
            32,
            600,
        );
    }

    #[test]
    fn mixed_pool_falls_back_to_enum_dispatch() {
        let mk = |i: usize| -> AnyNeuron {
            if i.is_multiple_of(2) {
                IzhikevichNeuron::new(IzhikevichParams::regular_spiking()).into()
            } else {
                LifNeuron::new(LifParams::default()).into()
            }
        };
        let pool = NeuronPool::from_neurons((0..6).map(mk).collect());
        assert!(matches!(pool, NeuronPool::Mixed(_)));
        assert_pool_matches_aos(mk, 16, 300);
    }

    /// The chunked wide path must equal the scalar `step` walk exactly
    /// — spikes and post-state — including ragged tails shorter than a
    /// chunk and neurons sitting right at the chunk seams.
    #[test]
    fn wide_path_matches_scalar_step() {
        for n in [0usize, 1, 7, 8, 9, 31, 32, 33] {
            // Izhikevich: drive hard enough that lanes fire on
            // different ticks.
            let presets = [
                IzhikevichParams::regular_spiking(),
                IzhikevichParams::fast_spiking(),
                IzhikevichParams::chattering(),
            ];
            let mk = |i: usize| IzhikevichNeuron::new(presets[i % 3]);
            let mut wide = match NeuronPool::from_neurons((0..n).map(|i| mk(i).into()).collect()) {
                NeuronPool::Izhikevich(p) => p,
                _ => unreachable!(),
            };
            let mut scalar = wide.clone();
            for t in 0..400 {
                let mut got = Vec::new();
                wide.step_tick_wide(&|i| drive(t, i), &mut |i| got.push(i));
                let mut expect = Vec::new();
                for i in 0..n {
                    if scalar.step(i, drive(t, i)) {
                        expect.push(i);
                    }
                }
                assert_eq!(got, expect, "izh n={n} tick {t}");
                assert_eq!(wide.v, scalar.v, "izh n={n} tick {t}");
                assert_eq!(wide.u, scalar.u, "izh n={n} tick {t}");
            }
            // LIF with a spread of refractory periods.
            let mut wide = LifPool::default();
            for i in 0..n {
                wide.push(LifNeuron::new(LifParams {
                    t_refract: (i % 5) as u32,
                    tau_m: 10.0 + (i % 7) as f32,
                    ..Default::default()
                }));
            }
            let mut scalar = wide.clone();
            for t in 0..400 {
                let mut got = Vec::new();
                wide.step_tick_wide(&|i| drive(t, i) * 2.0, &mut |i| got.push(i));
                let mut expect = Vec::new();
                for i in 0..n {
                    if scalar.step(i, drive(t, i) * 2.0) {
                        expect.push(i);
                    }
                }
                assert_eq!(got, expect, "lif n={n} tick {t}");
                assert_eq!(wide.v, scalar.v, "lif n={n} tick {t}");
                assert_eq!(wide.refract_left, scalar.refract_left, "lif n={n} tick {t}");
            }
        }
    }

    #[test]
    fn len_and_empty() {
        let pool = NeuronPool::from_neurons(Vec::new());
        assert_eq!(pool.len(), 0);
        assert!(pool.is_empty());
    }
}
