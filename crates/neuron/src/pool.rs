//! Structure-of-arrays neuron state for the per-core tick update.
//!
//! The 1 ms timer handler (Fig. 7, priority 3) walks every neuron on
//! the core. With an array-of-structs (`Vec<AnyNeuron>`) each step
//! pays an enum-discriminant branch per neuron and drags the model
//! parameters through the cache interleaved with the state. A core
//! runs one population slice, so in practice every neuron shares a
//! model kind; [`NeuronPool`] exploits that by storing the state as
//! flat parallel arrays (one `match` per *tick*, not per neuron) while
//! producing bit-identical dynamics — the arithmetic is the same
//! fixed-point/f32 sequence as the per-neuron
//! [`step_1ms`](crate::model::NeuronModel::step_1ms) implementations,
//! verified by the golden-trace suite.
//!
//! Mixed-model cores (possible through the manual machine API, never
//! produced by the loader) fall back to the enum-dispatch path.

use crate::fixed::Fix1616;
use crate::izhikevich::{IzhikevichNeuron, IzhikevichParams};
use crate::lif::{LifNeuron, LifParams};
use crate::model::{AnyNeuron, NeuronModel};

/// Izhikevich state as parallel 16.16 fixed-point arrays.
#[derive(Clone, Debug, Default)]
pub struct IzhikevichPool {
    params: Vec<IzhikevichParams>,
    a: Vec<Fix1616>,
    b: Vec<Fix1616>,
    c: Vec<Fix1616>,
    d: Vec<Fix1616>,
    v: Vec<Fix1616>,
    u: Vec<Fix1616>,
}

impl IzhikevichPool {
    fn push(&mut self, n: IzhikevichNeuron) {
        self.params.push(n.params);
        self.a.push(n.a);
        self.b.push(n.b);
        self.c.push(n.c);
        self.d.push(n.d);
        self.v.push(n.v);
        self.u.push(n.u);
    }

    fn neuron(&self, i: usize) -> IzhikevichNeuron {
        IzhikevichNeuron {
            params: self.params[i],
            a: self.a[i],
            b: self.b[i],
            c: self.c[i],
            d: self.d[i],
            v: self.v[i],
            u: self.u[i],
        }
    }

    /// One 1 ms step of neuron `i` — the exact fixed-point sequence of
    /// [`IzhikevichNeuron::step_1ms`].
    #[inline]
    fn step(&mut self, i: usize, input_current: f32) -> bool {
        let inj = Fix1616::from_f32(input_current);
        let half = Fix1616::from_f32(0.5);
        let k004 = Fix1616::from_f32(0.04);
        let k5 = Fix1616::from_int(5);
        let k140 = Fix1616::from_int(140);
        let (mut v, mut u) = (self.v[i], self.u[i]);
        for _ in 0..2 {
            let dv = k004 * v * v + k5 * v + k140 - u + inj;
            v += dv * half;
        }
        u += self.a[i] * (self.b[i] * v - u);
        let fired = v.to_f32() >= 30.0;
        if fired {
            v = self.c[i];
            u += self.d[i];
        }
        self.v[i] = v;
        self.u[i] = u;
        fired
    }
}

/// LIF state as parallel arrays.
#[derive(Clone, Debug, Default)]
pub struct LifPool {
    params: Vec<LifParams>,
    v: Vec<f32>,
    refract_left: Vec<u32>,
}

impl LifPool {
    fn push(&mut self, n: LifNeuron) {
        self.params.push(n.params);
        self.v.push(n.v);
        self.refract_left.push(n.refract_left);
    }

    fn neuron(&self, i: usize) -> LifNeuron {
        LifNeuron {
            params: self.params[i],
            v: self.v[i],
            refract_left: self.refract_left[i],
        }
    }

    /// One 1 ms step of neuron `i` — the exact f32 sequence of
    /// [`LifNeuron::step_1ms`].
    #[inline]
    fn step(&mut self, i: usize, input_current: f32) -> bool {
        if self.refract_left[i] > 0 {
            self.refract_left[i] -= 1;
            return false;
        }
        let p = &self.params[i];
        let alpha = (-1.0 / p.tau_m).exp();
        let v_inf = p.v_rest + p.r_m * input_current;
        let v = v_inf + (self.v[i] - v_inf) * alpha;
        if v >= p.v_thresh {
            self.v[i] = p.v_reset;
            self.refract_left[i] = p.t_refract;
            true
        } else {
            self.v[i] = v;
            false
        }
    }
}

/// A core's neuron state vector in structure-of-arrays form.
///
/// # Example
///
/// ```
/// use spinn_neuron::izhikevich::{IzhikevichNeuron, IzhikevichParams};
/// use spinn_neuron::pool::NeuronPool;
///
/// let neurons = (0..4)
///     .map(|_| IzhikevichNeuron::new(IzhikevichParams::regular_spiking()).into())
///     .collect();
/// let mut pool = NeuronPool::from_neurons(neurons);
/// let mut fired = Vec::new();
/// pool.step_tick(|_| 15.0, |i| fired.push(i));
/// assert_eq!(pool.len(), 4);
/// ```
#[derive(Clone, Debug)]
pub enum NeuronPool {
    /// All neurons Izhikevich (the loader's common case).
    Izhikevich(IzhikevichPool),
    /// All neurons LIF.
    Lif(LifPool),
    /// Heterogeneous models on one core: enum-dispatch fallback.
    Mixed(Vec<AnyNeuron>),
}

impl NeuronPool {
    /// Converts a neuron vector into SoA form (or the mixed fallback
    /// when models are heterogeneous).
    pub fn from_neurons(neurons: Vec<AnyNeuron>) -> Self {
        let all_izh = neurons
            .iter()
            .all(|n| matches!(n, AnyNeuron::Izhikevich(_)));
        let all_lif = neurons.iter().all(|n| matches!(n, AnyNeuron::Lif(_)));
        if all_izh {
            let mut pool = IzhikevichPool::default();
            for n in neurons {
                match n {
                    AnyNeuron::Izhikevich(n) => pool.push(n),
                    AnyNeuron::Lif(_) => unreachable!(),
                }
            }
            NeuronPool::Izhikevich(pool)
        } else if all_lif {
            let mut pool = LifPool::default();
            for n in neurons {
                match n {
                    AnyNeuron::Lif(n) => pool.push(n),
                    AnyNeuron::Izhikevich(_) => unreachable!(),
                }
            }
            NeuronPool::Lif(pool)
        } else {
            NeuronPool::Mixed(neurons)
        }
    }

    /// Converts back to the per-neuron representation (core eviction /
    /// functional migration).
    pub fn into_neurons(self) -> Vec<AnyNeuron> {
        match self {
            NeuronPool::Izhikevich(p) => (0..p.v.len())
                .map(|i| AnyNeuron::Izhikevich(p.neuron(i)))
                .collect(),
            NeuronPool::Lif(p) => (0..p.v.len())
                .map(|i| AnyNeuron::Lif(p.neuron(i)))
                .collect(),
            NeuronPool::Mixed(v) => v,
        }
    }

    /// Number of neurons.
    pub fn len(&self) -> usize {
        match self {
            NeuronPool::Izhikevich(p) => p.v.len(),
            NeuronPool::Lif(p) => p.v.len(),
            NeuronPool::Mixed(v) => v.len(),
        }
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Serializes the pool's complete state (checkpointing).
    ///
    /// The encoding is per-neuron ([`AnyNeuron::encode`]); decode
    /// rebuilds the SoA form through [`NeuronPool::from_neurons`], which
    /// reproduces the exact layout `from_neurons` would have produced on
    /// the original neuron vector — restored dynamics are bit-exact.
    pub fn encode(&self, enc: &mut spinn_sim::wire::Enc) {
        enc.seq(self.len());
        match self {
            NeuronPool::Izhikevich(p) => {
                for i in 0..p.v.len() {
                    AnyNeuron::Izhikevich(p.neuron(i)).encode(enc);
                }
            }
            NeuronPool::Lif(p) => {
                for i in 0..p.v.len() {
                    AnyNeuron::Lif(p.neuron(i)).encode(enc);
                }
            }
            NeuronPool::Mixed(v) => {
                for n in v {
                    n.encode(enc);
                }
            }
        }
    }

    /// Rebuilds a pool from [`NeuronPool::encode`] bytes.
    ///
    /// # Errors
    ///
    /// Returns a [`spinn_sim::wire::WireError`] on truncated or corrupt
    /// input.
    pub fn decode(
        dec: &mut spinn_sim::wire::Dec<'_>,
    ) -> Result<NeuronPool, spinn_sim::wire::WireError> {
        let n = dec.seq(9)?;
        let mut neurons = Vec::with_capacity(n);
        for _ in 0..n {
            neurons.push(AnyNeuron::decode(dec)?);
        }
        Ok(NeuronPool::from_neurons(neurons))
    }

    /// Advances every neuron by 1 ms: `input(i)` supplies the summed
    /// drive in nA, `on_spike(i)` fires for each neuron that crossed
    /// threshold, in ascending index order.
    #[inline]
    pub fn step_tick(&mut self, input: impl Fn(usize) -> f32, mut on_spike: impl FnMut(usize)) {
        match self {
            NeuronPool::Izhikevich(p) => {
                for i in 0..p.v.len() {
                    if p.step(i, input(i)) {
                        on_spike(i);
                    }
                }
            }
            NeuronPool::Lif(p) => {
                for i in 0..p.v.len() {
                    if p.step(i, input(i)) {
                        on_spike(i);
                    }
                }
            }
            NeuronPool::Mixed(v) => {
                for (i, n) in v.iter_mut().enumerate() {
                    if n.step_1ms(input(i)) {
                        on_spike(i);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive(t: usize, i: usize) -> f32 {
        match (t + i) % 4 {
            0 => 14.0,
            1 => 6.5,
            2 => 0.0,
            _ => 9.0,
        }
    }

    /// SoA stepping must match per-neuron enum dispatch bit for bit —
    /// the property the golden traces rely on.
    fn assert_pool_matches_aos(mk: impl Fn(usize) -> AnyNeuron, n: usize, ticks: usize) {
        let mut aos: Vec<AnyNeuron> = (0..n).map(&mk).collect();
        let mut pool = NeuronPool::from_neurons((0..n).map(&mk).collect());
        for t in 0..ticks {
            let mut expect = Vec::new();
            for (i, neuron) in aos.iter_mut().enumerate() {
                if neuron.step_1ms(drive(t, i)) {
                    expect.push(i);
                }
            }
            let mut got = Vec::new();
            pool.step_tick(|i| drive(t, i), |i| got.push(i));
            assert_eq!(got, expect, "tick {t}");
        }
        // Round-tripped state is identical too.
        let back = pool.into_neurons();
        for (a, b) in aos.iter().zip(&back) {
            assert_eq!(a.membrane_mv(), b.membrane_mv());
        }
    }

    #[test]
    fn izhikevich_pool_bit_exact() {
        let presets = [
            IzhikevichParams::regular_spiking(),
            IzhikevichParams::fast_spiking(),
            IzhikevichParams::chattering(),
        ];
        assert_pool_matches_aos(
            |i| AnyNeuron::Izhikevich(IzhikevichNeuron::new(presets[i % 3])),
            32,
            600,
        );
    }

    #[test]
    fn lif_pool_bit_exact() {
        assert_pool_matches_aos(
            |i| {
                AnyNeuron::Lif(LifNeuron::new(LifParams {
                    t_refract: (i % 5) as u32,
                    ..Default::default()
                }))
            },
            32,
            600,
        );
    }

    #[test]
    fn mixed_pool_falls_back_to_enum_dispatch() {
        let mk = |i: usize| -> AnyNeuron {
            if i.is_multiple_of(2) {
                IzhikevichNeuron::new(IzhikevichParams::regular_spiking()).into()
            } else {
                LifNeuron::new(LifParams::default()).into()
            }
        };
        let pool = NeuronPool::from_neurons((0..6).map(mk).collect());
        assert!(matches!(pool, NeuronPool::Mixed(_)));
        assert_pool_matches_aos(mk, 16, 300);
    }

    #[test]
    fn len_and_empty() {
        let pool = NeuronPool::from_neurons(Vec::new());
        assert_eq!(pool.len(), 0);
        assert!(pool.is_empty());
    }
}
