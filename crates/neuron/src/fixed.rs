//! 16.16 signed fixed-point arithmetic.
//!
//! The ARM968 cores in SpiNNaker have no floating-point unit; the neuron
//! kernels run in 16.16 fixed point \[17\]. Using the same representation
//! keeps the reproduction's dynamics bit-identical across platforms and
//! faithful to the hardware's quantization behaviour.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A signed 16.16 fixed-point number (range ±32768, resolution 2⁻¹⁶).
///
/// Arithmetic saturates at the representable range, matching the ARM
/// saturating-arithmetic idiom used by the neuron kernels.
///
/// # Example
///
/// ```
/// use spinn_neuron::fixed::Fix1616;
///
/// let a = Fix1616::from_f32(1.5);
/// let b = Fix1616::from_f32(-0.25);
/// assert_eq!((a * b).to_f32(), -0.375);
/// assert_eq!((a + b).to_f32(), 1.25);
/// ```
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Fix1616(i32);

impl Fix1616 {
    /// The number of fractional bits.
    pub const FRAC_BITS: u32 = 16;
    /// Zero.
    pub const ZERO: Fix1616 = Fix1616(0);
    /// One.
    pub const ONE: Fix1616 = Fix1616(1 << 16);
    /// The largest representable value (≈ 32768).
    pub const MAX: Fix1616 = Fix1616(i32::MAX);
    /// The smallest representable value (≈ −32768).
    pub const MIN: Fix1616 = Fix1616(i32::MIN);

    /// Creates a value from raw 16.16 bits.
    #[inline]
    pub const fn from_bits(bits: i32) -> Self {
        Fix1616(bits)
    }

    /// The raw 16.16 bit pattern.
    #[inline]
    pub const fn to_bits(self) -> i32 {
        self.0
    }

    /// Converts from an integer (saturating).
    #[inline]
    pub fn from_int(v: i32) -> Self {
        Fix1616(v.saturating_mul(1 << 16))
    }

    /// Converts from `f32` (saturating, truncating toward zero).
    pub fn from_f32(v: f32) -> Self {
        let scaled = (v as f64) * 65536.0;
        if scaled >= i32::MAX as f64 {
            Fix1616::MAX
        } else if scaled <= i32::MIN as f64 {
            Fix1616::MIN
        } else {
            Fix1616(scaled as i32)
        }
    }

    /// Converts to `f32`.
    #[inline]
    pub fn to_f32(self) -> f32 {
        self.0 as f32 / 65536.0
    }

    /// Converts to `f64` (exact).
    #[inline]
    pub fn to_f64(self) -> f64 {
        self.0 as f64 / 65536.0
    }

    /// Saturating addition.
    #[inline]
    pub fn saturating_add(self, rhs: Fix1616) -> Fix1616 {
        Fix1616(self.0.saturating_add(rhs.0))
    }

    /// Saturating multiplication (rounds toward negative infinity).
    #[inline]
    pub fn saturating_mul(self, rhs: Fix1616) -> Fix1616 {
        let wide = (self.0 as i64 * rhs.0 as i64) >> 16;
        if wide > i32::MAX as i64 {
            Fix1616::MAX
        } else if wide < i32::MIN as i64 {
            Fix1616::MIN
        } else {
            Fix1616(wide as i32)
        }
    }

    /// Absolute value (saturating at `MAX` for `MIN`).
    #[inline]
    pub fn abs(self) -> Fix1616 {
        if self.0 == i32::MIN {
            Fix1616::MAX
        } else {
            Fix1616(self.0.abs())
        }
    }
}

impl Add for Fix1616 {
    type Output = Fix1616;
    #[inline]
    fn add(self, rhs: Fix1616) -> Fix1616 {
        self.saturating_add(rhs)
    }
}

impl AddAssign for Fix1616 {
    #[inline]
    fn add_assign(&mut self, rhs: Fix1616) {
        *self = *self + rhs;
    }
}

impl Sub for Fix1616 {
    type Output = Fix1616;
    #[inline]
    fn sub(self, rhs: Fix1616) -> Fix1616 {
        Fix1616(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for Fix1616 {
    #[inline]
    fn sub_assign(&mut self, rhs: Fix1616) {
        *self = *self - rhs;
    }
}

impl Mul for Fix1616 {
    type Output = Fix1616;
    #[inline]
    fn mul(self, rhs: Fix1616) -> Fix1616 {
        self.saturating_mul(rhs)
    }
}

impl Div for Fix1616 {
    type Output = Fix1616;
    /// # Panics
    ///
    /// Panics on division by zero.
    #[inline]
    fn div(self, rhs: Fix1616) -> Fix1616 {
        assert!(rhs.0 != 0, "fixed-point division by zero");
        let wide = ((self.0 as i64) << 16) / rhs.0 as i64;
        if wide > i32::MAX as i64 {
            Fix1616::MAX
        } else if wide < i32::MIN as i64 {
            Fix1616::MIN
        } else {
            Fix1616(wide as i32)
        }
    }
}

impl Neg for Fix1616 {
    type Output = Fix1616;
    #[inline]
    fn neg(self) -> Fix1616 {
        Fix1616(self.0.saturating_neg())
    }
}

impl fmt::Debug for Fix1616 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Fix1616({})", self.to_f64())
    }
}

impl fmt::Display for Fix1616 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.5}", self.to_f64())
    }
}

impl From<i16> for Fix1616 {
    fn from(v: i16) -> Self {
        Fix1616::from_int(v as i32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_roundtrip() {
        for v in [-100.5f32, -1.0, -0.25, 0.0, 0.5, 1.0, 3.75, 1000.125] {
            assert_eq!(Fix1616::from_f32(v).to_f32(), v, "{v}");
        }
        assert_eq!(Fix1616::from_int(5).to_f32(), 5.0);
        assert_eq!(Fix1616::from(-3i16).to_f32(), -3.0);
    }

    #[test]
    fn constants() {
        assert_eq!(Fix1616::ZERO.to_f32(), 0.0);
        assert_eq!(Fix1616::ONE.to_f32(), 1.0);
        assert_eq!(Fix1616::ONE.to_bits(), 65536);
    }

    #[test]
    fn arithmetic() {
        let a = Fix1616::from_f32(2.5);
        let b = Fix1616::from_f32(0.5);
        assert_eq!((a + b).to_f32(), 3.0);
        assert_eq!((a - b).to_f32(), 2.0);
        assert_eq!((a * b).to_f32(), 1.25);
        assert_eq!((a / b).to_f32(), 5.0);
        assert_eq!((-a).to_f32(), -2.5);
        assert_eq!(Fix1616::from_f32(-1.5).abs().to_f32(), 1.5);
    }

    #[test]
    fn saturation() {
        let big = Fix1616::from_f32(30000.0);
        assert_eq!(big + big, Fix1616::MAX);
        assert_eq!(big * big, Fix1616::MAX);
        assert_eq!((-big) * big, Fix1616::MIN);
        assert_eq!(Fix1616::MIN.abs(), Fix1616::MAX);
        assert_eq!(Fix1616::from_f32(1e30), Fix1616::MAX);
        assert_eq!(Fix1616::from_f32(-1e30), Fix1616::MIN);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        let _ = Fix1616::ONE / Fix1616::ZERO;
    }

    #[test]
    fn multiplication_matches_f64_within_quantum() {
        // Fixed-point multiply truncates at 2^-16: error < 2 quanta.
        let cases = [(1.1, 2.3), (-0.7, 0.9), (100.0, 0.01), (-3.3, -4.4)];
        for (x, y) in cases {
            let qx = Fix1616::from_f32(x as f32);
            let qy = Fix1616::from_f32(y as f32);
            // Compare against the exact product of the *quantized* inputs:
            // the multiply itself truncates by at most one quantum.
            let err = ((qx * qy).to_f64() - qx.to_f64() * qy.to_f64()).abs();
            assert!(err <= 1.0 / 65536.0, "({x}, {y}): err {err}");
        }
    }

    #[test]
    fn assign_ops() {
        let mut a = Fix1616::ONE;
        a += Fix1616::ONE;
        assert_eq!(a.to_f32(), 2.0);
        a -= Fix1616::from_f32(0.5);
        assert_eq!(a.to_f32(), 1.5);
    }

    #[test]
    fn ordering_and_display() {
        assert!(Fix1616::from_f32(1.0) < Fix1616::from_f32(1.5));
        assert_eq!(format!("{}", Fix1616::from_f32(0.5)), "0.50000");
        assert!(format!("{:?}", Fix1616::ONE).contains("Fix1616"));
    }
}
