//! Pair-based spike-timing-dependent plasticity.
//!
//! The paper's conclusion calls for platforms on which networks "develop,
//! learn and adapt"; STDP is the standard SpiNNaker plasticity rule. The
//! implementation follows the trace formulation: each synapse keeps
//! exponentially decaying pre- and post-synaptic traces, potentiating on
//! post-after-pre and depressing on pre-after-post.

/// STDP rule parameters.
#[derive(Copy, Clone, Debug)]
pub struct StdpParams {
    /// Potentiation amplitude per pairing.
    pub a_plus: f32,
    /// Depression amplitude per pairing.
    pub a_minus: f32,
    /// Potentiation trace time constant, ms.
    pub tau_plus_ms: f32,
    /// Depression trace time constant, ms.
    pub tau_minus_ms: f32,
    /// Lower weight bound (8.8 fixed point).
    pub w_min_raw: i16,
    /// Upper weight bound (8.8 fixed point).
    pub w_max_raw: i16,
}

impl Default for StdpParams {
    fn default() -> Self {
        StdpParams {
            a_plus: 8.0,
            a_minus: 8.5,
            tau_plus_ms: 20.0,
            tau_minus_ms: 20.0,
            w_min_raw: 0,
            w_max_raw: 4 * 256, // 4 nA
        }
    }
}

/// Per-synapse STDP state: the two traces and their last-update times.
#[derive(Copy, Clone, Debug, Default)]
pub struct StdpSynapse {
    /// Pre-synaptic trace (decays with `tau_plus_ms`).
    pre_trace: f32,
    /// Post-synaptic trace (decays with `tau_minus_ms`).
    post_trace: f32,
    last_pre_ms: f64,
    last_post_ms: f64,
}

impl StdpSynapse {
    /// A synapse with empty traces.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a pre-synaptic spike at time `t_ms`; returns the weight
    /// change (8.8 fixed point, ≤ 0: depression against the post trace).
    pub fn on_pre(&mut self, t_ms: f64, p: &StdpParams) -> i16 {
        // Depression: pre arriving after post.
        let dt = t_ms - self.last_post_ms;
        let dw = if self.post_trace > 0.0 && dt >= 0.0 {
            -(p.a_minus * self.post_trace * (-(dt as f32) / p.tau_minus_ms).exp())
        } else {
            0.0
        };
        // Update the pre trace.
        let since_pre = (t_ms - self.last_pre_ms) as f32;
        self.pre_trace = self.pre_trace * (-since_pre / p.tau_plus_ms).exp() + 1.0;
        self.last_pre_ms = t_ms;
        dw.round() as i16
    }

    /// Registers a post-synaptic spike at time `t_ms`; returns the weight
    /// change (8.8 fixed point, ≥ 0: potentiation against the pre trace).
    pub fn on_post(&mut self, t_ms: f64, p: &StdpParams) -> i16 {
        let dt = t_ms - self.last_pre_ms;
        let dw = if self.pre_trace > 0.0 && dt >= 0.0 {
            p.a_plus * self.pre_trace * (-(dt as f32) / p.tau_plus_ms).exp()
        } else {
            0.0
        };
        let since_post = (t_ms - self.last_post_ms) as f32;
        self.post_trace = self.post_trace * (-since_post / p.tau_minus_ms).exp() + 1.0;
        self.last_post_ms = t_ms;
        dw.round() as i16
    }

    /// The current pre-synaptic trace value (diagnostics).
    pub fn pre_trace(&self) -> f32 {
        self.pre_trace
    }

    /// The current post-synaptic trace value (diagnostics).
    pub fn post_trace(&self) -> f32 {
        self.post_trace
    }
}

/// Applies a weight delta within the rule's bounds.
pub fn apply_bounded(weight_raw: i16, dw_raw: i16, p: &StdpParams) -> i16 {
    (weight_raw.saturating_add(dw_raw)).clamp(p.w_min_raw, p.w_max_raw)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pre_then_post_potentiates() {
        let p = StdpParams::default();
        let mut s = StdpSynapse::new();
        assert_eq!(s.on_pre(100.0, &p), 0); // no post trace yet
        let dw = s.on_post(105.0, &p);
        assert!(dw > 0, "post 5 ms after pre must potentiate, got {dw}");
    }

    #[test]
    fn post_then_pre_depresses() {
        let p = StdpParams::default();
        let mut s = StdpSynapse::new();
        assert_eq!(s.on_post(100.0, &p), 0);
        let dw = s.on_pre(105.0, &p);
        assert!(dw < 0, "pre 5 ms after post must depress, got {dw}");
    }

    #[test]
    fn magnitude_decays_with_interval() {
        let p = StdpParams::default();
        let near = {
            let mut s = StdpSynapse::new();
            s.on_pre(0.0, &p);
            s.on_post(2.0, &p)
        };
        let far = {
            let mut s = StdpSynapse::new();
            s.on_pre(0.0, &p);
            s.on_post(40.0, &p)
        };
        assert!(
            near > far,
            "closer pairing must change more: {near} vs {far}"
        );
        assert!(far >= 0);
    }

    #[test]
    fn traces_accumulate_over_bursts() {
        let p = StdpParams::default();
        let mut s = StdpSynapse::new();
        for t in 0..5 {
            s.on_pre(t as f64, &p);
        }
        assert!(s.pre_trace() > 1.0, "burst should pile the trace up");
        let dw = s.on_post(6.0, &p);
        let mut single = StdpSynapse::new();
        single.on_pre(4.0, &p);
        let dw_single = single.on_post(6.0, &p);
        assert!(dw > dw_single, "{dw} vs {dw_single}");
    }

    #[test]
    fn bounds_respected() {
        let p = StdpParams::default();
        assert_eq!(apply_bounded(p.w_max_raw, 100, &p), p.w_max_raw);
        assert_eq!(apply_bounded(p.w_min_raw, -100, &p), p.w_min_raw);
        assert_eq!(apply_bounded(100, 20, &p), 120);
    }

    #[test]
    fn asymmetry_matches_parameters() {
        // With a_minus slightly larger than a_plus, symmetric pairings
        // net-depress — the classic stability condition.
        let p = StdpParams::default();
        let mut s1 = StdpSynapse::new();
        s1.on_pre(0.0, &p);
        let pot = s1.on_post(10.0, &p) as i32;
        let mut s2 = StdpSynapse::new();
        s2.on_post(0.0, &p);
        let dep = s2.on_pre(10.0, &p) as i32;
        assert!(pot + dep <= 0, "pot {pot} dep {dep}");
    }
}
