//! Generator specs for **lazily materialized** synaptic rows.
//!
//! A full SpiNNaker-scale build (2^16 chips, 10^8+ synapses) cannot
//! afford to hold every expanded synaptic word in host RAM, and most
//! rows are never DMAed during a given run anyway. Instead of the
//! expanded words, the loader stores the *recipe*: the connector and
//! weight/delay distribution of the projection ([`GenSpec`]) plus, for
//! stochastic connectors, the RNG stream position at the start of each
//! source neuron's pair run ([`GenState`]). A row is then regenerated
//! bit-for-bit on first touch in `O(source fan-out)` — the host-side
//! analogue of the board keeping connectivity in compressed form and
//! expanding rows into DTCM on demand.
//!
//! The replay contract mirrors `spinn-map`'s streaming expansion
//! exactly: pairs ascend by source, weight/delay draws consume the
//! projection's synapse RNG once per pair in global stream order, and
//! the Bernoulli connector samples geometric inter-success gaps over
//! the flattened `(src, dst)` index space. `FixedFanOut` (whose
//! per-source target permutation is cumulative) has no cheap per-row
//! state and stays on the eager path.

use crate::synapse::SynapticWord;
use spinn_sim::Xoshiro256;

/// Connector patterns that support per-row lazy replay.
#[derive(Copy, Clone, Debug, PartialEq)]
pub enum GenConnector {
    /// `i -> i` for `i < min(n_src, n_dst)`.
    OneToOne,
    /// Dense row-major scan, optionally skipping the diagonal.
    AllToAll {
        /// Skip `i -> i` (recurrent projection without self-connections).
        skip_self: bool,
    },
    /// Independent inclusion with probability `p`, visited as geometric
    /// gaps between successes over the flattened index space.
    Bernoulli {
        /// Inclusion probability (0 < p < 1; the loader maps p >= 1 to
        /// [`GenConnector::AllToAll`] and p <= 0 to an empty stream).
        p: f64,
    },
}

/// Weight/delay distribution of a projection — the neuron-side mirror
/// of `spinn_map::Synapses`, which delegates its draws here so the
/// build-time and replay-time streams share one implementation.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct GenSynapses {
    /// Minimum weight, 8.8 fixed point.
    pub weight_min_raw: i16,
    /// Maximum weight, 8.8 fixed point.
    pub weight_max_raw: i16,
    /// Minimum delay, ms.
    pub delay_min_ms: u8,
    /// Maximum delay, ms.
    pub delay_max_ms: u8,
}

impl GenSynapses {
    /// Whether sampling never consumes randomness (point distribution).
    #[inline]
    pub fn is_constant(&self) -> bool {
        self.weight_min_raw == self.weight_max_raw && self.delay_min_ms == self.delay_max_ms
    }

    /// Draws a concrete `(weight, delay)` pair. Constant fields consume
    /// no randomness — the stream advances only for genuine ranges.
    #[inline]
    pub fn sample(&self, rng: &mut Xoshiro256) -> (i16, u8) {
        let w = if self.weight_min_raw == self.weight_max_raw {
            self.weight_min_raw
        } else {
            let span = (self.weight_max_raw as i32 - self.weight_min_raw as i32 + 1) as u64;
            (self.weight_min_raw as i32 + rng.gen_range_u64(span) as i32) as i16
        };
        let d = if self.delay_min_ms == self.delay_max_ms {
            self.delay_min_ms
        } else {
            let span = (self.delay_max_ms - self.delay_min_ms + 1) as u64;
            self.delay_min_ms + rng.gen_range_u64(span) as u8
        };
        (w, d)
    }
}

/// The recipe for one projection's contribution to one core's rows:
/// everything needed to regenerate any row's words, except the
/// per-source RNG positions (see [`GenState`]).
#[derive(Clone, Debug, PartialEq)]
pub struct GenSpec {
    /// Connection pattern.
    pub conn: GenConnector,
    /// Weight/delay distribution.
    pub syn: GenSynapses,
    /// Source population size.
    pub n_src: u32,
    /// Target population size.
    pub n_dst: u32,
    /// First global target index held by this core (inclusive).
    pub dst_lo: u32,
    /// One past the last global target index held by this core.
    pub dst_hi: u32,
}

/// RNG stream positions at the start of one source neuron's pair run.
///
/// Captured by the loader during its single streaming pass and replayed
/// by [`GenSpec::append_row`]. Analytic specs (deterministic connector
/// plus constant synapses) need no state at all — their rows regenerate
/// from the spec and row index alone.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct GenState {
    /// Synapse-sampler RNG state after every draw for earlier pairs.
    pub syn_rng: [u64; 4],
    /// Connector RNG state (Bernoulli gap sampler; unused otherwise).
    pub conn_rng: [u64; 4],
    /// Next candidate flattened `(src, dst)` index (Bernoulli only).
    pub cursor: u64,
}

impl GenSpec {
    /// Whether rows of this spec need a captured [`GenState`]. False
    /// means the spec is fully analytic: the loader can skip streaming
    /// it entirely and row lengths come from [`GenSpec::row_len`].
    #[inline]
    pub fn needs_state(&self) -> bool {
        match self.conn {
            GenConnector::OneToOne | GenConnector::AllToAll { .. } => !self.syn.is_constant(),
            GenConnector::Bernoulli { .. } => true,
        }
    }

    /// Analytic row length for stateless connectors (`None` for
    /// Bernoulli, whose lengths are counted during the build pass).
    pub fn row_len(&self, s: u32) -> Option<u32> {
        match self.conn {
            GenConnector::OneToOne => {
                let hit = s < self.n_src.min(self.n_dst) && (self.dst_lo..self.dst_hi).contains(&s);
                Some(hit as u32)
            }
            GenConnector::AllToAll { skip_self } => {
                let window = self.dst_hi - self.dst_lo;
                let diag = (skip_self && (self.dst_lo..self.dst_hi).contains(&s)) as u32;
                Some(window - diag)
            }
            GenConnector::Bernoulli { .. } => None,
        }
    }

    /// Regenerates source `s`'s words for this core's target window,
    /// appending them to `out` — bit-identical to what the eager build
    /// would have staged for this (projection, row).
    ///
    /// # Panics
    ///
    /// Panics if the spec needs a [`GenState`] and none is given.
    pub fn append_row(&self, s: u32, state: Option<&GenState>, out: &mut Vec<SynapticWord>) {
        let window = self.dst_lo..self.dst_hi;
        match self.conn {
            GenConnector::OneToOne => {
                if s < self.n_src.min(self.n_dst) && window.contains(&s) {
                    let (w, d) = match state {
                        Some(st) => {
                            let mut rng = Xoshiro256::from_state(st.syn_rng);
                            self.syn.sample(&mut rng)
                        }
                        None => (self.syn.weight_min_raw, self.syn.delay_min_ms),
                    };
                    out.push(SynapticWord::new(w, d, (s - self.dst_lo) as u16));
                }
            }
            GenConnector::AllToAll { skip_self } => {
                let skip = skip_self;
                match state {
                    None => {
                        let (w, d) = (self.syn.weight_min_raw, self.syn.delay_min_ms);
                        for dst in window.clone() {
                            if skip && dst == s {
                                continue;
                            }
                            out.push(SynapticWord::new(w, d, (dst - self.dst_lo) as u16));
                        }
                    }
                    Some(st) => {
                        // Draws are per pair in global order, so the
                        // whole source run must be replayed even though
                        // only the window's words are kept.
                        let mut rng = Xoshiro256::from_state(st.syn_rng);
                        for dst in 0..self.n_dst {
                            if skip && dst == s {
                                continue;
                            }
                            let (w, d) = self.syn.sample(&mut rng);
                            if window.contains(&dst) {
                                out.push(SynapticWord::new(w, d, (dst - self.dst_lo) as u16));
                            }
                        }
                    }
                }
            }
            GenConnector::Bernoulli { p } => {
                let st = state.expect("Bernoulli rows need a captured GenState");
                let mut conn = Xoshiro256::from_state(st.conn_rng);
                let mut syn = Xoshiro256::from_state(st.syn_rng);
                let mut cursor = st.cursor;
                let total = if p > 0.0 {
                    self.n_src as u64 * self.n_dst as u64
                } else {
                    0
                };
                let row_end = (s as u64 + 1) * self.n_dst as u64;
                loop {
                    if cursor >= total || cursor >= row_end {
                        return;
                    }
                    let u = conn.next_f64();
                    let skip = ((1.0 - u).ln() / (-p).ln_1p()).floor() as u64;
                    let idx = cursor.saturating_add(skip);
                    if idx >= total || idx >= row_end {
                        return;
                    }
                    cursor = idx + 1;
                    let dst = (idx % self.n_dst as u64) as u32;
                    let (w, d) = self.syn.sample(&mut syn);
                    if window.contains(&dst) {
                        out.push(SynapticWord::new(w, d, (dst - self.dst_lo) as u16));
                    }
                }
            }
        }
    }

    /// Host bytes this spec's per-row state costs (0 when analytic).
    #[inline]
    pub fn state_bytes(&self) -> u64 {
        if self.needs_state() {
            std::mem::size_of::<GenState>() as u64
        } else {
            0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn syn_const() -> GenSynapses {
        GenSynapses {
            weight_min_raw: 300,
            weight_max_raw: 300,
            delay_min_ms: 2,
            delay_max_ms: 2,
        }
    }

    #[test]
    fn analytic_specs_need_no_state() {
        let spec = GenSpec {
            conn: GenConnector::AllToAll { skip_self: true },
            syn: syn_const(),
            n_src: 10,
            n_dst: 10,
            dst_lo: 4,
            dst_hi: 8,
        };
        assert!(!spec.needs_state());
        assert_eq!(spec.row_len(2), Some(4));
        assert_eq!(spec.row_len(5), Some(3)); // diagonal falls in window
        let mut out = Vec::new();
        spec.append_row(5, None, &mut out);
        assert_eq!(out.len(), 3);
        assert_eq!(
            out.iter().map(|w| w.target()).collect::<Vec<_>>(),
            vec![0, 2, 3] // 4,6,7 shifted into the window
        );
    }

    #[test]
    fn one_to_one_hits_only_inside_window() {
        let spec = GenSpec {
            conn: GenConnector::OneToOne,
            syn: syn_const(),
            n_src: 20,
            n_dst: 16,
            dst_lo: 8,
            dst_hi: 12,
        };
        assert_eq!(spec.row_len(7), Some(0));
        assert_eq!(spec.row_len(9), Some(1));
        assert_eq!(spec.row_len(17), Some(0)); // beyond min(n_src, n_dst)
        let mut out = Vec::new();
        spec.append_row(9, None, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].target(), 1);
    }

    #[test]
    fn uniform_synapses_replay_the_global_stream() {
        // Manually run the eager stream (draw per pair, ascending
        // source) and check the per-source state replay reproduces it.
        let syn = GenSynapses {
            weight_min_raw: 100,
            weight_max_raw: 900,
            delay_min_ms: 1,
            delay_max_ms: 9,
        };
        let spec = GenSpec {
            conn: GenConnector::AllToAll { skip_self: false },
            syn,
            n_src: 6,
            n_dst: 5,
            dst_lo: 1,
            dst_hi: 4,
        };
        assert!(spec.needs_state());
        let mut rng = Xoshiro256::seed_from_u64(7);
        let mut eager: Vec<Vec<SynapticWord>> = vec![Vec::new(); 6];
        let mut states = Vec::new();
        for s in 0..6u32 {
            states.push(GenState {
                syn_rng: rng.state(),
                conn_rng: Xoshiro256::seed_from_u64(0).state(),
                cursor: 0,
            });
            for d in 0..5u32 {
                let (w, dl) = syn.sample(&mut rng);
                if (1..4).contains(&d) {
                    eager[s as usize].push(SynapticWord::new(w, dl, (d - 1) as u16));
                }
            }
        }
        for s in 0..6u32 {
            let mut out = Vec::new();
            spec.append_row(s, Some(&states[s as usize]), &mut out);
            assert_eq!(out, eager[s as usize], "source {s}");
        }
    }
}
