//! Population codes: N-of-M and rank-order (§5.4).
//!
//! "Information may be encoded in the choice of a subset of a population
//! that is active at any time, which in its purest form is an N-of-M
//! code ... In an extension of this approach, the N active neurons convey
//! additional information in the order in which they fire — these are
//! 'rank-order' codes \[20\]."

/// A rank-order code: the indices of the firing neurons, in firing order
/// (earliest first).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RankOrderCode {
    /// Neuron indices, most significant (first to fire) first.
    pub order: Vec<u32>,
}

impl RankOrderCode {
    /// Number of firing neurons (the N in N-of-M).
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Whether no neuron fired.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// The active subset, ignoring order (an N-of-M code).
    pub fn as_n_of_m(&self) -> Vec<u32> {
        let mut v = self.order.clone();
        v.sort_unstable();
        v
    }
}

/// Encodes an analog activity vector as a rank-order code over its `n`
/// strongest components: stronger activation fires earlier \[20\].
///
/// Components must exceed `threshold` to fire at all. Ties break by
/// index, deterministically.
///
/// # Example
///
/// ```
/// use spinn_neuron::coding::rank_order_encode;
///
/// let code = rank_order_encode(&[0.1, 0.9, 0.5, 0.7], 3, 0.0);
/// assert_eq!(code.order, vec![1, 3, 2]);
/// ```
pub fn rank_order_encode(values: &[f64], n: usize, threshold: f64) -> RankOrderCode {
    let mut idx: Vec<u32> = (0..values.len() as u32)
        .filter(|&i| values[i as usize] > threshold)
        .collect();
    idx.sort_by(|&a, &b| {
        values[b as usize]
            .partial_cmp(&values[a as usize])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    idx.truncate(n);
    RankOrderCode { order: idx }
}

/// Decodes a rank-order code into an estimated activity vector of length
/// `m` using geometric rank sensitivity: the r-th firing neuron gets
/// weight `alpha^r` (the standard rank-order decoding of \[20\]).
pub fn rank_order_decode(code: &RankOrderCode, m: usize, alpha: f64) -> Vec<f64> {
    let mut est = vec![0.0; m];
    let mut w = 1.0;
    for &i in &code.order {
        if (i as usize) < m {
            est[i as usize] = w;
        }
        w *= alpha;
    }
    est
}

/// Similarity of two rank-order codes in `[0, 1]`: the normalized dot
/// product of their decoded vectors (1 = identical code).
pub fn rank_order_similarity(a: &RankOrderCode, b: &RankOrderCode, m: usize, alpha: f64) -> f64 {
    let da = rank_order_decode(a, m, alpha);
    let db = rank_order_decode(b, m, alpha);
    let dot: f64 = da.iter().zip(&db).map(|(x, y)| x * y).sum();
    let na: f64 = da.iter().map(|x| x * x).sum::<f64>().sqrt();
    let nb: f64 = db.iter().map(|x| x * x).sum::<f64>().sqrt();
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    dot / (na * nb)
}

/// Encodes the `n` strongest components as an (unordered) N-of-M code.
pub fn n_of_m_encode(values: &[f64], n: usize, threshold: f64) -> Vec<u32> {
    rank_order_encode(values, n, threshold).as_n_of_m()
}

/// Overlap `|a ∩ b|` of two N-of-M codes (inputs must be sorted, as
/// produced by [`n_of_m_encode`]).
pub fn n_of_m_overlap(a: &[u32], b: &[u32]) -> usize {
    let mut i = 0;
    let mut j = 0;
    let mut shared = 0;
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                shared += 1;
                i += 1;
                j += 1;
            }
        }
    }
    shared
}

/// Information capacity of an N-of-M code, bits: `log2(C(m, n))`.
pub fn n_of_m_capacity_bits(m: u64, n: u64) -> f64 {
    log2_binomial(m, n)
}

/// Information capacity of a rank-order code, bits:
/// `log2(C(m, n) * n!)` — the order multiplies the alphabet by `n!`
/// (§5.4's point that rank order conveys *additional* information).
pub fn rank_order_capacity_bits(m: u64, n: u64) -> f64 {
    log2_binomial(m, n) + log2_factorial(n)
}

fn log2_factorial(n: u64) -> f64 {
    (2..=n).map(|k| (k as f64).log2()).sum()
}

fn log2_binomial(m: u64, n: u64) -> f64 {
    if n > m {
        return f64::NEG_INFINITY;
    }
    log2_factorial(m) - log2_factorial(n) - log2_factorial(m - n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_orders_by_strength() {
        let code = rank_order_encode(&[5.0, 1.0, 3.0, 4.0, 2.0], 5, 0.0);
        assert_eq!(code.order, vec![0, 3, 2, 4, 1]);
    }

    #[test]
    fn encode_truncates_to_n() {
        let code = rank_order_encode(&[5.0, 1.0, 3.0, 4.0, 2.0], 2, 0.0);
        assert_eq!(code.order, vec![0, 3]);
        assert_eq!(code.as_n_of_m(), vec![0, 3]);
    }

    #[test]
    fn threshold_gates_firing() {
        let code = rank_order_encode(&[0.5, 2.0, 0.1], 3, 0.4);
        assert_eq!(code.order, vec![1, 0]);
        let none = rank_order_encode(&[0.1, 0.2], 2, 1.0);
        assert!(none.is_empty());
    }

    #[test]
    fn ties_break_deterministically() {
        let a = rank_order_encode(&[1.0, 1.0, 1.0], 3, 0.0);
        let b = rank_order_encode(&[1.0, 1.0, 1.0], 3, 0.0);
        assert_eq!(a, b);
        assert_eq!(a.order, vec![0, 1, 2]);
    }

    #[test]
    fn decode_geometric_weights() {
        let code = RankOrderCode { order: vec![2, 0] };
        let est = rank_order_decode(&code, 4, 0.5);
        assert_eq!(est, vec![0.5, 0.0, 1.0, 0.0]);
    }

    #[test]
    fn similarity_identity_and_disjoint() {
        let a = rank_order_encode(&[4.0, 3.0, 2.0, 1.0, 0.0, 0.0], 3, 0.0);
        assert!((rank_order_similarity(&a, &a, 6, 0.8) - 1.0).abs() < 1e-12);
        let b = RankOrderCode {
            order: vec![3, 4, 5],
        };
        let c = RankOrderCode {
            order: vec![0, 1, 2],
        };
        assert_eq!(rank_order_similarity(&b, &c, 6, 0.8), 0.0);
    }

    #[test]
    fn similarity_decreases_with_perturbation() {
        let base = RankOrderCode {
            order: vec![0, 1, 2, 3],
        };
        let swapped = RankOrderCode {
            order: vec![1, 0, 2, 3],
        };
        let shifted = RankOrderCode {
            order: vec![4, 5, 2, 3],
        };
        let s_swap = rank_order_similarity(&base, &swapped, 8, 0.7);
        let s_shift = rank_order_similarity(&base, &shifted, 8, 0.7);
        assert!(s_swap > s_shift);
        assert!(s_swap < 1.0);
    }

    #[test]
    fn n_of_m_overlap_counts() {
        assert_eq!(n_of_m_overlap(&[1, 2, 3], &[2, 3, 4]), 2);
        assert_eq!(n_of_m_overlap(&[], &[1]), 0);
        assert_eq!(n_of_m_overlap(&[5, 9], &[5, 9]), 2);
    }

    #[test]
    fn capacities_match_combinatorics() {
        // C(8,2) = 28 -> log2(28) ≈ 4.807
        assert!((n_of_m_capacity_bits(8, 2) - 28f64.log2()).abs() < 1e-9);
        // Rank order adds log2(2!) = 1 bit.
        assert!((rank_order_capacity_bits(8, 2) - (28f64.log2() + 1.0)).abs() < 1e-9);
        // The paper's observation: with N and M "in the hundreds or
        // thousands", the capacity is enormous.
        assert!(rank_order_capacity_bits(1000, 100) > 700.0);
    }

    #[test]
    fn rank_order_beats_n_of_m_capacity() {
        for (m, n) in [(10u64, 3u64), (100, 10), (256, 32)] {
            assert!(rank_order_capacity_bits(m, n) > n_of_m_capacity_bits(m, n));
        }
    }
}
