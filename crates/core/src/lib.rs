//! # spinnaker — the public API of the SpiNNaker reproduction
//!
//! A PyNN-flavoured front end over the whole stack: describe a spiking
//! network as populations and projections, build it onto a simulated
//! SpiNNaker machine (placement → routing tables → synaptic data), run
//! it in biological real time, and read back spikes, energy and fabric
//! statistics.
//!
//! ```
//! use spinnaker::prelude::*;
//!
//! // 1. Describe the network.
//! let mut net = NetworkGraph::new();
//! let exc = net.population(
//!     "exc", 200,
//!     NeuronKind::Izhikevich(IzhikevichParams::regular_spiking()), 9.0);
//! let inh = net.population(
//!     "inh", 50,
//!     NeuronKind::Izhikevich(IzhikevichParams::fast_spiking()), 0.0);
//! net.project(exc, inh, Connector::FixedProbability(0.08),
//!             Synapses::constant(600, 2), 42);
//!
//! // 2. Build it onto a 4x4-chip machine.
//! let sim = Simulation::build(&net, SimConfig::new(4, 4)).unwrap();
//!
//! // 3. Run 100 ms of biological time.
//! let done = sim.run(100);
//!
//! // 4. Inspect.
//! assert!(done.spike_count(exc) > 0, "driven population must fire");
//! assert_eq!(done.machine.realtime_violations(), 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
pub mod session;
mod simulation;

pub use error::{SdramOverflow, SpinnError};
pub use session::{RunSession, SegmentSummary, Snapshot};
pub use simulation::{Completed, PopSpike, SimConfig, Simulation};

/// One-stop imports for typical use.
pub mod prelude {
    pub use crate::{
        Completed, PopSpike, RunSession, SegmentSummary, SimConfig, Simulation, Snapshot,
        SpinnError,
    };
    pub use spinn_machine::config::MachineConfig;
    pub use spinn_map::graph::{Connector, NetworkGraph, NeuronKind, PopulationId, Synapses};
    pub use spinn_map::place::Placer;
    pub use spinn_neuron::izhikevich::IzhikevichParams;
    pub use spinn_neuron::lif::LifParams;
    pub use spinn_noc::direction::Direction;
    pub use spinn_noc::mesh::NodeCoord;
    pub use spinn_obs::ObsMode;
    pub use spinn_sim::QueueKind;
}

// Re-export the substrate crates for advanced use.
pub use spinn_link as link;
pub use spinn_machine as machine;
pub use spinn_map as map;
pub use spinn_neuron as neuron;
pub use spinn_noc as noc;
pub use spinn_obs as obs;
pub use spinn_sim as sim;
