//! Checkpointable run sessions: build once, run many segments, pause
//! and resume — the shared-facility operating mode of §5.2 (hosts check
//! in, load a network once, then drive it through many run segments
//! while the fabric stays resident).
//!
//! A [`RunSession`] wraps the built machine plus the run's dynamic
//! context (elapsed time, the paused event queue, stimulus generators)
//! and supports three things the one-shot `build → run → drop` pipeline
//! cannot:
//!
//! * **Incremental runs** — [`RunSession::run_for`] advances biological
//!   time segment by segment, bit-exactly: `run_for(100)` equals
//!   `run_for(50); run_for(50)` equals checkpointing in between,
//!   whatever thread counts or queue kinds each segment uses.
//! * **Warm mutation between segments** — swap Poisson/stimulus
//!   sources, toggle STDP, queue mid-run link faults: one resident
//!   machine serves a stream of jobs without paying the
//!   place/route/minimize/load cost again (`examples/session_server.rs`,
//!   experiment E16).
//! * **Deterministic pause/resume** — [`RunSession::checkpoint`]
//!   serializes the session into a compact [`Snapshot`] (core state,
//!   STDP arena deltas, in-flight events, stimulus RNG streams);
//!   [`RunSession::restore`] rebuilds the simulation from the same
//!   network + config and continues bit-exactly.
//!
//! # Example
//!
//! ```
//! use spinnaker::prelude::*;
//!
//! let mut net = NetworkGraph::new();
//! let exc = net.population(
//!     "exc", 100,
//!     NeuronKind::Izhikevich(IzhikevichParams::regular_spiking()), 9.0);
//! let cfg = SimConfig::new(4, 4);
//! let mut session = Simulation::build(&net, cfg.clone()).unwrap().into_session();
//! session.run_for(30);
//! let snap = session.checkpoint();
//! session.run_for(30);
//!
//! // Later (possibly another process): rebuild + restore + continue.
//! let mut resumed = RunSession::restore(&net, cfg, &snap).unwrap();
//! resumed.run_for(30);
//! assert_eq!(session.elapsed_ms(), resumed.elapsed_ms());
//! assert_eq!(session.spikes(), resumed.spikes());
//! ```

use std::collections::HashMap;

use spinn_machine::machine::{NeuralMachine, PendingEvent};
use spinn_machine::snapshot::SnapshotError;
use spinn_map::graph::{NetworkGraph, PopulationId};
use spinn_map::keys::neuron_key;
use spinn_map::place::Placement;
use spinn_map::route::{RouteStats, RoutingPlan};
use spinn_neuron::stdp::StdpParams;
use spinn_noc::direction::Direction;
use spinn_noc::mesh::NodeCoord;
use spinn_obs::{Counter, RunTelemetry};
use spinn_sim::wire::{Dec, Enc, WireError};
use spinn_sim::Xoshiro256;

use crate::error::SpinnError;
use crate::simulation::{Completed, PopSpike, SimConfig, Simulation};

/// Nanoseconds per millisecond tick.
const MS: u64 = 1_000_000;

/// Session snapshot magic + version (wraps a machine snapshot).
const MAGIC: &[u8] = b"SPNSESS1";

/// A serialized [`RunSession`]: the machine snapshot (core state, STDP
/// arena deltas, fabric state, pending events) plus the session's
/// stimulus generators with their RNG streams. Opaque bytes — write to
/// disk, ship across processes, restore with [`RunSession::restore`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Snapshot {
    bytes: Vec<u8>,
}

impl Snapshot {
    /// The serialized form.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Wraps bytes previously obtained from [`Snapshot::as_bytes`]
    /// (validation happens at restore).
    pub fn from_bytes(bytes: Vec<u8>) -> Snapshot {
        Snapshot { bytes }
    }

    /// Snapshot size, bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Whether the snapshot is empty (never true for checkpoints).
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }
}

/// Telemetry summary of one [`RunSession::run_for`] segment, recorded
/// whenever the run was built with observability enabled
/// ([`crate::SimConfig::with_observability`]). Counts are deltas over
/// the segment, not cumulative totals — the per-job readout of warm
/// multi-run serving. Summaries live in the session only; they do not
/// ride in checkpoints.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SegmentSummary {
    /// Biological time at segment start, ms.
    pub start_ms: u32,
    /// Segment length, ms.
    pub ms: u32,
    /// Discrete events dispatched during the segment.
    pub events: u64,
    /// Spikes emitted during the segment.
    pub spikes: u64,
    /// Synaptic events (row entries walked) during the segment.
    pub synaptic_events: u64,
}

/// A Poisson spike source attached to a session: every neuron of `pop`
/// fires independently at `rate_hz`, with spikes injected at the
/// population's home chips. The RNG stream is consumed tick-major, so
/// the generated stimulus — and therefore the run — is independent of
/// how the session is cut into segments, and the stream state rides in
/// every checkpoint.
#[derive(Clone, Debug)]
struct PoissonSource {
    pop: PopulationId,
    rate_hz: f64,
    rng: Xoshiro256,
}

/// A resident, checkpointable simulation run (see the [module
/// docs](self)).
#[derive(Debug)]
pub struct RunSession {
    machine: Option<NeuralMachine>,
    pending: Vec<PendingEvent>,
    elapsed_ms: u32,
    threads: u32,
    sources: Vec<PoissonSource>,
    placement: Placement,
    route_stats: RouteStats,
    pop_names: Vec<String>,
    slice_of_core: HashMap<u32, (PopulationId, u32)>,
    segments: Vec<SegmentSummary>,
    /// Cumulative (events, spikes, synaptic events) at the end of the
    /// last segment — the baseline for the next segment's deltas.
    seg_baseline: (u64, u64, u64),
}

impl RunSession {
    pub(crate) fn new(
        machine: NeuralMachine,
        placement: Placement,
        route_stats: RouteStats,
        pop_names: Vec<String>,
        slice_of_core: HashMap<u32, (PopulationId, u32)>,
        threads: u32,
    ) -> RunSession {
        RunSession {
            machine: Some(machine),
            pending: Vec::new(),
            elapsed_ms: 0,
            threads: threads.max(1),
            sources: Vec::new(),
            placement,
            route_stats,
            pop_names,
            slice_of_core,
            segments: Vec::new(),
            seg_baseline: (0, 0, 0),
        }
    }

    fn machine_ref(&self) -> &NeuralMachine {
        self.machine.as_ref().expect("machine is resident")
    }

    fn machine_mut_ref(&mut self) -> &mut NeuralMachine {
        self.machine.as_mut().expect("machine is resident")
    }

    /// Milliseconds of biological time simulated so far.
    pub fn elapsed_ms(&self) -> u32 {
        self.elapsed_ms
    }

    /// The resident machine (spikes, meters, router stats).
    pub fn machine(&self) -> &NeuralMachine {
        self.machine_ref()
    }

    /// Host bytes this warm session keeps resident for synaptic state
    /// (delegates to `NeuralMachine::total_resident_bytes`). This is
    /// the unit the serving layer's eviction budget is accounted in;
    /// under the lazy loader it grows as rows materialize, so callers
    /// holding sessions against a byte budget should re-read it after
    /// each run segment.
    pub fn resident_bytes(&self) -> u64 {
        self.machine_ref().total_resident_bytes()
    }

    /// The events the paused run still has queued (in-flight packets,
    /// blocked-link retries, future stimuli), in canonical order.
    pub fn pending_events(&self) -> &[PendingEvent] {
        &self.pending
    }

    /// Routing-plan statistics carried over from the build.
    pub fn route_stats(&self) -> &RouteStats {
        &self.route_stats
    }

    /// Run telemetry accumulated over every segment so far (counters,
    /// phase timings, trace — see [`spinn_obs::RunTelemetry`]). Empty
    /// unless the build enabled observability
    /// ([`crate::SimConfig::with_observability`]).
    pub fn telemetry(&self) -> &RunTelemetry {
        self.machine_ref().telemetry()
    }

    /// Per-segment telemetry summaries, one entry per
    /// [`RunSession::run_for`] call, recorded when observability is
    /// enabled (empty otherwise). Counts are per-segment deltas.
    pub fn segment_summaries(&self) -> &[SegmentSummary] {
        &self.segments
    }

    /// Worker threads the next segment will run on (see
    /// [`RunSession::set_threads`]).
    pub fn threads(&self) -> u32 {
        self.threads
    }

    /// Changes the worker-thread count for subsequent segments. Results
    /// are bit-identical at any count — this knob trades wall-clock
    /// only, and may be flipped freely between segments.
    pub fn set_threads(&mut self, threads: u32) -> &mut Self {
        self.threads = threads.max(1);
        self
    }

    /// Sets or clears the STDP rule for subsequent segments (`None`
    /// freezes all weights). Plasticity timing state survives the
    /// toggle, and weight changes made so far stay in the arenas.
    pub fn set_stdp(&mut self, params: Option<StdpParams>) -> &mut Self {
        self.machine_mut_ref().set_stdp(params);
        self
    }

    /// Attaches a Poisson spike source: every neuron of `pop` fires
    /// independently at `rate_hz`, seeded by `seed`. Sources persist
    /// across segments and checkpoints until
    /// [`RunSession::clear_stimulus_sources`]; the firing pattern is a
    /// pure function of `(seed, tick)` — never of segment boundaries.
    pub fn add_poisson(&mut self, pop: PopulationId, rate_hz: f64, seed: u64) -> &mut Self {
        self.sources.push(PoissonSource {
            pop,
            rate_hz: rate_hz.max(0.0),
            rng: Xoshiro256::seed_from_u64(seed),
        });
        self
    }

    /// Detaches every stimulus source (job swap in warm serving: the
    /// next job attaches its own sources).
    pub fn clear_stimulus_sources(&mut self) -> &mut Self {
        self.sources.clear();
        self
    }

    /// Queues one spike of `pop`'s neuron `neuron` at the start of tick
    /// `at_ms` (injected at the neuron's home chip, so it propagates
    /// through the same routes as a real firing).
    ///
    /// # Panics
    ///
    /// Panics if `at_ms` does not lie after the simulated time, or if
    /// `neuron` is out of range for the population.
    pub fn stimulate(&mut self, at_ms: u32, pop: PopulationId, neuron: u32) -> &mut Self {
        assert!(
            at_ms > self.elapsed_ms,
            "stimulus at {at_ms} ms lies in the session's past ({} ms elapsed)",
            self.elapsed_ms
        );
        let slice = self.placement.locate(pop, neuron);
        let key = neuron_key(slice.global_core, neuron - slice.lo);
        let chip = slice.chip;
        self.machine_mut_ref()
            .queue_stimulus(at_ms as u64 * MS, chip, key);
        self
    }

    /// Queues a mid-run link failure at the start of tick `at_ms`: the
    /// cable between `chip` and its neighbour in direction `dir` fails
    /// in both directions while traffic is in flight.
    ///
    /// # Panics
    ///
    /// Panics if `at_ms` does not lie after the simulated time.
    pub fn queue_fail_link(&mut self, at_ms: u32, chip: NodeCoord, dir: Direction) -> &mut Self {
        assert!(
            at_ms > self.elapsed_ms,
            "fault at {at_ms} ms lies in the session's past ({} ms elapsed)",
            self.elapsed_ms
        );
        self.machine_mut_ref()
            .queue_fail_link(at_ms as u64 * MS, chip, dir);
        self
    }

    /// Queues a mid-run link repair at the start of tick `at_ms`: the
    /// inverse of [`RunSession::queue_fail_link`] — the cable between
    /// `chip` and its neighbour in direction `dir` comes back up in
    /// both directions. A failure and a repair of the same cable queued
    /// for the same tick resolve deterministically: the link ends the
    /// tick repaired.
    ///
    /// # Panics
    ///
    /// Panics if `at_ms` does not lie after the simulated time.
    pub fn queue_repair_link(&mut self, at_ms: u32, chip: NodeCoord, dir: Direction) -> &mut Self {
        assert!(
            at_ms > self.elapsed_ms,
            "repair at {at_ms} ms lies in the session's past ({} ms elapsed)",
            self.elapsed_ms
        );
        self.machine_mut_ref()
            .queue_repair_link(at_ms as u64 * MS, chip, dir);
        self
    }

    /// The links currently failed on the resident fabric, as
    /// `(dense chip id, outgoing direction)` pairs — both ends of every
    /// dead cable.
    pub fn failed_links(&self) -> Vec<(u32, Direction)> {
        self.machine_ref().fabric().failed_links()
    }

    /// Live route repair: re-routes the placed network around every
    /// currently failed link and hot-installs the minimized plan into
    /// the resident machine, without tearing the session down. Call it
    /// between segments once faults have landed (after the `run_for`
    /// that crossed the failure time); trees the failures never touch
    /// keep their original routes, so the repair is regional.
    ///
    /// `net` must be the same network the session was built from.
    /// Returns the number of CAM entries installed. The swapped tables
    /// ride in subsequent [`RunSession::checkpoint`]s, so a restored
    /// campaign fork resumes with the repaired routes.
    ///
    /// # Errors
    ///
    /// Returns [`SpinnError::TableOverflow`] if the detoured plan no
    /// longer fits a router CAM — fatal for the session.
    pub fn reroute_around_faults(&mut self, net: &NetworkGraph) -> Result<usize, SpinnError> {
        let failed = self.failed_links();
        let (w, h) = {
            let cfg = self.machine_ref().fabric().config();
            (cfg.width, cfg.height)
        };
        let plan = RoutingPlan::build_avoiding(net, &self.placement, w, h, &failed).minimized();
        let installed = self.machine_mut_ref().reinstall_routing_plan(&plan)?;
        self.route_stats = plan.stats().clone();
        Ok(installed)
    }

    /// Advances the session by `ms` milliseconds of biological time.
    ///
    /// Segments chain **bit-exactly**: any sequence of `run_for` calls
    /// totalling `T` milliseconds produces the same spikes, weights and
    /// meters as a single `run_for(T)` — and as the one-shot
    /// [`Simulation::run`] of the same build — whatever thread count or
    /// queue kind each segment uses.
    pub fn run_for(&mut self, ms: u32) -> &mut Self {
        if ms == 0 {
            return self;
        }
        let target = self.elapsed_ms + ms;
        // Generate the segment's Poisson stimuli tick-major (every
        // source consumes its stream in tick order, so the draw
        // sequence is independent of segment boundaries).
        let placement = &self.placement;
        let machine = self.machine.as_mut().expect("machine is resident");
        for t in self.elapsed_ms + 1..=target {
            for src in &mut self.sources {
                if src.rate_hz <= 0.0 {
                    continue;
                }
                let p = (src.rate_hz / 1000.0).min(1.0);
                for slice in placement.slices_of(src.pop) {
                    for n in 0..slice.len() {
                        if src.rng.gen_bool(p) {
                            machine.queue_stimulus(
                                t as u64 * MS,
                                slice.chip,
                                neuron_key(slice.global_core, n),
                            );
                        }
                    }
                }
            }
        }
        let machine = self.machine.take().expect("machine is resident");
        let pending = std::mem::take(&mut self.pending);
        let (machine, pending) =
            machine.run_segment(pending, self.elapsed_ms, ms, self.threads as usize);
        let telemetry = machine.telemetry();
        if telemetry.is_enabled() {
            let totals = (
                telemetry.total(Counter::Events),
                telemetry.total(Counter::Spikes),
                telemetry.total(Counter::SynapticEvents),
            );
            self.segments.push(SegmentSummary {
                start_ms: self.elapsed_ms,
                ms,
                events: totals.0.saturating_sub(self.seg_baseline.0),
                spikes: totals.1.saturating_sub(self.seg_baseline.1),
                synaptic_events: totals.2.saturating_sub(self.seg_baseline.2),
            });
            self.seg_baseline = totals;
        }
        self.machine = Some(machine);
        self.pending = pending;
        self.elapsed_ms = target;
        self
    }

    /// All spikes recorded so far, mapped back to `(population,
    /// neuron)` coordinates.
    pub fn spikes(&self) -> Vec<PopSpike> {
        crate::simulation::map_spikes(self.machine_ref().spikes(), &self.slice_of_core)
    }

    /// Spike count of one population so far.
    pub fn spike_count(&self, pop: PopulationId) -> u64 {
        self.spikes().iter().filter(|s| s.pop == pop).count() as u64
    }

    /// Drains the recorded spikes — the per-job readout of warm
    /// multi-run serving. Drained spikes are gone from later
    /// checkpoints (and from [`RunSession::spikes`]).
    pub fn take_spikes(&mut self) -> Vec<PopSpike> {
        let taken = self.machine_mut_ref().take_spikes();
        crate::simulation::map_spikes(&taken, &self.slice_of_core)
    }

    /// Ends the session, yielding the standard [`Completed`] view
    /// (report, occupancy, rates) over everything the session ran.
    pub fn finish(mut self) -> Completed {
        let machine = self.machine.take().expect("machine is resident");
        Completed::from_parts(
            machine,
            self.route_stats,
            self.pop_names,
            self.slice_of_core,
        )
    }

    /// Serializes the session into a [`Snapshot`]: the complete machine
    /// snapshot (see `spinn_machine::snapshot`) plus the pending event
    /// queue and every stimulus source's RNG stream.
    pub fn checkpoint(&self) -> Snapshot {
        let machine_bytes = self.machine_ref().snapshot(&self.pending);
        let mut enc = Enc::new();
        enc.raw(MAGIC);
        enc.seq(machine_bytes.len());
        enc.raw(&machine_bytes);
        enc.seq(self.sources.len());
        for s in &self.sources {
            enc.u32(s.pop.index() as u32);
            enc.f64(s.rate_hz);
            for w in s.rng.state() {
                enc.u64(w);
            }
        }
        Snapshot {
            bytes: enc.into_bytes(),
        }
    }

    /// Rebuilds a session from a [`Snapshot`]: builds `net` onto a
    /// fresh machine with `cfg` (which must describe the same machine
    /// and network the checkpoint was taken from; the queue kind and
    /// thread count are free to differ), installs the snapshot, and
    /// returns a session that continues **bit-exactly** where
    /// [`RunSession::checkpoint`] paused.
    ///
    /// # Errors
    ///
    /// Any [`Simulation::build`] error, or [`SpinnError::Snapshot`] if
    /// the bytes are corrupt or belong to a different build.
    pub fn restore(
        net: &NetworkGraph,
        cfg: SimConfig,
        snapshot: &Snapshot,
    ) -> Result<RunSession, SpinnError> {
        let mut dec = Dec::new(&snapshot.bytes);
        let wire = |e: WireError| SpinnError::Snapshot(SnapshotError::Wire(e));
        dec.magic(MAGIC).map_err(wire)?;
        let machine_len = dec.seq(1).map_err(wire)?;
        if dec.remaining() < machine_len {
            return Err(wire(WireError::Eof));
        }
        let offset = snapshot.bytes.len() - dec.remaining();
        let machine_bytes = &snapshot.bytes[offset..offset + machine_len];
        let mut dec = Dec::new(&snapshot.bytes[offset + machine_len..]);

        let mut session = Simulation::build(net, cfg)?.into_session();
        let restored = session
            .machine_mut_ref()
            .install_snapshot(machine_bytes)
            .map_err(SpinnError::Snapshot)?;
        session.elapsed_ms = restored.elapsed_ms;
        session.pending = restored.pending;

        let n_sources = dec.seq(44).map_err(wire)?;
        for _ in 0..n_sources {
            let pop = dec.u32().map_err(wire)? as usize;
            if pop >= session.pop_names.len() {
                return Err(SpinnError::Snapshot(SnapshotError::Mismatch(format!(
                    "stimulus source names population {pop}, network has {}",
                    session.pop_names.len()
                ))));
            }
            let rate_hz = dec.f64().map_err(wire)?;
            let mut state = [0u64; 4];
            for w in &mut state {
                *w = dec.u64().map_err(wire)?;
            }
            if state.iter().all(|&w| w == 0) {
                return Err(SpinnError::Snapshot(SnapshotError::Wire(
                    WireError::Corrupt("rng state"),
                )));
            }
            session.sources.push(PoissonSource {
                pop: PopulationId::from_index(pop),
                rate_hz,
                rng: Xoshiro256::from_state(state),
            });
        }
        if !dec.is_empty() {
            return Err(SpinnError::Snapshot(SnapshotError::Wire(
                WireError::Corrupt("trailing bytes"),
            )));
        }
        Ok(session)
    }
}
