//! Building and running a simulation: the place → route → load → run
//! pipeline.

use std::collections::HashMap;

use spinn_machine::config::MachineConfig;
use spinn_machine::machine::NeuralMachine;
use spinn_map::graph::{NetworkGraph, PopulationId};
use spinn_map::keys::split_key;
use spinn_map::loader::LoadedApp;
use spinn_map::place::{Placement, Placer};
use spinn_map::route::{RouteStats, RoutingPlan};
use spinn_noc::mesh::NodeCoord;

use crate::error::SpinnError;

/// Configuration of a simulation build.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// The machine to build onto.
    pub machine: MachineConfig,
    /// Maximum neurons per application core (DTCM budget; ≤ 2048).
    pub neurons_per_core: u32,
    /// Placement strategy.
    pub placer: Placer,
    /// Enable pair-based STDP with these parameters (modified rows are
    /// DMAed back to SDRAM, §5.3).
    pub stdp: Option<spinn_neuron::stdp::StdpParams>,
    /// Worker threads for the run (1 = the serial engine; more runs the
    /// machine sharded via `spinn-par`, with bit-identical spike
    /// output).
    pub threads: u32,
}

impl SimConfig {
    /// A `width x height`-chip machine with default parameters:
    /// locality-aware placement, 256 neurons per core.
    pub fn new(width: u32, height: u32) -> Self {
        SimConfig {
            machine: MachineConfig::new(width, height),
            neurons_per_core: 256,
            placer: Placer::Locality,
            stdp: None,
            threads: 1,
        }
    }

    /// Runs the machine sharded across `threads` worker threads
    /// (clamped to at least 1). Spike output is bit-identical to the
    /// serial engine; only wall-clock time changes.
    pub fn with_threads(mut self, threads: u32) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Selects the event-queue implementation
    /// ([`spinn_sim::QueueKind`]) the run is driven by. Spike output is
    /// bit-identical across kinds (golden-trace conformance suite);
    /// only wall-clock time changes. Defaults to the time-bucketed
    /// calendar queue.
    pub fn with_queue(mut self, queue: spinn_sim::QueueKind) -> Self {
        self.machine.queue = queue;
        self
    }

    /// Enables STDP plasticity.
    pub fn with_stdp(mut self, params: spinn_neuron::stdp::StdpParams) -> Self {
        self.stdp = Some(params);
        self
    }

    /// Overrides the placer.
    pub fn with_placer(mut self, placer: Placer) -> Self {
        self.placer = placer;
        self
    }

    /// Overrides the neurons-per-core budget.
    pub fn with_neurons_per_core(mut self, n: u32) -> Self {
        self.neurons_per_core = n;
        self
    }

    /// Selects the telemetry level ([`spinn_obs::ObsMode`]) for the
    /// run. Spike output is bit-identical across modes (telemetry
    /// observes, it never steers); the default is
    /// [`spinn_obs::ObsMode::Disabled`].
    pub fn with_observability(mut self, obs: spinn_obs::ObsMode) -> Self {
        self.machine.obs = obs;
        self
    }

    /// Sets the per-shard trace ring capacity, in records (only read in
    /// [`spinn_obs::ObsMode::CountersAndTrace`]). `0` — the default —
    /// scales the ring with the loaded neuron count; a nonzero value
    /// pins it exactly (see [`MachineConfig::trace_cap`]).
    pub fn with_trace_cap(mut self, records: usize) -> Self {
        self.machine.trace_cap = records;
        self
    }

    /// Sets the shard over-decomposition factor for parallel runs: `1`
    /// restores the static one-shard-per-worker split, larger values
    /// cut more chunks than workers so idle workers steal them (see
    /// [`MachineConfig::chunk_factor`]). Results are bit-identical for
    /// every value.
    pub fn with_chunk_factor(mut self, factor: u8) -> Self {
        self.machine.chunk_factor = factor;
        self
    }

    /// Allows the run to cut more shards than the host has cores (see
    /// [`MachineConfig::force_shards`]). Spike output is unchanged
    /// either way; conformance suites use this to exercise the sharded
    /// engine on any host.
    pub fn with_force_shards(mut self, force: bool) -> Self {
        self.machine.force_shards = force;
        self
    }
}

/// A built (but not yet run) simulation.
#[derive(Debug)]
pub struct Simulation {
    machine: NeuralMachine,
    placement: Placement,
    route_stats: RouteStats,
    pop_names: Vec<String>,
    threads: u32,
    /// global core -> (population, slice lo).
    slice_of_core: HashMap<u32, (PopulationId, u32)>,
}

/// A spike mapped back to network coordinates.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct PopSpike {
    /// Tick at which the neuron fired, ms.
    pub time_ms: u32,
    /// The population.
    pub pop: PopulationId,
    /// Neuron index within the population.
    pub neuron: u32,
}

impl Simulation {
    /// Places, routes, minimizes and loads `net` onto a machine — the
    /// full place → route → minimize → **stream-load** pipeline. The
    /// emitted tables are compressed with [`RoutingPlan::minimized`]
    /// before loading (see `spinn-map`'s `minimize` module), and
    /// connectivity is expanded *streaming*: each projection flows
    /// through `Projection::iter` straight into per-core master
    /// population tables + contiguous synaptic arenas
    /// (`spinn_neuron::synmatrix`), so the build never materializes a
    /// global edge list and the loaded matrices move onto the machine
    /// without per-row copies.
    ///
    /// # Errors
    ///
    /// [`SpinnError::Placement`] if the machine is too small,
    /// [`SpinnError::TableOverflow`] if a router CAM fills up,
    /// [`SpinnError::Dtcm`] if a core's data exceeds local memory.
    pub fn build(net: &NetworkGraph, cfg: SimConfig) -> Result<Simulation, SpinnError> {
        let m = &cfg.machine;
        let placement = Placement::compute(
            net,
            m.width,
            m.height,
            m.cores_per_chip,
            cfg.neurons_per_core,
            cfg.placer,
        )?;
        let plan = RoutingPlan::build(net, &placement, m.width, m.height).minimized();
        // The loader parallelizes across the same worker budget as the
        // run, and compresses replayable connectivity into lazy arenas
        // (rows materialize on first DMA touch) — both bit-exact
        // against the serial eager build.
        let app = LoadedApp::build_with(
            net,
            &placement,
            spinn_map::loader::BuildOptions {
                threads: cfg.threads as usize,
                lazy: spinn_map::loader::LazyMode::Auto,
            },
        );

        // SDRAM capacity: the synaptic matrices of all cores on a chip
        // share its 128 MB SDRAM.
        let mut per_chip_bytes = vec![0u64; m.chips()];
        for img in &app.images {
            let chip_id = (img.chip.y * m.width + img.chip.x) as usize;
            per_chip_bytes[chip_id] += img.sdram_bytes();
        }
        if let Some((chip_id, &bytes)) = per_chip_bytes
            .iter()
            .enumerate()
            .find(|(_, &b)| b > m.sdram_bytes)
        {
            return Err(SpinnError::Sdram(crate::error::SdramOverflow {
                chip: coord_of(m, chip_id),
                required: bytes,
                available: m.sdram_bytes,
            }));
        }

        let mut machine = NeuralMachine::new(*m);
        if let Some(p) = cfg.stdp {
            machine.enable_stdp(p);
        }
        machine.install_routing_plan(&plan)?;
        for img in app.images {
            machine.load_core(img.chip, img.core, img.neurons, img.bias_na, img.base_key)?;
            // Stream-load: the loader-built master population table +
            // arena moves onto the core wholesale — no per-row copies.
            machine.install_matrix(img.chip, img.core, img.matrix);
        }
        let slice_of_core = placement
            .slices()
            .iter()
            .map(|s| (s.global_core, (s.pop, s.lo)))
            .collect();
        Ok(Simulation {
            machine,
            placement,
            route_stats: plan.stats().clone(),
            pop_names: net.populations().iter().map(|p| p.name.clone()).collect(),
            threads: cfg.threads.max(1),
            slice_of_core,
        })
    }

    /// The placement (inspection).
    pub fn placement(&self) -> &Placement {
        &self.placement
    }

    /// Routing-plan statistics (table pressure, tree costs).
    pub fn route_stats(&self) -> &RouteStats {
        &self.route_stats
    }

    /// Machine access before the run (inspection: occupancy, router
    /// state, loaded-core accounting).
    pub fn machine(&self) -> &NeuralMachine {
        &self.machine
    }

    /// Mutable machine access before the run (fault injection, extra
    /// stimuli, table tweaks).
    pub fn machine_mut(&mut self) -> &mut NeuralMachine {
        &mut self.machine
    }

    /// Fails an inter-chip link before the run (E3/E4 fault injection).
    pub fn fail_link(&mut self, chip: NodeCoord, d: spinn_noc::direction::Direction) {
        self.machine.fail_link(chip, d);
    }

    /// Runs `ms` milliseconds of biological time, on the serial engine
    /// or sharded across [`SimConfig::with_threads`] worker threads —
    /// the spike output is identical either way.
    pub fn run(self, ms: u32) -> Completed {
        let machine = if self.threads > 1 {
            self.machine.run_parallel(ms, self.threads as usize)
        } else {
            self.machine.run(ms)
        };
        Completed {
            machine,
            route_stats: self.route_stats,
            pop_names: self.pop_names,
            slice_of_core: self.slice_of_core,
        }
    }

    /// Converts the built simulation into a resident
    /// [`RunSession`](crate::RunSession): run biological time in
    /// segments, mutate stimuli between them, checkpoint and resume —
    /// all bit-exact against the one-shot [`Simulation::run`] of the
    /// same build.
    pub fn into_session(self) -> crate::session::RunSession {
        crate::session::RunSession::new(
            self.machine,
            self.placement,
            self.route_stats,
            self.pop_names,
            self.slice_of_core,
            self.threads,
        )
    }
}

/// Maps machine-level spike records back to `(population, neuron)`
/// coordinates through the placement's core table (shared by
/// [`Completed`] and [`crate::RunSession`]).
pub(crate) fn map_spikes(
    spikes: &[spinn_machine::machine::SpikeRecord],
    slice_of_core: &HashMap<u32, (PopulationId, u32)>,
) -> Vec<PopSpike> {
    spikes
        .iter()
        .filter_map(|s| {
            let (core, local) = split_key(s.key);
            slice_of_core.get(&core).map(|&(pop, lo)| PopSpike {
                time_ms: s.time_ms,
                pop,
                neuron: lo + local,
            })
        })
        .collect()
}

fn coord_of(m: &MachineConfig, chip_id: usize) -> NodeCoord {
    NodeCoord::new(chip_id as u32 % m.width, chip_id as u32 / m.width)
}

/// A finished simulation: the machine plus network-level views of its
/// recordings.
#[derive(Debug)]
pub struct Completed {
    /// The post-run machine (spikes, meters, router stats).
    pub machine: NeuralMachine,
    route_stats: RouteStats,
    pop_names: Vec<String>,
    slice_of_core: HashMap<u32, (PopulationId, u32)>,
}

impl Completed {
    /// Assembles the completed view (the session hand-off path).
    pub(crate) fn from_parts(
        machine: NeuralMachine,
        route_stats: RouteStats,
        pop_names: Vec<String>,
        slice_of_core: HashMap<u32, (PopulationId, u32)>,
    ) -> Completed {
        Completed {
            machine,
            route_stats,
            pop_names,
            slice_of_core,
        }
    }

    /// All spikes mapped back to `(population, neuron)` coordinates.
    pub fn spikes(&self) -> Vec<PopSpike> {
        map_spikes(self.machine.spikes(), &self.slice_of_core)
    }

    /// Spike count of one population.
    pub fn spike_count(&self, pop: PopulationId) -> u64 {
        self.spikes().iter().filter(|s| s.pop == pop).count() as u64
    }

    /// Mean firing rate of a population over the run, Hz.
    pub fn mean_rate_hz(&self, pop: PopulationId, pop_size: u32, run_ms: u32) -> f64 {
        if run_ms == 0 || pop_size == 0 {
            return 0.0;
        }
        self.spike_count(pop) as f64 / pop_size as f64 / (run_ms as f64 / 1000.0)
    }

    /// Routing-plan statistics carried over from the build.
    pub fn route_stats(&self) -> &RouteStats {
        &self.route_stats
    }

    /// Per-chip memory occupancy and drop counters (see
    /// [`spinn_machine::machine::NeuralMachine::chip_occupancy`]).
    pub fn occupancy(&self) -> Vec<spinn_machine::machine::ChipOccupancy> {
        self.machine.chip_occupancy()
    }

    /// A human-readable run report.
    pub fn report(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let duration = self.machine.duration_ns();
        let meter = self.machine.meter();
        let energy = self.machine.config().energy;
        let _ = writeln!(out, "== SpiNNaker run report ==");
        let _ = writeln!(out, "duration:            {} ms", duration / 1_000_000);
        let _ = writeln!(out, "total spikes:        {}", self.machine.spikes().len());
        let spikes = self.spikes();
        for (i, name) in self.pop_names.iter().enumerate() {
            let n = spikes.iter().filter(|s| s.pop.index() == i).count();
            let _ = writeln!(out, "  pop {name:12} spikes: {n}");
        }
        let rs = self.machine.router_stats();
        let _ = writeln!(
            out,
            "fabric:              {} table hits, {} default-routed, {} emergency, {} dropped",
            rs.mc_table_hits, rs.mc_default_routed, rs.emergency_reroutes, rs.dropped
        );
        let _ = writeln!(
            out,
            "spike latency:       p50 {} ns, p99 {} ns, max {} ns",
            self.machine.spike_latency().percentile(50.0),
            self.machine.spike_latency().percentile(99.0),
            self.machine.spike_latency().max()
        );
        let _ = writeln!(
            out,
            "real-time:           {} violations",
            self.machine.realtime_violations()
        );
        let _ = writeln!(
            out,
            "energy:              {:.3} mJ ({:.3} W mean)",
            meter.total_joules(&energy) * 1e3,
            meter.mean_watts(&energy, duration)
        );
        let _ = writeln!(
            out,
            "routing plan:        {} entries (minimized from {}), {} elided, max/chip {}",
            self.route_stats.total_entries,
            self.route_stats.pre_minimize_entries,
            self.route_stats.elided_entries,
            self.route_stats.max_entries_per_chip
        );
        let _ = writeln!(
            out,
            "router CAM:          peak {}/{} entries ({:.1}% occupancy)",
            rs.table_peak_entries,
            rs.table_capacity,
            100.0 * rs.occupancy_ratio()
        );
        // Per-chip memory occupancy and drop counters: only chips that
        // carry load or dropped packets, worst SDRAM users first,
        // capped so reports of big meshes stay readable.
        let mut occ = self.occupancy();
        occ.retain(|c| c.loaded_cores > 0 || c.dropped_packets > 0);
        occ.sort_by_key(|c| std::cmp::Reverse((c.sdram_bytes, c.dtcm_bytes, c.dropped_packets)));
        let shown = occ.len().min(16);
        let _ = writeln!(
            out,
            "chip occupancy:      {} loaded chip(s); per chip (top {shown}):",
            occ.len()
        );
        let _ = writeln!(
            out,
            "  {:>6} {:>6} {:>14} {:>16} {:>9}",
            "chip", "cores", "DTCM used", "SDRAM used", "dropped"
        );
        for c in occ.iter().take(shown) {
            let _ = writeln!(
                out,
                "  {:>6} {:>6} {:>7} B {:>3.0}% {:>9} B {:>3.1}% {:>9}",
                c.chip.to_string(),
                c.loaded_cores,
                c.dtcm_bytes,
                100.0 * c.dtcm_bytes as f64 / c.dtcm_capacity.max(1) as f64,
                c.sdram_bytes,
                100.0 * c.sdram_bytes as f64 / c.sdram_capacity.max(1) as f64,
                c.dropped_packets,
            );
        }
        if occ.len() > shown {
            let _ = writeln!(out, "  (+{} more chips)", occ.len() - shown);
        }
        let dropped_total: u64 = occ.iter().map(|c| c.dropped_packets).sum();
        let sdram_total: u64 = occ.iter().map(|c| c.sdram_bytes).sum();
        let _ = writeln!(
            out,
            "memory totals:       {} B synaptic SDRAM, {} dropped packet(s)",
            sdram_total, dropped_total
        );
        // The run-telemetry section, present only when collection was
        // enabled ([`SimConfig::with_observability`]).
        let telemetry = self.machine.telemetry();
        if telemetry.is_enabled() {
            out.push_str(&telemetry.render_table());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spinn_map::graph::{Connector, NeuronKind, Synapses};
    use spinn_neuron::izhikevich::IzhikevichParams;

    fn kind() -> NeuronKind {
        NeuronKind::Izhikevich(IzhikevichParams::regular_spiking())
    }

    fn two_pop_net() -> (NetworkGraph, PopulationId, PopulationId) {
        let mut net = NetworkGraph::new();
        let a = net.population("driver", 100, kind(), 10.0);
        let b = net.population("target", 100, kind(), 0.0);
        net.project(
            a,
            b,
            Connector::FixedFanOut(20),
            Synapses::constant(700, 1),
            3,
        );
        (net, a, b)
    }

    #[test]
    fn end_to_end_spike_flow() {
        let (net, a, b) = two_pop_net();
        let sim = Simulation::build(&net, SimConfig::new(4, 4)).unwrap();
        let done = sim.run(200);
        assert!(done.spike_count(a) > 100, "{}", done.spike_count(a));
        assert!(done.spike_count(b) > 10, "{}", done.spike_count(b));
        assert_eq!(done.machine.row_misses(), 0);
        assert_eq!(done.machine.realtime_violations(), 0);
        // Spikes decode to valid population coordinates.
        for s in done.spikes() {
            assert!(s.neuron < 100);
            assert!(s.pop == a || s.pop == b);
        }
    }

    #[test]
    fn rate_helper() {
        let (net, a, _) = two_pop_net();
        let done = Simulation::build(&net, SimConfig::new(4, 4))
            .unwrap()
            .run(500);
        let rate = done.mean_rate_hz(a, 100, 500);
        assert!(rate > 1.0, "driver rate {rate} Hz");
        assert_eq!(done.mean_rate_hz(a, 100, 0), 0.0);
    }

    #[test]
    fn machine_too_small_errors() {
        let (net, _, _) = two_pop_net();
        let cfg = SimConfig::new(1, 1).with_neurons_per_core(10);
        let err = Simulation::build(&net, cfg).unwrap_err();
        assert!(matches!(err, SpinnError::Placement(_)), "{err}");
    }

    #[test]
    fn placers_produce_identical_spike_rasters() {
        // §3.2 virtualized topology: function is independent of
        // placement. (Same seed, same network; only the mapping
        // differs.)
        let (net, _, b) = two_pop_net();
        let count = |placer| {
            let cfg = SimConfig::new(4, 4).with_placer(placer);
            let done = Simulation::build(&net, cfg).unwrap().run(150);
            let mut spikes = done.spikes();
            spikes.sort_by_key(|s| (s.time_ms, s.pop.index(), s.neuron));
            (spikes, done.spike_count(b))
        };
        let (r1, _) = count(Placer::Locality);
        let (r2, _) = count(Placer::Random { seed: 11 });
        let (r3, _) = count(Placer::RoundRobin);
        assert_eq!(r1, r2, "random placement must not change the raster");
        assert_eq!(r1, r3);
    }

    #[test]
    fn report_contains_key_sections() {
        let (net, _, _) = two_pop_net();
        let done = Simulation::build(&net, SimConfig::new(4, 4))
            .unwrap()
            .run(50);
        let report = done.report();
        for needle in [
            "run report",
            "total spikes",
            "driver",
            "target",
            "fabric:",
            "real-time:",
            "energy:",
            "routing plan:",
            "minimized from",
            "router CAM:",
            "chip occupancy:",
            "dropped",
            "memory totals:",
        ] {
            assert!(report.contains(needle), "missing {needle:?} in:\n{report}");
        }
    }

    #[test]
    fn determinism_end_to_end() {
        let (net, _, _) = two_pop_net();
        let run = || {
            Simulation::build(&net, SimConfig::new(4, 4))
                .unwrap()
                .run(100)
                .spikes()
        };
        assert_eq!(run(), run());
    }
}
