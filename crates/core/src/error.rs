//! The crate's error type.

use std::fmt;

use spinn_machine::machine::DtcmOverflow;
use spinn_map::place::NotEnoughCores;
use spinn_noc::mesh::NodeCoord;
use spinn_noc::table::TableFull;

/// A chip's synaptic matrices exceed its shared SDRAM.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct SdramOverflow {
    /// The overflowing chip.
    pub chip: NodeCoord,
    /// Bytes the chip's cores need.
    pub required: u64,
    /// SDRAM available, bytes.
    pub available: u64,
}

impl fmt::Display for SdramOverflow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "chip {} needs {} B of synaptic data but has {} B of SDRAM",
            self.chip, self.required, self.available
        )
    }
}

impl std::error::Error for SdramOverflow {}

/// Everything that can go wrong building a simulation.
#[derive(Debug)]
pub enum SpinnError {
    /// The network needs more application cores than the machine has.
    Placement(NotEnoughCores),
    /// A core's neuron state and ring buffer exceed its 64 KB DTCM.
    Dtcm(DtcmOverflow),
    /// A chip's 1024-entry routing CAM overflowed.
    TableOverflow(TableFull),
    /// A chip's synaptic data exceeds its shared SDRAM.
    Sdram(SdramOverflow),
    /// A session snapshot could not be restored (corrupt bytes, or
    /// taken from a differently built simulation).
    Snapshot(spinn_machine::snapshot::SnapshotError),
}

impl fmt::Display for SpinnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpinnError::Placement(e) => write!(f, "placement failed: {e}"),
            SpinnError::Dtcm(e) => write!(f, "core memory overflow: {e}"),
            SpinnError::TableOverflow(e) => write!(f, "routing failed: {e}"),
            SpinnError::Sdram(e) => write!(f, "SDRAM overflow: {e}"),
            SpinnError::Snapshot(e) => write!(f, "snapshot restore failed: {e}"),
        }
    }
}

impl std::error::Error for SpinnError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SpinnError::Placement(e) => Some(e),
            SpinnError::Dtcm(e) => Some(e),
            SpinnError::TableOverflow(e) => Some(e),
            SpinnError::Sdram(e) => Some(e),
            SpinnError::Snapshot(e) => Some(e),
        }
    }
}

impl From<spinn_machine::snapshot::SnapshotError> for SpinnError {
    fn from(e: spinn_machine::snapshot::SnapshotError) -> Self {
        SpinnError::Snapshot(e)
    }
}

impl From<NotEnoughCores> for SpinnError {
    fn from(e: NotEnoughCores) -> Self {
        SpinnError::Placement(e)
    }
}

impl From<DtcmOverflow> for SpinnError {
    fn from(e: DtcmOverflow) -> Self {
        SpinnError::Dtcm(e)
    }
}

impl From<TableFull> for SpinnError {
    fn from(e: TableFull) -> Self {
        SpinnError::TableOverflow(e)
    }
}

impl From<SdramOverflow> for SpinnError {
    fn from(e: SdramOverflow) -> Self {
        SpinnError::Sdram(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn display_and_source() {
        let e = SpinnError::from(NotEnoughCores {
            needed: 10,
            available: 4,
        });
        assert!(e.to_string().contains("placement failed"));
        assert!(e.source().is_some());

        let e = SpinnError::from(TableFull { capacity: 1024 });
        assert!(e.to_string().contains("routing failed"));

        let e = SpinnError::from(DtcmOverflow {
            required: 100_000,
            available: 65_536,
        });
        assert!(e.to_string().contains("memory overflow"));

        let e = SpinnError::from(SdramOverflow {
            chip: NodeCoord::new(1, 2),
            required: 200_000_000,
            available: 134_217_728,
        });
        assert!(e.to_string().contains("SDRAM overflow"));
        assert!(e.source().is_some());
    }

    #[test]
    fn is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SpinnError>();
    }
}
