//! The sharded, barrier-synchronized parallel execution engine.
//!
//! See the crate-level documentation for the protocol description.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

use spinn_obs::Phase;
use spinn_sim::{Engine, EventQueue, Model, Queue, SimTime};

/// Sentinel for "this shard's queue is empty".
const IDLE: u64 = u64::MAX;

/// A model that can run as one shard of a partitioned simulation.
///
/// On top of the ordinary [`Model`] contract, a shard model accumulates
/// events destined for *other* shards in an internal outbox instead of
/// scheduling them locally; the engine drains that outbox at the end of
/// every window and delivers the events through the barrier exchange.
pub trait ShardModel: Model {
    /// Drains the cross-shard events staged since the last call.
    ///
    /// Every returned event must have `at >= t + lookahead`, where `t` is
    /// the timestamp of the handler that produced it and `lookahead` is
    /// the bound passed to [`ParEngine::run_until`] — this is the
    /// conservative-synchronization contract that makes windowed
    /// execution exact.
    fn drain_outbox(&mut self) -> Vec<RemoteEvent<Self::Event>>;
}

/// One shard's checkpoint form: the model plus its drained pending
/// events in canonical `(time, rank)` pop order (see
/// [`ParEngine::into_parts`]).
pub type ShardParts<M> = (M, Vec<(SimTime, u128, <M as Model>::Event)>);

/// A cross-shard event emitted by a [`ShardModel`].
#[derive(Debug)]
pub struct RemoteEvent<E> {
    /// Absolute delivery time.
    pub at: SimTime,
    /// Index of the destination shard.
    pub dest: usize,
    /// The event payload.
    pub event: E,
}

/// Counters describing one parallel run.
#[derive(Clone, Debug, Default)]
pub struct ParStats {
    /// Barrier rounds (conservative windows) executed.
    pub windows: u64,
    /// Events handled across all shards.
    pub events: u64,
    /// Cross-shard events exchanged at barriers.
    pub exchanged: u64,
}

/// An envelope carrying a cross-shard event through a mailbox.
///
/// `(at, src, seq)` is the canonical delivery order: sorting by it makes
/// queue insertion — and therefore FIFO tie-breaking — independent of
/// which worker thread reached the mailbox first.
struct Envelope<E> {
    at: u64,
    src: u32,
    seq: u64,
    event: E,
}

/// A sense-counting spin barrier.
///
/// Windows are typically microseconds long, so a futex-based
/// [`std::sync::Barrier`] would dominate the run; spinning with a yield
/// fallback keeps the barrier in the tens-of-nanoseconds range when the
/// worker count does not exceed the core count. When workers outnumber
/// cores, spinning only steals the running worker's quantum, so the
/// barrier yields immediately instead.
struct SpinBarrier {
    n: usize,
    spin_limit: u32,
    count: AtomicUsize,
    generation: AtomicUsize,
}

impl SpinBarrier {
    fn new(n: usize) -> Self {
        let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
        SpinBarrier {
            n,
            spin_limit: if n <= cores { 20_000 } else { 0 },
            count: AtomicUsize::new(0),
            generation: AtomicUsize::new(0),
        }
    }

    fn wait(&self) {
        let gen = self.generation.load(Ordering::Acquire);
        if self.count.fetch_add(1, Ordering::AcqRel) + 1 == self.n {
            self.count.store(0, Ordering::Relaxed);
            self.generation
                .store(gen.wrapping_add(1), Ordering::Release);
        } else {
            let mut spins = 0u32;
            while self.generation.load(Ordering::Acquire) == gen {
                if spins >= self.spin_limit {
                    std::thread::yield_now();
                } else {
                    spins += 1;
                    std::hint::spin_loop();
                }
            }
        }
    }
}

/// The parallel engine: one [`Engine`] per shard, advanced in lockstep
/// conservative windows by one worker thread each.
///
/// # Example
///
/// Two shards ping-ponging a token with a 10-tick cross-shard latency:
///
/// ```
/// use spinn_par::{ParEngine, RemoteEvent, ShardModel};
/// use spinn_sim::{Context, Model, SimTime};
///
/// struct Token { me: usize, seen: u32, outbox: Vec<RemoteEvent<u32>> }
///
/// impl Model for Token {
///     type Event = u32;
///     fn handle(&mut self, ctx: &mut Context<u32>, hops: u32) {
///         self.seen += 1;
///         if hops > 0 {
///             self.outbox.push(RemoteEvent {
///                 at: ctx.now() + 10,
///                 dest: 1 - self.me,
///                 event: hops - 1,
///             });
///         }
///     }
/// }
/// impl ShardModel for Token {
///     fn drain_outbox(&mut self) -> Vec<RemoteEvent<u32>> {
///         std::mem::take(&mut self.outbox)
///     }
/// }
///
/// let mut par = ParEngine::new(vec![
///     Token { me: 0, seen: 0, outbox: vec![] },
///     Token { me: 1, seen: 0, outbox: vec![] },
/// ]);
/// par.schedule(0, SimTime::ZERO, 5);
/// par.run_until(SimTime::new(1_000), 10);
/// let models = par.into_models();
/// assert_eq!(models[0].seen + models[1].seen, 6);
/// ```
pub struct ParEngine<M: ShardModel, Q: Queue<M::Event> = EventQueue<<M as Model>::Event>> {
    shards: Vec<Engine<M, Q>>,
    stats: ParStats,
}

impl<M> ParEngine<M>
where
    M: ShardModel + Send,
    M::Event: Send,
{
    /// Wraps one engine (on the default binary-heap queue) around each
    /// shard model.
    ///
    /// # Panics
    ///
    /// Panics if `models` is empty.
    pub fn new(models: Vec<M>) -> Self {
        ParEngine::new_in(models)
    }
}

impl<M, Q> ParEngine<M, Q>
where
    M: ShardModel + Send,
    M::Event: Send,
    Q: Queue<M::Event> + Send,
{
    /// Wraps one engine around each shard model, on an explicitly
    /// chosen queue implementation — every shard runs the same kind
    /// (e.g. `ParEngine::<M, CalendarQueue<_>>::new_in(models)`).
    ///
    /// # Panics
    ///
    /// Panics if `models` is empty.
    pub fn new_in(models: Vec<M>) -> Self {
        assert!(!models.is_empty(), "ParEngine needs at least one shard");
        ParEngine {
            shards: models.into_iter().map(Engine::new_in).collect(),
            stats: ParStats::default(),
        }
    }

    /// Wraps one engine around each shard model with every shard clock
    /// starting at `now` instead of zero — the resume path of
    /// checkpointed runs (see [`Engine::resume_at`]).
    ///
    /// # Panics
    ///
    /// Panics if `models` is empty.
    pub fn resume_in(models: Vec<M>, now: SimTime) -> Self {
        assert!(!models.is_empty(), "ParEngine needs at least one shard");
        ParEngine {
            shards: models
                .into_iter()
                .map(|m| Engine::resume_at(m, now))
                .collect(),
            stats: ParStats::default(),
        }
    }

    /// Consumes the engine, returning each shard's model together with
    /// its drained pending events in canonical `(time, rank)` pop order
    /// — the checkpoint form of a paused sharded run (mailboxes are
    /// always empty between [`ParEngine::run_until`] calls, so the
    /// shard queues hold the complete pending set).
    pub fn into_parts(self) -> Vec<ShardParts<M>> {
        self.shards.into_iter().map(Engine::into_parts).collect()
    }

    /// Number of shards (= worker threads).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Schedules an initial event on one shard.
    pub fn schedule(&mut self, shard: usize, at: SimTime, event: M::Event) {
        self.shards[shard].schedule_at(at, event);
    }

    /// Counters from completed [`ParEngine::run_until`] calls.
    pub fn stats(&self) -> &ParStats {
        &self.stats
    }

    /// Each shard queue's occupancy high-water mark, in shard order
    /// (see [`spinn_sim::Queue::peak_len`]). Read before
    /// [`ParEngine::into_parts`], which drains the queues.
    pub fn queue_peaks(&self) -> Vec<usize> {
        self.shards.iter().map(Engine::queue_peak).collect()
    }

    /// Consumes the engine, returning the shard models in shard order.
    pub fn into_models(self) -> Vec<M> {
        self.shards.into_iter().map(Engine::into_model).collect()
    }

    /// Runs every shard until all queues pass `deadline` (events at
    /// exactly `deadline` are processed, matching
    /// [`Engine::run_until`]).
    ///
    /// `lookahead_ns` must be a strict lower bound on the delivery delay
    /// of every cross-shard event: an event handled at time `t` may only
    /// produce remote events at `t + lookahead_ns` or later.
    ///
    /// # Panics
    ///
    /// Panics if `lookahead_ns == 0`, or (in debug builds) if a shard
    /// violates the lookahead contract.
    pub fn run_until(&mut self, deadline: SimTime, lookahead_ns: u64) {
        assert!(lookahead_ns > 0, "conservative windows need lookahead > 0");
        let n = self.shards.len();
        let barrier = SpinBarrier::new(n);
        let next: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(IDLE)).collect();
        let mailboxes: Vec<Mutex<Vec<Envelope<M::Event>>>> =
            (0..n).map(|_| Mutex::new(Vec::new())).collect();
        let deadline_ns = deadline.ticks();

        let mut per_shard: Vec<ParStats> = Vec::with_capacity(n);
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(n);
            for (i, shard) in self.shards.iter_mut().enumerate() {
                let barrier = &barrier;
                let next = &next;
                let mailboxes = &mailboxes;
                handles.push(scope.spawn(move || {
                    shard_loop(
                        i,
                        shard,
                        barrier,
                        next,
                        mailboxes,
                        deadline_ns,
                        lookahead_ns,
                    )
                }));
            }
            for h in handles {
                per_shard.push(h.join().expect("shard worker panicked"));
            }
        });
        // Every worker counts the same number of barrier rounds, so add
        // this call's rounds once (not per worker).
        self.stats.windows += per_shard.iter().map(|s| s.windows).max().unwrap_or(0);
        for s in per_shard {
            self.stats.events += s.events;
            self.stats.exchanged += s.exchanged;
        }
    }
}

/// One worker thread: lockstep window loop over a single shard.
fn shard_loop<M: ShardModel, Q: Queue<M::Event>>(
    me: usize,
    shard: &mut Engine<M, Q>,
    barrier: &SpinBarrier,
    next: &[AtomicU64],
    mailboxes: &[Mutex<Vec<Envelope<M::Event>>>],
    deadline_ns: u64,
    lookahead_ns: u64,
) -> ParStats {
    let mut stats = ParStats::default();
    let mut seq = 0u64;
    // Barrier waits are where shard imbalance shows up: a shard that
    // finishes its window early burns the difference here. Time both
    // waits into the shard's probe (inert unless telemetry is on).
    let probe = shard.probe().clone();
    loop {
        // Phase 1: publish my earliest pending timestamp, then agree on
        // the global minimum. No thread can restart phase 1 before every
        // thread has finished reading (the phase-2 barrier orders it), so
        // all workers compute the same minimum.
        let local = shard.next_event_time().map_or(IDLE, |t| t.ticks());
        next[me].store(local, Ordering::Release);
        let tok = probe.start();
        barrier.wait();
        probe.record(Phase::BarrierWait, tok);
        let min = next
            .iter()
            .map(|a| a.load(Ordering::Acquire))
            .min()
            .expect("at least one shard");
        if min == IDLE || min > deadline_ns {
            // All queues drained or past the deadline — and mailboxes are
            // empty, because delivery happens before the minimum is
            // recomputed. Every worker sees the same minimum and exits
            // together.
            return stats;
        }

        // Phase 2: run the conservative window [min, min + lookahead).
        // Remote events produced inside it land at >= min + lookahead,
        // so no shard can receive an event in its own past.
        let horizon = SimTime::new(min.saturating_add(lookahead_ns).min(deadline_ns + 1));
        let before = shard.processed();
        shard.run_before(horizon);
        stats.events += shard.processed() - before;

        for r in shard.model_mut().drain_outbox() {
            debug_assert!(
                r.at >= horizon,
                "lookahead violation: remote event at {} inside window ending {}",
                r.at,
                horizon
            );
            stats.exchanged += 1;
            let env = Envelope {
                at: r.at.ticks(),
                src: me as u32,
                seq,
                event: r.event,
            };
            seq += 1;
            mailboxes[r.dest]
                .lock()
                .expect("mailbox poisoned")
                .push(env);
        }
        let tok = probe.start();
        barrier.wait();
        probe.record(Phase::BarrierWait, tok);

        // Phase 3: drain my mailbox in canonical order, so FIFO
        // tie-breaking in the queue is independent of thread timing.
        let mut mail = std::mem::take(&mut *mailboxes[me].lock().expect("mailbox poisoned"));
        mail.sort_by_key(|e| (e.at, e.src, e.seq));
        for env in mail {
            shard.schedule_at(SimTime::new(env.at), env.event);
        }
        stats.windows += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spinn_sim::Context;

    /// Each shard counts its own events and forwards a share to the next
    /// shard (ring exchange) until the hop budget is spent.
    struct Ring {
        me: usize,
        n: usize,
        handled: Vec<u64>,
        outbox: Vec<RemoteEvent<u32>>,
    }

    impl Model for Ring {
        type Event = u32;
        fn handle(&mut self, ctx: &mut Context<u32>, hops: u32) {
            self.handled.push(ctx.now().ticks());
            if hops > 0 {
                self.outbox.push(RemoteEvent {
                    at: ctx.now() + 50,
                    dest: (self.me + 1) % self.n,
                    event: hops - 1,
                });
            }
        }
    }

    impl ShardModel for Ring {
        fn drain_outbox(&mut self) -> Vec<RemoteEvent<u32>> {
            std::mem::take(&mut self.outbox)
        }
    }

    fn ring(n: usize) -> ParEngine<Ring> {
        ParEngine::new(
            (0..n)
                .map(|me| Ring {
                    me,
                    n,
                    handled: Vec::new(),
                    outbox: Vec::new(),
                })
                .collect(),
        )
    }

    #[test]
    fn token_circulates_across_shards() {
        for n in [1usize, 2, 3, 4] {
            let mut par = ring(n);
            par.schedule(0, SimTime::ZERO, 12);
            par.run_until(SimTime::new(10_000), 50);
            let models = par.into_models();
            let total: usize = models.iter().map(|m| m.handled.len()).sum();
            assert_eq!(total, 13, "all hops handled with {n} shards");
            // Hop k fires at exactly k * 50 regardless of shard count.
            let mut times: Vec<u64> = models.iter().flat_map(|m| m.handled.clone()).collect();
            times.sort_unstable();
            assert_eq!(times, (0..13).map(|k| k * 50).collect::<Vec<_>>());
        }
    }

    #[test]
    fn deadline_cuts_off_late_events() {
        let mut par = ring(2);
        par.schedule(0, SimTime::ZERO, 100);
        // 12 hops of 50 ticks fit below the deadline of 600 (hop at 600
        // exactly is still processed, matching Engine::run_until).
        par.run_until(SimTime::new(600), 50);
        let models = par.into_models();
        let total: usize = models.iter().map(|m| m.handled.len()).sum();
        assert_eq!(total, 13);
    }

    #[test]
    fn stats_are_populated() {
        let mut par = ring(3);
        par.schedule(0, SimTime::ZERO, 9);
        par.run_until(SimTime::new(10_000), 50);
        assert_eq!(par.stats().events, 10);
        assert_eq!(par.stats().exchanged, 9);
        assert!(par.stats().windows >= 9);
    }

    #[test]
    #[should_panic(expected = "lookahead > 0")]
    fn zero_lookahead_rejected() {
        let mut par = ring(2);
        par.run_until(SimTime::new(10), 0);
    }

    #[test]
    fn empty_run_terminates() {
        let mut par = ring(4);
        par.run_until(SimTime::new(1_000), 10);
        assert_eq!(par.stats().events, 0);
    }
}
