//! The sharded, barrier-synchronized parallel execution engine.
//!
//! See the crate-level documentation for the protocol description.
//!
//! # Scheduling
//!
//! Shards and worker threads are decoupled: `run_until` spawns
//! `min(shards, available_parallelism)` workers, and within every
//! window phase the workers *claim* shards from a shared atomic counter
//! (work stealing at shard granularity). A worker that finishes a light
//! shard immediately claims the next unclaimed one, so a skewed spike
//! distribution no longer serializes the round behind whichever thread
//! happened to own the hot shard — and when the host has fewer cores
//! than the run has shards, the pool degrades to the core count instead
//! of oversubscribing the machine with yielding threads.
//!
//! # Per-shard horizons
//!
//! The classic conservative window runs every shard to
//! `global_min + lookahead`. This engine extends each shard's horizon
//! independently, bounded by the two ways an event can still reach it:
//!
//! 1. another shard's *pending* work — shard `j` only emits at
//!    `>= next_j + lookahead`, so `min(next_j, j != i) + lookahead` is
//!    safe against everything already queued elsewhere, and
//! 2. *reactions to shard `i`'s own emissions* — an event `i` sends
//!    arriving at `a` can provoke a reply no earlier than
//!    `a + lookahead`, so the horizon also stays at or below the
//!    earliest arrival `i` has staged this round plus the lookahead
//!    (before anything is staged: `next_i + 2*lookahead`).
//!
//! The window grows iteratively inside the round as bound 2 relaxes:
//! a shard whose neighbors are idle and that emits nothing runs all the
//! way to the deadline in a single barrier round — collapsing the
//! barrier count on skewed workloads from O(events) to O(interactions).

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

use spinn_obs::Phase;
use spinn_sim::{Engine, EventQueue, Model, Queue, SimTime};

/// Sentinel for "this shard's queue is empty".
const IDLE: u64 = u64::MAX;

/// A model that can run as one shard of a partitioned simulation.
///
/// On top of the ordinary [`Model`] contract, a shard model accumulates
/// events destined for *other* shards in an internal outbox instead of
/// scheduling them locally; the engine drains that outbox at the end of
/// every window and delivers the events through the barrier exchange.
pub trait ShardModel: Model {
    /// Drains the cross-shard events staged since the last call.
    ///
    /// Every returned event must have `at >= t + lookahead`, where `t` is
    /// the timestamp of the handler that produced it and `lookahead` is
    /// the bound passed to [`ParEngine::run_until`] — this is the
    /// conservative-synchronization contract that makes windowed
    /// execution exact.
    ///
    /// Every returned event must also target a *different* shard:
    /// same-shard events are ordinary local events and must be
    /// scheduled through the [`Context`](spinn_sim::Context) instead.
    /// (This is what lets the engine extend a shard's horizon past the
    /// global minimum — only *other* shards can still send to it.)
    fn drain_outbox(&mut self) -> Vec<RemoteEvent<Self::Event>>;
}

/// One shard's checkpoint form: the model plus its drained pending
/// events in canonical `(time, rank)` pop order (see
/// [`ParEngine::into_parts`]).
pub type ShardParts<M> = (M, Vec<(SimTime, u128, <M as Model>::Event)>);

/// A cross-shard event emitted by a [`ShardModel`].
#[derive(Debug)]
pub struct RemoteEvent<E> {
    /// Absolute delivery time.
    pub at: SimTime,
    /// Index of the destination shard.
    pub dest: usize,
    /// The event payload.
    pub event: E,
}

/// Counters describing one parallel run.
#[derive(Clone, Debug, Default)]
pub struct ParStats {
    /// Barrier rounds (conservative windows) executed.
    pub windows: u64,
    /// Events handled across all shards.
    pub events: u64,
    /// Cross-shard events exchanged at barriers.
    pub exchanged: u64,
}

/// An envelope carrying a cross-shard event through a mailbox.
///
/// `(at, src, seq)` is the canonical delivery order: `seq` counts per
/// *source shard* (not per worker thread), so sorting by it makes queue
/// insertion — and therefore FIFO tie-breaking — independent of which
/// worker thread ran the source shard or reached the mailbox first.
struct Envelope<E> {
    at: u64,
    src: u32,
    seq: u64,
    event: E,
}

/// One shard's mutable state, claimed by at most one worker per phase.
///
/// The mutex is uncontended by construction (the claim counters hand
/// each shard index to exactly one worker per phase); it exists to make
/// the hand-off between different workers across phases sound.
struct Slot<'a, M: ShardModel, Q: Queue<M::Event>> {
    engine: &'a mut Engine<M, Q>,
    /// Per-source-shard envelope sequence (canonical tie-break order).
    seq: u64,
    events: u64,
    exchanged: u64,
}

/// A sense-counting spin barrier.
///
/// Windows are typically microseconds long, so a futex-based
/// [`std::sync::Barrier`] would dominate the run; spinning with a yield
/// fallback keeps the barrier in the tens-of-nanoseconds range when the
/// worker count does not exceed the core count. When workers outnumber
/// cores, spinning only steals the running worker's quantum, so the
/// barrier yields immediately instead.
struct SpinBarrier {
    n: usize,
    spin_limit: u32,
    count: AtomicUsize,
    generation: AtomicUsize,
}

impl SpinBarrier {
    fn new(n: usize) -> Self {
        let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
        SpinBarrier {
            n,
            spin_limit: if n <= cores { 20_000 } else { 0 },
            count: AtomicUsize::new(0),
            generation: AtomicUsize::new(0),
        }
    }

    /// Waits for all `n` workers; the last arriver runs `reset` before
    /// releasing the others (used to rearm the next phase's claim
    /// counter while every other worker is provably inside the wait).
    fn wait_then(&self, reset: impl FnOnce()) {
        let gen = self.generation.load(Ordering::Acquire);
        if self.count.fetch_add(1, Ordering::AcqRel) + 1 == self.n {
            self.count.store(0, Ordering::Relaxed);
            reset();
            self.generation
                .store(gen.wrapping_add(1), Ordering::Release);
        } else {
            let mut spins = 0u32;
            while self.generation.load(Ordering::Acquire) == gen {
                if spins >= self.spin_limit {
                    std::thread::yield_now();
                } else {
                    spins += 1;
                    std::hint::spin_loop();
                }
            }
        }
    }
}

/// The parallel engine: one [`Engine`] per shard, advanced in lockstep
/// conservative windows by a pool of worker threads that claim shards
/// dynamically (see the module docs).
///
/// # Example
///
/// Two shards ping-ponging a token with a 10-tick cross-shard latency:
///
/// ```
/// use spinn_par::{ParEngine, RemoteEvent, ShardModel};
/// use spinn_sim::{Context, Model, SimTime};
///
/// struct Token { me: usize, seen: u32, outbox: Vec<RemoteEvent<u32>> }
///
/// impl Model for Token {
///     type Event = u32;
///     fn handle(&mut self, ctx: &mut Context<u32>, hops: u32) {
///         self.seen += 1;
///         if hops > 0 {
///             self.outbox.push(RemoteEvent {
///                 at: ctx.now() + 10,
///                 dest: 1 - self.me,
///                 event: hops - 1,
///             });
///         }
///     }
/// }
/// impl ShardModel for Token {
///     fn drain_outbox(&mut self) -> Vec<RemoteEvent<u32>> {
///         std::mem::take(&mut self.outbox)
///     }
/// }
///
/// let mut par = ParEngine::new(vec![
///     Token { me: 0, seen: 0, outbox: vec![] },
///     Token { me: 1, seen: 0, outbox: vec![] },
/// ]);
/// par.schedule(0, SimTime::ZERO, 5);
/// par.run_until(SimTime::new(1_000), 10);
/// let models = par.into_models();
/// assert_eq!(models[0].seen + models[1].seen, 6);
/// ```
pub struct ParEngine<M: ShardModel, Q: Queue<M::Event> = EventQueue<<M as Model>::Event>> {
    shards: Vec<Engine<M, Q>>,
    stats: ParStats,
}

impl<M> ParEngine<M>
where
    M: ShardModel + Send,
    M::Event: Send,
{
    /// Wraps one engine (on the default binary-heap queue) around each
    /// shard model.
    ///
    /// # Panics
    ///
    /// Panics if `models` is empty.
    pub fn new(models: Vec<M>) -> Self {
        ParEngine::new_in(models)
    }
}

impl<M, Q> ParEngine<M, Q>
where
    M: ShardModel + Send,
    M::Event: Send,
    Q: Queue<M::Event> + Send,
{
    /// Wraps one engine around each shard model, on an explicitly
    /// chosen queue implementation — every shard runs the same kind
    /// (e.g. `ParEngine::<M, CalendarQueue<_>>::new_in(models)`).
    ///
    /// # Panics
    ///
    /// Panics if `models` is empty.
    pub fn new_in(models: Vec<M>) -> Self {
        assert!(!models.is_empty(), "ParEngine needs at least one shard");
        ParEngine {
            shards: models.into_iter().map(Engine::new_in).collect(),
            stats: ParStats::default(),
        }
    }

    /// Wraps one engine around each shard model with every shard clock
    /// starting at `now` instead of zero — the resume path of
    /// checkpointed runs (see [`Engine::resume_at`]).
    ///
    /// # Panics
    ///
    /// Panics if `models` is empty.
    pub fn resume_in(models: Vec<M>, now: SimTime) -> Self {
        assert!(!models.is_empty(), "ParEngine needs at least one shard");
        ParEngine {
            shards: models
                .into_iter()
                .map(|m| Engine::resume_at(m, now))
                .collect(),
            stats: ParStats::default(),
        }
    }

    /// Consumes the engine, returning each shard's model together with
    /// its drained pending events in canonical `(time, rank)` pop order
    /// — the checkpoint form of a paused sharded run (mailboxes are
    /// always empty between [`ParEngine::run_until`] calls, so the
    /// shard queues hold the complete pending set).
    pub fn into_parts(self) -> Vec<ShardParts<M>> {
        self.shards.into_iter().map(Engine::into_parts).collect()
    }

    /// Number of shards (not necessarily the worker-thread count: the
    /// pool is clamped to the host's available parallelism).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Schedules an initial event on one shard.
    pub fn schedule(&mut self, shard: usize, at: SimTime, event: M::Event) {
        self.shards[shard].schedule_at(at, event);
    }

    /// Counters from completed [`ParEngine::run_until`] calls.
    pub fn stats(&self) -> &ParStats {
        &self.stats
    }

    /// Each shard queue's occupancy high-water mark, in shard order
    /// (see [`spinn_sim::Queue::peak_len`]). Read before
    /// [`ParEngine::into_parts`], which drains the queues.
    pub fn queue_peaks(&self) -> Vec<usize> {
        self.shards.iter().map(Engine::queue_peak).collect()
    }

    /// Consumes the engine, returning the shard models in shard order.
    pub fn into_models(self) -> Vec<M> {
        self.shards.into_iter().map(Engine::into_model).collect()
    }

    /// Runs every shard until all queues pass `deadline` (events at
    /// exactly `deadline` are processed, matching
    /// [`Engine::run_until`]).
    ///
    /// `lookahead_ns` must be a strict lower bound on the delivery delay
    /// of every cross-shard event: an event handled at time `t` may only
    /// produce remote events at `t + lookahead_ns` or later.
    ///
    /// # Panics
    ///
    /// Panics if `lookahead_ns == 0`, or (in debug builds) if a shard
    /// violates the lookahead contract.
    pub fn run_until(&mut self, deadline: SimTime, lookahead_ns: u64) {
        self.run_until_with_workers(deadline, lookahead_ns, usize::MAX);
    }

    /// [`ParEngine::run_until`] with an explicit cap on the worker pool.
    ///
    /// The pool size is `min(shards, host cores, max_workers)`. This is
    /// what makes *over-decomposition* useful: cut the model into more
    /// shards than workers and the claim counters turn each window
    /// phase into a work-stealing scan — an idle worker picks up the
    /// next unclaimed shard instead of waiting at the barrier for
    /// whoever owns the hot region. Results are bit-identical for every
    /// worker count (the schedule depends only on the shard cut).
    ///
    /// # Panics
    ///
    /// Panics if `lookahead_ns == 0`, or (in debug builds) if a shard
    /// violates the lookahead contract.
    pub fn run_until_with_workers(
        &mut self,
        deadline: SimTime,
        lookahead_ns: u64,
        max_workers: usize,
    ) {
        assert!(lookahead_ns > 0, "conservative windows need lookahead > 0");
        let n = self.shards.len();
        let workers = n
            .min(std::thread::available_parallelism().map_or(1, |p| p.get()))
            .min(max_workers.max(1));
        if workers == 1 {
            // One worker owns every shard: the claim counters, slot
            // mutexes and barriers would synchronize the worker with
            // itself. Run the identical schedule without them — same
            // deliver/run rounds, same horizons, same canonical mailbox
            // order, so the results are bit-identical to the pool path.
            self.run_until_solo(deadline.ticks(), lookahead_ns);
            return;
        }
        let barrier = SpinBarrier::new(workers);
        let next: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(IDLE)).collect();
        let mailboxes: Vec<Mutex<Vec<Envelope<M::Event>>>> =
            (0..n).map(|_| Mutex::new(Vec::new())).collect();
        // Shard-claim counters, one per phase; each is rearmed at the
        // *other* phase's barrier, when no worker can be claiming from it.
        let claim_deliver = AtomicUsize::new(0);
        let claim_run = AtomicUsize::new(usize::MAX);
        let deadline_ns = deadline.ticks();

        let slots: Vec<Mutex<Slot<'_, M, Q>>> = self
            .shards
            .iter_mut()
            .map(|engine| {
                Mutex::new(Slot {
                    engine,
                    seq: 0,
                    events: 0,
                    exchanged: 0,
                })
            })
            .collect();

        let mut rounds = 0u64;
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers);
            for w in 0..workers {
                let barrier = &barrier;
                let next = &next;
                let mailboxes = &mailboxes;
                let slots = &slots;
                let claim_deliver = &claim_deliver;
                let claim_run = &claim_run;
                handles.push(scope.spawn(move || {
                    worker_loop(
                        w,
                        slots,
                        barrier,
                        next,
                        mailboxes,
                        claim_deliver,
                        claim_run,
                        deadline_ns,
                        lookahead_ns,
                    )
                }));
            }
            for h in handles {
                rounds = rounds.max(h.join().expect("shard worker panicked"));
            }
        });
        // Every worker counts the same number of barrier rounds, so add
        // this call's rounds once (not per worker).
        self.stats.windows += rounds;
        for slot in slots {
            let slot = slot.into_inner().expect("slot poisoned");
            self.stats.events += slot.events;
            self.stats.exchanged += slot.exchanged;
        }
    }

    /// Single-worker schedule: the same conservative-window rounds as
    /// the pool path (deliver, snapshot, run with per-shard horizons),
    /// executed inline. `BarrierWait` never fires here because a lone
    /// worker never waits.
    fn run_until_solo(&mut self, deadline_ns: u64, lookahead_ns: u64) {
        let n = self.shards.len();
        let mut mailboxes: Vec<Vec<Envelope<M::Event>>> = (0..n).map(|_| Vec::new()).collect();
        let mut seq = vec![0u64; n];
        let mut times = vec![IDLE; n];
        loop {
            // Deliver phase.
            for (i, engine) in self.shards.iter_mut().enumerate() {
                let mut mail = std::mem::take(&mut mailboxes[i]);
                if !mail.is_empty() {
                    mail.sort_by_key(|e| (e.at, e.src, e.seq));
                    for env in mail {
                        engine.schedule_at(SimTime::new(env.at), env.event);
                    }
                }
                times[i] = engine.next_event_time().map_or(IDLE, |t| t.ticks());
            }
            let min = *times.iter().min().expect("at least one shard");
            if min == IDLE || min > deadline_ns {
                return;
            }

            // Run phase: identical horizon bounds to `worker_loop`.
            for i in 0..n {
                let base = times
                    .iter()
                    .enumerate()
                    .filter(|&(j, _)| j != i)
                    .map(|(_, &t)| t)
                    .min()
                    .unwrap_or(IDLE)
                    .saturating_add(lookahead_ns)
                    .min(deadline_ns.saturating_add(1));
                let my_next = times[i];
                let mut horizon = base.min(my_next.saturating_add(lookahead_ns.saturating_mul(2)));
                if my_next >= horizon {
                    continue;
                }
                let engine = &mut self.shards[i];
                let before = engine.processed();
                let mut staged_min = IDLE;
                loop {
                    engine.run_before(SimTime::new(horizon));
                    for r in engine.model_mut().drain_outbox() {
                        debug_assert!(
                            r.at.ticks() >= my_next.saturating_add(lookahead_ns),
                            "lookahead violation: remote event at {} from window starting {}",
                            r.at,
                            my_next
                        );
                        debug_assert!(r.dest != i, "shard {i} routed an event to itself");
                        staged_min = staged_min.min(r.at.ticks());
                        self.stats.exchanged += 1;
                        mailboxes[r.dest].push(Envelope {
                            at: r.at.ticks(),
                            src: i as u32,
                            seq: seq[i],
                            event: r.event,
                        });
                        seq[i] += 1;
                    }
                    let next_now = engine.next_event_time().map_or(IDLE, |t| t.ticks());
                    let reply_floor = staged_min
                        .min(next_now.saturating_add(lookahead_ns))
                        .saturating_add(lookahead_ns);
                    let extended = base.min(reply_floor);
                    if extended <= horizon || next_now >= extended {
                        break;
                    }
                    horizon = extended;
                }
                self.stats.events += engine.processed() - before;
            }
            self.stats.windows += 1;
        }
    }
}

/// One pool worker: claims shards phase by phase until the run drains.
///
/// Returns the number of barrier rounds it observed (identical across
/// workers — they exit the loop together).
#[allow(clippy::too_many_arguments)]
fn worker_loop<M: ShardModel, Q: Queue<M::Event>>(
    w: usize,
    slots: &[Mutex<Slot<'_, M, Q>>],
    barrier: &SpinBarrier,
    next: &[AtomicU64],
    mailboxes: &[Mutex<Vec<Envelope<M::Event>>>],
    claim_deliver: &AtomicUsize,
    claim_run: &AtomicUsize,
    deadline_ns: u64,
    lookahead_ns: u64,
) -> u64 {
    let n = slots.len();
    let mut rounds = 0u64;
    // Barrier waits are where shard imbalance shows up: a worker that
    // runs out of claimable shards early burns the difference here.
    // Time both waits into this worker's home-shard probe (inert unless
    // telemetry is on; `w < n` because the pool is clamped to the shard
    // count).
    let probe = slots[w]
        .lock()
        .expect("slot poisoned")
        .engine
        .probe()
        .clone();
    let mut times: Vec<u64> = vec![IDLE; n];
    loop {
        // Deliver phase: drain each shard's mailbox in canonical order
        // and publish its earliest pending timestamp.
        loop {
            let i = claim_deliver.fetch_add(1, Ordering::AcqRel);
            if i >= n {
                break;
            }
            let slot = &mut *slots[i].lock().expect("slot poisoned");
            let mut mail = std::mem::take(&mut *mailboxes[i].lock().expect("mailbox poisoned"));
            if !mail.is_empty() {
                mail.sort_by_key(|e| (e.at, e.src, e.seq));
                for env in mail {
                    slot.engine.schedule_at(SimTime::new(env.at), env.event);
                }
            }
            next[i].store(
                slot.engine.next_event_time().map_or(IDLE, |t| t.ticks()),
                Ordering::Release,
            );
        }
        let tok = probe.start();
        barrier.wait_then(|| claim_run.store(0, Ordering::Relaxed));
        probe.record(Phase::BarrierWait, tok);

        // All publishes happened before the barrier, so every worker
        // reads the same snapshot and computes the same minimum.
        for (t, a) in times.iter_mut().zip(next.iter()) {
            *t = a.load(Ordering::Acquire);
        }
        let min = *times.iter().min().expect("at least one shard");
        if min == IDLE || min > deadline_ns {
            // All queues drained or past the deadline — and mailboxes
            // are empty, because delivery happens before the minimum is
            // recomputed. Every worker sees the same minimum and exits
            // together.
            return rounds;
        }

        // Run phase: advance each claimed shard through its window (see
        // "Per-shard horizons" in the module docs for the safety
        // argument behind the two horizon bounds).
        loop {
            let i = claim_run.fetch_add(1, Ordering::AcqRel);
            if i >= n {
                break;
            }
            // Bound 1: everything already pending at other shards.
            let base = times
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != i)
                .map(|(_, &t)| t)
                .min()
                .unwrap_or(IDLE)
                .saturating_add(lookahead_ns)
                .min(deadline_ns.saturating_add(1));
            // Bound 2 (before anything is staged): the earliest event
            // this shard could emit is `next + lookahead`, so the
            // earliest reply is `next + 2*lookahead`.
            let my_next = times[i];
            let mut horizon = base.min(my_next.saturating_add(lookahead_ns.saturating_mul(2)));
            if my_next >= horizon {
                // Nothing pending inside this shard's window: skip the
                // engine entirely (its clock catches up lazily).
                continue;
            }
            let slot = &mut *slots[i].lock().expect("slot poisoned");
            let before = slot.engine.processed();
            // Earliest arrival staged by this shard this round; replies
            // to it land at >= this + lookahead.
            let mut staged_min = IDLE;
            loop {
                slot.engine.run_before(SimTime::new(horizon));
                for r in slot.engine.model_mut().drain_outbox() {
                    debug_assert!(
                        r.at.ticks() >= my_next.saturating_add(lookahead_ns),
                        "lookahead violation: remote event at {} from window starting {}",
                        r.at,
                        my_next
                    );
                    debug_assert!(r.dest != i, "shard {i} routed an event to itself");
                    staged_min = staged_min.min(r.at.ticks());
                    slot.exchanged += 1;
                    let env = Envelope {
                        at: r.at.ticks(),
                        src: i as u32,
                        seq: slot.seq,
                        event: r.event,
                    };
                    slot.seq += 1;
                    mailboxes[r.dest]
                        .lock()
                        .expect("mailbox poisoned")
                        .push(env);
                }
                // Try to extend: bound 2 relaxes to the earliest staged
                // arrival (or, if nothing is staged yet, to replies
                // provoked by whatever the extension itself might emit).
                let next_now = slot.engine.next_event_time().map_or(IDLE, |t| t.ticks());
                let reply_floor = staged_min
                    .min(next_now.saturating_add(lookahead_ns))
                    .saturating_add(lookahead_ns);
                let extended = base.min(reply_floor);
                if extended <= horizon || next_now >= extended {
                    break;
                }
                horizon = extended;
            }
            slot.events += slot.engine.processed() - before;
        }
        let tok = probe.start();
        barrier.wait_then(|| claim_deliver.store(0, Ordering::Relaxed));
        probe.record(Phase::BarrierWait, tok);
        rounds += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spinn_sim::Context;

    /// Each shard counts its own events and forwards a share to the next
    /// shard (ring exchange) until the hop budget is spent.
    struct Ring {
        me: usize,
        n: usize,
        handled: Vec<u64>,
        outbox: Vec<RemoteEvent<u32>>,
    }

    impl Model for Ring {
        type Event = u32;
        fn handle(&mut self, ctx: &mut Context<u32>, hops: u32) {
            self.handled.push(ctx.now().ticks());
            if hops > 0 {
                let dest = (self.me + 1) % self.n;
                if dest == self.me {
                    // Single-shard ring: same-shard hops are local
                    // events, per the ShardModel contract.
                    ctx.schedule_at(ctx.now() + 50, hops - 1);
                } else {
                    self.outbox.push(RemoteEvent {
                        at: ctx.now() + 50,
                        dest,
                        event: hops - 1,
                    });
                }
            }
        }
    }

    impl ShardModel for Ring {
        fn drain_outbox(&mut self) -> Vec<RemoteEvent<u32>> {
            std::mem::take(&mut self.outbox)
        }
    }

    fn ring(n: usize) -> ParEngine<Ring> {
        ParEngine::new(
            (0..n)
                .map(|me| Ring {
                    me,
                    n,
                    handled: Vec::new(),
                    outbox: Vec::new(),
                })
                .collect(),
        )
    }

    #[test]
    fn token_circulates_across_shards() {
        for n in [1usize, 2, 3, 4] {
            let mut par = ring(n);
            par.schedule(0, SimTime::ZERO, 12);
            par.run_until(SimTime::new(10_000), 50);
            let models = par.into_models();
            let total: usize = models.iter().map(|m| m.handled.len()).sum();
            assert_eq!(total, 13, "all hops handled with {n} shards");
            // Hop k fires at exactly k * 50 regardless of shard count.
            let mut times: Vec<u64> = models.iter().flat_map(|m| m.handled.clone()).collect();
            times.sort_unstable();
            assert_eq!(times, (0..13).map(|k| k * 50).collect::<Vec<_>>());
        }
    }

    #[test]
    fn deadline_cuts_off_late_events() {
        let mut par = ring(2);
        par.schedule(0, SimTime::ZERO, 100);
        // 12 hops of 50 ticks fit below the deadline of 600 (hop at 600
        // exactly is still processed, matching Engine::run_until).
        par.run_until(SimTime::new(600), 50);
        let models = par.into_models();
        let total: usize = models.iter().map(|m| m.handled.len()).sum();
        assert_eq!(total, 13);
    }

    #[test]
    fn stats_are_populated() {
        let mut par = ring(3);
        par.schedule(0, SimTime::ZERO, 9);
        par.run_until(SimTime::new(10_000), 50);
        assert_eq!(par.stats().events, 10);
        assert_eq!(par.stats().exchanged, 9);
        assert!(par.stats().windows >= 1);
    }

    #[test]
    #[should_panic(expected = "lookahead > 0")]
    fn zero_lookahead_rejected() {
        let mut par = ring(2);
        par.run_until(SimTime::new(10), 0);
    }

    #[test]
    fn worker_cap_is_result_invariant() {
        // Over-decomposed runs (more shards than workers) must replay
        // the exact same schedule whatever the pool size.
        let run = |cap: usize| {
            let mut par = ring(4);
            par.schedule(0, SimTime::ZERO, 12);
            par.run_until_with_workers(SimTime::new(10_000), 50, cap);
            let models = par.into_models();
            let mut times: Vec<u64> = models.iter().flat_map(|m| m.handled.clone()).collect();
            times.sort_unstable();
            times
        };
        let baseline = run(usize::MAX);
        assert_eq!(baseline.len(), 13);
        for cap in [1, 2, 3] {
            assert_eq!(run(cap), baseline, "cap {cap} diverged");
        }
    }

    #[test]
    fn empty_run_terminates() {
        let mut par = ring(4);
        par.run_until(SimTime::new(1_000), 10);
        assert_eq!(par.stats().events, 0);
    }

    /// With per-shard horizons, a hot shard facing an otherwise idle
    /// machine should need only O(interactions) windows, not O(events).
    #[test]
    fn idle_neighbors_extend_horizon() {
        // Shard 0 self-schedules nothing remote: a long local cascade.
        struct Cascade {
            left: u32,
            outbox: Vec<RemoteEvent<u32>>,
        }
        impl Model for Cascade {
            type Event = u32;
            fn handle(&mut self, ctx: &mut Context<u32>, _: u32) {
                if self.left > 0 {
                    self.left -= 1;
                    let next = ctx.now() + 1;
                    ctx.schedule_at(next, 0);
                }
            }
        }
        impl ShardModel for Cascade {
            fn drain_outbox(&mut self) -> Vec<RemoteEvent<u32>> {
                std::mem::take(&mut self.outbox)
            }
        }
        let mut par = ParEngine::new(vec![
            Cascade {
                left: 1000,
                outbox: vec![],
            },
            Cascade {
                left: 0,
                outbox: vec![],
            },
        ]);
        par.schedule(0, SimTime::ZERO, 0);
        par.run_until(SimTime::new(100_000), 2);
        assert_eq!(par.stats().events, 1001);
        // The busy shard's horizon extends to the deadline because its
        // neighbor is idle: one productive window, not ~500.
        assert!(
            par.stats().windows <= 3,
            "expected horizon extension, got {} windows",
            par.stats().windows
        );
    }
}
