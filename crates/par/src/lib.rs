//! # spinn-par — sharded, barrier-synchronized parallel execution
//!
//! SpiNNaker runs a million cores in real time without a global clock:
//! each core integrates its neurons on a local 1 ms timer, and the only
//! inter-processor coupling is spike packets that the fabric delivers
//! "in significantly under 1 ms, whatever the distance" (§3.1 of the
//! paper). Events are therefore *locally* ordered — a chip never needs
//! to know what a distant chip is doing right now, only which spikes
//! will reach it and when.
//!
//! This crate exploits exactly that property to parallelize the
//! discrete-event simulation of the machine itself:
//!
//! 1. The simulated chips are partitioned into **shards**, one
//!    [`spinn_sim::Engine`] and one worker thread per shard.
//! 2. All shards advance in lockstep **conservative windows**. At each
//!    barrier the workers agree on the global minimum pending timestamp
//!    `m`; every shard may then safely simulate all events in
//!    `[m, m + lookahead)`, where the *lookahead* is the minimum
//!    cross-shard latency — for the machine, the minimum inter-chip
//!    link delay (shortest-packet serialization + wire propagation +
//!    router pipeline). No event handled inside the window can produce
//!    a cross-shard event landing inside the same window, so no shard
//!    ever receives an event in its own past.
//! 3. Cross-shard events produced inside a window are collected in each
//!    shard's outbox ([`ShardModel::drain_outbox`]) and **exchanged at
//!    the window barrier** with their exact timestamps, sorted into a
//!    canonical `(time, source shard, source sequence)` order before
//!    queue insertion so that delivery never depends on thread
//!    scheduling.
//! 4. Same-instant ordering is **content-derived**, not insertion-
//!    derived: models implement [`spinn_sim::Model::tie_rank`] so that
//!    two events scheduled for the same nanosecond are handled in an
//!    order determined by *what they are*. This is what makes the
//!    sharded run equal the serial run even under congestion — a remote
//!    arrival inserted at a barrier and a local event staged mid-window
//!    still sort identically in both executions.
//!
//! The result is an *event-exact* replay of the serial simulation:
//! every event fires at the same timestamp on every thread count, and
//! the recorded spike streams are bit-identical. This mirrors the
//! machine's own semantics at a different timescale: SpiNNaker's 1 ms
//! timestep is the coarse window within which spike *arrival order
//! does not matter* (ring-buffer deposits commute); the simulator's
//! window is the fine-grained analogue within which *cross-shard events
//! cannot exist at all*. Between two timer ticks the event population
//! is sparse and clustered, so the window loop jumps across the empty
//! stretches of each millisecond and barriers only where traffic is —
//! which is what makes the barrier protocol cheap enough to win
//! wall-clock time (see experiment E12 in `spinn-bench`).
//!
//! Determinism is preserved per shard: models that need randomness
//! should key their PRNG stream by shard id (e.g.
//! [`shard_stream`]), so a run is a pure function of `(seed, shard
//! count)` — and, for models meeting the exchange contract, of `seed`
//! alone.
//!
//! Memory moves with the shards, not across them: when the neural
//! machine partitions its chips, each application core's synaptic
//! matrix (the master-population-table + contiguous-arena state of
//! `spinn_neuron::synmatrix`) is handed to its owning shard wholesale
//! and handed back at merge — sharding never copies or splits an
//! arena.
//!
//! # Example
//!
//! See [`ParEngine`] for a two-shard token-passing example, and
//! `spinn_machine::machine::NeuralMachine::run_parallel` for the
//! full-machine integration.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;

pub use engine::{ParEngine, ParStats, RemoteEvent, ShardModel, ShardParts};

use spinn_sim::Xoshiro256;

/// A deterministic per-shard PRNG stream: shard `i` of a run seeded
/// with `seed` always sees the same sequence, regardless of thread
/// scheduling or shard count.
pub fn shard_stream(seed: u64, shard: usize) -> Xoshiro256 {
    // Distinct golden-ratio offsets decorrelate the per-shard streams.
    Xoshiro256::seed_from_u64(seed ^ (shard as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_streams_are_deterministic_and_distinct() {
        let mut a0 = shard_stream(7, 0);
        let mut a0b = shard_stream(7, 0);
        let mut a1 = shard_stream(7, 1);
        let x = a0.next_u64();
        assert_eq!(x, a0b.next_u64());
        assert_ne!(x, a1.next_u64());
    }
}
