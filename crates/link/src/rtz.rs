//! The on-chip 3-of-6 RTZ self-timed channel (CHAIN fabric style),
//! modelled at the wire transition level (1 tick = 1 ps).
//!
//! RTZ is a four-phase protocol: the transmitter raises three of six data
//! wires, the receiver acknowledges, the transmitter returns all wires to
//! zero, and the receiver acknowledges the return. Two complete round
//! trips and 8 wire transitions per 4-bit symbol — which is why SpiNNaker
//! keeps it on-chip, where wires are short and the simpler logic wins, and
//! switches to 2-of-7 NRZ for the chip-to-chip hop (§5.1).

use spinn_sim::{Context, Engine, Model, SimTime};

use crate::code::{rtz_decode, rtz_encode, Symbol, RTZ_DATA_WIRES};

/// Timing parameters of the RTZ channel model. All times in ps.
#[derive(Copy, Clone, Debug)]
pub struct RtzConfig {
    /// Propagation delay of every wire, in either direction.
    pub wire_delay_ps: u64,
    /// Extra delay between successive data-wire edges of one codeword.
    pub wire_skew_ps: u64,
    /// Transmitter logic delay before driving the next phase.
    pub tx_cycle_ps: u64,
    /// Receiver completion-detection to acknowledge delay.
    pub rx_latch_ps: u64,
}

impl Default for RtzConfig {
    fn default() -> Self {
        RtzConfig {
            wire_delay_ps: 2_000,
            wire_skew_ps: 100,
            tx_cycle_ps: 150,
            rx_latch_ps: 100,
        }
    }
}

impl RtzConfig {
    /// Nominal symbol cycle: four wire flights plus logic at each phase.
    pub fn nominal_cycle_ps(&self) -> u64 {
        4 * self.wire_delay_ps + 2 * self.wire_skew_ps + 2 * self.tx_cycle_ps + 2 * self.rx_latch_ps
    }
}

/// Events inside the RTZ channel simulation.
#[derive(Copy, Clone, Debug)]
pub enum RtzEvent {
    /// An edge arrives at the receiver on data wire `wire`.
    DataEdge {
        /// Data wire index, `0..6`.
        wire: u8,
    },
    /// An acknowledge edge arrives at the transmitter.
    AckEdge,
    /// Transmitter drives the next phase (data-up or return-to-zero).
    TxDrive,
    /// Receiver latch delay elapsed: issue acknowledge edge.
    RxAckDone,
}

#[derive(Copy, Clone, Debug, PartialEq, Eq)]
enum TxPhase {
    Idle,
    SentData,
    Returning,
}

#[derive(Copy, Clone, Debug, PartialEq, Eq)]
enum RxPhase {
    WaitData,
    WaitReturn,
}

/// Counters published by an RTZ run.
#[derive(Clone, Debug, Default)]
pub struct RtzStats {
    /// Symbols latched by the receiver.
    pub captures: u64,
    /// Captures that were not valid 3-of-6 codewords.
    pub invalid_captures: u64,
    /// Data-wire transitions delivered (up and down).
    pub data_edges: u64,
    /// Acknowledge-wire transitions delivered.
    pub ack_edges: u64,
    /// Completion time of the final handshake.
    pub finish_time_ps: Option<u64>,
}

/// The complete RTZ channel model.
///
/// # Example
///
/// ```
/// use spinn_link::rtz::{RtzLink, RtzConfig};
/// use spinn_link::code::Symbol;
///
/// let symbols: Vec<Symbol> = (0..8).map(Symbol::Data).collect();
/// let mut engine = RtzLink::engine(RtzConfig::default(), symbols.clone());
/// engine.run_to_completion(Some(100_000));
/// assert!(engine.model().is_done());
/// assert_eq!(engine.model().delivered(), &symbols[..]);
/// ```
#[derive(Debug)]
pub struct RtzLink {
    cfg: RtzConfig,
    symbols: Vec<Symbol>,
    cursor: usize,
    tx_phase: TxPhase,
    rx_phase: RxPhase,
    level: [bool; RTZ_DATA_WIRES],
    delivered: Vec<Symbol>,
    stats: RtzStats,
    done: bool,
}

impl RtzLink {
    /// Creates the channel model around a symbol stream.
    pub fn new(cfg: RtzConfig, symbols: Vec<Symbol>) -> Self {
        RtzLink {
            cfg,
            symbols,
            cursor: 0,
            tx_phase: TxPhase::Idle,
            rx_phase: RxPhase::WaitData,
            level: [false; RTZ_DATA_WIRES],
            delivered: Vec::new(),
            stats: RtzStats::default(),
            done: false,
        }
    }

    /// Convenience: builds an [`Engine`] with the first drive scheduled.
    pub fn engine(cfg: RtzConfig, symbols: Vec<Symbol>) -> Engine<RtzLink> {
        let link = RtzLink::new(cfg, symbols);
        let mut engine = Engine::new(link);
        engine.schedule_at(SimTime::ZERO, RtzEvent::TxDrive);
        engine
    }

    /// The symbols latched by the receiver, in order.
    pub fn delivered(&self) -> &[Symbol] {
        &self.delivered
    }

    /// Run statistics.
    pub fn stats(&self) -> &RtzStats {
        &self.stats
    }

    /// True once every symbol's four-phase handshake has completed.
    pub fn is_done(&self) -> bool {
        self.done
    }

    fn drive_wires(&mut self, ctx: &mut Context<RtzEvent>, mask: u8) {
        let mut extra = 0;
        for w in 0..RTZ_DATA_WIRES {
            if mask & (1 << w) != 0 {
                ctx.schedule_in(
                    self.cfg.wire_delay_ps + extra,
                    RtzEvent::DataEdge { wire: w as u8 },
                );
                extra += self.cfg.wire_skew_ps;
            }
        }
    }

    fn level_mask(&self) -> u8 {
        let mut mask = 0u8;
        for w in 0..RTZ_DATA_WIRES {
            if self.level[w] {
                mask |= 1 << w;
            }
        }
        mask
    }

    fn on_tx_drive(&mut self, ctx: &mut Context<RtzEvent>) {
        match self.tx_phase {
            TxPhase::Idle => {
                if self.cursor >= self.symbols.len() {
                    if !self.done {
                        self.done = true;
                        self.stats.finish_time_ps = Some(ctx.now().ticks());
                        ctx.stop();
                    }
                    return;
                }
                let mask = rtz_encode(self.symbols[self.cursor]);
                self.cursor += 1;
                self.tx_phase = TxPhase::SentData;
                self.drive_wires(ctx, mask);
            }
            TxPhase::Returning => {
                // Return-to-zero: drive down the wires that are up. The
                // transmitter knows which: the codeword it just sent.
                let mask = rtz_encode(self.symbols[self.cursor - 1]);
                self.drive_wires(ctx, mask);
                self.tx_phase = TxPhase::SentData; // awaiting the down-ack
            }
            TxPhase::SentData => unreachable!("TxDrive while awaiting ack"),
        }
    }

    fn on_ack_edge(&mut self, ctx: &mut Context<RtzEvent>) {
        self.stats.ack_edges += 1;
        match self.rx_phase_of_ack() {
            AckKind::DataAck => {
                self.tx_phase = TxPhase::Returning;
                ctx.schedule_in(self.cfg.tx_cycle_ps, RtzEvent::TxDrive);
            }
            AckKind::ReturnAck => {
                self.tx_phase = TxPhase::Idle;
                ctx.schedule_in(self.cfg.tx_cycle_ps, RtzEvent::TxDrive);
            }
        }
    }

    /// Which half of the handshake this acknowledge belongs to: RTZ acks
    /// alternate strictly (data-ack, return-ack), so parity of the count
    /// identifies them in the fault-free channel.
    fn rx_phase_of_ack(&self) -> AckKind {
        if self.stats.ack_edges % 2 == 1 {
            AckKind::DataAck
        } else {
            AckKind::ReturnAck
        }
    }

    fn on_data_edge(&mut self, ctx: &mut Context<RtzEvent>, wire: usize) {
        self.stats.data_edges += 1;
        self.level[wire] ^= true;
        let mask = self.level_mask();
        match self.rx_phase {
            RxPhase::WaitData => {
                if mask.count_ones() == 3 {
                    self.stats.captures += 1;
                    match rtz_decode(mask) {
                        Some(sym) => self.delivered.push(sym),
                        None => self.stats.invalid_captures += 1,
                    }
                    self.rx_phase = RxPhase::WaitReturn;
                    ctx.schedule_in(self.cfg.rx_latch_ps, RtzEvent::RxAckDone);
                }
            }
            RxPhase::WaitReturn => {
                if mask == 0 {
                    self.rx_phase = RxPhase::WaitData;
                    ctx.schedule_in(self.cfg.rx_latch_ps, RtzEvent::RxAckDone);
                }
            }
        }
    }
}

#[derive(Copy, Clone, Debug)]
enum AckKind {
    DataAck,
    ReturnAck,
}

impl Model for RtzLink {
    type Event = RtzEvent;

    fn handle(&mut self, ctx: &mut Context<RtzEvent>, event: RtzEvent) {
        match event {
            RtzEvent::DataEdge { wire } => self.on_data_edge(ctx, wire as usize),
            RtzEvent::AckEdge => self.on_ack_edge(ctx),
            RtzEvent::TxDrive => self.on_tx_drive(ctx),
            RtzEvent::RxAckDone => {
                ctx.schedule_in(self.cfg.wire_delay_ps, RtzEvent::AckEdge);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn symbols(n: usize) -> Vec<Symbol> {
        (0..n).map(|i| Symbol::Data((i % 16) as u8)).collect()
    }

    #[test]
    fn delivers_in_order() {
        let mut engine = RtzLink::engine(RtzConfig::default(), symbols(64));
        let outcome = engine.run_to_completion(Some(1_000_000));
        assert_eq!(outcome, spinn_sim::RunOutcome::Stopped);
        let link = engine.model();
        assert!(link.is_done());
        assert_eq!(link.delivered(), &symbols(64)[..]);
        assert_eq!(link.stats().invalid_captures, 0);
    }

    #[test]
    fn transition_counts_match_paper() {
        // 3 up + 3 down data edges + 2 ack edges per symbol = 8 (§5.1).
        let n = 32u64;
        let mut engine = RtzLink::engine(RtzConfig::default(), symbols(n as usize));
        engine.run_to_completion(Some(1_000_000));
        let s = engine.model().stats();
        assert_eq!(s.data_edges, 6 * n);
        assert_eq!(s.ack_edges, 2 * n);
        assert_eq!(s.data_edges + s.ack_edges, 8 * n);
    }

    #[test]
    fn rtz_roughly_half_nrz_throughput() {
        // With identical wire delays, RTZ needs ~2x the time per symbol.
        use crate::nrz::{NrzConfig, NrzLink};
        let n = 100;
        let mut rtz = RtzLink::engine(RtzConfig::default(), symbols(n));
        rtz.run_to_completion(Some(10_000_000));
        let rtz_t = rtz.model().stats().finish_time_ps.unwrap();
        let mut nrz = NrzLink::engine(NrzConfig::default(), symbols(n), 1);
        nrz.run_to_completion(Some(10_000_000));
        let nrz_t = nrz.model().stats().finish_time_ps.unwrap();
        let ratio = rtz_t as f64 / nrz_t as f64;
        assert!(
            (1.6..2.4).contains(&ratio),
            "RTZ/NRZ time ratio {ratio:.2} outside [1.6, 2.4]"
        );
    }

    #[test]
    fn empty_stream() {
        let mut engine = RtzLink::engine(RtzConfig::default(), vec![]);
        engine.run_to_completion(Some(10));
        assert!(engine.model().is_done());
    }

    #[test]
    fn eop_roundtrips() {
        let stream = vec![Symbol::Eop, Symbol::Data(15)];
        let mut engine = RtzLink::engine(RtzConfig::default(), stream.clone());
        engine.run_to_completion(Some(10_000));
        assert_eq!(engine.model().delivered(), &stream[..]);
    }
}
