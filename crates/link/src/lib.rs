//! # spinn-link — transition-level models of SpiNNaker's self-timed links
//!
//! SpiNNaker's interconnect is entirely self-timed (§5.1 of the paper):
//!
//! * **on-chip** the CHAIN fabric uses a **3-of-6 return-to-zero (RTZ)**
//!   code — simple logic, but 8 wire transitions and two full handshake
//!   round trips per 4-bit symbol;
//! * **inter-chip** links use a **2-of-7 non-return-to-zero (NRZ)** code —
//!   3 wire transitions and a single round trip per 4-bit symbol, which is
//!   twice the throughput for less than half the energy where wire delay
//!   and off-chip capacitance dominate.
//!
//! This crate models both protocols at the *wire transition* level on the
//! deterministic event kernel from [`spinn_sim`], with 1 tick = 1 ps:
//!
//! * [`code`] — the 2-of-7 and 3-of-6 codeword tables and codecs (wire
//!   transition counts are exact, so the paper's 3-vs-8 energy claim is
//!   reproduced exactly);
//! * [`nrz`] — a full NRZ link (transmitter, seven data wires + ack,
//!   receiver) with **two receiver/transmitter phase-converter styles**
//!   (Fig. 6): the conventional XOR/level-based converter that can lose
//!   phase state under glitches and deadlock, and the transition-sensing
//!   converter that absorbs spurious transitions;
//! * [`rtz`] — the 4-phase RTZ link used on-chip;
//! * [`glitch`] — Monte-Carlo harness injecting Poisson glitch pulses on
//!   the wires, counting delivered/corrupted symbols and deadlocks
//!   (experiment E1), including the 2-token reset-recovery protocol;
//! * [`throughput`] — fault-free throughput and wire-transition/energy
//!   measurement for both protocols (experiment E2).
//!
//! # Example
//!
//! ```
//! use spinn_link::code::{Symbol, nrz_encode, nrz_decode};
//!
//! let mask = nrz_encode(Symbol::Data(0xA));
//! assert_eq!(mask.count_ones(), 2); // a 2-of-7 codeword
//! assert_eq!(nrz_decode(mask), Some(Symbol::Data(0xA)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod code;
pub mod glitch;
pub mod nrz;
pub mod rtz;
pub mod throughput;

pub use code::Symbol;
pub use glitch::{DeadlockStudy, GlitchOutcome, GlitchTrialConfig};
pub use nrz::{NrzConfig, NrzLink, RxStyle};
pub use rtz::{RtzConfig, RtzLink};
pub use throughput::{measure_nrz, measure_rtz, LinkMeasurement};
