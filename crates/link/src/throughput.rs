//! Fault-free throughput and energy measurement of both link protocols
//! (experiment E2, §5.1).
//!
//! The paper's claim: off-chip, where chip-to-chip delays dominate
//! performance and wire transitions dominate power, the 2-of-7 NRZ code
//! "delivers twice the performance for less than half the energy per
//! 4-bit symbol" of the 3-of-6 RTZ code.

use crate::code::Symbol;
use crate::nrz::{NrzConfig, NrzLink, RxStyle};
use crate::rtz::{RtzConfig, RtzLink};

/// Energy cost of one off-chip wire transition, in picojoules. A
/// paper-era pad + PCB trace figure; only ratios matter for E2.
pub const OFF_CHIP_PJ_PER_TRANSITION: f64 = 5.0;

/// Result of measuring one protocol at one wire delay.
#[derive(Copy, Clone, Debug)]
pub struct LinkMeasurement {
    /// Wire delay used, ps.
    pub wire_delay_ps: u64,
    /// Symbols transferred.
    pub symbols: u64,
    /// Total transfer time, ps.
    pub duration_ps: u64,
    /// Wire transitions used (data + acknowledge).
    pub transitions: u64,
    /// Throughput in million 4-bit symbols per second.
    pub msymbols_per_s: f64,
    /// Data throughput in Mbit/s (4 bits per symbol).
    pub mbit_per_s: f64,
    /// Wire transitions per symbol.
    pub transitions_per_symbol: f64,
    /// Energy per symbol at [`OFF_CHIP_PJ_PER_TRANSITION`], in pJ.
    pub pj_per_symbol: f64,
}

fn measurement(
    wire_delay_ps: u64,
    symbols: u64,
    duration_ps: u64,
    transitions: u64,
) -> LinkMeasurement {
    let msym = symbols as f64 / (duration_ps as f64 * 1e-12) / 1e6;
    LinkMeasurement {
        wire_delay_ps,
        symbols,
        duration_ps,
        transitions,
        msymbols_per_s: msym,
        mbit_per_s: msym * 4.0,
        transitions_per_symbol: transitions as f64 / symbols as f64,
        pj_per_symbol: transitions as f64 / symbols as f64 * OFF_CHIP_PJ_PER_TRANSITION,
    }
}

fn stream(n: usize) -> Vec<Symbol> {
    (0..n).map(|i| Symbol::Data(((i * 7) % 16) as u8)).collect()
}

/// Measures the NRZ link pushing `n` symbols at the given wire delay.
///
/// # Panics
///
/// Panics if the link fails to complete (impossible without glitches).
pub fn measure_nrz(wire_delay_ps: u64, n: usize) -> LinkMeasurement {
    let cfg = NrzConfig {
        wire_delay_ps,
        style: RxStyle::TransitionSensing,
        ..Default::default()
    };
    let mut engine = NrzLink::engine(cfg, stream(n), 1);
    engine.run_to_completion(Some(100_000_000));
    let link = engine.model();
    assert!(link.is_done(), "fault-free NRZ link failed to complete");
    let s = link.stats();
    measurement(
        wire_delay_ps,
        n as u64,
        s.finish_time_ps.expect("finished"),
        s.data_edges + s.ack_edges,
    )
}

/// Measures the RTZ channel pushing `n` symbols at the given wire delay.
///
/// # Panics
///
/// Panics if the channel fails to complete.
pub fn measure_rtz(wire_delay_ps: u64, n: usize) -> LinkMeasurement {
    let cfg = RtzConfig {
        wire_delay_ps,
        ..Default::default()
    };
    let mut engine = RtzLink::engine(cfg, stream(n));
    engine.run_to_completion(Some(100_000_000));
    let link = engine.model();
    assert!(link.is_done(), "fault-free RTZ link failed to complete");
    let s = link.stats();
    measurement(
        wire_delay_ps,
        n as u64,
        s.finish_time_ps.expect("finished"),
        s.data_edges + s.ack_edges,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::code::{NRZ_TRANSITIONS_PER_SYMBOL, RTZ_TRANSITIONS_PER_SYMBOL};

    #[test]
    fn paper_energy_ratio_is_exact() {
        let nrz = measure_nrz(2_000, 200);
        let rtz = measure_rtz(2_000, 200);
        assert!((nrz.transitions_per_symbol - NRZ_TRANSITIONS_PER_SYMBOL as f64).abs() < 1e-9);
        assert!((rtz.transitions_per_symbol - RTZ_TRANSITIONS_PER_SYMBOL as f64).abs() < 1e-9);
        // "less than half the energy per 4-bit symbol"
        assert!(nrz.pj_per_symbol < rtz.pj_per_symbol / 2.0);
    }

    #[test]
    fn paper_throughput_ratio_when_wires_dominate() {
        // With long wires (off-chip regime) NRZ approaches 2x RTZ.
        let nrz = measure_nrz(5_000, 200);
        let rtz = measure_rtz(5_000, 200);
        let ratio = nrz.msymbols_per_s / rtz.msymbols_per_s;
        assert!(
            (1.8..2.2).contains(&ratio),
            "NRZ/RTZ throughput ratio {ratio:.3}"
        );
    }

    #[test]
    fn rtz_competitive_on_chip_with_simpler_logic() {
        // §5.1: "In the on-chip domain the balance is very different, and
        // the simpler logic of the RTZ code dominates the decision".
        // On-chip: short wires, negligible skew; the RTZ completion logic
        // is far simpler than NRZ phase conversion, so its per-phase logic
        // delay is much shorter.
        use crate::nrz::{NrzConfig, NrzLink, RxStyle};
        use crate::rtz::{RtzConfig, RtzLink};
        let n = 100;
        let rtz_cfg = RtzConfig {
            wire_delay_ps: 60,
            wire_skew_ps: 5,
            tx_cycle_ps: 40,
            rx_latch_ps: 40,
        };
        let nrz_cfg = NrzConfig {
            wire_delay_ps: 60,
            wire_skew_ps: 5,
            tx_cycle_ps: 180, // NRZ phase-conversion logic is heavier
            rx_latch_ps: 180,
            style: RxStyle::TransitionSensing,
            ..Default::default()
        };
        let mut rtz = RtzLink::engine(rtz_cfg, stream(n));
        rtz.run_to_completion(Some(10_000_000));
        let rtz_t = rtz.model().stats().finish_time_ps.unwrap();
        let mut nrz = NrzLink::engine(nrz_cfg, stream(n), 1);
        nrz.run_to_completion(Some(10_000_000));
        let nrz_t = nrz.model().stats().finish_time_ps.unwrap();
        assert!(
            rtz_t < nrz_t,
            "on-chip RTZ ({rtz_t} ps) should beat heavier-logic NRZ ({nrz_t} ps)"
        );
    }

    #[test]
    fn throughput_monotone_in_wire_delay() {
        let fast = measure_nrz(500, 100);
        let slow = measure_nrz(8_000, 100);
        assert!(fast.msymbols_per_s > slow.msymbols_per_s);
    }

    #[test]
    fn measurement_fields_consistent() {
        let m = measure_nrz(1_000, 50);
        assert_eq!(m.symbols, 50);
        assert!((m.mbit_per_s - 4.0 * m.msymbols_per_s).abs() < 1e-9);
        assert!(m.duration_ps > 0);
        assert!(
            (m.pj_per_symbol - m.transitions_per_symbol * OFF_CHIP_PJ_PER_TRANSITION).abs() < 1e-9
        );
    }
}
