//! The inter-chip 2-of-7 NRZ self-timed link, modelled at the wire
//! transition level (1 tick = 1 ps).
//!
//! The link is a single-token handshake loop (§5.1): the transmitter
//! toggles two of seven data wires to send a 4-bit symbol, the receiver's
//! completion logic detects the two transitions, latches the symbol and
//! toggles the acknowledge wire, which permits the transmitter to send the
//! next symbol. Because the wires are two-phase (NRZ), the receiver needs a
//! **phase converter** per wire to turn transitions into four-phase pulses
//! — and that converter is exactly where glitch-induced deadlock lives
//! (Fig. 6 of the paper):
//!
//! * [`RxStyle::Conventional`] — recovers data by XORing the wire *level*
//!   with a locally stored expected-phase flip-flop. A **runt pulse**
//!   (two edges closer together than the converter's latching window) can
//!   resolve metastably and flip the stored phase, permanently desyncing
//!   the converter: later symbols are seen as incomplete and the
//!   handshake deadlocks ("prone to lose state in the presence of
//!   faults").
//! * [`RxStyle::TransitionSensing`] — the paper's circuit: a true
//!   edge-sensing latch per wire that fires on a transition and **ignores
//!   further transitions until re-enabled by the acknowledge**, so a runt
//!   pulse can never corrupt stored phase state. Glitches can still
//!   corrupt data, but the link keeps passing data.
//!
//! Glitches are injected as pulses (two transitions a configurable width
//! apart) at Poisson times on uniformly chosen wires, including the
//! acknowledge wire. The converters cannot distinguish glitch edges from
//! real edges; the `glitch` flags on events exist purely for accounting.

use spinn_sim::{Context, Engine, Model, SimTime, Xoshiro256};

use crate::code::{nrz_decode, nrz_encode, Symbol, NRZ_DATA_WIRES};

/// Which phase-converter circuit the link's receivers use (Fig. 6).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum RxStyle {
    /// Level-XOR phase recovery: fast and simple, but loses state under
    /// glitches and deadlocks.
    Conventional,
    /// The paper's transition-sensing circuit: absorbs spurious
    /// transitions, keeps passing (possibly corrupt) data.
    TransitionSensing,
}

/// Timing and fault parameters of the NRZ link model. All times in ps.
#[derive(Copy, Clone, Debug)]
pub struct NrzConfig {
    /// Propagation delay of every wire, in either direction.
    pub wire_delay_ps: u64,
    /// Extra delay of the second data-wire edge of a codeword (skew).
    pub wire_skew_ps: u64,
    /// Transmitter logic delay from acknowledge to the next symbol launch.
    pub tx_cycle_ps: u64,
    /// Receiver latch delay from completion detection to the acknowledge
    /// edge (the receiver's inputs are disabled during this window).
    pub rx_latch_ps: u64,
    /// Width of injected glitch pulses (two edges this far apart).
    pub glitch_pulse_ps: u64,
    /// Poisson glitch rate over the whole link (all 8 wires), in Hz.
    pub glitch_rate_hz: f64,
    /// Latching window of the conventional phase converter: two edges on
    /// one wire closer than this form a runt pulse that may resolve
    /// metastably and corrupt the stored phase flip-flop.
    pub meta_window_ps: u64,
    /// Receiver/transmitter phase-converter style.
    pub style: RxStyle,
}

impl Default for NrzConfig {
    fn default() -> Self {
        NrzConfig {
            wire_delay_ps: 2_000,
            wire_skew_ps: 100,
            tx_cycle_ps: 150,
            rx_latch_ps: 100,
            glitch_pulse_ps: 120,
            glitch_rate_hz: 0.0,
            meta_window_ps: 150,
            style: RxStyle::TransitionSensing,
        }
    }
}

impl NrzConfig {
    /// Nominal glitch-free symbol cycle time: one full handshake loop.
    pub fn nominal_cycle_ps(&self) -> u64 {
        2 * self.wire_delay_ps + self.wire_skew_ps + self.tx_cycle_ps + self.rx_latch_ps
    }
}

/// Events inside the NRZ link simulation.
#[derive(Copy, Clone, Debug)]
pub enum NrzEvent {
    /// A transition arrives at the receiver on data wire `wire`.
    DataEdge {
        /// Data wire index, `0..7`.
        wire: u8,
        /// Injected glitch edge (accounting only; circuits never read it).
        glitch: bool,
    },
    /// A transition arrives at the transmitter on the acknowledge wire.
    AckEdge {
        /// Injected glitch edge (accounting only).
        glitch: bool,
    },
    /// Transmitter logic launches the next symbol.
    TxLaunch,
    /// Receiver latch delay elapsed: toggle acknowledge, re-enable inputs.
    RxAckDone,
    /// Self-rescheduling Poisson glitch injector.
    GlitchTick,
    /// Simultaneous reset of both ends (the deliberate 2-token situation).
    Reset,
}

/// Wire index used to denote the acknowledge wire in glitch injection.
const ACK_WIRE: usize = NRZ_DATA_WIRES;

#[derive(Debug, Default)]
struct TxState {
    cursor: usize,
    awaiting_ack: bool,
    /// Conventional style: wire level seen at the TX ack input.
    ack_level: bool,
    /// Conventional style: expected phase of the ack wire.
    ack_expected: bool,
    /// Conventional style: time of the previous ack-wire edge (runt
    /// detection).
    ack_last_edge_ps: u64,
    done: bool,
}

#[derive(Debug)]
struct RxState {
    /// Conventional: physical level of each data wire at the RX input.
    level: [bool; NRZ_DATA_WIRES],
    /// Conventional: expected phase of each data wire.
    expected: [bool; NRZ_DATA_WIRES],
    /// Transition-sensing: per-wire fired latch.
    fired: [bool; NRZ_DATA_WIRES],
    /// Transition-sensing: global input enable (false from capture until
    /// the acknowledge has been issued).
    enabled: bool,
    /// A capture -> ack sequence is in flight.
    busy: bool,
    /// Conventional: time of the previous edge per wire (runt detection).
    last_edge_ps: [u64; NRZ_DATA_WIRES],
}

impl Default for RxState {
    fn default() -> Self {
        RxState {
            level: [false; NRZ_DATA_WIRES],
            expected: [false; NRZ_DATA_WIRES],
            fired: [false; NRZ_DATA_WIRES],
            enabled: true,
            busy: false,
            last_edge_ps: [u64::MAX; NRZ_DATA_WIRES],
        }
    }
}

/// Counters published by a link run.
#[derive(Clone, Debug, Default)]
pub struct NrzStats {
    /// Symbols captured by the receiver (valid or not).
    pub captures: u64,
    /// Captures whose wire mask was not a valid 2-of-7 codeword.
    pub invalid_captures: u64,
    /// Edges absorbed/ignored by transition-sensing converters.
    pub absorbed_edges: u64,
    /// Metastable phase-state corruptions in conventional converters.
    pub metastable_flips: u64,
    /// Glitch pulses injected (each pulse is two edges).
    pub glitches_injected: u64,
    /// Real (non-glitch) data-wire transitions delivered.
    pub data_edges: u64,
    /// Real (non-glitch) acknowledge-wire transitions delivered.
    pub ack_edges: u64,
    /// Time the final symbol's acknowledge reached the transmitter.
    pub finish_time_ps: Option<u64>,
    /// Number of resets performed.
    pub resets: u64,
}

/// The complete NRZ link model: transmitter, 7 data wires + 1 ack wire,
/// receiver, glitch injector.
///
/// # Example
///
/// ```
/// use spinn_link::nrz::{NrzLink, NrzConfig, RxStyle};
/// use spinn_link::code::Symbol;
///
/// let symbols: Vec<Symbol> = (0..16).map(Symbol::Data).collect();
/// let cfg = NrzConfig { style: RxStyle::TransitionSensing, ..Default::default() };
/// let mut engine = NrzLink::engine(cfg, symbols.clone(), 1);
/// engine.run_to_completion(Some(1_000_000));
/// let link = engine.model();
/// assert!(link.is_done());
/// assert_eq!(link.delivered(), &symbols.iter().map(|&s| Some(s)).collect::<Vec<_>>()[..]);
/// ```
#[derive(Debug)]
pub struct NrzLink {
    cfg: NrzConfig,
    symbols: Vec<Symbol>,
    tx: TxState,
    rx: RxState,
    delivered: Vec<Option<Symbol>>,
    stats: NrzStats,
    /// Drives glitch injection times/wires only, so both converter styles
    /// see identical glitch streams for a given seed.
    glitch_rng: Xoshiro256,
    /// Resolves metastability outcomes (conventional style only).
    meta_rng: Xoshiro256,
}

impl NrzLink {
    /// Creates the link model around a symbol stream to transmit.
    pub fn new(cfg: NrzConfig, symbols: Vec<Symbol>, glitch_seed: u64) -> Self {
        let mut glitch_rng = Xoshiro256::seed_from_u64(glitch_seed);
        let meta_rng = glitch_rng.fork();
        let tx = TxState {
            ack_last_edge_ps: u64::MAX,
            ..TxState::default()
        };
        NrzLink {
            cfg,
            symbols,
            tx,
            rx: RxState::default(),
            delivered: Vec::new(),
            stats: NrzStats::default(),
            glitch_rng,
            meta_rng,
        }
    }

    /// Convenience: builds an [`Engine`] with the first launch (and glitch
    /// injector, if the rate is non-zero) already scheduled.
    pub fn engine(cfg: NrzConfig, symbols: Vec<Symbol>, glitch_seed: u64) -> Engine<NrzLink> {
        let rate = cfg.glitch_rate_hz;
        let link = NrzLink::new(cfg, symbols, glitch_seed);
        let mut engine = Engine::new(link);
        engine.schedule_at(SimTime::ZERO, NrzEvent::TxLaunch);
        if rate > 0.0 {
            let first = engine.model_mut().next_glitch_interval();
            engine.schedule_at(SimTime::new(first), NrzEvent::GlitchTick);
        }
        engine
    }

    /// The symbols captured by the receiver, in order (`None` = the
    /// captured wire mask was not a valid codeword).
    pub fn delivered(&self) -> &[Option<Symbol>] {
        &self.delivered
    }

    /// Run statistics.
    pub fn stats(&self) -> &NrzStats {
        &self.stats
    }

    /// True once every symbol has been sent and acknowledged.
    pub fn is_done(&self) -> bool {
        self.tx.done
    }

    fn next_glitch_interval(&mut self) -> u64 {
        // rate in Hz, time base ps.
        let mean_ps = 1e12 / self.cfg.glitch_rate_hz;
        (self.glitch_rng.exp(1.0 / mean_ps)).max(1.0) as u64
    }

    /// Resolves a runt pulse in a conventional converter: with probability
    /// 1/2 the phase flip-flop latches the runt and its stored state flips.
    fn metastable_flip(&mut self) -> bool {
        let flipped = self.meta_rng.gen_bool(0.5);
        if flipped {
            self.stats.metastable_flips += 1;
        }
        flipped
    }

    fn conventional_pending_mask(&self) -> u8 {
        let mut mask = 0u8;
        for w in 0..NRZ_DATA_WIRES {
            if self.rx.level[w] != self.rx.expected[w] {
                mask |= 1 << w;
            }
        }
        mask
    }

    fn ts_fired_mask(&self) -> u8 {
        let mut mask = 0u8;
        for w in 0..NRZ_DATA_WIRES {
            if self.rx.fired[w] {
                mask |= 1 << w;
            }
        }
        mask
    }

    /// Receiver captures `mask`, records the symbol and starts the
    /// latch->ack sequence.
    fn capture(&mut self, ctx: &mut Context<NrzEvent>, mask: u8) {
        self.stats.captures += 1;
        let sym = nrz_decode(mask);
        if sym.is_none() {
            self.stats.invalid_captures += 1;
        }
        self.delivered.push(sym);
        self.rx.busy = true;
        match self.cfg.style {
            RxStyle::Conventional => {
                // Consume exactly the captured wires: re-latch expected
                // phase to the current level.
                for w in 0..NRZ_DATA_WIRES {
                    if mask & (1 << w) != 0 {
                        self.rx.expected[w] = self.rx.level[w];
                    }
                }
            }
            RxStyle::TransitionSensing => {
                // Inputs disabled until the acknowledge re-enables them.
                self.rx.enabled = false;
            }
        }
        ctx.schedule_in(self.cfg.rx_latch_ps, NrzEvent::RxAckDone);
    }

    fn on_data_edge(&mut self, ctx: &mut Context<NrzEvent>, wire: usize, glitch: bool) {
        if !glitch {
            self.stats.data_edges += 1;
        }
        match self.cfg.style {
            RxStyle::Conventional => {
                // The wire level is physical: it always toggles.
                let was_pending = self.rx.level[wire] != self.rx.expected[wire];
                self.rx.level[wire] ^= true;
                // Runt pulse: this edge cancels a still-unlatched previous
                // edge within the converter's latching window. The phase
                // flip-flop may resolve metastably and corrupt its state.
                let now = ctx.now().ticks();
                let last = self.rx.last_edge_ps[wire];
                if was_pending
                    && last != u64::MAX
                    && now.saturating_sub(last) < self.cfg.meta_window_ps
                    && self.metastable_flip()
                {
                    self.rx.expected[wire] ^= true;
                }
                self.rx.last_edge_ps[wire] = now;
                if !self.rx.busy {
                    let pending = self.conventional_pending_mask();
                    if pending.count_ones() >= 2 {
                        self.capture(ctx, pending);
                    }
                }
            }
            RxStyle::TransitionSensing => {
                if !self.rx.enabled || self.rx.fired[wire] {
                    // Fig. 6: ignored until re-enabled by the acknowledge.
                    self.stats.absorbed_edges += 1;
                    return;
                }
                self.rx.fired[wire] = true;
                let fired = self.ts_fired_mask();
                if fired.count_ones() >= 2 {
                    self.capture(ctx, fired);
                }
            }
        }
    }

    fn on_ack_edge(&mut self, ctx: &mut Context<NrzEvent>, glitch: bool) {
        if !glitch {
            self.stats.ack_edges += 1;
        }
        match self.cfg.style {
            RxStyle::Conventional => {
                let was_pending = self.tx.ack_level != self.tx.ack_expected;
                self.tx.ack_level ^= true;
                let now = ctx.now().ticks();
                let last = self.tx.ack_last_edge_ps;
                if was_pending
                    && last != u64::MAX
                    && now.saturating_sub(last) < self.cfg.meta_window_ps
                    && self.metastable_flip()
                {
                    self.tx.ack_expected ^= true;
                }
                self.tx.ack_last_edge_ps = now;
                if self.tx.awaiting_ack && self.tx.ack_level != self.tx.ack_expected {
                    self.tx.ack_expected = self.tx.ack_level;
                    self.tx.awaiting_ack = false;
                    self.finish_or_continue(ctx);
                }
                // Otherwise the level/phase mismatch persists: a sticky
                // "ack credit" consumed at the next launch (the failure
                // mode the paper describes).
            }
            RxStyle::TransitionSensing => {
                if self.tx.awaiting_ack {
                    self.tx.awaiting_ack = false;
                    self.finish_or_continue(ctx);
                } else {
                    // Second token absorbed (Fig. 6 / §5.1 reset scheme).
                    self.stats.absorbed_edges += 1;
                }
            }
        }
    }

    fn finish_or_continue(&mut self, ctx: &mut Context<NrzEvent>) {
        if self.tx.cursor >= self.symbols.len() {
            if !self.tx.done {
                self.tx.done = true;
                self.stats.finish_time_ps = Some(ctx.now().ticks());
                ctx.stop();
            }
        } else {
            ctx.schedule_in(self.cfg.tx_cycle_ps, NrzEvent::TxLaunch);
        }
    }

    fn on_tx_launch(&mut self, ctx: &mut Context<NrzEvent>) {
        if self.tx.cursor >= self.symbols.len() {
            // Nothing left (can happen after a reset raced completion).
            self.finish_or_continue(ctx);
            return;
        }
        let sym = self.symbols[self.tx.cursor];
        self.tx.cursor += 1;
        let mask = nrz_encode(sym);
        let mut first = true;
        for w in 0..NRZ_DATA_WIRES {
            if mask & (1 << w) != 0 {
                let delay = if first {
                    self.cfg.wire_delay_ps
                } else {
                    self.cfg.wire_delay_ps + self.cfg.wire_skew_ps
                };
                first = false;
                ctx.schedule_in(
                    delay,
                    NrzEvent::DataEdge {
                        wire: w as u8,
                        glitch: false,
                    },
                );
            }
        }
        // Conventional converters may already hold a sticky ack credit
        // (phase mismatch left by a glitch): it is consumed here, letting
        // the transmitter run ahead — part of the failure mode.
        if self.cfg.style == RxStyle::Conventional && self.tx.ack_level != self.tx.ack_expected {
            self.tx.ack_expected = self.tx.ack_level;
            self.tx.awaiting_ack = false;
            ctx.schedule_in(self.cfg.tx_cycle_ps, NrzEvent::TxLaunch);
        } else {
            self.tx.awaiting_ack = true;
        }
    }

    fn on_rx_ack_done(&mut self, ctx: &mut Context<NrzEvent>) {
        self.rx.busy = false;
        // Acknowledge edge departs towards the transmitter.
        ctx.schedule_in(self.cfg.wire_delay_ps, NrzEvent::AckEdge { glitch: false });
        match self.cfg.style {
            RxStyle::TransitionSensing => {
                self.rx.fired = [false; NRZ_DATA_WIRES];
                self.rx.enabled = true;
            }
            RxStyle::Conventional => {
                // Edges that arrived during the latch window may already
                // complete the next codeword.
                let pending = self.conventional_pending_mask();
                if pending.count_ones() >= 2 {
                    self.capture(ctx, pending);
                }
            }
        }
    }

    fn on_glitch_tick(&mut self, ctx: &mut Context<NrzEvent>) {
        if self.tx.done {
            return; // stop injecting once transfer completed
        }
        self.stats.glitches_injected += 1;
        let wire = self.glitch_rng.gen_range_usize(NRZ_DATA_WIRES + 1);
        let pulse = self.cfg.glitch_pulse_ps;
        if wire == ACK_WIRE {
            ctx.schedule_in(0, NrzEvent::AckEdge { glitch: true });
            ctx.schedule_in(pulse, NrzEvent::AckEdge { glitch: true });
        } else {
            let wire = wire as u8;
            ctx.schedule_in(0, NrzEvent::DataEdge { wire, glitch: true });
            ctx.schedule_in(pulse, NrzEvent::DataEdge { wire, glitch: true });
        }
        let next = self.next_glitch_interval();
        ctx.schedule_in(next, NrzEvent::GlitchTick);
    }

    /// Simultaneous reset of both ends (§5.1): every converter is cleared
    /// and **both** transmitter and receiver inject a token — the
    /// deliberate 2-token situation that the transition-sensing circuit
    /// resolves by absorbing the surplus token.
    fn on_reset(&mut self, ctx: &mut Context<NrzEvent>) {
        self.stats.resets += 1;
        // Receiver side: clear converter state.
        self.rx.busy = false;
        self.rx.enabled = true;
        self.rx.fired = [false; NRZ_DATA_WIRES];
        self.rx.expected = self.rx.level;
        // Transmitter side: roll back to the last unacknowledged symbol.
        if self.tx.awaiting_ack && self.tx.cursor > 0 {
            self.tx.cursor -= 1;
        }
        self.tx.awaiting_ack = false;
        self.tx.ack_expected = self.tx.ack_level;
        // TX token: relaunch. RX token: a spurious acknowledge.
        ctx.schedule_in(self.cfg.tx_cycle_ps, NrzEvent::TxLaunch);
        ctx.schedule_in(self.cfg.wire_delay_ps, NrzEvent::AckEdge { glitch: false });
    }
}

impl Model for NrzLink {
    type Event = NrzEvent;

    fn handle(&mut self, ctx: &mut Context<NrzEvent>, event: NrzEvent) {
        match event {
            NrzEvent::DataEdge { wire, glitch } => self.on_data_edge(ctx, wire as usize, glitch),
            NrzEvent::AckEdge { glitch } => self.on_ack_edge(ctx, glitch),
            NrzEvent::TxLaunch => self.on_tx_launch(ctx),
            NrzEvent::RxAckDone => self.on_rx_ack_done(ctx),
            NrzEvent::GlitchTick => self.on_glitch_tick(ctx),
            NrzEvent::Reset => self.on_reset(ctx),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn symbols(n: usize) -> Vec<Symbol> {
        (0..n).map(|i| Symbol::Data((i % 16) as u8)).collect()
    }

    fn run(style: RxStyle, n: usize) -> NrzLink {
        let cfg = NrzConfig {
            style,
            ..Default::default()
        };
        let mut engine = NrzLink::engine(cfg, symbols(n), 7);
        let outcome = engine.run_to_completion(Some(10_000_000));
        assert_eq!(outcome, spinn_sim::RunOutcome::Stopped);
        engine.into_model()
    }

    #[test]
    fn fault_free_delivery_transition_sensing() {
        let link = run(RxStyle::TransitionSensing, 100);
        assert!(link.is_done());
        assert_eq!(link.delivered().len(), 100);
        for (i, d) in link.delivered().iter().enumerate() {
            assert_eq!(*d, Some(Symbol::Data((i % 16) as u8)));
        }
        assert_eq!(link.stats().invalid_captures, 0);
    }

    #[test]
    fn fault_free_delivery_conventional() {
        let link = run(RxStyle::Conventional, 100);
        assert!(link.is_done());
        assert_eq!(link.delivered().len(), 100);
        assert_eq!(link.stats().invalid_captures, 0);
    }

    #[test]
    fn transition_counts_match_paper() {
        // 2 data edges + 1 ack edge per symbol (paper §5.1: 3 transitions
        // per 4-bit symbol).
        let n = 64;
        let link = run(RxStyle::TransitionSensing, n);
        assert_eq!(link.stats().data_edges, 2 * n as u64);
        assert_eq!(link.stats().ack_edges, n as u64);
    }

    #[test]
    fn cycle_time_matches_nominal() {
        let cfg = NrzConfig::default();
        let n = 50;
        let link = run(RxStyle::TransitionSensing, n);
        let finish = link.stats().finish_time_ps.unwrap();
        let nominal = cfg.nominal_cycle_ps() * n as u64;
        // First symbol starts at t=0 (no preceding tx_cycle), so the run
        // is slightly shorter than n full cycles.
        assert!(finish <= nominal, "finish {finish} > nominal {nominal}");
        assert!(finish >= nominal - cfg.nominal_cycle_ps());
    }

    #[test]
    fn determinism_same_seed_same_outcome() {
        let cfg = NrzConfig {
            glitch_rate_hz: 5e7,
            style: RxStyle::Conventional,
            ..Default::default()
        };
        let run_once = || {
            let mut e = NrzLink::engine(cfg, symbols(200), 99);
            e.run_until(SimTime::new(100_000_000));
            let m = e.into_model();
            (
                m.delivered().to_vec(),
                m.stats().captures,
                m.stats().glitches_injected,
            )
        };
        assert_eq!(run_once(), run_once());
    }

    #[test]
    fn transition_sensing_survives_heavy_glitching() {
        // "the circuit will keep passing data (albeit with errors) in the
        // presence of quite high levels of interference"
        let cfg = NrzConfig {
            glitch_rate_hz: 1e8, // one glitch every 10 ns: heavy
            style: RxStyle::TransitionSensing,
            ..Default::default()
        };
        let n = 500;
        let mut engine = NrzLink::engine(cfg, symbols(n), 3);
        engine.run_until(SimTime::new(1_000_000_000));
        let link = engine.model();
        // It may deadlock occasionally, but with this seed it should chew
        // through a large portion of the stream.
        assert!(
            link.stats().captures > (n / 2) as u64,
            "captures = {}",
            link.stats().captures
        );
        assert!(link.stats().absorbed_edges > 0);
    }

    #[test]
    fn reset_recovers_transition_sensing_link() {
        // Deadlock-free reset midway: the 2-token situation is absorbed
        // and the stream completes (with a retransmitted symbol allowed).
        let cfg = NrzConfig {
            style: RxStyle::TransitionSensing,
            ..Default::default()
        };
        let n = 40;
        let mut engine = NrzLink::engine(cfg, symbols(n), 1);
        engine.run_until(SimTime::new(20 * cfg.nominal_cycle_ps()));
        assert!(!engine.model().is_done());
        let now = engine.now();
        engine.schedule_at(now + 10, NrzEvent::Reset);
        engine.run_to_completion(Some(10_000_000));
        let link = engine.model();
        assert!(link.is_done(), "link did not recover after reset");
        assert_eq!(link.stats().resets, 1);
        // All n symbols must appear in order within the delivered stream
        // (duplicates from retransmission are permitted).
        let want: Vec<Symbol> = symbols(n);
        let mut it = link.delivered().iter().flatten().copied();
        for w in want {
            assert!(
                it.by_ref().any(|d| d == w),
                "symbol {w:?} missing after reset recovery"
            );
        }
    }

    #[test]
    fn empty_stream_completes_immediately() {
        let mut engine = NrzLink::engine(NrzConfig::default(), vec![], 1);
        engine.run_to_completion(Some(100));
        assert!(engine.model().is_done());
        assert_eq!(engine.model().stats().captures, 0);
    }

    #[test]
    fn eop_symbols_roundtrip_through_link() {
        let stream = vec![Symbol::Data(3), Symbol::Eop, Symbol::Data(9), Symbol::Eop];
        let mut engine = NrzLink::engine(NrzConfig::default(), stream.clone(), 1);
        engine.run_to_completion(Some(10_000));
        let link = engine.model();
        assert!(link.is_done());
        let got: Vec<Symbol> = link.delivered().iter().flatten().copied().collect();
        assert_eq!(got, stream);
    }
}
