//! Delay-insensitive codeword tables: 2-of-7 NRZ and 3-of-6 RTZ.
//!
//! Both codes carry one 4-bit symbol per codeword plus one end-of-packet
//! (EOP) marker, exactly as on the SpiNNaker chip. The wire-transition
//! costs quoted in §5.1 of the paper fall straight out of the tables:
//!
//! * 2-of-7 NRZ: 2 data-wire transitions + 1 ack transition = **3
//!   transitions per 4-bit symbol**;
//! * 3-of-6 RTZ: 3 up + 3 down on data wires + ack up + ack down = **8
//!   transitions per 4-bit symbol**.

/// One symbol on a self-timed link: a 4-bit data nibble or an end-of-packet
/// marker.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Symbol {
    /// A data nibble; only the low 4 bits are meaningful.
    Data(u8),
    /// End-of-packet.
    Eop,
}

impl Symbol {
    /// The table index used for this symbol (data value, or 16 for EOP).
    #[inline]
    pub fn index(self) -> usize {
        match self {
            Symbol::Data(v) => (v & 0xF) as usize,
            Symbol::Eop => 16,
        }
    }

    /// Reconstructs a symbol from a table index.
    ///
    /// # Panics
    ///
    /// Panics if `idx > 16`.
    #[inline]
    pub fn from_index(idx: usize) -> Symbol {
        match idx {
            0..=15 => Symbol::Data(idx as u8),
            16 => Symbol::Eop,
            _ => panic!("symbol index out of range: {idx}"),
        }
    }
}

/// Generates the first 17 k-of-n wire masks in lexicographic order.
const fn gen_table<const K: u32>(n: u32) -> [u8; 17] {
    let mut table = [0u8; 17];
    let mut found = 0usize;
    let mut mask: u32 = 0;
    while found < 17 {
        mask += 1;
        if mask >= (1 << n) {
            panic!("not enough codewords");
        }
        if mask.count_ones() == K {
            table[found] = mask as u8;
            found += 1;
        }
    }
    table
}

/// The 17 2-of-7 NRZ codewords (bit i set = wire i toggles), indexed by
/// [`Symbol::index`].
pub const NRZ_2OF7: [u8; 17] = gen_table::<2>(7);

/// The 17 3-of-6 RTZ codewords (bit i set = wire i raised), indexed by
/// [`Symbol::index`].
pub const RTZ_3OF6: [u8; 17] = gen_table::<3>(6);

/// Encodes a symbol as the set of NRZ data wires that must toggle.
///
/// # Example
///
/// ```
/// use spinn_link::code::{nrz_encode, Symbol};
/// assert_eq!(nrz_encode(Symbol::Data(0)).count_ones(), 2);
/// ```
#[inline]
pub fn nrz_encode(symbol: Symbol) -> u8 {
    NRZ_2OF7[symbol.index()]
}

/// Decodes a set of toggled NRZ wires back to a symbol; `None` if the mask
/// is not a valid 2-of-7 codeword (i.e. the symbol was corrupted).
pub fn nrz_decode(mask: u8) -> Option<Symbol> {
    NRZ_2OF7
        .iter()
        .position(|&cw| cw == mask)
        .map(Symbol::from_index)
}

/// Encodes a symbol as the set of RTZ data wires that must be raised.
#[inline]
pub fn rtz_encode(symbol: Symbol) -> u8 {
    RTZ_3OF6[symbol.index()]
}

/// Decodes a set of raised RTZ wires back to a symbol; `None` if the mask
/// is not a valid 3-of-6 codeword.
pub fn rtz_decode(mask: u8) -> Option<Symbol> {
    RTZ_3OF6
        .iter()
        .position(|&cw| cw == mask)
        .map(Symbol::from_index)
}

/// Wire transitions needed to transfer one 4-bit symbol over the NRZ link,
/// including the acknowledge wire (2 data + 1 ack).
pub const NRZ_TRANSITIONS_PER_SYMBOL: u32 = 3;

/// Wire transitions needed to transfer one 4-bit symbol over the RTZ link,
/// including the acknowledge wire (3 up + 3 down + ack up + ack down).
pub const RTZ_TRANSITIONS_PER_SYMBOL: u32 = 8;

/// Number of data wires in the NRZ link (the 2-of-7 code).
pub const NRZ_DATA_WIRES: usize = 7;

/// Number of data wires in the RTZ link (the 3-of-6 code).
pub const RTZ_DATA_WIRES: usize = 6;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_have_correct_weights() {
        for &cw in &NRZ_2OF7 {
            assert_eq!(cw.count_ones(), 2, "codeword {cw:#09b}");
            assert_eq!(cw & !0x7F, 0, "codeword uses wire >= 7");
        }
        for &cw in &RTZ_3OF6 {
            assert_eq!(cw.count_ones(), 3, "codeword {cw:#08b}");
            assert_eq!(cw & !0x3F, 0, "codeword uses wire >= 6");
        }
    }

    #[test]
    fn tables_have_distinct_codewords() {
        for i in 0..17 {
            for j in (i + 1)..17 {
                assert_ne!(NRZ_2OF7[i], NRZ_2OF7[j]);
                assert_ne!(RTZ_3OF6[i], RTZ_3OF6[j]);
            }
        }
    }

    #[test]
    fn roundtrip_all_symbols() {
        for idx in 0..=16 {
            let s = Symbol::from_index(idx);
            assert_eq!(nrz_decode(nrz_encode(s)), Some(s));
            assert_eq!(rtz_decode(rtz_encode(s)), Some(s));
        }
    }

    #[test]
    fn invalid_masks_decode_to_none() {
        assert_eq!(nrz_decode(0), None);
        assert_eq!(nrz_decode(0b111), None); // 3 wires: not 2-of-7
        assert_eq!(nrz_decode(0b1), None);
        assert_eq!(rtz_decode(0b11), None); // 2 wires: not 3-of-6
        assert_eq!(rtz_decode(0b1111), None);
    }

    #[test]
    fn unused_codewords_decode_to_none() {
        // There are 21 2-of-7 masks; only 17 are used.
        let mut unused = 0;
        for mask in 0u8..=0x7F {
            if mask.count_ones() == 2 && nrz_decode(mask).is_none() {
                unused += 1;
            }
        }
        assert_eq!(unused, 21 - 17);
        // And 20 3-of-6 masks, 17 used.
        let mut unused = 0;
        for mask in 0u8..=0x3F {
            if mask.count_ones() == 3 && rtz_decode(mask).is_none() {
                unused += 1;
            }
        }
        assert_eq!(unused, 20 - 17);
    }

    #[test]
    fn symbol_index_roundtrip() {
        assert_eq!(Symbol::Data(5).index(), 5);
        assert_eq!(Symbol::Eop.index(), 16);
        assert_eq!(Symbol::from_index(16), Symbol::Eop);
        // Data values are masked to 4 bits.
        assert_eq!(Symbol::Data(0x1F).index(), 0xF);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_index_rejects_large() {
        let _ = Symbol::from_index(17);
    }

    #[test]
    #[allow(clippy::assertions_on_constants)] // documents the paper's 2x claim
    fn paper_transition_counts() {
        // §5.1: "a 2-of-7 NRZ code uses 3 off-chip wire transitions to send
        // 4 bits of data; a 3-of-6 RTZ code uses 8 wire transitions to send
        // the same 4 bits."
        assert_eq!(NRZ_TRANSITIONS_PER_SYMBOL, 3);
        assert_eq!(RTZ_TRANSITIONS_PER_SYMBOL, 8);
        assert!(RTZ_TRANSITIONS_PER_SYMBOL > 2 * NRZ_TRANSITIONS_PER_SYMBOL);
    }
}
