//! Monte-Carlo glitch-injection study (experiment E1, Fig. 6 / §5.1).
//!
//! The paper reports that the transition-sensing phase converter "together
//! with a number of other circuit enhancements, has reduced the occurrence
//! of deadlocks in our glitch simulations by a factor 1,000". This module
//! reproduces that study: many independent trials of an NRZ link pushing a
//! symbol stream while glitch pulses land on its wires at Poisson times,
//! for each converter style, counting how many trials deadlock.
//!
//! Both styles see the *same* glitch streams (same per-trial seeds), so
//! the comparison is paired.

use spinn_sim::{RunOutcome, Xoshiro256};

use crate::code::Symbol;
use crate::nrz::{NrzConfig, NrzLink, RxStyle};

/// Configuration of one glitch trial.
#[derive(Copy, Clone, Debug)]
pub struct GlitchTrialConfig {
    /// Link timing parameters (the style field is overridden per run).
    pub link: NrzConfig,
    /// Number of symbols the transmitter tries to push.
    pub symbols: usize,
    /// Stall detector: a trial in which the receiver makes no progress
    /// for this many nominal symbol cycles is declared deadlocked. (A
    /// later glitch might coincidentally unstick the handshake, but the
    /// deadlock *occurred* — this matches the paper's counting of
    /// "occurrence of deadlocks in our glitch simulations".)
    pub stall_cycles: u64,
    /// Hard deadline multiplier over the nominal transfer time.
    pub deadline_multiplier: u64,
}

impl Default for GlitchTrialConfig {
    fn default() -> Self {
        GlitchTrialConfig {
            link: NrzConfig::default(),
            symbols: 200,
            stall_cycles: 25,
            deadline_multiplier: 10,
        }
    }
}

/// Outcome of one glitch trial.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct GlitchOutcome {
    /// The link failed to complete the stream before the deadline.
    pub deadlocked: bool,
    /// Symbols captured by the receiver (valid or corrupt).
    pub captures: u64,
    /// Captures that were corrupt (invalid codeword or wrong value).
    pub corrupted: u64,
    /// Glitch pulses injected.
    pub glitches: u64,
}

/// Runs one trial: a fresh link, a fixed symbol stream, Poisson glitches.
pub fn run_trial(cfg: &GlitchTrialConfig, style: RxStyle, seed: u64) -> GlitchOutcome {
    let mut link_cfg = cfg.link;
    link_cfg.style = style;
    // Random nibble stream: realistic traffic (a cyclic stream would,
    // with the lexicographic code tables, never reuse a wire between
    // consecutive codewords and so mask the deadlock mechanism).
    let mut stream_rng = Xoshiro256::seed_from_u64(seed ^ 0xA5A5_5A5A_DEAD_BEEF);
    let stream: Vec<Symbol> = (0..cfg.symbols)
        .map(|_| Symbol::Data(stream_rng.gen_range_usize(16) as u8))
        .collect();
    let mut engine = NrzLink::engine(link_cfg, stream.clone(), seed);
    let cycle = link_cfg.nominal_cycle_ps();
    let deadline = cycle * cfg.symbols as u64 * cfg.deadline_multiplier;
    let stall_window = cycle * cfg.stall_cycles;
    let mut deadlocked = false;
    loop {
        let captures_before = engine.model().stats().captures;
        let slice_end = engine.now().saturating_add(stall_window);
        match engine.run_until(slice_end) {
            RunOutcome::Stopped | RunOutcome::Exhausted => break,
            RunOutcome::DeadlineReached | RunOutcome::BudgetExceeded => {
                let m = engine.model();
                if m.is_done() {
                    break;
                }
                if m.stats().captures == captures_before {
                    deadlocked = true;
                    break;
                }
                if engine.now().ticks() >= deadline {
                    deadlocked = true;
                    break;
                }
            }
        }
    }
    let link = engine.model();
    let deadlocked = deadlocked || !link.is_done();
    // Corruption: positional mismatch against the expected stream.
    let mut corrupted = 0u64;
    for (i, d) in link.delivered().iter().enumerate() {
        let expect = stream.get(i).copied();
        if *d != expect {
            corrupted += 1;
        }
    }
    GlitchOutcome {
        deadlocked,
        captures: link.stats().captures,
        corrupted,
        glitches: link.stats().glitches_injected,
    }
}

/// Aggregated results of a deadlock study at one glitch rate.
#[derive(Clone, Debug)]
pub struct DeadlockStudy {
    /// Glitch rate used, in Hz over the whole link.
    pub glitch_rate_hz: f64,
    /// Trials run per style.
    pub trials: u64,
    /// Deadlocks observed with the conventional converter.
    pub conventional_deadlocks: u64,
    /// Deadlocks observed with the transition-sensing converter.
    pub transition_sensing_deadlocks: u64,
    /// Mean corrupt captures per trial (conventional).
    pub conventional_corruption: f64,
    /// Mean corrupt captures per trial (transition-sensing).
    pub transition_sensing_corruption: f64,
}

impl DeadlockStudy {
    /// Deadlock-probability improvement factor of the transition-sensing
    /// circuit: conventional rate / transition-sensing rate.
    ///
    /// When the transition-sensing circuit produced **zero** deadlocks the
    /// factor is a lower bound computed against a rate of half a deadlock
    /// over the whole study (the standard "rule of three"-style bound).
    pub fn improvement_factor(&self) -> f64 {
        let conv = self.conventional_deadlocks as f64;
        let ts = self.transition_sensing_deadlocks as f64;
        if conv == 0.0 {
            return 1.0;
        }
        conv / ts.max(0.5)
    }
}

/// Runs `trials` paired trials at the given glitch rate for both styles.
pub fn deadlock_study(
    base: &GlitchTrialConfig,
    glitch_rate_hz: f64,
    trials: u64,
    seed: u64,
) -> DeadlockStudy {
    let mut cfg = *base;
    cfg.link.glitch_rate_hz = glitch_rate_hz;
    let mut conv_dead = 0u64;
    let mut ts_dead = 0u64;
    let mut conv_corr = 0u64;
    let mut ts_corr = 0u64;
    for t in 0..trials {
        let trial_seed = seed ^ (t.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let c = run_trial(&cfg, RxStyle::Conventional, trial_seed);
        let s = run_trial(&cfg, RxStyle::TransitionSensing, trial_seed);
        conv_dead += c.deadlocked as u64;
        ts_dead += s.deadlocked as u64;
        conv_corr += c.corrupted;
        ts_corr += s.corrupted;
    }
    DeadlockStudy {
        glitch_rate_hz,
        trials,
        conventional_deadlocks: conv_dead,
        transition_sensing_deadlocks: ts_dead,
        conventional_corruption: conv_corr as f64 / trials as f64,
        transition_sensing_corruption: ts_corr as f64 / trials as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_glitches_no_deadlocks() {
        let cfg = GlitchTrialConfig {
            symbols: 50,
            ..Default::default()
        };
        for style in [RxStyle::Conventional, RxStyle::TransitionSensing] {
            let out = run_trial(&cfg, style, 42);
            assert!(!out.deadlocked);
            assert_eq!(out.corrupted, 0);
            assert_eq!(out.captures, 50);
            assert_eq!(out.glitches, 0);
        }
    }

    #[test]
    fn trials_are_deterministic() {
        let mut cfg = GlitchTrialConfig::default();
        cfg.link.glitch_rate_hz = 5e7;
        cfg.symbols = 100;
        let a = run_trial(&cfg, RxStyle::Conventional, 7);
        let b = run_trial(&cfg, RxStyle::Conventional, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn conventional_deadlocks_more_than_transition_sensing() {
        // The core Fig.-6 claim, at reduced trial count for test speed.
        let cfg = GlitchTrialConfig {
            symbols: 100,
            ..Default::default()
        };
        let study = deadlock_study(&cfg, 2e7, 60, 12345);
        assert!(
            study.conventional_deadlocks > 3 * study.transition_sensing_deadlocks,
            "conventional {} vs transition-sensing {}",
            study.conventional_deadlocks,
            study.transition_sensing_deadlocks
        );
        assert!(study.improvement_factor() > 3.0);
    }

    #[test]
    fn deadlock_rate_increases_with_glitch_rate() {
        // Within the deadlock-dominated regime (below the rate where
        // glitch edges themselves unstick stalled handshakes) the
        // conventional deadlock count grows with glitch rate.
        let cfg = GlitchTrialConfig {
            symbols: 100,
            ..Default::default()
        };
        let lo = deadlock_study(&cfg, 3e5, 40, 9);
        let hi = deadlock_study(&cfg, 5e6, 40, 9);
        assert!(
            hi.conventional_deadlocks > lo.conventional_deadlocks,
            "hi {} <= lo {}",
            hi.conventional_deadlocks,
            lo.conventional_deadlocks
        );
    }

    #[test]
    fn improvement_factor_handles_zero_denominator() {
        let study = DeadlockStudy {
            glitch_rate_hz: 1e6,
            trials: 100,
            conventional_deadlocks: 50,
            transition_sensing_deadlocks: 0,
            conventional_corruption: 0.0,
            transition_sensing_corruption: 0.0,
        };
        assert_eq!(study.improvement_factor(), 100.0);
        let none = DeadlockStudy {
            conventional_deadlocks: 0,
            ..study
        };
        assert_eq!(none.improvement_factor(), 1.0);
    }
}
