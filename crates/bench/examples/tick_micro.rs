//! Microbench for the chunked neuron tick (dev aid).
//!
//! Times `NeuronPool::step_tick` on one core's worth of neurons and
//! prints ns/neuron for whichever path `SPINN_SCALAR_TICK` selects.
//!
//! Usage: `tick_micro [NEURONS] [TICKS]`

use spinn_neuron::izhikevich::{IzhikevichNeuron, IzhikevichParams};
use spinn_neuron::lif::{LifNeuron, LifParams};
use spinn_neuron::pool::NeuronPool;
use std::time::Instant;

fn bench(label: &str, mut pool: NeuronPool, ticks: usize) {
    let n = pool.len();
    let drives: Vec<f32> = (0..n).map(|i| [14.0, 6.5, 0.0, 9.0][i % 4]).collect();
    let mut spikes = 0u64;
    let t0 = Instant::now();
    for _ in 0..ticks {
        pool.step_tick(|i| drives[i], |_| spikes += 1);
    }
    let per = t0.elapsed().as_nanos() as f64 / (ticks * n) as f64;
    println!("{label}: {per:.2} ns/neuron ({spikes} spikes)");
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(256);
    let ticks: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(100_000);
    let presets = [
        IzhikevichParams::regular_spiking(),
        IzhikevichParams::fast_spiking(),
        IzhikevichParams::chattering(),
    ];
    bench(
        "izhikevich",
        NeuronPool::from_neurons(
            (0..n)
                .map(|i| IzhikevichNeuron::new(presets[i % 3]).into())
                .collect(),
        ),
        ticks,
    );
    bench(
        "lif",
        NeuronPool::from_neurons(
            (0..n)
                .map(|_| LifNeuron::new(LifParams::default()).into())
                .collect(),
        ),
        ticks,
    );
}
