//! Quick phase-breakdown probe for the E17/E18 workload (dev aid).
//!
//! Usage: `profile_phase [THREADS] [MS]`

use spinn_bench::experiments as e;
use spinnaker::prelude::*;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let threads: u32 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(1);
    let ms: u32 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(30);
    let net = e::e15_memory_model::prob_net(20, 5_000, 0.02);
    let cfg = SimConfig::new(8, 8)
        .with_neurons_per_core(256)
        .with_threads(threads)
        .with_observability(ObsMode::CountersAndTrace);
    let sim = Simulation::build(&net, cfg).expect("build");
    let t0 = Instant::now();
    let done = sim.run(ms);
    let wall = t0.elapsed().as_secs_f64() * 1e3;
    println!(
        "threads={threads} ms={ms} wall_ms={wall:.1} spikes={}",
        done.machine.spikes().len()
    );
    print!("{}", done.machine.telemetry().render_table());
    if let Some(s) = done.machine.par_stats() {
        println!(
            "par: windows={} events={} exchanged={}",
            s.windows, s.events, s.exchanged
        );
    }
    let mut chips: Vec<(usize, u64)> = done
        .machine
        .chip_event_counts()
        .iter()
        .copied()
        .enumerate()
        .filter(|&(_, n)| n > 0)
        .collect();
    chips.sort_by_key(|&(_, n)| std::cmp::Reverse(n));
    println!("hot chips (top 12 of {}):", chips.len());
    for (c, n) in chips.iter().take(12) {
        println!("  chip {c}: {n}");
    }
    for sh in done.machine.telemetry().shards() {
        println!(
            "shard {}: events={} queue_peak={}",
            sh.shard,
            sh.counters[spinn_obs::Counter::Events as usize],
            sh.counters[spinn_obs::Counter::QueuePeak as usize],
        );
    }
}
