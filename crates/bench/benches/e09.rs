//! E9 table + kernel timing.
use criterion::Criterion;

fn main() {
    println!(
        "{}",
        spinn_bench::experiments::e09_scaling::run(!spinn_bench::full_mode())
    );
    let mut c = Criterion::default().sample_size(10).configure_from_args();
    c.bench_function("e09_weak_scaled_2x2_30ms", |b| {
        b.iter(|| spinn_bench::experiments::e09_scaling::sweep(&[2], 30))
    });
    c.final_summary();
}
