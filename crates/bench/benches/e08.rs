//! E8 table + kernel timing.
use criterion::Criterion;

fn main() {
    println!(
        "{}",
        spinn_bench::experiments::e08_multicast_vs_broadcast::run(!spinn_bench::full_mode())
    );
    let mut c = Criterion::default().sample_size(10).configure_from_args();
    c.bench_function("e08_tree_cost_32_dests", |b| {
        b.iter(|| {
            let torus = spinn_noc::mesh::Torus::new(16, 16);
            let dests: Vec<_> = (1..33u32)
                .map(|i| spinn_noc::mesh::NodeCoord::new(i % 16, (i * 7) % 16))
                .collect();
            spinn_map::route::tree_cost(&torus, spinn_noc::mesh::NodeCoord::new(0, 0), dests)
        })
    });
    c.final_summary();
}
