//! E5 table + kernel timing.
use criterion::Criterion;

fn main() {
    println!(
        "{}",
        spinn_bench::experiments::e05_flood_fill::run(!spinn_bench::full_mode())
    );
    let mut c = Criterion::default().sample_size(10).configure_from_args();
    c.bench_function("e05_flood_8x8", |b| {
        b.iter(|| spinn_machine::flood::FloodSim::run(spinn_machine::flood::FloodConfig::new(8, 8)))
    });
    c.final_summary();
}
