//! E7 table + kernel timing.
use criterion::Criterion;
use spinnaker::prelude::*;

fn machine_run() -> usize {
    let mut net = NetworkGraph::new();
    let a = net.population(
        "a",
        256,
        NeuronKind::Izhikevich(IzhikevichParams::regular_spiking()),
        9.0,
    );
    let b = net.population(
        "b",
        256,
        NeuronKind::Izhikevich(IzhikevichParams::regular_spiking()),
        0.0,
    );
    net.project(
        a,
        b,
        Connector::FixedFanOut(20),
        Synapses::constant(300, 2),
        7,
    );
    Simulation::build(&net, SimConfig::new(2, 2))
        .unwrap()
        .run(50)
        .machine
        .spikes()
        .len()
}

fn main() {
    println!(
        "{}",
        spinn_bench::experiments::e07_cost_energy::run(!spinn_bench::full_mode())
    );
    let mut c = Criterion::default().sample_size(10).configure_from_args();
    c.bench_function("e07_2x2_machine_50ms", |b| b.iter(machine_run));
    c.final_summary();
}
