//! E13 table + table-lookup kernel timing: linear CAM scan vs the
//! mask-bucketed compiled lookup, and the minimization pass itself.
use criterion::{black_box, Criterion};
use spinn_bench::experiments::e13_table_minimization as e13;
use spinn_map::place::{Placement, Placer};
use spinn_map::route::RoutingPlan;
use spinn_noc::compiled::CompiledTable;

fn main() {
    println!("{}", e13::run(!spinn_bench::full_mode()));
    let mut c = Criterion::default().sample_size(10).configure_from_args();

    for entries in [256usize, 1024] {
        let table = e13::synthetic_table(entries, 0xBE13);
        let compiled = CompiledTable::compile(&table);
        let keys: Vec<u32> = table.iter().map(|e| e.key | 3).collect();
        c.bench_function(&format!("e13_lookup_linear_{entries}"), |b| {
            let mut i = 0usize;
            b.iter(|| {
                i = (i + 7919) % keys.len();
                black_box(table.lookup(keys[i]))
            })
        });
        c.bench_function(&format!("e13_lookup_compiled_{entries}"), |b| {
            let mut i = 0usize;
            b.iter(|| {
                i = (i + 7919) % keys.len();
                black_box(compiled.lookup(keys[i]))
            })
        });
    }

    let net = e13::dense_random_net();
    let placement =
        Placement::compute(&net, 4, 4, 20, 128, Placer::Random { seed: 0xD15E }).unwrap();
    let plan = RoutingPlan::build(&net, &placement, 4, 4);
    c.bench_function("e13_minimize_dense_4x4", |b| {
        b.iter(|| plan.minimized().total_entries())
    });
    c.final_summary();
}
