//! E14 table + queue microbenchmark kernel timing.
use criterion::Criterion;
use spinn_bench::experiments::e14_event_core as e14;
use spinn_sim::{CalendarQueue, EventQueue, Queue, SimTime};

/// Dense same-tick kernel: push a colliding burst, rearm a far-future
/// timer, drain — the machine's Fig.-7 event shape.
fn kernel<Q: Queue<u64>>(per_tick: u64) -> u64 {
    let mut q = Q::default();
    let mut sum = 0u64;
    for d in 0..32u64 {
        for k in 0..per_tick {
            q.push_ranked(SimTime::new(0), u128::from(k % 7), d * per_tick + k);
        }
        q.push_ranked(SimTime::new(1_000_000), 0, d);
        for _ in 0..per_tick {
            sum = sum.wrapping_add(q.pop().expect("burst queued").1);
        }
    }
    while let Some((_, v)) = q.pop() {
        sum = sum.wrapping_add(v);
    }
    sum
}

fn main() {
    println!("{}", e14::run(!spinn_bench::full_mode()));
    let mut c = Criterion::default().sample_size(10).configure_from_args();
    c.bench_function("e14_dense_same_tick_heap", |b| {
        b.iter(|| kernel::<EventQueue<u64>>(2_000))
    });
    c.bench_function("e14_dense_same_tick_calendar", |b| {
        b.iter(|| kernel::<CalendarQueue<u64>>(2_000))
    });
    c.final_summary();
}
