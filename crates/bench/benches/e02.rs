//! E2 table + kernel timing.
use criterion::Criterion;

fn main() {
    println!(
        "{}",
        spinn_bench::experiments::e02_link_protocols::run(!spinn_bench::full_mode())
    );
    let mut c = Criterion::default().sample_size(10).configure_from_args();
    c.bench_function("e02_nrz_200_symbols", |b| {
        b.iter(|| spinn_link::throughput::measure_nrz(2000, 200))
    });
    c.final_summary();
}
