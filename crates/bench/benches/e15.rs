//! E15 table + streaming-loader kernel timing.
use criterion::Criterion;
use spinn_bench::experiments::e15_memory_model as e15;
use spinnaker::map::loader::LoadedApp;
use spinnaker::map::place::{Placement, Placer};

fn main() {
    println!("{}", e15::run(!spinn_bench::full_mode()));
    let net = e15::prob_net(8, 1_000, 0.05);
    let placement = Placement::compute(&net, 8, 8, 20, 128, Placer::Locality).unwrap();
    let mut c = Criterion::default().sample_size(10).configure_from_args();
    c.bench_function("e15_streaming_loader_8x1k_p05", |b| {
        b.iter(|| LoadedApp::build(&net, &placement).total_synapses())
    });
    c.final_summary();
}
