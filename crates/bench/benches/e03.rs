//! E3 table + kernel timing.
use criterion::Criterion;

fn main() {
    println!(
        "{}",
        spinn_bench::experiments::e03_emergency_routing::run(!spinn_bench::full_mode())
    );
    let mut c = Criterion::default().sample_size(10).configure_from_args();
    c.bench_function("e03_failed_link_scenario", |b| {
        b.iter(|| {
            spinn_bench::experiments::e03_emergency_routing::scenario("bench", 200, 500, true, true)
        })
    });
    c.final_summary();
}
