//! Microbenchmarks of the hot kernels: neuron update, CAM lookup, ring
//! operations, hex-torus math, packet codec, link symbol transfer.
use criterion::{criterion_group, criterion_main, Criterion};
use spinn_neuron::izhikevich::{IzhikevichNeuron, IzhikevichParams};
use spinn_neuron::model::NeuronModel;
use spinn_neuron::ring::InputRing;
use spinn_noc::mesh::{NodeCoord, Torus};
use spinn_noc::packet::Packet;
use spinn_noc::table::{McTable, McTableEntry, RouteSet};

fn kernels(c: &mut Criterion) {
    c.bench_function("izhikevich_step_1ms", |b| {
        let mut n = IzhikevichNeuron::new(IzhikevichParams::regular_spiking());
        b.iter(|| n.step_1ms(std::hint::black_box(8.0)))
    });

    c.bench_function("mc_table_lookup_1024", |b| {
        let mut t = McTable::new(1024);
        for i in 0..1024u32 {
            t.insert(McTableEntry {
                key: i << 11,
                mask: 0xFFFF_F800,
                route: RouteSet::EMPTY.with_core((i % 16) as usize),
            })
            .unwrap();
        }
        let mut k = 0u32;
        b.iter(|| {
            k = k.wrapping_add(0x801);
            t.lookup(std::hint::black_box(k & 0x001F_FFFF))
        })
    });

    c.bench_function("ring_deposit_and_tick_256", |b| {
        let mut ring = InputRing::new(256);
        b.iter(|| {
            for i in 0..64 {
                ring.deposit(1 + (i % 16) as u8, i % 256, 100);
            }
            ring.tick().len()
        })
    });

    c.bench_function("hex_distance_torus_256", |b| {
        let t = Torus::new(256, 256);
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(97);
            t.hex_distance(
                NodeCoord::new(i % 256, (i / 7) % 256),
                NodeCoord::new((i / 3) % 256, (i / 11) % 256),
            )
        })
    });

    c.bench_function("packet_encode_decode", |b| {
        let mut k = 0u32;
        b.iter(|| {
            k = k.wrapping_add(0x9E3779B9);
            Packet::decode(Packet::multicast(std::hint::black_box(k)).encode())
        })
    });

    c.bench_function("nrz_link_64_symbols", |b| {
        b.iter(|| spinn_link::throughput::measure_nrz(2000, 64))
    });
}

criterion_group!(benches, kernels);
criterion_main!(benches);
