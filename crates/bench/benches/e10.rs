//! E10 table + kernel timing.
use criterion::Criterion;

fn main() {
    println!(
        "{}",
        spinn_bench::experiments::e10_placement::run(!spinn_bench::full_mode())
    );
    let mut c = Criterion::default().sample_size(10).configure_from_args();
    c.bench_function("e10_route_grid_network", |b| {
        b.iter(|| {
            let net = spinn_bench::experiments::e10_placement::grid_net(6, 64);
            let p = spinn_map::place::Placement::compute(
                &net,
                8,
                8,
                17,
                64,
                spinn_map::place::Placer::Locality,
            )
            .unwrap();
            spinn_map::route::RoutingPlan::build(&net, &p, 8, 8).total_entries()
        })
    });
    c.final_summary();
}
