//! E11 table + kernel timing.
use criterion::Criterion;

fn main() {
    println!(
        "{}",
        spinn_bench::experiments::e11_retina::run(!spinn_bench::full_mode())
    );
    let mut c = Criterion::default().sample_size(10).configure_from_args();
    c.bench_function("e11_retina_encode_reconstruct", |b| {
        b.iter(|| {
            let img = spinn_neuron::retina::Image::gaussian_blob(32, 32, 13.0, 19.0, 4.0);
            let r = spinn_neuron::retina::RetinaLayer::new(32, 32, &[(1.2, 4), (2.4, 8)]);
            let code = r.encode(&img, 24);
            r.reconstruct(&code, 0.9)
        })
    });
    c.final_summary();
}
