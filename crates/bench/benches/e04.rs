//! E4 table + kernel timing.
use criterion::Criterion;

fn main() {
    println!(
        "{}",
        spinn_bench::experiments::e04_realtime_latency::run(!spinn_bench::full_mode())
    );
    let mut c = Criterion::default().sample_size(10).configure_from_args();
    c.bench_function("e04_latency_at_4_hops", |b| {
        b.iter(|| spinn_bench::experiments::e04_realtime_latency::at_distance(4, 20))
    });
    c.final_summary();
}
