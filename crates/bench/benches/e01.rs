//! E1 table + kernel timing.
use criterion::Criterion;

fn main() {
    println!(
        "{}",
        spinn_bench::experiments::e01_glitch_deadlock::run(!spinn_bench::full_mode())
    );
    let mut c = Criterion::default().sample_size(10).configure_from_args();
    c.bench_function("e01_glitch_trial_conventional", |b| {
        b.iter(|| {
            spinn_link::glitch::run_trial(
                &spinn_link::glitch::GlitchTrialConfig {
                    symbols: 100,
                    ..Default::default()
                },
                spinn_link::nrz::RxStyle::Conventional,
                7,
            )
        })
    });
    c.final_summary();
}
