//! E12 table + serial-vs-parallel kernel timing.
use criterion::Criterion;
use spinn_bench::experiments::e12_parallel_execution as e12;
use spinnaker::prelude::*;

fn build(threads: u32) -> Simulation {
    let net = e12::synfire_net(16, 192);
    let cfg = SimConfig::new(4, 4)
        .with_neurons_per_core(128)
        .with_threads(threads);
    Simulation::build(&net, cfg).expect("synfire fits a 4x4 machine")
}

fn main() {
    println!("{}", e12::run(!spinn_bench::full_mode()));
    let mut c = Criterion::default().sample_size(10).configure_from_args();
    c.bench_function("e12_synfire_4x4_60ms_serial", |b| {
        b.iter(|| build(1).run(60).machine.spikes().len())
    });
    c.bench_function("e12_synfire_4x4_60ms_par4", |b| {
        b.iter(|| build(4).run(60).machine.spikes().len())
    });
    c.final_summary();
}
