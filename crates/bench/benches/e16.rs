//! E16 table + session checkpoint/restore kernel timing.
use criterion::Criterion;
use spinn_bench::experiments::e15_memory_model as e15;
use spinnaker::prelude::*;

fn main() {
    println!(
        "{}",
        spinn_bench::experiments::e16_sessions::run(!spinn_bench::full_mode())
    );
    // Kernel timing: checkpoint and restore of a warm mid-run session
    // on a small probabilistic network.
    let net = e15::prob_net(8, 1_000, 0.05);
    let input = PopulationId::from_index(0);
    let cfg = SimConfig::new(4, 4).with_neurons_per_core(128);
    let mut session = Simulation::build(&net, cfg.clone())
        .expect("net fits a 4x4 machine")
        .into_session();
    session.add_poisson(input, 150.0, 0xE16);
    session.run_for(20);
    let snapshot = session.checkpoint();
    let mut c = Criterion::default().sample_size(10).configure_from_args();
    c.bench_function("e16_checkpoint_8x1k_warm", |b| {
        b.iter(|| session.checkpoint().len())
    });
    c.bench_function("e16_restore_8x1k_warm", |b| {
        b.iter(|| {
            RunSession::restore(&net, cfg.clone(), &snapshot)
                .expect("snapshot restores")
                .elapsed_ms()
        })
    });
    c.final_summary();
}
