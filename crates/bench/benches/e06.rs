//! E6 table + kernel timing.
use criterion::Criterion;

fn main() {
    println!(
        "{}",
        spinn_bench::experiments::e06_boot::run(!spinn_bench::full_mode())
    );
    let mut c = Criterion::default().sample_size(10).configure_from_args();
    c.bench_function("e06_boot_8x8", |b| {
        b.iter(|| spinn_machine::boot::BootSim::run(spinn_machine::boot::BootConfig::new(8, 8)))
    });
    c.final_summary();
}
