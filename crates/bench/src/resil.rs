//! Monte Carlo resilience campaigns (paper §6): fork thousands of
//! short sessions from **one warm checkpoint** under randomized
//! link-failure schedules, and measure how spike delivery degrades —
//! and how repair claws it back — as the failure rate rises.
//!
//! The paper's viability argument for a million-core machine is that it
//! keeps computing through component death. This module composes the
//! pieces the repo already had ([`spinnaker::RunSession`] checkpoints,
//! `queue_fail_link`, emergency routing) with the new repair paths
//! (queueable `RepairLink`, live re-route via
//! `RunSession::reroute_around_faults`) into the workload shape warm
//! forking is fast at: thousands of short runs from a single snapshot.
//!
//! A campaign is: [`Campaign::prepare`] once (build, warm up, baseline,
//! checkpoint), then [`Campaign::sweep`] per arm — every fork restores
//! the same snapshot, injects its own seeded fault schedule, applies a
//! [`RepairPolicy`], and is scored against the fault-free baseline.
//! Fork RNG streams are derived from `(campaign seed, fork id)` only,
//! so a fixed seed reproduces the same campaign bit-exactly at any
//! thread count.

use spinnaker::noc::direction::Direction;
use spinnaker::noc::mesh::Torus;
use spinnaker::prelude::*;
use spinnaker::sim::Xoshiro256;
use spinnaker::{RunSession, Snapshot};

/// What a campaign fork does about the faults it injects.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum RepairPolicy {
    /// Every failed link stays dead — the unrepaired control arm.
    Unrepaired,
    /// Each fault queues a `RepairLink` for the same cable `delay_ms`
    /// later: a transient fault, or an operator reseating a board.
    QueuedRepair {
        /// Outage length per cable, biological ms.
        delay_ms: u32,
    },
    /// Links stay dead, but `after_ms` into the fork the campaign
    /// re-routes the placed network around every failed link and
    /// hot-installs the detoured tables (live route repair). Choose
    /// `after_ms` past the fault window so one re-route catches all
    /// faults.
    Reroute {
        /// When to re-route, ms after the checkpoint.
        after_ms: u32,
    },
}

impl RepairPolicy {
    /// Stable label for reports and bucket grouping.
    pub fn label(self) -> &'static str {
        match self {
            RepairPolicy::Unrepaired => "none",
            RepairPolicy::QueuedRepair { .. } => "repair_link",
            RepairPolicy::Reroute { .. } => "reroute",
        }
    }
}

/// One fork's measurements — counters are deltas over the fork window
/// (the warm-up's contribution is subtracted).
#[derive(Clone, Debug)]
pub struct ForkOutcome {
    /// Fork index within the campaign.
    pub fork: u32,
    /// Fraction of the machine's cables failed.
    pub failure_rate: f64,
    /// The repair arm this fork ran under.
    pub policy: &'static str,
    /// Cables actually failed.
    pub links_failed: u32,
    /// Downstream spikes delivered over the fork window (raw count —
    /// congestion can push this *above* the baseline when delayed
    /// arrivals double-fire a neuron).
    pub spikes: u64,
    /// `min(spikes, baseline) / baseline`: the fraction of the
    /// baseline's activity the faulted fabric still delivered. Capped
    /// at 1.0 because congestion-induced extra firing is not delivery;
    /// crediting it would let a badly-degraded fork outscore a healthy
    /// one. The uncapped count stays in [`ForkOutcome::spikes`].
    pub delivery_ratio: f64,
    /// Emergency first legs taken (blocked/dead links dodged).
    pub emergency_reroutes: u64,
    /// Emergency detours completed.
    pub emergency_second_legs: u64,
    /// Packets dropped after both wait phases.
    pub dropped: u64,
    /// Dropped spikes the monitor re-issued.
    pub reissued: u64,
    /// FNV-1a over the fork's `(time, pop, neuron)` spike stream — the
    /// cheap bit-exactness fingerprint for cross-thread-count replays.
    pub spike_hash: u64,
}

/// Aggregates of one `(failure rate, policy)` bucket.
#[derive(Clone, Debug)]
pub struct BucketSummary {
    /// Fraction of cables failed in this bucket.
    pub failure_rate: f64,
    /// Repair arm label.
    pub policy: &'static str,
    /// Forks aggregated.
    pub forks: u32,
    /// Mean cables failed per fork.
    pub links_failed_mean: f64,
    /// Mean delivery ratio vs the fault-free baseline.
    pub delivery_ratio_mean: f64,
    /// Worst fork in the bucket.
    pub delivery_ratio_min: f64,
    /// Mean emergency first legs per fork.
    pub emergency_reroutes_mean: f64,
    /// Mean drops per fork.
    pub dropped_mean: f64,
    /// Mean monitor re-issues per fork.
    pub reissued_mean: f64,
}

/// Router counters at the checkpoint — subtracted from every fork so
/// outcomes measure the fork window only.
#[derive(Clone, Copy, Debug, Default)]
struct BaseCounters {
    emergency_reroutes: u64,
    emergency_second_legs: u64,
    dropped: u64,
    reissued: u64,
}

/// A prepared campaign: the warm checkpoint every fork restores from,
/// the fault-free baseline it is scored against, and the fork-window
/// geometry.
pub struct Campaign {
    net: NetworkGraph,
    cfg: SimConfig,
    snapshot: Snapshot,
    warm_ms: u32,
    /// The driven population. Its spikes are excluded from delivery
    /// scoring: they are produced by bias/stimulus, not by the fabric,
    /// so they would dilute the degradation signal.
    input: PopulationId,
    base: BaseCounters,
    /// Spikes a fault-free fork delivers over the fork window (the
    /// denominator of every delivery ratio).
    pub baseline_spikes: u64,
    /// Length of each fork's run, biological ms.
    pub fork_ms: u32,
    /// Faults land uniformly in this window after the checkpoint, ms
    /// (inclusive, both ends; the start must be ≥ 1).
    pub fault_window_ms: (u32, u32),
    width: u32,
    height: u32,
}

impl Campaign {
    /// Builds the network once, drives it warm for `warm_ms` under a
    /// Poisson probe on `input`, checkpoints, and scores the fault-free
    /// baseline fork. Every later fork restores this snapshot.
    ///
    /// # Panics
    ///
    /// Panics if the workload does not fit the configured machine, the
    /// fault window is empty or starts at 0, or the baseline fork
    /// delivers no spikes (nothing to measure degradation against).
    pub fn prepare(
        net: NetworkGraph,
        cfg: SimConfig,
        input: PopulationId,
        rate_hz: f64,
        warm_ms: u32,
        fork_ms: u32,
        fault_window_ms: (u32, u32),
    ) -> Campaign {
        assert!(
            fault_window_ms.0 >= 1 && fault_window_ms.0 <= fault_window_ms.1,
            "fault window must start at >= 1 ms after the checkpoint"
        );
        assert!(
            fault_window_ms.1 <= fork_ms,
            "fault window must fit in the fork"
        );
        let mut session = Simulation::build(&net, cfg.clone())
            .expect("campaign workload fits the machine")
            .into_session();
        session.add_poisson(input, rate_hz, 0xE19);
        session.run_for(warm_ms);
        let snapshot = session.checkpoint();
        let fc = session.machine().fabric().config();
        let (width, height) = (fc.width, fc.height);
        let stats = session.machine().router_stats();
        let base = BaseCounters {
            emergency_reroutes: stats.emergency_reroutes,
            emergency_second_legs: stats.emergency_second_legs,
            dropped: stats.dropped,
            reissued: session.machine().reissued_packets(),
        };
        let mut campaign = Campaign {
            net,
            cfg,
            snapshot,
            warm_ms,
            input,
            base,
            baseline_spikes: 0,
            fork_ms,
            fault_window_ms,
            width,
            height,
        };
        let baseline = campaign.run_fork(0, 0, 0.0, RepairPolicy::Unrepaired, None);
        assert!(
            baseline.spikes > 0,
            "baseline fork is silent — raise the drive or the fork length"
        );
        campaign.baseline_spikes = baseline.spikes;
        campaign
    }

    /// The warm checkpoint's size, bytes.
    pub fn snapshot_bytes(&self) -> usize {
        self.snapshot.len()
    }

    /// Total distinct cables on the machine (each unordered cable
    /// counted once: East/NorthEast/North from every chip cover all six
    /// directions of the torus).
    pub fn total_cables(&self) -> u64 {
        (self.width as u64) * (self.height as u64) * 3
    }

    /// Restores the warm checkpoint, injects a seeded random fault
    /// schedule failing `rate` of the machine's cables at uniform times
    /// inside the fault window, applies the repair policy, runs the
    /// fork window and scores it against the baseline.
    ///
    /// The fork's RNG stream is derived from `(seed, fork)` only, and
    /// `threads` overrides the restore's thread count without touching
    /// the schedule — replaying one fork at different thread counts
    /// must reproduce the same [`ForkOutcome::spike_hash`].
    pub fn run_fork(
        &self,
        seed: u64,
        fork: u32,
        rate: f64,
        policy: RepairPolicy,
        threads: Option<u32>,
    ) -> ForkOutcome {
        let cfg = match threads {
            Some(t) => self.cfg.clone().with_threads(t),
            None => self.cfg.clone(),
        };
        let mut s =
            RunSession::restore(&self.net, cfg, &self.snapshot).expect("warm checkpoint restores");
        let torus = Torus::new(self.width, self.height);
        let n_cables = self.total_cables();
        let k = ((rate * n_cables as f64).round() as u64).min(n_cables);
        // SplitMix-style fork stream: nearby fork ids get unrelated
        // schedules.
        let mut rng = Xoshiro256::seed_from_u64(
            seed ^ 0xE19_u64.rotate_left(32)
                ^ (fork as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        // Partial Fisher-Yates over the cable universe: k distinct
        // cables, each failed once at a uniform time in the window.
        let mut cables: Vec<u64> = (0..n_cables).collect();
        let (w_lo, w_hi) = self.fault_window_ms;
        let mut links_failed = 0u32;
        for i in 0..k as usize {
            let j = i + rng.gen_range_u64(n_cables - i as u64) as usize;
            cables.swap(i, j);
            let chip = torus.coord_of((cables[i] / 3) as usize);
            let dir =
                [Direction::East, Direction::NorthEast, Direction::North][(cables[i] % 3) as usize];
            let at = self.warm_ms + w_lo + rng.gen_range_u64((w_hi - w_lo) as u64 + 1) as u32;
            s.queue_fail_link(at, chip, dir);
            if let RepairPolicy::QueuedRepair { delay_ms } = policy {
                s.queue_repair_link(at + delay_ms, chip, dir);
            }
            links_failed += 1;
        }
        // Score the fork window only: drop the warm-up's spikes.
        s.take_spikes();
        match policy {
            RepairPolicy::Reroute { after_ms } => {
                let cut = after_ms.clamp(1, self.fork_ms);
                s.run_for(cut);
                s.reroute_around_faults(&self.net)
                    .expect("detoured plan fits the router CAMs");
                s.run_for(self.fork_ms - cut);
            }
            _ => {
                s.run_for(self.fork_ms);
            }
        }
        let spikes = s.take_spikes();
        let stats = s.machine().router_stats();
        // The fingerprint covers *every* spike (bit-exactness is a
        // whole-raster property); the score counts only downstream
        // populations, whose firing depends on fabric delivery.
        let mut spike_hash = 0xcbf2_9ce4_8422_2325u64;
        for sp in &spikes {
            for v in [sp.time_ms as u64, sp.pop.index() as u64, sp.neuron as u64] {
                spike_hash ^= v;
                spike_hash = spike_hash.wrapping_mul(0x100_0000_01b3);
            }
        }
        let delivered = spikes.iter().filter(|sp| sp.pop != self.input).count() as u64;
        ForkOutcome {
            fork,
            failure_rate: rate,
            policy: policy.label(),
            links_failed,
            spikes: delivered,
            delivery_ratio: if self.baseline_spikes > 0 {
                (delivered.min(self.baseline_spikes)) as f64 / self.baseline_spikes as f64
            } else {
                1.0
            },
            emergency_reroutes: stats
                .emergency_reroutes
                .saturating_sub(self.base.emergency_reroutes),
            emergency_second_legs: stats
                .emergency_second_legs
                .saturating_sub(self.base.emergency_second_legs),
            dropped: stats.dropped.saturating_sub(self.base.dropped),
            reissued: s
                .machine()
                .reissued_packets()
                .saturating_sub(self.base.reissued),
            spike_hash,
        }
    }

    /// Runs one campaign arm: `forks_per_bucket` forks for every
    /// failure rate, under one repair policy. Fork ids are assigned
    /// deterministically (`bucket * forks_per_bucket + i`, offset by
    /// `fork_base`), so arms can be replayed or distributed without
    /// schedule collisions.
    pub fn sweep(
        &self,
        seed: u64,
        rates: &[f64],
        policy: RepairPolicy,
        forks_per_bucket: u32,
        fork_base: u32,
    ) -> Vec<ForkOutcome> {
        let mut out = Vec::with_capacity(rates.len() * forks_per_bucket as usize);
        for (b, &rate) in rates.iter().enumerate() {
            for i in 0..forks_per_bucket {
                let fork = fork_base + b as u32 * forks_per_bucket + i;
                out.push(self.run_fork(seed, fork, rate, policy, None));
            }
        }
        out
    }
}

/// Groups outcomes into `(failure rate, policy)` buckets, in ascending
/// rate order (policies in first-seen order within a rate).
pub fn summarize(outcomes: &[ForkOutcome]) -> Vec<BucketSummary> {
    let mut keys: Vec<(u64, &'static str)> = Vec::new();
    for o in outcomes {
        let key = (o.failure_rate.to_bits(), o.policy);
        if !keys.contains(&key) {
            keys.push(key);
        }
    }
    keys.sort_by(|a, b| {
        f64::from_bits(a.0)
            .partial_cmp(&f64::from_bits(b.0))
            .expect("rates are finite")
            .then(a.1.cmp(b.1))
    });
    keys.into_iter()
        .map(|(rate_bits, policy)| {
            let rate = f64::from_bits(rate_bits);
            let bucket: Vec<&ForkOutcome> = outcomes
                .iter()
                .filter(|o| o.failure_rate.to_bits() == rate_bits && o.policy == policy)
                .collect();
            let n = bucket.len() as f64;
            let mean = |f: &dyn Fn(&ForkOutcome) -> f64| -> f64 {
                bucket.iter().map(|o| f(o)).sum::<f64>() / n
            };
            BucketSummary {
                failure_rate: rate,
                policy,
                forks: bucket.len() as u32,
                links_failed_mean: mean(&|o| o.links_failed as f64),
                delivery_ratio_mean: mean(&|o| o.delivery_ratio),
                delivery_ratio_min: bucket
                    .iter()
                    .map(|o| o.delivery_ratio)
                    .fold(f64::INFINITY, f64::min),
                emergency_reroutes_mean: mean(&|o| o.emergency_reroutes as f64),
                dropped_mean: mean(&|o| o.dropped as f64),
                reissued_mean: mean(&|o| o.reissued as f64),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A small feed-forward synfire chain scattered over a 4x4 mesh:
    /// the tonically-driven head launches a wave down the chain every
    /// firing cycle, so each downstream spike certifies delivery across
    /// the inter-chip links behind it and a dead cable shows up as a
    /// silenced tail rather than re-entrant timing noise.
    fn tiny_campaign(fork_ms: u32) -> Campaign {
        let kind = NeuronKind::Izhikevich(IzhikevichParams::regular_spiking());
        let mut net = NetworkGraph::new();
        let pops: Vec<_> = (0..8u32)
            .map(|i| net.population(&format!("s{i}"), 96, kind, if i == 0 { 9.0 } else { 0.0 }))
            .collect();
        for (i, pair) in pops.windows(2).enumerate() {
            net.project(
                pair[0],
                pair[1],
                Connector::FixedFanOut(12),
                Synapses::constant(600, 2),
                i as u64,
            );
        }
        let cfg = SimConfig::new(4, 4)
            .with_neurons_per_core(64)
            .with_placer(Placer::Random { seed: 0xE19 })
            .with_force_shards(true);
        Campaign::prepare(net, cfg, pops[0], 20.0, 30, fork_ms, (2, fork_ms / 2))
    }

    #[test]
    fn baseline_and_faulted_forks_score_sanely() {
        let c = tiny_campaign(40);
        assert!(c.baseline_spikes > 0);
        let healthy = c.run_fork(0xABC, 1, 0.0, RepairPolicy::Unrepaired, None);
        assert_eq!(healthy.spikes, c.baseline_spikes, "rate 0 is the baseline");
        assert_eq!(healthy.links_failed, 0);
        let hurt = c.run_fork(0xABC, 2, 0.25, RepairPolicy::Unrepaired, None);
        assert!(hurt.links_failed > 0);
        assert!(
            hurt.delivery_ratio <= 1.0,
            "delivery ratio is capped at 1.0 (got {})",
            hurt.delivery_ratio
        );
    }

    #[test]
    fn forks_are_deterministic_across_replays_and_threads() {
        let c = tiny_campaign(30);
        let a = c.run_fork(7, 3, 0.15, RepairPolicy::Unrepaired, None);
        let b = c.run_fork(7, 3, 0.15, RepairPolicy::Unrepaired, None);
        assert_eq!(a.spike_hash, b.spike_hash, "same fork must replay");
        assert_eq!(a.spikes, b.spikes);
        for threads in [2u32, 4] {
            let t = c.run_fork(7, 3, 0.15, RepairPolicy::Unrepaired, Some(threads));
            assert_eq!(
                t.spike_hash, a.spike_hash,
                "{threads}-thread replay diverged"
            );
        }
        // Sibling forks draw independent fault schedules: at a heavy
        // failure rate their congestion signatures must differ (a
        // fixed-seed, hence deterministic, check — rasters themselves
        // may legitimately converge to "only self-driven neurons fire").
        let signatures: Vec<(u64, u64)> = (10..14)
            .map(|f| {
                let o = c.run_fork(7, f, 0.5, RepairPolicy::Unrepaired, None);
                (o.dropped, o.emergency_reroutes)
            })
            .collect();
        assert!(
            signatures.iter().any(|&s| s != signatures[0]),
            "heavy-failure sibling forks all saw identical congestion"
        );
    }

    #[test]
    fn repair_policies_run_and_summarize() {
        let c = tiny_campaign(40);
        let mut all = c.sweep(11, &[0.0, 0.2], RepairPolicy::Unrepaired, 2, 0);
        all.extend(c.sweep(
            11,
            &[0.2],
            RepairPolicy::QueuedRepair { delay_ms: 10 },
            2,
            100,
        ));
        all.extend(c.sweep(11, &[0.2], RepairPolicy::Reroute { after_ms: 21 }, 2, 200));
        let buckets = summarize(&all);
        assert_eq!(buckets.len(), 4);
        assert_eq!(buckets[0].failure_rate, 0.0);
        assert!(buckets[0].delivery_ratio_mean > 0.999);
        for b in &buckets {
            assert_eq!(b.forks, 2);
            assert!(b.delivery_ratio_min.is_finite());
        }
    }
}
