//! Prints every experiment's table (E1-E13, A1-A2). `SPINN_FULL=1` for
//! the full-size versions recorded in EXPERIMENTS.md.

use spinn_bench::experiments as e;

/// One experiment: its name and table generator.
type Experiment = (&'static str, fn(bool) -> String);

fn main() {
    let quick = !spinn_bench::full_mode();
    let mode = if quick { "quick" } else { "full" };
    println!("SpiNNaker reproduction — experiment suite ({mode} mode)\n");
    let runs: [Experiment; 15] = [
        ("E1", e::e01_glitch_deadlock::run),
        ("E2", e::e02_link_protocols::run),
        ("E3", e::e03_emergency_routing::run),
        ("E4", e::e04_realtime_latency::run),
        ("E5", e::e05_flood_fill::run),
        ("E6", e::e06_boot::run),
        ("E7", e::e07_cost_energy::run),
        ("E8", e::e08_multicast_vs_broadcast::run),
        ("E9", e::e09_scaling::run),
        ("E10", e::e10_placement::run),
        ("E11", e::e11_retina::run),
        ("E12", e::e12_parallel_execution::run),
        ("E13", e::e13_table_minimization::run),
        ("A1", e::a01_router_waits::run),
        ("A2", e::a02_default_route_elision::run),
    ];
    for (name, f) in runs {
        println!("==================================================================");
        println!("{}", f(quick));
        let _ = name;
    }
}
