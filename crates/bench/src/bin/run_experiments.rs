//! Prints every experiment's table (E1-E21, A1-A2). `SPINN_FULL=1` for
//! the full-size versions quoted in the README.
//!
//! Experiments with machine-readable benchmark emitters (E14, E15,
//! E16, E17, E18, E19, E20, E21) also write their commit-stamped
//! `BENCH_*.json` artifact to the repository root.
//!
//! Usage: `run_experiments [NAME...]` — with arguments, only the named
//! experiments run (e.g. `run_experiments E14` regenerates just the
//! benchmark artifact).

use spinn_bench::experiments as e;
use spinn_bench::record;

/// One experiment: its name and table generator.
type Experiment = (&'static str, fn(bool) -> String);

fn main() {
    let quick = !spinn_bench::full_mode();
    let mode = if quick { "quick" } else { "full" };
    let filter: Vec<String> = std::env::args().skip(1).map(|a| a.to_uppercase()).collect();
    let wanted = |name: &str| filter.is_empty() || filter.iter().any(|f| f == name);
    println!("SpiNNaker reproduction — experiment suite ({mode} mode)\n");
    let runs: [Experiment; 15] = [
        ("E1", e::e01_glitch_deadlock::run),
        ("E2", e::e02_link_protocols::run),
        ("E3", e::e03_emergency_routing::run),
        ("E4", e::e04_realtime_latency::run),
        ("E5", e::e05_flood_fill::run),
        ("E6", e::e06_boot::run),
        ("E7", e::e07_cost_energy::run),
        ("E8", e::e08_multicast_vs_broadcast::run),
        ("E9", e::e09_scaling::run),
        ("E10", e::e10_placement::run),
        ("E11", e::e11_retina::run),
        ("E12", e::e12_parallel_execution::run),
        ("E13", e::e13_table_minimization::run),
        ("A1", e::a01_router_waits::run),
        ("A2", e::a02_default_route_elision::run),
    ];
    for (name, f) in runs {
        if !wanted(name) {
            continue;
        }
        println!("==================================================================");
        println!("{}", f(quick));
    }
    if wanted("E14") {
        println!("==================================================================");
        // E14 runs through its report so the table and the JSON artifact
        // come from the same measurement.
        let report = e::e14_event_core::report(quick);
        println!("{}", e::e14_event_core::format_report(&report));
        match report.write_to(&record::repo_root()) {
            Ok(path) => println!("wrote {}", path.display()),
            Err(err) => eprintln!("failed to write BENCH_e14.json: {err}"),
        }
    }
    if wanted("E15") {
        println!("==================================================================");
        let report = e::e15_memory_model::report(quick);
        println!("{}", e::e15_memory_model::format_report(&report));
        match report.write_to(&record::repo_root()) {
            Ok(path) => println!("wrote {}", path.display()),
            Err(err) => eprintln!("failed to write BENCH_e15.json: {err}"),
        }
    }

    if wanted("E16") {
        println!("==================================================================");
        let report = e::e16_sessions::report(quick);
        println!("{}", e::e16_sessions::format_report(&report));
        match report.write_to(&record::repo_root()) {
            Ok(path) => println!("wrote {}", path.display()),
            Err(err) => eprintln!("failed to write BENCH_e16.json: {err}"),
        }
    }

    if wanted("E17") {
        println!("==================================================================");
        let report = e::e17_telemetry::report(quick);
        println!("{}", e::e17_telemetry::format_report(&report));
        match report.write_to(&record::repo_root()) {
            Ok(path) => println!("wrote {}", path.display()),
            Err(err) => eprintln!("failed to write BENCH_e17.json: {err}"),
        }
    }

    if wanted("E18") {
        println!("==================================================================");
        let report = e::e18_collected_win::report(quick);
        println!("{}", e::e18_collected_win::format_report(&report));
        match report.write_to(&record::repo_root()) {
            Ok(path) => println!("wrote {}", path.display()),
            Err(err) => eprintln!("failed to write BENCH_e18.json: {err}"),
        }
    }

    if wanted("E19") {
        println!("==================================================================");
        let report = e::e19_resilience::report(quick);
        println!("{}", e::e19_resilience::format_report(&report));
        match report.write_to(&record::repo_root()) {
            Ok(path) => println!("wrote {}", path.display()),
            Err(err) => eprintln!("failed to write BENCH_e19.json: {err}"),
        }
    }

    if wanted("E20") {
        println!("==================================================================");
        let report = e::e20_scaling::report(quick);
        println!("{}", e::e20_scaling::format_report(&report));
        match report.write_to(&record::repo_root()) {
            Ok(path) => println!("wrote {}", path.display()),
            Err(err) => eprintln!("failed to write BENCH_e20.json: {err}"),
        }
    }

    if wanted("E21") {
        println!("==================================================================");
        let report = e::e21_serving::report(quick);
        println!("{}", e::e21_serving::format_report(&report));
        match report.write_to(&record::repo_root()) {
            Ok(path) => println!("wrote {}", path.display()),
            Err(err) => eprintln!("failed to write BENCH_e21.json: {err}"),
        }
    }

    // A typo'd filter (e.g. `run_experiments E17`) must not masquerade
    // as a successful run that silently produced nothing.
    let known: Vec<&str> = runs
        .iter()
        .map(|(n, _)| *n)
        .chain(["E14", "E15", "E16", "E17", "E18", "E19", "E20", "E21"])
        .collect();
    let unknown: Vec<&String> = filter
        .iter()
        .filter(|f| !known.contains(&f.as_str()))
        .collect();
    if !unknown.is_empty() {
        eprintln!("unknown experiment name(s): {unknown:?} (known: {known:?})");
        std::process::exit(2);
    }
}
