//! Prints the structural figures of the paper (Figs. 1-5, 7) rendered
//! from the model objects.

fn main() {
    println!("{}", spinn_bench::figures::all());
}
