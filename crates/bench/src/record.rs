//! Machine-readable benchmark records.
//!
//! Every experiment that makes a performance claim can emit a
//! [`BenchReport`] — a commit-stamped JSON document written to the
//! repository root (`BENCH_<experiment>.json`) — so the performance
//! trajectory of the codebase is a sequence of diffable artifacts
//! rather than prose in tables. The serializer is hand-rolled: the
//! build environment is offline, so no serde.

use std::fmt::Write as _;
use std::io;
use std::path::Path;
use std::process::Command;

/// A JSON value (the subset benchmark reports need).
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (non-finite values serialize as `null`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl From<&str> for Json {
    fn from(s: &str) -> Self {
        Json::Str(s.to_string())
    }
}
impl From<String> for Json {
    fn from(s: String) -> Self {
        Json::Str(s)
    }
}
impl From<f64> for Json {
    fn from(n: f64) -> Self {
        Json::Num(n)
    }
}
impl From<u64> for Json {
    fn from(n: u64) -> Self {
        Json::Num(n as f64)
    }
}
impl From<u32> for Json {
    fn from(n: u32) -> Self {
        Json::Num(n as f64)
    }
}
impl From<usize> for Json {
    fn from(n: usize) -> Self {
        Json::Num(n as f64)
    }
}
impl From<bool> for Json {
    fn from(b: bool) -> Self {
        Json::Bool(b)
    }
}

impl Json {
    /// Serializes with 2-space indentation (stable, diffable output).
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if !n.is_finite() {
                    out.push_str("null");
                } else if n.fract() == 0.0 && n.abs() < 1e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n:.6}");
                }
            }
            Json::Str(s) => {
                out.push('"');
                for ch in s.chars() {
                    match ch {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\t' => out.push_str("\\t"),
                        '\r' => out.push_str("\\r"),
                        c if (c as u32) < 0x20 => {
                            let _ = write!(out, "\\u{:04x}", c as u32);
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    item.write(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    Json::Str(k.clone()).write(out, depth + 1);
                    out.push_str(": ");
                    v.write(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

/// One measured configuration: a named row of `config` knobs and
/// `metrics` results.
#[derive(Clone, Debug)]
pub struct BenchRecord {
    /// What was measured (e.g. `"queue_microbench"`).
    pub name: String,
    /// The knobs that produced it (mesh size, threads, queue kind...).
    pub config: Vec<(String, Json)>,
    /// The measured numbers (throughput, latency percentiles...).
    pub metrics: Vec<(String, Json)>,
}

impl BenchRecord {
    /// An empty record named `name`.
    pub fn new(name: impl Into<String>) -> Self {
        BenchRecord {
            name: name.into(),
            config: Vec::new(),
            metrics: Vec::new(),
        }
    }

    /// Adds a configuration knob.
    pub fn config(mut self, key: impl Into<String>, value: impl Into<Json>) -> Self {
        self.config.push((key.into(), value.into()));
        self
    }

    /// Adds a measured metric.
    pub fn metric(mut self, key: impl Into<String>, value: impl Into<Json>) -> Self {
        self.metrics.push((key.into(), value.into()));
        self
    }

    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("name".into(), Json::Str(self.name.clone())),
            ("config".into(), Json::Obj(self.config.clone())),
            ("metrics".into(), Json::Obj(self.metrics.clone())),
        ])
    }
}

/// A commit-stamped collection of [`BenchRecord`]s for one experiment.
#[derive(Clone, Debug)]
pub struct BenchReport {
    /// Experiment id (e.g. `"E14"`).
    pub experiment: String,
    /// One-line description of what the numbers claim.
    pub title: String,
    /// `git rev-parse HEAD` at measurement time (or `"unknown"`).
    pub commit: String,
    /// `"quick"` or `"full"` harness mode.
    pub mode: String,
    /// The measured rows.
    pub records: Vec<BenchRecord>,
}

impl BenchReport {
    /// An empty report stamped with the current commit.
    pub fn new(experiment: impl Into<String>, title: impl Into<String>, quick: bool) -> Self {
        BenchReport {
            experiment: experiment.into(),
            title: title.into(),
            commit: git_commit(),
            mode: if quick { "quick" } else { "full" }.to_string(),
            records: Vec::new(),
        }
    }

    /// Appends a record.
    pub fn push(&mut self, record: BenchRecord) {
        self.records.push(record);
    }

    /// The report as pretty-printed JSON.
    pub fn to_json_string(&self) -> String {
        Json::Obj(vec![
            ("experiment".into(), Json::Str(self.experiment.clone())),
            ("title".into(), Json::Str(self.title.clone())),
            ("commit".into(), Json::Str(self.commit.clone())),
            ("mode".into(), Json::Str(self.mode.clone())),
            (
                "records".into(),
                Json::Arr(self.records.iter().map(|r| r.to_json()).collect()),
            ),
        ])
        .to_string_pretty()
    }

    /// Writes `BENCH_<experiment lowercased>.json` into `dir`,
    /// returning the path written.
    pub fn write_to(&self, dir: &Path) -> io::Result<std::path::PathBuf> {
        let path = dir.join(format!("BENCH_{}.json", self.experiment.to_lowercase()));
        std::fs::write(&path, self.to_json_string())?;
        Ok(path)
    }
}

/// The repository's current commit hash, or `"unknown"` outside git.
///
/// Resolved against the workspace root (not the process cwd), so the
/// stamp always names the commit of the measured code.
pub fn git_commit() -> String {
    Command::new("git")
        .args(["rev-parse", "HEAD"])
        .current_dir(repo_root())
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// The workspace root (where `BENCH_*.json` artifacts live).
pub fn repo_root() -> std::path::PathBuf {
    // crates/bench/../.. == the workspace root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("bench crate lives two levels below the root")
        .to_path_buf()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_serialization_round_trips_shapes() {
        let j = Json::Obj(vec![
            ("a".into(), Json::Num(1.0)),
            ("b".into(), Json::Num(2.5)),
            ("c".into(), Json::Str("x\"y\n".into())),
            ("d".into(), Json::Arr(vec![Json::Bool(true), Json::Null])),
            ("e".into(), Json::Obj(vec![])),
            ("nan".into(), Json::Num(f64::NAN)),
        ]);
        let s = j.to_string_pretty();
        assert!(s.contains("\"a\": 1"), "{s}");
        assert!(s.contains("\"b\": 2.5"), "{s}");
        assert!(s.contains("\\\"y\\n"), "{s}");
        assert!(s.contains("true"), "{s}");
        assert!(s.contains("\"e\": {}"), "{s}");
        assert!(s.contains("\"nan\": null"), "{s}");
    }

    #[test]
    fn report_carries_commit_and_records() {
        let mut report = BenchReport::new("E99", "test report", true);
        report.push(
            BenchRecord::new("row")
                .config("threads", 4u32)
                .metric("throughput", 123.456_f64),
        );
        let s = report.to_json_string();
        assert!(s.contains("\"experiment\": \"E99\""));
        assert!(s.contains("\"mode\": \"quick\""));
        assert!(s.contains("\"threads\": 4"));
        assert!(s.contains("\"throughput\": 123.456"));
        assert!(!report.commit.is_empty());
    }

    #[test]
    fn repo_root_is_a_workspace() {
        assert!(repo_root().join("Cargo.toml").exists());
    }
}
