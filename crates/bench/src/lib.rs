//! # spinn-bench — the experiment harness
//!
//! One module per experiment (E1–E14 plus ablations), each
//! regenerating a figure or quantitative claim of the paper. Every
//! module exposes `run(quick) -> String`, returning the table the
//! paper's claim implies; the Criterion benches under `benches/` print
//! the quick table and then time the experiment's kernel, and
//! `src/bin/run_experiments.rs` prints the full tables for
//! `EXPERIMENTS.md`.
//!
//! Experiments with performance claims additionally emit
//! machine-readable, commit-stamped [`record::BenchReport`] JSON
//! artifacts (`BENCH_*.json` at the repository root) — the measured
//! performance trajectory of the codebase. E14 (the event-core
//! benchmark) is the first; later experiments append theirs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod figures;
pub mod record;
pub mod resil;

/// True when the harness should run full-size experiments
/// (`SPINN_FULL=1`); benches default to quick mode.
pub fn full_mode() -> bool {
    std::env::var("SPINN_FULL").is_ok_and(|v| v == "1")
}
