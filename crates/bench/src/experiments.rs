//! The experiments, one module per entry in DESIGN.md's index.

use std::fmt::Write as _;

/// E1 — glitch-induced deadlock: conventional vs transition-sensing
/// phase converters (Fig. 6, §5.1).
pub mod e01_glitch_deadlock {
    use super::*;
    use spinn_link::glitch::{deadlock_study, DeadlockStudy, GlitchTrialConfig};

    /// Runs the paired Monte-Carlo study across glitch rates.
    pub fn study(trials: u64) -> Vec<DeadlockStudy> {
        let cfg = GlitchTrialConfig::default();
        let rates = [1e5, 3e5, 1e6, 3e6, 1e7];
        // Parallel Monte Carlo: one thread per rate.
        let mut results: Vec<Option<DeadlockStudy>> = vec![None; rates.len()];
        std::thread::scope(|scope| {
            for (slot, &rate) in results.iter_mut().zip(&rates) {
                let cfg = &cfg;
                scope.spawn(move || {
                    *slot = Some(deadlock_study(cfg, rate, trials, 0xE1));
                });
            }
        });
        results.into_iter().map(|r| r.expect("filled")).collect()
    }

    /// The E1 table.
    pub fn run(quick: bool) -> String {
        let trials = if quick { 150 } else { 2000 };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "E1: glitch-induced deadlock, conventional vs transition-sensing (Fig. 6)"
        );
        let _ = writeln!(out, "   {trials} paired trials x 200 symbols per rate\n");
        let _ = writeln!(
            out,
            "{:>12} {:>12} {:>12} {:>10} {:>12} {:>12}",
            "glitch rate", "conv dead", "t-s dead", "factor", "conv corr", "t-s corr"
        );
        for s in study(trials) {
            let factor = if s.transition_sensing_deadlocks == 0 {
                format!(">{:.0}", s.improvement_factor())
            } else {
                format!("{:.0}", s.improvement_factor())
            };
            let _ = writeln!(
                out,
                "{:>10.0e}Hz {:>8}/{:<4} {:>8}/{:<4} {:>9}x {:>12.2} {:>12.2}",
                s.glitch_rate_hz,
                s.conventional_deadlocks,
                s.trials,
                s.transition_sensing_deadlocks,
                s.trials,
                factor,
                s.conventional_corruption,
                s.transition_sensing_corruption,
            );
        }
        let _ = writeln!(
            out,
            "\npaper: transition sensing 'reduced the occurrence of deadlocks in our\nglitch simulations by a factor 1,000' and 'will keep passing data (albeit\nwith errors)' — the t-s column keeps capturing (corrupt) symbols with\n(near-)zero deadlocks while the conventional converter deadlocks freely."
        );
        out
    }
}

/// E2 — link protocols: 2-of-7 NRZ vs 3-of-6 RTZ (§5.1).
pub mod e02_link_protocols {
    use super::*;
    use spinn_link::throughput::{measure_nrz, measure_rtz};

    /// The E2 table.
    pub fn run(quick: bool) -> String {
        let n = if quick { 300 } else { 2000 };
        let mut out = String::new();
        let _ = writeln!(out, "E2: inter-chip link protocols (§5.1)");
        let _ = writeln!(out, "   {n} symbols per measurement\n");
        let _ = writeln!(
            out,
            "{:>10} {:>12} {:>12} {:>8} {:>10} {:>10} {:>8}",
            "wire (ps)",
            "NRZ Mbit/s",
            "RTZ Mbit/s",
            "ratio",
            "NRZ tr/sym",
            "RTZ tr/sym",
            "pJ ratio"
        );
        for wire in [500u64, 1_000, 2_000, 5_000, 10_000] {
            let nrz = measure_nrz(wire, n);
            let rtz = measure_rtz(wire, n);
            let _ = writeln!(
                out,
                "{:>10} {:>12.1} {:>12.1} {:>7.2}x {:>10.1} {:>10.1} {:>7.2}x",
                wire,
                nrz.mbit_per_s,
                rtz.mbit_per_s,
                nrz.msymbols_per_s / rtz.msymbols_per_s,
                nrz.transitions_per_symbol,
                rtz.transitions_per_symbol,
                rtz.pj_per_symbol / nrz.pj_per_symbol,
            );
        }
        let _ = writeln!(
            out,
            "\npaper: off-chip 'the 2-of-7 NRZ code delivers twice the performance for\nless than half the energy per 4-bit symbol' (3 vs 8 transitions: exact)."
        );
        out
    }
}

/// E3 — emergency routing around a failed link (Fig. 8, §5.3).
pub mod e03_emergency_routing {
    use super::*;
    use spinn_noc::direction::Direction;
    use spinn_noc::fabric::{FabricConfig, FabricEvent, FabricSim};
    use spinn_noc::mesh::NodeCoord;
    use spinn_noc::packet::Packet;
    use spinn_noc::table::{McTableEntry, RouteSet};
    use spinn_sim::{Engine, SimTime};

    /// One scenario's measurements.
    pub struct Row {
        /// Scenario label.
        pub label: &'static str,
        /// Fraction of injected packets delivered.
        pub delivered_pct: f64,
        /// Mean end-to-end latency, ns.
        pub mean_latency_ns: f64,
        /// Emergency reroutes performed.
        pub reroutes: u64,
        /// Packets dropped.
        pub dropped: u64,
    }

    /// Streams `n` packets down a 6-hop path, with optional mid-path
    /// link failure and emergency routing on/off.
    pub fn scenario(
        label: &'static str,
        n: u64,
        interval_ns: u64,
        fail: bool,
        emergency: bool,
    ) -> Row {
        let mut cfg = FabricConfig::new(8, 8);
        cfg.router.emergency_enabled = emergency;
        cfg.router.wait1_ns = 2_000;
        cfg.router.wait2_ns = 10_000;
        let mut sim = FabricSim::new(cfg);
        let key = 0xE3;
        sim.fabric
            .router_mut(NodeCoord::new(0, 0))
            .table
            .insert(McTableEntry {
                key,
                mask: u32::MAX,
                route: RouteSet::EMPTY.with_link(Direction::East),
            })
            .unwrap();
        sim.fabric
            .router_mut(NodeCoord::new(6, 0))
            .table
            .insert(McTableEntry {
                key,
                mask: u32::MAX,
                route: RouteSet::EMPTY.with_core(1),
            })
            .unwrap();
        if fail {
            sim.fabric.fail_link(NodeCoord::new(3, 0), Direction::East);
        }
        for i in 0..n {
            sim.queue_injection(
                i * interval_ns,
                NodeCoord::new(0, 0),
                Packet::multicast(key),
            );
        }
        let mut engine = Engine::new(sim);
        engine.schedule_at(SimTime::ZERO, FabricEvent::Pump);
        engine.run_until(SimTime::new(n * interval_ns + 50_000_000));
        let sim = engine.into_model();
        let stats = sim.fabric.total_stats();
        Row {
            label,
            delivered_pct: 100.0 * sim.delivered() as f64 / n as f64,
            mean_latency_ns: sim.latency().mean(),
            reroutes: stats.emergency_reroutes,
            dropped: stats.dropped,
        }
    }

    /// The E3 table.
    pub fn run(quick: bool) -> String {
        let n = if quick { 300 } else { 3000 };
        let mut out = String::new();
        let _ = writeln!(out, "E3: emergency routing around a failed link (Fig. 8)");
        let _ = writeln!(
            out,
            "   {n} packets, 6-hop east path, link (3,0)->E killed\n"
        );
        let _ = writeln!(
            out,
            "{:<34} {:>10} {:>12} {:>10} {:>9}",
            "scenario", "delivered", "mean ns", "reroutes", "dropped"
        );
        for row in [
            scenario("healthy link", n, 500, false, true),
            scenario("failed link + emergency", n, 500, true, true),
            scenario("failed link, no emergency", n, 500, true, false),
            scenario("failed + emergency, heavy load", n, 180, true, true),
        ] {
            let _ = writeln!(
                out,
                "{:<34} {:>9.1}% {:>12.0} {:>10} {:>9}",
                row.label, row.delivered_pct, row.mean_latency_ns, row.reroutes, row.dropped
            );
        }
        let _ = writeln!(
            out,
            "\npaper: packets are redirected 'around the two other sides of one of the\nmesh triangles'; without the mechanism the router 'gives up and drops the\npacket'. The detour costs ~one extra hop of latency."
        );
        out
    }
}

/// E4 — real-time spike delivery: latency vs distance (Fig. 7, §3.1).
pub mod e04_realtime_latency {
    use super::*;
    use spinn_machine::config::MachineConfig;
    use spinn_machine::machine::NeuralMachine;
    use spinn_neuron::izhikevich::{IzhikevichNeuron, IzhikevichParams};
    use spinn_neuron::model::AnyNeuron;
    use spinn_neuron::synapse::{SynapticRow, SynapticWord};
    use spinn_noc::direction::Direction;
    use spinn_noc::mesh::NodeCoord;
    use spinn_noc::table::{McTableEntry, RouteSet};

    fn neurons(n: usize) -> Vec<AnyNeuron> {
        (0..n)
            .map(|_| IzhikevichNeuron::new(IzhikevichParams::regular_spiking()).into())
            .collect()
    }

    /// Latency percentiles for spikes crossing `hops` chips east
    /// (`hops == 0`: target on a second core of the same chip).
    pub fn at_distance(hops: u32, ms: u32) -> (u64, u64, u64) {
        let mut m = NeuralMachine::new(MachineConfig::new(16, 16));
        let src = NodeCoord::new(0, 0);
        let dst = NodeCoord::new(hops, 0);
        let dst_core = if hops == 0 { 2 } else { 1 };
        m.load_core(src, 1, neurons(60), vec![11.0; 60], 0x4000)
            .unwrap();
        m.load_core(dst, dst_core, neurons(60), vec![0.0; 60], 0x8000)
            .unwrap();
        m.router_mut(src)
            .table
            .insert(McTableEntry {
                key: 0x4000,
                mask: 0xFFFF_C000,
                route: if hops == 0 {
                    RouteSet::EMPTY.with_core(dst_core as usize)
                } else {
                    RouteSet::EMPTY.with_link(Direction::East)
                },
            })
            .unwrap();
        if hops > 0 {
            m.router_mut(dst)
                .table
                .insert(McTableEntry {
                    key: 0x4000,
                    mask: 0xFFFF_C000,
                    route: RouteSet::EMPTY.with_core(1),
                })
                .unwrap();
        }
        for i in 0..60u32 {
            let row: SynapticRow = (0..60)
                .map(|t| SynapticWord::new(80, 1, t as u16))
                .collect();
            m.set_row(dst, dst_core, 0x4000 + i, row);
        }
        let m = m.run(ms);
        let h = m.spike_latency();
        (h.percentile(50.0), h.percentile(99.0), h.max())
    }

    /// The E4 table.
    pub fn run(quick: bool) -> String {
        let ms = if quick { 100 } else { 400 };
        let mut out = String::new();
        let _ = writeln!(out, "E4: spike delivery latency vs distance (§3.1, Fig. 7)");
        let _ = writeln!(
            out,
            "   16x16 torus, 60-neuron source population, {ms} ms runs\n"
        );
        let _ = writeln!(
            out,
            "{:>6} {:>10} {:>10} {:>10} {:>16}",
            "hops", "p50 ns", "p99 ns", "max ns", "% of 1 ms budget"
        );
        for hops in [0u32, 1, 2, 4, 8] {
            let (p50, p99, max) = at_distance(hops, ms);
            let _ = writeln!(
                out,
                "{:>6} {:>10} {:>10} {:>10} {:>15.2}%",
                hops,
                p50,
                p99,
                max,
                100.0 * max as f64 / 1e6
            );
        }
        let _ = writeln!(
            out,
            "\npaper: 'the communications fabric is designed to deliver mc packets in\nsignificantly under 1 ms, whatever the distance from source to destination'\n— the worst case above uses ~a thousandth of the millisecond budget, so\nsystem-wide synchrony emerges from the 1 ms timers alone."
        );
        out
    }
}

/// E5 — flood-fill loading time (§5.2, \[15\]).
pub mod e05_flood_fill {
    use super::*;
    use spinn_machine::flood::{FloodConfig, FloodSim};

    /// The E5 table.
    pub fn run(quick: bool) -> String {
        let blocks = if quick { 32 } else { 128 };
        let mut out = String::new();
        let _ = writeln!(out, "E5: flood-fill application loading (§5.2)");
        let _ = writeln!(
            out,
            "   {blocks} blocks streamed from the host into (0,0)\n"
        );
        let _ = writeln!(
            out,
            "{:>9} {:>4} {:>12} {:>14} {:>12}",
            "machine", "k", "load (us)", "vs 4x4", "nn packets"
        );
        let mut base = None;
        for (w, k) in [
            (4u32, 1u8),
            (8, 1),
            (12, 1),
            (16, 1),
            (24, 1),
            (8, 2),
            (8, 3),
        ] {
            let mut cfg = FloodConfig::new(w, w);
            cfg.blocks = blocks;
            cfg.redundancy_k = k;
            let o = FloodSim::run(cfg);
            let t = o.load_complete_ns.expect("load completes") as f64 / 1e3;
            if base.is_none() && k == 1 {
                base = Some(t);
            }
            let _ = writeln!(
                out,
                "{:>6}x{:<2} {:>4} {:>12.1} {:>13.2}x {:>12}",
                w,
                w,
                k,
                t,
                t / base.unwrap(),
                o.nn_packets
            );
        }
        let _ = writeln!(
            out,
            "\npaper: 'load times almost independent of the size of the machine, with\ntrade-offs between load time and the degree of fault-tolerance ... the\nnumber of times a node receives each component'. 36x the chips costs only\npercent-level extra time; k=3 costs a little more than k=1."
        );
        out
    }
}

/// E6 — boot, monitor election and rescue (§5.2).
pub mod e06_boot {
    use super::*;
    use spinn_machine::boot::{BootConfig, BootSim};

    /// The E6 table.
    pub fn run(_quick: bool) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "E6: boot — self-test, monitor election, coordinates (§5.2)"
        );
        let _ = writeln!(
            out,
            "\n{:>9} {:>7} {:>9} {:>8} {:>6} {:>12} {:>12}",
            "machine", "faults", "monitors", "rescued", "dead", "coords us", "reports us"
        );
        for (w, fault) in [
            (4u32, 0.0f64),
            (8, 0.0),
            (16, 0.0),
            (24, 0.0),
            (8, 0.2),
            (8, 0.4),
            (8, 0.6),
        ] {
            let mut cfg = BootConfig::new(w, w);
            cfg.core_fault_prob = fault;
            cfg.seed = 0xE6;
            let o = BootSim::run(cfg);
            assert!(!o.election_violated);
            let _ = writeln!(
                out,
                "{:>6}x{:<2} {:>6.0}% {:>9} {:>8} {:>6} {:>12.1} {:>12.1}",
                w,
                w,
                fault * 100.0,
                o.monitors_first_round,
                o.rescued,
                o.dead_chips,
                o.coords_complete_ns.map_or(f64::NAN, |t| t as f64 / 1e3),
                o.reports_complete_ns.map_or(f64::NAN, |t| t as f64 / 1e3),
            );
        }
        let _ = writeln!(
            out,
            "\npaper: the read-sensitive register ensures 'one and only one processor is\nchosen as Monitor' (never violated above); coordinates propagate from (0,0)\nin O(diameter); failed neighbours are rescued over nn packets."
        );
        out
    }
}

/// E7 — cost-effectiveness: MIPS/mm², MIPS/W, ownership cost (§2, §3.3).
pub mod e07_cost_energy {
    use super::*;
    use spinn_machine::energy::{
        energy_cost_crossover_years, CostEffectiveness, ProcessorClass, DESKTOP_CLASS,
        SPINNAKER_NODE_CLASS,
    };
    use spinnaker::prelude::*;

    /// The E7 table.
    pub fn run(quick: bool) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "E7: cost-effectiveness metrics (§2, §3.3)\n");
        let _ = writeln!(
            out,
            "{:<28} {:>10} {:>8} {:>11} {:>10} {:>10}",
            "class", "MIPS", "W", "MIPS/mm2", "MIPS/W", "MIPS/$"
        );
        for p in [DESKTOP_CLASS, SPINNAKER_NODE_CLASS] {
            let ce = CostEffectiveness::of(&p);
            let _ = writeln!(
                out,
                "{:<28} {:>10.0} {:>8.1} {:>11.1} {:>10.0} {:>10.0}",
                p.name, p.mips, p.watts, ce.mips_per_mm2, ce.mips_per_watt, ce.mips_per_usd
            );
        }
        let d = CostEffectiveness::of(&DESKTOP_CLASS);
        let s = CostEffectiveness::of(&SPINNAKER_NODE_CLASS);
        let _ = writeln!(
            out,
            "\nratios (node/desktop): MIPS/mm2 {:.1}x, MIPS/W {:.0}x, MIPS/$ {:.0}x",
            s.mips_per_mm2 / d.mips_per_mm2,
            s.mips_per_watt / d.mips_per_watt,
            s.mips_per_usd / d.mips_per_usd
        );
        let pc = ProcessorClass {
            name: "PC",
            mips: 10_000.0,
            watts: 300.0,
            die_mm2: 400.0,
            cost_usd: 1000.0,
        };
        let _ = writeln!(
            out,
            "PC purchase-vs-energy crossover at $1/W/year: {:.1} years",
            energy_cost_crossover_years(&pc, 1.0)
        );

        // Measured: a live machine under neural load.
        let ms = if quick { 100 } else { 300 };
        let mut net = NetworkGraph::new();
        let a = net.population(
            "a",
            1200,
            NeuronKind::Izhikevich(IzhikevichParams::regular_spiking()),
            9.0,
        );
        let b = net.population(
            "b",
            1200,
            NeuronKind::Izhikevich(IzhikevichParams::regular_spiking()),
            0.0,
        );
        net.project(
            a,
            b,
            Connector::FixedFanOut(30),
            Synapses::constant(300, 2),
            7,
        );
        let done = Simulation::build(&net, SimConfig::new(4, 4))
            .unwrap()
            .run(ms);
        let meter = done.machine.meter();
        let cfg = done.machine.config();
        let dur = done.machine.duration_ns();
        let _ = writeln!(
            out,
            "\nmeasured on a simulated 4x4 machine under load ({} ms, {} spikes):",
            ms,
            done.machine.spikes().len()
        );
        let _ = writeln!(
            out,
            "  mean power {:.2} W, sustained {:.0} MIPS, {:.0} MIPS/W (vs desktop {:.0})",
            meter.mean_watts(&cfg.energy, dur),
            meter.mips(dur),
            meter.mips_per_watt(&cfg.energy, dur),
            d.mips_per_watt
        );
        let _ = writeln!(
            out,
            "\npaper: 'on energy-efficiency the embedded processors win by an order of\nmagnitude'; 'the energy cost of a PC equals the purchase cost after a\nlittle more than three years'."
        );
        out
    }
}

/// E8 — multicast vs broadcast communication loading (§4).
pub mod e08_multicast_vs_broadcast {
    use super::*;
    use spinn_map::route::tree_cost;
    use spinn_noc::mesh::{NodeCoord, Torus};
    use spinn_sim::Xoshiro256;

    /// The E8 table.
    pub fn run(_quick: bool) -> String {
        let torus = Torus::new(16, 16);
        let mut rng = Xoshiro256::seed_from_u64(0xE8);
        let mut out = String::new();
        let _ = writeln!(out, "E8: multicast vs broadcast communication loading (§4)");
        let _ = writeln!(
            out,
            "   16x16 torus, random destination chip sets, 50 trials each\n"
        );
        let _ = writeln!(
            out,
            "{:>8} {:>11} {:>10} {:>11} {:>13} {:>13}",
            "dests", "multicast", "unicast", "broadcast", "vs unicast", "vs broadcast"
        );
        for k in [1usize, 2, 4, 8, 16, 32, 64, 128] {
            let mut mc = 0u64;
            let mut uc = 0u64;
            let mut bc = 0u64;
            for _ in 0..50 {
                let mut dests = Vec::new();
                while dests.len() < k {
                    let d = NodeCoord::new(
                        rng.gen_range_usize(16) as u32,
                        rng.gen_range_usize(16) as u32,
                    );
                    if d != NodeCoord::new(0, 0) && !dests.contains(&d) {
                        dests.push(d);
                    }
                }
                let c = tree_cost(&torus, NodeCoord::new(0, 0), dests);
                mc += c.multicast_edges;
                uc += c.unicast_edges;
                bc += c.broadcast_edges;
            }
            let _ = writeln!(
                out,
                "{:>8} {:>11.1} {:>10.1} {:>11.1} {:>12.2}x {:>12.2}x",
                k,
                mc as f64 / 50.0,
                uc as f64 / 50.0,
                bc as f64 / 50.0,
                uc as f64 / mc as f64,
                bc as f64 / mc as f64,
            );
        }
        let _ = writeln!(
            out,
            "\npaper: AER 'has been used principally in bus-based broadcast\ncommunication ... but here we employ a packet-switched multicast mechanism\nto reduce total communication loading'. The tree always beats per-target\nunicast and beats broadcast until the destination set approaches the whole\nmachine."
        );
        out
    }
}

/// E9 — scaling towards the million-core machine (§1, §6).
pub mod e09_scaling {
    use super::*;
    use spinn_machine::config::MachineConfig;
    use spinnaker::prelude::*;

    /// One weak-scaling measurement row.
    pub struct Row {
        /// Mesh edge (machine is `w x w`).
        pub w: u32,
        /// Neurons simulated.
        pub neurons: u64,
        /// Synaptic events per biological second.
        pub syn_events_per_s: f64,
        /// Sustained MIPS.
        pub mips: f64,
        /// Real-time violations.
        pub violations: u64,
    }

    /// Runs the weak-scaling sweep: one independent driver->target
    /// population pair per chip, so per-core neuron count AND packet
    /// fan-in stay constant as the machine grows.
    pub fn sweep(sizes: &[u32], ms: u32) -> Vec<Row> {
        sizes
            .iter()
            .map(|&w| {
                let chips = w * w;
                let mut net = NetworkGraph::new();
                for c in 0..chips {
                    let a = net.population(
                        &format!("a{c}"),
                        8 * 128,
                        NeuronKind::Izhikevich(IzhikevichParams::regular_spiking()),
                        8.6 + 0.1 * (c % 8) as f32,
                    );
                    let b = net.population(
                        &format!("b{c}"),
                        8 * 128,
                        NeuronKind::Izhikevich(IzhikevichParams::regular_spiking()),
                        0.0,
                    );
                    net.project(
                        a,
                        b,
                        Connector::FixedFanOut(20),
                        Synapses::constant(250, 2),
                        c as u64,
                    );
                }
                let cfg = SimConfig::new(w, w).with_neurons_per_core(128);
                let done = Simulation::build(&net, cfg).unwrap().run(ms);
                let spikes = done.machine.spikes().len() as f64;
                Row {
                    w,
                    neurons: chips as u64 * 16 * 128,
                    syn_events_per_s: spikes * 20.0 / (ms as f64 / 1e3),
                    mips: done.machine.meter().mips(done.machine.duration_ns()),
                    violations: done.machine.realtime_violations(),
                }
            })
            .collect()
    }

    /// The E9 table.
    pub fn run(quick: bool) -> String {
        let (sizes, ms): (&[u32], u32) = if quick {
            (&[2, 3, 4], 80)
        } else {
            (&[2, 4, 6, 8], 200)
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "E9: weak scaling towards the million-core machine (§1, §6)"
        );
        let _ = writeln!(
            out,
            "   128 neurons/core, 16 cores/chip used, {ms} ms runs\n"
        );
        let _ = writeln!(
            out,
            "{:>8} {:>10} {:>14} {:>12} {:>11}",
            "machine", "neurons", "syn events/s", "MIPS", "violations"
        );
        for r in sweep(sizes, ms) {
            let _ = writeln!(
                out,
                "{:>5}x{:<2} {:>10} {:>14.2e} {:>12.0} {:>11}",
                r.w, r.w, r.neurons, r.syn_events_per_s, r.mips, r.violations
            );
        }
        let full = MachineConfig::million_core();
        let cores = full.chips() as f64 * full.cores_per_chip as f64;
        let _ = writeln!(
            out,
            "\nextrapolation to the full machine (256x256 chips, {:.2}M cores):",
            cores / 1e6
        );
        let _ = writeln!(
            out,
            "  {:.0} teraIPS peak ({} MIPS x {:.2}M cores) — paper: 'around 200 teraIPS'",
            cores * full.cpu_mhz as f64 / 1e6,
            full.cpu_mhz,
            cores / 1e6
        );
        let _ = writeln!(
            out,
            "  ~1000 neurons/core x {:.2}M cores ≈ 10^9 neurons — paper: 'a billion\n  spiking neurons in biological real time' (1% of the human brain)",
            cores / 1e6
        );
        let _ = writeln!(
            out,
            "\nreal time holds at every measured size (0 violations), and per-core load,\nnot machine size, determines headroom — the architecture's scaling claim."
        );
        out
    }
}

/// E10 — virtualized topology: placement ablation (§3.2).
pub mod e10_placement {
    use super::*;
    use spinnaker::prelude::*;

    /// Builds a 2-D grid-of-populations network (locally connected).
    pub fn grid_net(side: u32, pop: u32) -> NetworkGraph {
        let mut net = NetworkGraph::new();
        let mut ids = Vec::new();
        for y in 0..side {
            for x in 0..side {
                ids.push(net.population(
                    &format!("p{x}_{y}"),
                    pop,
                    NeuronKind::Izhikevich(IzhikevichParams::regular_spiking()),
                    if x == 0 && y == 0 { 10.0 } else { 0.0 },
                ));
            }
        }
        // 4-neighbour local projections, as in a cortical sheet.
        for y in 0..side {
            for x in 0..side {
                let src = ids[(y * side + x) as usize];
                for (dx, dy) in [(1i64, 0i64), (0, 1)] {
                    let nx = (x as i64 + dx).rem_euclid(side as i64) as u32;
                    let ny = (y as i64 + dy).rem_euclid(side as i64) as u32;
                    let dst = ids[(ny * side + nx) as usize];
                    net.project(
                        src,
                        dst,
                        Connector::FixedProbability(0.3),
                        Synapses::constant(400, 2),
                        (y * side + x) as u64,
                    );
                }
            }
        }
        net
    }

    /// The E10 table.
    pub fn run(quick: bool) -> String {
        let ms = if quick { 80 } else { 200 };
        let net = grid_net(6, 64);
        let mut out = String::new();
        let _ = writeln!(out, "E10: virtualized topology — placement ablation (§3.2)");
        let _ = writeln!(
            out,
            "   6x6 grid of 64-neuron populations, local projections, 8x8 machine\n"
        );
        let _ = writeln!(
            out,
            "{:<14} {:>11} {:>10} {:>9} {:>12} {:>10} {:>9}",
            "placer", "tree edges", "mean path", "entries", "packet hops", "spikes", "raster="
        );
        let mut reference: Option<Vec<spinnaker::PopSpike>> = None;
        for (label, placer) in [
            ("locality", Placer::Locality),
            ("round-robin", Placer::RoundRobin),
            ("random", Placer::Random { seed: 77 }),
        ] {
            let cfg = SimConfig::new(8, 8)
                .with_neurons_per_core(64)
                .with_placer(placer);
            let sim = Simulation::build(&net, cfg).unwrap();
            let rs = sim.route_stats().clone();
            let done = sim.run(ms);
            let mut spikes = done.spikes();
            spikes.sort_by_key(|s| (s.time_ms, s.pop.index(), s.neuron));
            let same = match &reference {
                None => {
                    reference = Some(spikes.clone());
                    true
                }
                Some(r) => *r == spikes,
            };
            let _ = writeln!(
                out,
                "{:<14} {:>11} {:>10.2} {:>9} {:>12} {:>10} {:>9}",
                label,
                rs.total_edges,
                rs.mean_path_len(),
                rs.total_entries,
                done.machine.meter().packet_hops,
                spikes.len(),
                same
            );
        }
        let _ = writeln!(
            out,
            "\npaper: 'In principle any neuron can be mapped onto any processor' — the\nspike raster is bit-identical under every placement (virtualized\ntopology); locality merely reduces routing cost ('minimize routing\ncosts, but it is not necessary to do so')."
        );
        out
    }
}

/// E11 — retina, rank-order codes and graceful degradation (§5.4).
pub mod e11_retina {
    use super::*;
    use spinn_neuron::coding::rank_order_similarity;
    use spinn_neuron::retina::{Image, RetinaLayer};
    use spinn_sim::Xoshiro256;

    /// The E11 table.
    pub fn run(quick: bool) -> String {
        let trials = if quick { 3 } else { 10 };
        let stimulus = Image::gaussian_blob(32, 32, 13.0, 19.0, 4.0);
        let scales: &[(f64, usize)] = &[(1.2, 4), (2.4, 8)];
        let healthy = RetinaLayer::new(32, 32, scales);
        let code0 = healthy.encode(&stimulus, 24);
        let recon0 = healthy.reconstruct(&code0, 0.9);
        let mut out = String::new();
        let _ = writeln!(
            out,
            "E11: retina, rank-order coding, graceful degradation (§5.4)"
        );
        let _ = writeln!(
            out,
            "   {} DoG ganglion cells at 2 overlapping scales, {trials} damage seeds\n",
            healthy.len()
        );
        let _ = writeln!(
            out,
            "{:>8} {:>12} {:>12} {:>14}",
            "killed", "code sim", "recon corr", "recon (1scale)"
        );
        for frac in [0.0, 0.05, 0.10, 0.20, 0.30, 0.50] {
            let mut sim_sum = 0.0;
            let mut corr_sum = 0.0;
            let mut sparse_sum = 0.0;
            for t in 0..trials {
                let mut rng = Xoshiro256::seed_from_u64(0xE11 + t);
                let mut r = RetinaLayer::new(32, 32, scales);
                r.kill_fraction(frac, &mut rng);
                let code = r.encode(&stimulus, 24);
                sim_sum += rank_order_similarity(&code0, &code, r.len(), 0.9);
                corr_sum += recon0.correlation(&r.reconstruct(&code, 0.9));
                // Ablation: a single sparse scale (no overlap) damaged
                // the same way.
                let mut rng = Xoshiro256::seed_from_u64(0xE11 + t);
                let mut sparse = RetinaLayer::new(32, 32, &[(2.4, 8)]);
                sparse.kill_fraction(frac, &mut rng);
                let s0 = RetinaLayer::new(32, 32, &[(2.4, 8)]);
                let ref_recon = s0.reconstruct(&s0.encode(&stimulus, 24), 0.9);
                sparse_sum +=
                    ref_recon.correlation(&sparse.reconstruct(&sparse.encode(&stimulus, 24), 0.9));
            }
            let _ = writeln!(
                out,
                "{:>7.0}% {:>12.3} {:>12.3} {:>14.3}",
                frac * 100.0,
                sim_sum / trials as f64,
                corr_sum / trials as f64,
                sparse_sum / trials as f64,
            );
        }
        let _ = writeln!(
            out,
            "\npaper: 'If a neuron fails ... a near-neighbour with a similar receptive\nfield will take over and very little information will be lost' — the\noverlapping-scale layer degrades gracefully; the single-scale ablation\n(no overlap) loses reconstruction quality faster."
        );
        out
    }
}

/// E12 — sharded parallel execution: the serial engine vs `spinn-par`
/// (the ROADMAP north star: run as fast as the host hardware allows
/// while preserving the machine's exact behaviour).
pub mod e12_parallel_execution {
    use super::*;
    use spinn_neuron::retina::{Image, RetinaLayer};
    use spinnaker::prelude::*;
    use std::time::Instant;

    /// A synfire chain (Abeles): `stages` populations of `width` neurons
    /// in a ring, stage 0 tonically driven, each stage exciting the
    /// next. Once the wave has wrapped, every stage — and therefore
    /// every chip of the machine — is active on every timestep, which
    /// is the steady-state load the parallel engine is built for.
    pub fn synfire_net(stages: u32, width: u32) -> NetworkGraph {
        let mut net = NetworkGraph::new();
        let kind = NeuronKind::Izhikevich(IzhikevichParams::regular_spiking());
        let pops: Vec<_> = (0..stages)
            .map(|i| {
                let bias = if i == 0 { 9.0 } else { 0.0 };
                net.population(&format!("s{i}"), width, kind, bias)
            })
            .collect();
        for (i, &src) in pops.iter().enumerate() {
            let dst = pops[(i + 1) % pops.len()];
            net.project(
                src,
                dst,
                Connector::FixedFanOut(12),
                Synapses::constant(600, 2),
                i as u64,
            );
        }
        net
    }

    /// A retina-driven feed-forward network: a Gaussian-blob stimulus is
    /// encoded by the E11 DoG ganglion layer, the rank-order code is
    /// quantized into `groups` bands, and each band's tonic drive
    /// follows its cells' mean DoG response (earlier rank = stronger
    /// response = stronger drive) — §5.4's vision front end as a
    /// machine workload, with the encoded stimulus content shaping the
    /// firing pattern.
    pub fn retina_net(groups: u32, width: u32) -> NetworkGraph {
        let retina = RetinaLayer::new(32, 32, &[(1.2, 4), (2.4, 8)]);
        let stimulus = Image::gaussian_blob(32, 32, 13.0, 19.0, 4.0);
        let responses = retina.responses(&stimulus);
        let code = retina.encode(&stimulus, groups as usize * 4);
        assert!(!code.is_empty(), "stimulus must excite the retina");
        let peak = responses[code.order[0] as usize].max(1e-9);
        let mut net = NetworkGraph::new();
        let kind = NeuronKind::Izhikevich(IzhikevichParams::regular_spiking());
        let out = net.population("out", width, kind, 0.0);
        for g in 0..groups {
            // Band g covers one slice of the code's rank order; its
            // drive scales with the band's mean ganglion response.
            let lo = ((g as usize * code.len()) / groups as usize).min(code.len() - 1);
            let hi = (((g as usize + 1) * code.len()) / groups as usize).clamp(lo + 1, code.len());
            let band_cells = &code.order[lo..hi];
            let mean = band_cells
                .iter()
                .map(|&i| responses[i as usize])
                .sum::<f64>()
                / band_cells.len() as f64;
            let drive = 7.0 + 3.0 * (mean / peak) as f32;
            let band = net.population(&format!("band{g}"), width, kind, drive);
            net.project(
                band,
                out,
                Connector::FixedFanOut(10),
                Synapses::constant(350, 1 + (g % 8) as u8),
                g as u64,
            );
        }
        net
    }

    /// Wall-clock ms, spike stream and `(windows, exchanged)` counters
    /// (zeros for a serial run) of one run.
    fn timed_run(
        net: &NetworkGraph,
        cfg: SimConfig,
        ms: u32,
    ) -> (f64, Vec<spinnaker::PopSpike>, (u64, u64)) {
        let sim = Simulation::build(net, cfg).expect("workload fits the machine");
        let t0 = Instant::now();
        let done = sim.run(ms);
        let wall = t0.elapsed().as_secs_f64() * 1e3;
        let par = done
            .machine
            .par_stats()
            .map_or((0, 0), |s| (s.windows, s.exchanged));
        (wall, done.spikes(), par)
    }

    /// The E12 table.
    pub fn run(quick: bool) -> String {
        let (edge, stages, width, ms) = if quick {
            (4u32, 16u32, 512u32, 150u32)
        } else {
            (8, 64, 768, 400)
        };
        let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
        let mut out = String::new();
        let _ = writeln!(
            out,
            "E12: sharded parallel execution — serial engine vs spinn-par"
        );
        let _ = writeln!(
            out,
            "   {edge}x{edge} machine, conservative windows = min link latency,\n   cross-shard spikes exchanged at window barriers\n   host parallelism: {cores} core(s) — speedup needs as many cores as threads\n"
        );
        for (label, net) in [
            ("synfire chain", synfire_net(stages, width)),
            ("retina", retina_net(stages / 2, width)),
        ] {
            // Random placement scatters core slices over the whole torus,
            // so every chip — and therefore every shard — carries load and
            // consecutive synfire stages talk across shard boundaries
            // (§3.2: placement is free, function identical).
            let base_cfg = SimConfig::new(edge, edge)
                .with_neurons_per_core(128)
                .with_placer(Placer::Random { seed: 0xE12 });
            let (t1, reference, _) = timed_run(&net, base_cfg.clone(), ms);
            let _ = writeln!(
                out,
                "{label}: {} spikes over {ms} ms biological time",
                reference.len()
            );
            let _ = writeln!(
                out,
                "{:>9} {:>12} {:>9} {:>11} {:>10} {:>11}",
                "threads", "wall ms", "speedup", "identical", "windows", "exchanged"
            );
            let _ = writeln!(
                out,
                "{:>9} {:>12.1} {:>9} {:>11} {:>10} {:>11}",
                1, t1, "1.00x", true, "-", "-"
            );
            for threads in [2u32, 4, 8] {
                let (tp, spikes, (windows, exchanged)) =
                    timed_run(&net, base_cfg.clone().with_threads(threads), ms);
                let _ = writeln!(
                    out,
                    "{:>9} {:>12.1} {:>8.2}x {:>11} {:>10} {:>11}",
                    threads,
                    tp,
                    t1 / tp,
                    spikes == reference,
                    windows,
                    exchanged
                );
            }
            let _ = writeln!(out);
        }
        let _ = writeln!(
            out,
            "the machine tolerates loose, locally-synchronized parallelism (§3.1):\nchips only interact through spike packets with >= one link delay of\nlookahead, so shards can run independently inside conservative windows\nand exchange packets at barriers — same spikes, less wall-clock."
        );
        out
    }
}

/// E13 — routing-table minimization and compiled lookup: masked-entry
/// compression in the mapper (Ordered-Covering style) against the
/// 1024-entry CAM budget (§4), and the key-indexed `CompiledTable`
/// against the linear scan on the per-packet hot path.
pub mod e13_table_minimization {
    use super::*;
    use spinn_map::place::{Placement, Placer};
    use spinn_map::route::RoutingPlan;
    use spinn_noc::compiled::CompiledTable;
    use spinn_noc::table::{McTable, McTableEntry, RouteSet};
    use spinn_sim::Xoshiro256;
    use spinnaker::prelude::*;
    use std::time::Instant;

    /// The dense random-placement workload of
    /// `tests/parallel_equivalence.rs`: an 8-stage synfire ring of
    /// 256-neuron populations scattered over a 4x4 torus.
    pub fn dense_random_net() -> NetworkGraph {
        let mut net = NetworkGraph::new();
        let kind = NeuronKind::Izhikevich(IzhikevichParams::regular_spiking());
        let pops: Vec<_> = (0..8u32)
            .map(|i| net.population(&format!("s{i}"), 256, kind, 0.0))
            .collect();
        for (i, &src) in pops.iter().enumerate() {
            let dst = pops[(i + 1) % pops.len()];
            net.project(
                src,
                dst,
                Connector::FixedFanOut(12),
                Synapses::constant(600, 2),
                i as u64,
            );
        }
        net
    }

    /// One workload's minimization measurements.
    pub struct Row {
        /// Workload label.
        pub label: &'static str,
        /// CAM entries before minimization.
        pub before: usize,
        /// CAM entries after minimization.
        pub after: usize,
        /// Largest per-chip table before.
        pub max_before: usize,
        /// Largest per-chip table after.
        pub max_after: usize,
        /// Route-equivalence violations (must be 0).
        pub violations: usize,
    }

    impl Row {
        /// Entry reduction, percent.
        pub fn saved_pct(&self) -> f64 {
            if self.before == 0 {
                0.0
            } else {
                100.0 * (self.before - self.after) as f64 / self.before as f64
            }
        }
    }

    /// Minimizes one placed workload and verifies route equivalence.
    pub fn measure(
        label: &'static str,
        net: &NetworkGraph,
        w: u32,
        h: u32,
        neurons_per_core: u32,
        placer: Placer,
    ) -> Row {
        let placement = Placement::compute(net, w, h, 20, neurons_per_core, placer)
            .expect("workload fits the machine");
        let plan = RoutingPlan::build(net, &placement, w, h);
        let min = plan.minimized();
        Row {
            label,
            before: plan.total_entries(),
            after: min.total_entries(),
            max_before: plan.stats().max_entries_per_chip,
            max_after: min.stats().max_entries_per_chip,
            violations: plan.verify_against(&min),
        }
    }

    /// Builds a CAM-shaped table of `n` distinct core-block entries.
    pub fn synthetic_table(n: usize, seed: u64) -> McTable {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let mut table = McTable::new(n.max(1024));
        let mut used = std::collections::HashSet::new();
        while table.len() < n {
            let block = (rng.gen_range_usize(1 << 21)) as u32;
            if used.insert(block) {
                let (key, mask) = spinn_map::keys::core_key_mask(block);
                table
                    .insert(McTableEntry {
                        key,
                        mask,
                        route: RouteSet::from_bits(1 << (rng.gen_range_usize(26) + 6)),
                    })
                    .expect("capacity sized to n");
            }
        }
        table
    }

    /// Lookup throughput in millions of lookups per second:
    /// `(linear scan, compiled)` over a mixed hit/miss key stream.
    pub fn lookup_throughput(entries: usize, lookups: u64) -> (f64, f64) {
        let table = synthetic_table(entries, 0xE13);
        let compiled = CompiledTable::compile(&table);
        let keys: Vec<u32> = table
            .iter()
            .map(|e| e.key | 7)
            .chain((0..entries as u32 / 4).map(|i| !(i << 11)))
            .collect();
        let mps = |f: &dyn Fn(u32) -> Option<RouteSet>| {
            let mut acc = 0u32;
            let t0 = Instant::now();
            for i in 0..lookups {
                let key = keys[(i as usize * 7919) % keys.len()];
                acc ^= f(key).map_or(0, |r| r.bits());
            }
            let dt = t0.elapsed().as_secs_f64();
            std::hint::black_box(acc);
            lookups as f64 / dt / 1e6
        };
        let linear = mps(&|k| table.lookup(k));
        let fast = mps(&|k| compiled.lookup(k));
        (linear, fast)
    }

    /// The E13 table.
    pub fn run(quick: bool) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "E13: routing-table minimization + compiled first-match lookup (§4)"
        );
        let _ = writeln!(
            out,
            "   masked-entry compression vs the 1024-entry CAM; hot-path lookup\n"
        );
        let _ = writeln!(
            out,
            "{:<26} {:>8} {:>8} {:>7} {:>10} {:>10} {:>11}",
            "workload", "entries", "minim.", "saved", "max/chip", "occupancy", "violations"
        );
        let e12 = super::e12_parallel_execution::synfire_net(16, 512);
        let retina = super::e12_parallel_execution::retina_net(8, 512);
        let dense = dense_random_net();
        for row in [
            measure(
                "synfire chain (locality)",
                &e12,
                4,
                4,
                128,
                Placer::Locality,
            ),
            measure(
                "synfire chain (random)",
                &e12,
                4,
                4,
                128,
                Placer::Random { seed: 0xE13 },
            ),
            measure("retina (locality)", &retina, 4, 4, 128, Placer::Locality),
            measure(
                "dense random placement",
                &dense,
                4,
                4,
                128,
                Placer::Random { seed: 0xD15E },
            ),
        ] {
            let _ = writeln!(
                out,
                "{:<26} {:>8} {:>8} {:>6.1}% {:>6}->{:<3} {:>9.1}% {:>11}",
                row.label,
                row.before,
                row.after,
                row.saved_pct(),
                row.max_before,
                row.max_after,
                100.0 * row.max_after as f64 / 1024.0,
                row.violations,
            );
        }
        let lookups = if quick { 200_000 } else { 2_000_000 };
        let _ = writeln!(
            out,
            "\nlookup throughput, {lookups} lookups over a synthetic CAM:\n"
        );
        let _ = writeln!(
            out,
            "{:>13} {:>14} {:>14} {:>9}",
            "entries/chip", "linear M/s", "compiled M/s", "speedup"
        );
        for entries in [64usize, 256, 1024] {
            let (linear, fast) = lookup_throughput(entries, lookups);
            let _ = writeln!(
                out,
                "{:>13} {:>14.1} {:>14.1} {:>8.1}x",
                entries,
                linear,
                fast,
                fast / linear
            );
        }
        let _ = writeln!(
            out,
            "\nthe mapper's widened ternary entries keep sibling slices of one\npopulation to a single entry per chip (Ordered-Covering style, zero\nroute-equivalence violations), and the mask-bucketed compiled lookup\nreplaces the O(entries) CAM scan with one hash probe per distinct mask\n— the win grows with occupancy, exactly where the 1024-entry budget\nbites."
        );
        out
    }
}

/// A1 — ablation: the programmable router waits (wait1/wait2) trade
/// packet loss against blocked-time under bursty congestion (§5.3's
/// "programmable delay" registers).
pub mod a01_router_waits {
    use super::*;
    use spinn_noc::direction::Direction;
    use spinn_noc::fabric::{FabricConfig, FabricEvent, FabricSim};
    use spinn_noc::mesh::NodeCoord;
    use spinn_noc::packet::Packet;
    use spinn_noc::table::{McTableEntry, RouteSet};
    use spinn_sim::{Engine, SimTime};

    /// Sends a hard burst into one link and reports the outcome for one
    /// (wait1, wait2, queue capacity) setting.
    pub fn burst(wait1: u64, wait2: u64, cap: usize, n: u64) -> (f64, f64, u64) {
        let mut cfg = FabricConfig::new(8, 8);
        cfg.router.wait1_ns = wait1;
        cfg.router.wait2_ns = wait2;
        cfg.out_queue_cap = cap;
        let mut sim = FabricSim::new(cfg);
        let key = 0xA1;
        sim.fabric
            .router_mut(NodeCoord::new(0, 0))
            .table
            .insert(McTableEntry {
                key,
                mask: u32::MAX,
                route: RouteSet::EMPTY.with_link(Direction::East),
            })
            .unwrap();
        sim.fabric
            .router_mut(NodeCoord::new(4, 0))
            .table
            .insert(McTableEntry {
                key,
                mask: u32::MAX,
                route: RouteSet::EMPTY.with_core(1),
            })
            .unwrap();
        for i in 0..n {
            // 3x the link's drain rate: a genuine overload burst.
            sim.queue_injection(i * 55, NodeCoord::new(0, 0), Packet::multicast(key));
        }
        let mut engine = Engine::new(sim);
        engine.schedule_at(SimTime::ZERO, FabricEvent::Pump);
        engine.run_until(SimTime::new(n * 55 + 100_000_000));
        let sim = engine.into_model();
        let stats = sim.fabric.total_stats();
        (
            100.0 * sim.delivered() as f64 / n as f64,
            sim.latency().mean(),
            stats.dropped,
        )
    }

    /// The A1 table.
    pub fn run(quick: bool) -> String {
        let n = if quick { 200 } else { 1000 };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "A1 (ablation): router wait1/wait2 and queue depth under a 3x burst"
        );
        let _ = writeln!(
            out,
            "   {n}-packet burst at 55 ns spacing vs a 160 ns/packet link\n"
        );
        let _ = writeln!(
            out,
            "{:>9} {:>9} {:>7} {:>11} {:>12} {:>9}",
            "wait1 ns", "wait2 ns", "queue", "delivered", "mean lat ns", "dropped"
        );
        for (w1, w2, cap) in [
            (400u64, 800u64, 4usize),
            (2_000, 10_000, 4),
            (10_000, 50_000, 4),
            (2_000, 10_000, 1),
            (2_000, 10_000, 16),
        ] {
            let (pct, lat, dropped) = burst(w1, w2, cap, n);
            let _ = writeln!(
                out,
                "{w1:>9} {w2:>9} {cap:>7} {pct:>10.1}% {lat:>12.0} {dropped:>9}"
            );
        }
        let _ = writeln!(
            out,
            "\nlonger waits and deeper queues absorb bursts at the cost of blocked\ntime; the paper leaves both programmable for exactly this trade (§5.3)."
        );
        out
    }
}

/// A2 — ablation: default-route elision (§5.2): how much of the
/// 1024-entry CAM does the straight-through trick save?
pub mod a02_default_route_elision {
    use super::*;
    use spinn_map::place::{Placement, Placer};
    use spinn_map::route::RoutingPlan;

    /// The A2 table.
    pub fn run(_quick: bool) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "A2 (ablation): default-route elision and CAM pressure (§5.2)"
        );
        let _ = writeln!(
            out,
            "   6x6 grid-of-populations network on an 8x8 machine\n"
        );
        let _ = writeln!(
            out,
            "{:<14} {:>13} {:>13} {:>9} {:>15}",
            "placer", "entries", "w/o elision", "saved", "max/chip (cap 1024)"
        );
        let net = super::e10_placement::grid_net(6, 64);
        for (label, placer) in [
            ("locality", Placer::Locality),
            ("round-robin", Placer::RoundRobin),
            ("random", Placer::Random { seed: 77 }),
        ] {
            let placement = Placement::compute(&net, 8, 8, 17, 64, placer).unwrap();
            let with = RoutingPlan::build_with_options(&net, &placement, 8, 8, true);
            let without = RoutingPlan::build_with_options(&net, &placement, 8, 8, false);
            let _ = writeln!(
                out,
                "{:<14} {:>13} {:>13} {:>8.1}% {:>15}",
                label,
                with.total_entries(),
                without.total_entries(),
                100.0 * with.stats().elided_entries as f64 / without.total_entries().max(1) as f64,
                with.stats().max_entries_per_chip,
            );
        }
        let _ = writeln!(
            out,
            "\nthe worse the placement, the longer the straight default-routed runs —\nelision is what keeps arbitrary (virtualized) placements within the\n1024-entry CAM budget."
        );
        out
    }
}

/// E14 — the event core itself: the time-bucketed calendar queue vs the
/// binary heap on the machine's characteristic dense same-tick workload
/// (Fig. 7's million-events-per-millisecond regime), plus an
/// end-to-end spikes/sec sweep across mesh sizes and thread counts.
/// This is the first experiment that also emits a machine-readable
/// [`crate::record::BenchReport`] (`BENCH_e14.json` at the repo root):
/// the start of the measured performance trajectory every later change
/// appends to.
pub mod e14_event_core {
    use super::*;
    use crate::record::{BenchRecord, BenchReport};
    use spinn_sim::{CalendarQueue, EventQueue, Queue, QueueKind, SimTime};
    use spinnaker::prelude::*;
    use std::time::Instant;

    /// Drives one queue through the machine-shaped microbenchmark:
    /// `distinct` burst instants of `per_tick` rank-colliding events
    /// each, a far-future "timer" rearm per burst (exercising the
    /// calendar's overflow tier), interleaved with full drains of the
    /// current instant. Returns `(ns per operation, checksum)` — the
    /// checksum is order-sensitive, so equal checksums mean equal pop
    /// sequences.
    fn micro<Q: Queue<u64>>(distinct: u64, per_tick: u64, spread_ns: u64) -> (f64, u64) {
        let mut q = Q::default();
        let mut checksum = 0u64;
        let mut ops = 0u64;
        let t0 = Instant::now();
        for d in 0..distinct {
            let base = d * spread_ns;
            for k in 0..per_tick {
                q.push_ranked(SimTime::new(base), u128::from(k % 7), d * per_tick + k);
            }
            q.push_ranked(SimTime::new(base + 1_000_000), 0, u64::MAX - d);
            ops += per_tick + 1;
            while q.peek_time() == Some(SimTime::new(base)) {
                let (t, v) = q.pop().expect("peeked");
                checksum = checksum
                    .wrapping_mul(0x100_0000_01b3)
                    .wrapping_add(t.ticks() ^ v);
                ops += 1;
            }
        }
        while let Some((t, v)) = q.pop() {
            checksum = checksum
                .wrapping_mul(0x100_0000_01b3)
                .wrapping_add(t.ticks() ^ v);
            ops += 1;
        }
        (t0.elapsed().as_nanos() as f64 / ops as f64, checksum)
    }

    /// One microbenchmark case on both queues, recorded with the
    /// heap/calendar throughput ratio.
    fn micro_case(
        report: &mut BenchReport,
        label: &str,
        distinct: u64,
        per_tick: u64,
        spread_ns: u64,
    ) -> (f64, f64, f64) {
        let (heap_ns, heap_sum) = micro::<EventQueue<u64>>(distinct, per_tick, spread_ns);
        let (cal_ns, cal_sum) = micro::<CalendarQueue<u64>>(distinct, per_tick, spread_ns);
        assert_eq!(
            heap_sum, cal_sum,
            "queue implementations diverged on {label}"
        );
        let ratio = heap_ns / cal_ns;
        report.push(
            BenchRecord::new("queue_microbench")
                .config("case", label)
                .config("distinct_timestamps", distinct)
                .config("events_per_timestamp", per_tick)
                .config("timestamp_spread_ns", spread_ns)
                .metric("heap_ns_per_op", heap_ns)
                .metric("calendar_ns_per_op", cal_ns)
                .metric("heap_over_calendar_ratio", ratio)
                .metric("pop_sequences_identical", true),
        );
        (heap_ns, cal_ns, ratio)
    }

    /// One end-to-end run; returns `(wall ms, spikes)` plus latency
    /// percentiles, recording everything into the report. Also used by
    /// E15, whose spikes/sec sweep must be row-compatible with the
    /// committed E14 baseline for `scripts/bench_compare.py`.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn sweep_case(
        report: &mut BenchReport,
        net: &NetworkGraph,
        edge: u32,
        threads: u32,
        queue: QueueKind,
        ms: u32,
    ) -> (f64, usize) {
        sweep_case_best_of(report, net, edge, threads, queue, ms, 1)
    }

    /// [`sweep_case`] measured `repeats` times, recording the fastest
    /// run — wall-clock on shared/oversubscribed hosts (the sweep runs
    /// more threads than a 1-core CI container has) is noisy enough
    /// that single runs swing tens of percent; best-of-N recovers the
    /// code's actual speed.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn sweep_case_best_of(
        report: &mut BenchReport,
        net: &NetworkGraph,
        edge: u32,
        threads: u32,
        queue: QueueKind,
        ms: u32,
        repeats: usize,
    ) -> (f64, usize) {
        let run_once = || {
            let cfg = SimConfig::new(edge, edge)
                .with_neurons_per_core(128)
                .with_placer(Placer::Random { seed: 0xE14 })
                .with_queue(queue)
                .with_threads(threads);
            let sim = Simulation::build(net, cfg).expect("workload fits the machine");
            let t0 = Instant::now();
            let done = sim.run(ms);
            (t0.elapsed().as_secs_f64() * 1e3, done)
        };
        let (mut wall_ms, mut done) = run_once();
        for _ in 1..repeats.max(1) {
            let (w, d) = run_once();
            if w < wall_ms {
                (wall_ms, done) = (w, d);
            }
        }
        let spikes = done.machine.spikes().len();
        let lat = done.machine.spike_latency();
        report.push(
            BenchRecord::new("end_to_end_sweep")
                .config("mesh", format!("{edge}x{edge}"))
                .config("chips", (edge * edge) as u64)
                .config("threads", threads)
                .config(
                    "effective_threads",
                    done.machine.effective_threads(threads as usize) as u64,
                )
                .config(
                    "host_cores",
                    std::thread::available_parallelism().map_or(1, |p| p.get()),
                )
                .config("queue", queue.to_string())
                .config("bio_ms", ms)
                .config("repeats", repeats.max(1))
                .metric("wall_ms", wall_ms)
                .metric("spikes", spikes)
                .metric("spikes_per_sec", spikes as f64 / (wall_ms / 1e3))
                .metric("packets_per_sec", {
                    // spikes/s is the end-to-end figure; this is the
                    // fabric one (multicast packets routed per second).
                    let rs = done.machine.router_stats();
                    (rs.mc_table_hits + rs.mc_default_routed) as f64 / (wall_ms / 1e3)
                })
                .metric("event_latency_p50_ns", lat.percentile(50.0))
                .metric("event_latency_p99_ns", lat.percentile(99.0)),
        );
        (wall_ms, spikes)
    }

    /// Builds the E14 report (the table in [`run`] formats it).
    pub fn report(quick: bool) -> BenchReport {
        let mut report = BenchReport::new(
            "E14",
            "calendar queue vs binary heap: microbenchmark + end-to-end scaling",
            quick,
        );
        let (distinct, per_tick) = if quick { (64, 3_000) } else { (128, 20_000) };
        // The headline case: everything on a handful of instants.
        micro_case(&mut report, "dense_same_tick", distinct, per_tick, 0);
        // Bursts separated like packet clusters inside a tick.
        micro_case(&mut report, "bursty_500ns", distinct, per_tick / 2, 500);
        // Sparse: few events per instant (the heap's best case).
        micro_case(&mut report, "sparse", distinct * 64, 4, 700);

        let (edges, ms): (&[u32], u32) = if quick {
            (&[8], 100)
        } else {
            (&[8, 16, 32], 200)
        };
        for &edge in edges {
            let net = super::e12_parallel_execution::synfire_net(16, 512);
            for queue in [QueueKind::Heap, QueueKind::Calendar] {
                for threads in [1u32, 2, 4, 16] {
                    sweep_case(&mut report, &net, edge, threads, queue, ms);
                }
            }
        }
        report
    }

    /// The E14 table; also writes `BENCH_e14.json` when invoked through
    /// `run_experiments` (which calls [`report`] + `write_to` itself).
    pub fn run(quick: bool) -> String {
        format_report(&report(quick))
    }

    /// Numeric field of a record's config/metrics list (NaN if absent).
    /// Shared with E15's formatter.
    pub(crate) fn num_field(keys: &[(String, crate::record::Json)], k: &str) -> f64 {
        keys.iter()
            .find(|(key, _)| key == k)
            .and_then(|(_, v)| match v {
                crate::record::Json::Num(n) => Some(*n),
                _ => None,
            })
            .unwrap_or(f64::NAN)
    }

    /// String field of a record's config/metrics list (empty if absent).
    /// Shared with E15's formatter.
    pub(crate) fn str_field(keys: &[(String, crate::record::Json)], k: &str) -> String {
        keys.iter()
            .find(|(key, _)| key == k)
            .map(|(_, v)| match v {
                crate::record::Json::Str(s) => s.clone(),
                crate::record::Json::Num(n) => format!("{n}"),
                crate::record::Json::Bool(b) => b.to_string(),
                other => format!("{other:?}"),
            })
            .unwrap_or_default()
    }

    /// Formats a report as the human-readable E14 table.
    pub fn format_report(report: &BenchReport) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "E14: event-core scaling — calendar queue vs binary heap ({} mode, commit {})",
            report.mode,
            &report.commit[..report.commit.len().min(12)],
        );
        let _ = writeln!(
            out,
            "   §3.1/Fig. 7: a million-core machine is event-driven; the queue that\n   feeds it must be O(1) on dense same-instant bursts\n"
        );
        let _ = writeln!(
            out,
            "{:<18} {:>12} {:>10} {:>14} {:>14} {:>8}",
            "microbench", "events/tick", "ticks", "heap ns/op", "cal ns/op", "ratio"
        );
        for r in report
            .records
            .iter()
            .filter(|r| r.name == "queue_microbench")
        {
            let _ = writeln!(
                out,
                "{:<18} {:>12} {:>10} {:>14.1} {:>14.1} {:>7.2}x",
                str_field(&r.config, "case"),
                num_field(&r.config, "events_per_timestamp"),
                num_field(&r.config, "distinct_timestamps"),
                num_field(&r.metrics, "heap_ns_per_op"),
                num_field(&r.metrics, "calendar_ns_per_op"),
                num_field(&r.metrics, "heap_over_calendar_ratio"),
            );
        }
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "{:<8} {:>8} {:>10} {:>10} {:>14} {:>12} {:>12}",
            "mesh", "queue", "threads", "wall ms", "spikes/sec", "p50 lat ns", "p99 lat ns"
        );
        for r in report
            .records
            .iter()
            .filter(|r| r.name == "end_to_end_sweep")
        {
            let _ = writeln!(
                out,
                "{:<8} {:>8} {:>10} {:>10.1} {:>14.0} {:>12.0} {:>12.0}",
                str_field(&r.config, "mesh"),
                str_field(&r.config, "queue"),
                num_field(&r.config, "threads"),
                num_field(&r.metrics, "wall_ms"),
                num_field(&r.metrics, "spikes_per_sec"),
                num_field(&r.metrics, "event_latency_p50_ns"),
                num_field(&r.metrics, "event_latency_p99_ns"),
            );
        }
        let _ = writeln!(
            out,
            "\nthe calendar queue turns the heap's O(log n) same-instant churn into\nO(1) bucket appends (ring of per-tick buckets + sorted overflow tier for\nthe 1 ms timer horizon) — and the golden-trace suite pins both queues to\nbit-identical spike streams, so the speedup is free of behavioural risk."
        );
        out
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn microbench_checksums_agree_across_queues() {
            for (d, k, s) in [(8, 200, 0u64), (16, 50, 500), (64, 3, 900)] {
                let (_, a) = micro::<EventQueue<u64>>(d, k, s);
                let (_, b) = micro::<CalendarQueue<u64>>(d, k, s);
                assert_eq!(a, b, "({d},{k},{s})");
            }
        }

        #[test]
        fn report_contains_required_metrics() {
            // Tiny synthetic report (not the full quick run: keep the
            // test suite fast) — exercise micro_case + formatting.
            let mut report = BenchReport::new("E14", "test", true);
            let (_, _, ratio) = micro_case(&mut report, "dense_same_tick", 8, 500, 0);
            assert!(ratio.is_finite() && ratio > 0.0);
            let text = format_report(&report);
            assert!(text.contains("dense_same_tick"), "{text}");
            let json = report.to_json_string();
            assert!(json.contains("heap_over_calendar_ratio"), "{json}");
        }
    }
}

/// E15 — the build-and-run memory model: streaming network expansion
/// into per-core master-population-table + contiguous-arena synaptic
/// matrices (§5.2/§6), measured against a faithful port of the
/// seed's materialize-then-hash loader on a 100k-neuron
/// `FixedProbability` workload. Emits `BENCH_e15.json`, whose
/// end-to-end sweep rows are config-compatible with the committed
/// `BENCH_e14.json` baseline so `scripts/bench_compare.py` can gate
/// spikes/sec regressions.
pub mod e15_memory_model {
    use super::*;
    use crate::record::{BenchRecord, BenchReport};
    use spinn_sim::Xoshiro256;
    use spinnaker::map::loader::LoadedApp;
    use spinnaker::map::place::Placement;
    use spinnaker::neuron::synapse::SynapticRow;
    use spinnaker::prelude::*;
    use std::collections::HashMap;
    use std::time::Instant;

    /// The workload: `pops` populations of `size` neurons in a chain of
    /// `FixedProbability(p)` projections — the paper's "sparse random
    /// connectivity at scale" regime. Quick mode uses 20 x 5,000 =
    /// 100,000 neurons.
    pub fn prob_net(pops: u32, size: u32, p: f64) -> NetworkGraph {
        let kind = NeuronKind::Izhikevich(IzhikevichParams::regular_spiking());
        let mut net = NetworkGraph::new();
        let ids: Vec<_> = (0..pops)
            .map(|i| net.population(&format!("p{i}"), size, kind, if i == 0 { 9.0 } else { 0.0 }))
            .collect();
        for (i, w) in ids.windows(2).enumerate() {
            net.project(
                w[0],
                w[1],
                Connector::FixedProbability(p),
                Synapses::constant(450, 1 + (i % 4) as u8),
                0xE15 ^ i as u64,
            );
        }
        net
    }

    /// A faithful port of the seed's expansion path, kept as the
    /// measured baseline: materialize every projection into a
    /// `Vec<(u32, u32)>` edge list via per-pair Bernoulli trials, then
    /// scatter into per-core `HashMap<u32, SynapticRow>` with a linear
    /// slice scan per pair. Returns (synapses, estimated resident
    /// bytes).
    fn legacy_build(net: &NetworkGraph, placement: &Placement) -> (u64, u64) {
        let mut images: Vec<HashMap<u32, SynapticRow>> =
            placement.slices().iter().map(|_| HashMap::new()).collect();
        for proj in net.projections() {
            let n_src = net.pop(proj.src).size;
            let n_dst = net.pop(proj.dst).size;
            for dst_slice in placement.slices_of(proj.dst) {
                let img_idx = placement
                    .slices()
                    .iter()
                    .position(|sl| sl == dst_slice)
                    .expect("slice exists");
                for src_slice in placement.slices_of(proj.src) {
                    for n in src_slice.lo..src_slice.hi {
                        let key = spinnaker::map::keys::neuron_key(
                            src_slice.global_core,
                            n - src_slice.lo,
                        );
                        images[img_idx].entry(key).or_default();
                    }
                }
            }
            // The seed's `Projection::pairs`: a full Bernoulli trial
            // per (src, dst) pair, materialized before loading.
            let mut expand_rng = Xoshiro256::seed_from_u64(proj.seed ^ 0x50C1_A11E);
            let mut pairs = Vec::new();
            if let Connector::FixedProbability(p) = proj.connector {
                for s in 0..n_src {
                    for d in 0..n_dst {
                        if expand_rng.gen_bool(p) {
                            pairs.push((s, d));
                        }
                    }
                }
            } else {
                pairs = proj.pairs(n_src, n_dst);
            }
            let mut rng = Xoshiro256::seed_from_u64(proj.seed ^ 0x005E_ED0F_5EED);
            for (s, d) in pairs {
                let (w, delay) = proj.synapses.sample(&mut rng);
                let src_slice = placement.locate(proj.src, s);
                let dst_slice = placement.locate(proj.dst, d);
                let src_key =
                    spinnaker::map::keys::neuron_key(src_slice.global_core, s - src_slice.lo);
                let img_idx = placement
                    .slices()
                    .iter()
                    .position(|sl| sl == dst_slice)
                    .expect("slice exists");
                let local_target = (d - dst_slice.lo) as u16;
                images[img_idx].entry(src_key).or_default().push(
                    spinnaker::neuron::synapse::SynapticWord::new(w, delay, local_target),
                );
            }
        }
        let synapses: u64 = images
            .iter()
            .flat_map(|m| m.values())
            .map(|r| r.len() as u64)
            .sum();
        // Resident estimate: 4-byte words plus per-row Vec header +
        // hash-table slot (~48 B/row with load factor and padding).
        let rows: u64 = images.iter().map(|m| m.len() as u64).sum();
        (synapses, synapses * 4 + rows * 48)
    }

    /// The E15 report: build-time + resident-bytes comparison, an
    /// end-to-end spikes/sec sweep row-compatible with E14, and the
    /// structured per-chip occupancy section.
    pub fn report(quick: bool) -> BenchReport {
        let mut report = BenchReport::new(
            "E15",
            "streaming expansion + arena-backed synaptic matrices vs materialize-and-hash",
            quick,
        );
        let (pops, size, p) = if quick {
            (20u32, 5_000u32, 0.02)
        } else {
            (25, 8_000, 0.015)
        };
        let net = prob_net(pops, size, p);
        let total_neurons = net.total_neurons();
        let cfg = SimConfig::new(8, 8).with_neurons_per_core(256);

        // Loader-only apples-to-apples: same placement, old vs new
        // expansion + image assembly.
        let placement = Placement::compute(&net, 8, 8, 20, 256, Placer::Locality).unwrap();
        let t0 = Instant::now();
        let (legacy_synapses, legacy_bytes) = legacy_build(&net, &placement);
        let legacy_ms = t0.elapsed().as_secs_f64() * 1e3;
        let t0 = Instant::now();
        let app = LoadedApp::build(&net, &placement);
        let stream_ms = t0.elapsed().as_secs_f64() * 1e3;
        let arena_resident: u64 = app.images.iter().map(|i| i.matrix.resident_bytes()).sum();
        let synapses = app.total_synapses();

        // Full pipeline: place -> route -> minimize -> stream-load.
        let t0 = Instant::now();
        let sim = Simulation::build(&net, cfg.clone()).expect("workload fits an 8x8 machine");
        let full_build_ms = t0.elapsed().as_secs_f64() * 1e3;

        report.push(
            BenchRecord::new("build_memory_model")
                .config("neurons", total_neurons)
                .config("populations", pops)
                .config("fixed_probability", p)
                .config("mesh", "8x8")
                .metric("synapses", synapses)
                .metric("legacy_loader_ms", legacy_ms)
                .metric("streaming_loader_ms", stream_ms)
                .metric("loader_speedup", legacy_ms / stream_ms)
                .metric("full_build_ms", full_build_ms)
                .metric("build_speedup_vs_legacy_loader", legacy_ms / full_build_ms)
                .metric("arena_resident_bytes", arena_resident)
                .metric("legacy_resident_bytes_est", legacy_bytes)
                .metric(
                    "bytes_per_synapse",
                    arena_resident as f64 / synapses.max(1) as f64,
                )
                .metric("sdram_bytes", app.total_sdram_bytes())
                // The streaming expansion samples geometric gaps rather
                // than per-pair Bernoulli trials, so the two realized
                // edge sets differ while sharing the same distribution;
                // the counts must agree statistically.
                .metric(
                    "legacy_over_streaming_synapses",
                    legacy_synapses as f64 / synapses.max(1) as f64,
                ),
        );

        // Short run of the large net: spikes/sec at the 100k scale plus
        // the structured per-chip occupancy section.
        let run_ms = if quick { 20 } else { 50 };
        let t0 = Instant::now();
        let done = sim.run(run_ms);
        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        let occ = done.occupancy();
        let loaded: Vec<_> = occ.iter().filter(|c| c.loaded_cores > 0).collect();
        let worst = loaded
            .iter()
            .max_by_key(|c| c.sdram_bytes)
            .expect("cores loaded");
        report.push(
            BenchRecord::new("chip_occupancy")
                .config("neurons", total_neurons)
                .config("bio_ms", run_ms)
                .metric("loaded_chips", loaded.len())
                .metric(
                    "spikes_per_sec",
                    done.machine.spikes().len() as f64 / (wall_ms / 1e3),
                )
                .metric(
                    "dropped_packets",
                    occ.iter().map(|c| c.dropped_packets).sum::<u64>(),
                )
                .metric(
                    "sdram_bytes_total",
                    occ.iter().map(|c| c.sdram_bytes).sum::<u64>(),
                )
                .metric("sdram_bytes_worst_chip", worst.sdram_bytes)
                .metric(
                    "sdram_worst_chip_pct",
                    100.0 * worst.sdram_bytes as f64 / worst.sdram_capacity as f64,
                )
                .metric(
                    "dtcm_bytes_total",
                    occ.iter().map(|c| c.dtcm_bytes).sum::<u64>(),
                )
                .metric("dtcm_bytes_worst_chip", worst.dtcm_bytes),
        );

        // The E14-compatible spikes/sec sweep (same workload, same
        // configs) — the rows `scripts/bench_compare.py` diffs against
        // the committed baseline.
        let (edges, ms): (&[u32], u32) = if quick {
            (&[8], 100)
        } else {
            (&[8, 16, 32], 200)
        };
        for &edge in edges {
            let sweep_net = super::e12_parallel_execution::synfire_net(16, 512);
            for queue in [QueueKind::Heap, QueueKind::Calendar] {
                for threads in [1u32, 2, 4, 16] {
                    // Best-of-3: thread>1 rows on an oversubscribed
                    // host swing tens of percent run to run; the gate
                    // in scripts/bench_compare.py needs stable rows.
                    super::e14_event_core::sweep_case_best_of(
                        &mut report,
                        &sweep_net,
                        edge,
                        threads,
                        queue,
                        ms,
                        3,
                    );
                }
            }
        }
        report
    }

    /// The E15 table.
    pub fn run(quick: bool) -> String {
        format_report(&report(quick))
    }

    /// Formats a report as the human-readable E15 table.
    pub fn format_report(report: &BenchReport) -> String {
        use super::e14_event_core::{num_field as num, str_field};
        let mut out = String::new();
        let _ = writeln!(
            out,
            "E15: build-and-run memory model — streaming expansion + synaptic arena ({} mode, commit {})",
            report.mode,
            &report.commit[..report.commit.len().min(12)],
        );
        let _ = writeln!(
            out,
            "   §5.2/§6: synaptic state as contiguous per-source rows behind a master\n   population table, constructed without ever materializing the edge list\n"
        );
        for r in report
            .records
            .iter()
            .filter(|r| r.name == "build_memory_model")
        {
            let _ = writeln!(
                out,
                "{:>12.0} neurons, {:>11.0} synapses (FixedProbability {:.3})",
                num(&r.config, "neurons"),
                num(&r.metrics, "synapses"),
                num(&r.config, "fixed_probability"),
            );
            let _ = writeln!(
                out,
                "  loader:     legacy {:>9.1} ms   streaming {:>8.1} ms   speedup {:>5.1}x",
                num(&r.metrics, "legacy_loader_ms"),
                num(&r.metrics, "streaming_loader_ms"),
                num(&r.metrics, "loader_speedup"),
            );
            let _ = writeln!(
                out,
                "  full build: {:>8.1} ms (place->route->minimize->stream-load), {:>5.1}x vs legacy loader alone",
                num(&r.metrics, "full_build_ms"),
                num(&r.metrics, "build_speedup_vs_legacy_loader"),
            );
            let _ = writeln!(
                out,
                "  resident:   arena {:>11.0} B ({:.2} B/synapse)   legacy est {:>11.0} B",
                num(&r.metrics, "arena_resident_bytes"),
                num(&r.metrics, "bytes_per_synapse"),
                num(&r.metrics, "legacy_resident_bytes_est"),
            );
        }
        for r in report.records.iter().filter(|r| r.name == "chip_occupancy") {
            let _ = writeln!(
                out,
                "  occupancy:  {:.0} chips loaded, worst SDRAM {:.0} B ({:.2}%), {:.0} dropped, {:>9.0} spikes/s",
                num(&r.metrics, "loaded_chips"),
                num(&r.metrics, "sdram_bytes_worst_chip"),
                num(&r.metrics, "sdram_worst_chip_pct"),
                num(&r.metrics, "dropped_packets"),
                num(&r.metrics, "spikes_per_sec"),
            );
        }
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "{:<8} {:>8} {:>10} {:>10} {:>14}",
            "mesh", "queue", "threads", "wall ms", "spikes/sec"
        );
        for r in report
            .records
            .iter()
            .filter(|r| r.name == "end_to_end_sweep")
        {
            let _ = writeln!(
                out,
                "{:<8} {:>8} {:>10} {:>10.1} {:>14.0}",
                str_field(&r.config, "mesh"),
                str_field(&r.config, "queue"),
                num(&r.config, "threads"),
                num(&r.metrics, "wall_ms"),
                num(&r.metrics, "spikes_per_sec"),
            );
        }
        let _ = writeln!(
            out,
            "\nthe master population table is a sorted (key, mask) array over one\ncontiguous CSR arena per core: packet handling binary-searches ~dozens of\nentries instead of hashing, STDP rewrites weights in the arena in place,\nand the golden-trace suite pins the refactor to bit-identical spikes.\ncompare against the committed baseline: scripts/bench_compare.py\nBENCH_e15.json BENCH_e14.json"
        );
        out
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn legacy_and_streaming_loaders_agree_statistically() {
            // Geometric-gap streaming and per-pair Bernoulli realize
            // *different* edge sets from the same distribution: counts
            // must agree with the binomial expectation, not exactly.
            let net = prob_net(4, 120, 0.1);
            let placement = Placement::compute(&net, 4, 4, 17, 64, Placer::Locality).unwrap();
            let (legacy_synapses, legacy_bytes) = legacy_build(&net, &placement);
            let app = LoadedApp::build(&net, &placement);
            let expected = 3.0 * 120.0 * 120.0 * 0.1;
            for got in [legacy_synapses, app.total_synapses()] {
                let got = got as f64;
                assert!(
                    (got - expected).abs() < 0.2 * expected,
                    "count {got} vs expectation {expected}"
                );
            }
            assert!(legacy_bytes > 0);
        }

        #[test]
        fn report_smoke_on_a_tiny_workload() {
            // Not the full quick run (CI time): exercise the formatter
            // against a synthetic record.
            let mut report = BenchReport::new("E15", "test", true);
            report.push(
                BenchRecord::new("build_memory_model")
                    .config("neurons", 100u64)
                    .config("fixed_probability", 0.1f64)
                    .metric("synapses", 42u64)
                    .metric("legacy_loader_ms", 2.0f64)
                    .metric("streaming_loader_ms", 1.0f64)
                    .metric("loader_speedup", 2.0f64)
                    .metric("full_build_ms", 1.5f64)
                    .metric("build_speedup_vs_legacy_loader", 1.3f64)
                    .metric("arena_resident_bytes", 168u64)
                    .metric("bytes_per_synapse", 4.0f64)
                    .metric("legacy_resident_bytes_est", 2184u64),
            );
            let text = format_report(&report);
            assert!(text.contains("speedup"), "{text}");
            assert!(report.to_json_string().contains("loader_speedup"));
        }
    }
}

/// E16 — checkpointable run sessions: warm multi-run serving against
/// one resident build vs rebuild-per-job, and the cost of a
/// deterministic checkpoint → serialize → rebuild → restore cycle, on
/// the E15 100k-neuron `FixedProbability` workload. Emits
/// `BENCH_e16.json` with end-to-end sweep rows config-compatible with
/// E14/E15 so `scripts/bench_compare.py` can chain the trajectory
/// E14 → E15 → E16.
pub mod e16_sessions {
    use super::*;
    use crate::record::{BenchRecord, BenchReport};
    use spinnaker::prelude::*;
    use spinnaker::RunSession;
    use std::time::Instant;

    /// Per-job Poisson rate of the serving stream (a parameter sweep:
    /// each job probes the resident network at a different drive).
    fn job_rate_hz(job: u32) -> f64 {
        4.0 + 2.0 * job as f64
    }

    /// The serving workload: E15's 100k-neuron `FixedProbability` chain
    /// with the tonic bias removed and sub-critical synaptic weights —
    /// activity is *stimulus-driven and transient*, as a served
    /// network's is, so every job costs what its own probe injects
    /// rather than what a free-running (or reverberating) network
    /// accumulates between jobs.
    pub fn serving_net(pops: u32, size: u32, p: f64) -> NetworkGraph {
        let kind = NeuronKind::Izhikevich(IzhikevichParams::regular_spiking());
        let mut net = NetworkGraph::new();
        let ids: Vec<_> = (0..pops)
            .map(|i| net.population(&format!("p{i}"), size, kind, 0.0))
            .collect();
        for (i, w) in ids.windows(2).enumerate() {
            net.project(
                w[0],
                w[1],
                Connector::FixedProbability(p),
                Synapses::constant(520, 1 + (i % 4) as u8),
                0xE16 ^ i as u64,
            );
        }
        net
    }

    /// The E16 report: amortized build cost of warm serving,
    /// checkpoint/restore overhead with a bit-exactness verdict, and
    /// the E14-compatible spikes/sec sweep.
    pub fn report(quick: bool) -> BenchReport {
        let mut report = BenchReport::new(
            "E16",
            "checkpointable run sessions: warm multi-run serving vs rebuild-per-job",
            quick,
        );
        let (pops, size, p) = if quick {
            (20u32, 5_000u32, 0.02)
        } else {
            (25, 8_000, 0.015)
        };
        let net = serving_net(pops, size, p);
        let total_neurons = net.total_neurons();
        let input = PopulationId::from_index(0);
        let cfg = SimConfig::new(8, 8).with_neurons_per_core(256);
        let (jobs, job_ms) = if quick { (6u32, 5u32) } else { (10, 10) };

        // Warm path: build once, serve every job from the resident
        // session (each job swaps the stimulus program and drains its
        // own spikes).
        let t0 = Instant::now();
        let sim = Simulation::build(&net, cfg.clone()).expect("workload fits an 8x8 machine");
        let build_ms = t0.elapsed().as_secs_f64() * 1e3;
        let mut session = sim.into_session();
        let t0 = Instant::now();
        let mut warm_spikes = 0u64;
        for job in 0..jobs {
            session.clear_stimulus_sources();
            session.add_poisson(input, job_rate_hz(job), job as u64 + 1);
            session.run_for(job_ms);
            warm_spikes += session.take_spikes().len() as u64;
        }
        let warm_serve_ms = t0.elapsed().as_secs_f64() * 1e3;
        let warm_total_ms = build_ms + warm_serve_ms;

        // Cold path: the pre-session workflow — rebuild the machine for
        // every job.
        let t0 = Instant::now();
        let mut cold_spikes = 0u64;
        for job in 0..jobs {
            let mut s = Simulation::build(&net, cfg.clone())
                .expect("workload fits an 8x8 machine")
                .into_session();
            s.add_poisson(input, job_rate_hz(job), job as u64 + 1);
            s.run_for(job_ms);
            cold_spikes += s.take_spikes().len() as u64;
        }
        let cold_total_ms = t0.elapsed().as_secs_f64() * 1e3;

        report.push(
            BenchRecord::new("warm_serving")
                .config("neurons", total_neurons)
                .config("mesh", "8x8")
                .config("jobs", jobs)
                .config("job_bio_ms", job_ms)
                .metric("build_ms", build_ms)
                .metric("warm_serve_ms", warm_serve_ms)
                .metric("warm_total_ms", warm_total_ms)
                .metric("cold_total_ms", cold_total_ms)
                .metric("warm_speedup", cold_total_ms / warm_total_ms)
                .metric("warm_ms_per_job", warm_total_ms / jobs as f64)
                .metric("cold_ms_per_job", cold_total_ms / jobs as f64)
                .metric("warm_spikes", warm_spikes)
                .metric("cold_spikes", cold_spikes),
        );

        // Checkpoint → serialize → rebuild → restore, with a
        // bit-exactness verdict: both the live session and the restored
        // one run the same extra probe segment and must produce
        // identical spikes.
        let t0 = Instant::now();
        let snapshot = session.checkpoint();
        let checkpoint_ms = t0.elapsed().as_secs_f64() * 1e3;
        let t0 = Instant::now();
        let mut resumed = RunSession::restore(&net, cfg.clone(), &snapshot)
            .expect("snapshot restores onto a fresh build");
        let restore_ms = t0.elapsed().as_secs_f64() * 1e3;
        let probe_ms = job_ms;
        session.clear_stimulus_sources();
        session.add_poisson(input, 120.0, 0xE16);
        session.run_for(probe_ms);
        resumed.clear_stimulus_sources();
        resumed.add_poisson(input, 120.0, 0xE16);
        resumed.run_for(probe_ms);
        let bit_exact = session.machine().spikes() == resumed.machine().spikes()
            && session.elapsed_ms() == resumed.elapsed_ms();
        report.push(
            BenchRecord::new("snapshot_restore")
                .config("neurons", total_neurons)
                .config("elapsed_bio_ms", session.elapsed_ms())
                .metric("snapshot_bytes", snapshot.len())
                .metric(
                    "snapshot_bytes_per_neuron",
                    snapshot.len() as f64 / total_neurons as f64,
                )
                .metric("checkpoint_ms", checkpoint_ms)
                .metric("restore_ms", restore_ms)
                .metric("restore_over_build", restore_ms / build_ms)
                .metric("resumed_bit_exact", bit_exact),
        );

        // The E14/E15-compatible spikes/sec sweep — the rows
        // `scripts/bench_compare.py` chains across committed baselines.
        let (edges, ms): (&[u32], u32) = if quick {
            (&[8], 100)
        } else {
            (&[8, 16, 32], 200)
        };
        for &edge in edges {
            let sweep_net = super::e12_parallel_execution::synfire_net(16, 512);
            for queue in [QueueKind::Heap, QueueKind::Calendar] {
                for threads in [1u32, 2, 4, 16] {
                    super::e14_event_core::sweep_case_best_of(
                        &mut report,
                        &sweep_net,
                        edge,
                        threads,
                        queue,
                        ms,
                        3,
                    );
                }
            }
        }
        report
    }

    /// The E16 table.
    pub fn run(quick: bool) -> String {
        format_report(&report(quick))
    }

    /// Formats a report as the human-readable E16 table.
    pub fn format_report(report: &BenchReport) -> String {
        use super::e14_event_core::{num_field as num, str_field};
        let mut out = String::new();
        let _ = writeln!(
            out,
            "E16: checkpointable run sessions — warm serving + deterministic pause/resume ({} mode, commit {})",
            report.mode,
            &report.commit[..report.commit.len().min(12)],
        );
        let _ = writeln!(
            out,
            "   §5.2 shared-facility operation: load a network once, serve a stream of run\n   segments from the resident fabric, checkpoint/resume bit-exactly\n"
        );
        for r in report.records.iter().filter(|r| r.name == "warm_serving") {
            let _ = writeln!(
                out,
                "{:>12.0} neurons, {:.0} jobs x {:.0} ms biological time each",
                num(&r.config, "neurons"),
                num(&r.config, "jobs"),
                num(&r.config, "job_bio_ms"),
            );
            let _ = writeln!(
                out,
                "  build once: {:>8.1} ms   warm serving total {:>8.1} ms ({:>6.1} ms/job)",
                num(&r.metrics, "build_ms"),
                num(&r.metrics, "warm_total_ms"),
                num(&r.metrics, "warm_ms_per_job"),
            );
            let _ = writeln!(
                out,
                "  rebuild-per-job total {:>8.1} ms ({:>6.1} ms/job)   warm speedup {:>5.1}x",
                num(&r.metrics, "cold_total_ms"),
                num(&r.metrics, "cold_ms_per_job"),
                num(&r.metrics, "warm_speedup"),
            );
        }
        for r in report
            .records
            .iter()
            .filter(|r| r.name == "snapshot_restore")
        {
            let _ = writeln!(
                out,
                "  checkpoint: {:>9.0} B snapshot ({:.1} B/neuron) in {:>6.1} ms;  restore {:>7.1} ms ({:.1}x build);  resumed bit-exact: {}",
                num(&r.metrics, "snapshot_bytes"),
                num(&r.metrics, "snapshot_bytes_per_neuron"),
                num(&r.metrics, "checkpoint_ms"),
                num(&r.metrics, "restore_ms"),
                num(&r.metrics, "restore_over_build"),
                str_field(&r.metrics, "resumed_bit_exact"),
            );
        }
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "{:<8} {:>8} {:>10} {:>10} {:>14}",
            "mesh", "queue", "threads", "wall ms", "spikes/sec"
        );
        for r in report
            .records
            .iter()
            .filter(|r| r.name == "end_to_end_sweep")
        {
            let _ = writeln!(
                out,
                "{:<8} {:>8} {:>10} {:>10.1} {:>14.0}",
                str_field(&r.config, "mesh"),
                str_field(&r.config, "queue"),
                num(&r.config, "threads"),
                num(&r.metrics, "wall_ms"),
                num(&r.metrics, "spikes_per_sec"),
            );
        }
        let _ = writeln!(
            out,
            "\none resident machine serves the whole job stream: the place->route->minimize->\nstream-load cost is paid once, checkpoints capture only dynamic state (STDP\narena deltas, in-flight events, RNG streams), and tests/session_resume.rs pins\nevery cut to bit-exact replay. trajectory: scripts/bench_compare.py --chain\nBENCH_e14.json BENCH_e15.json BENCH_e16.json"
        );
        out
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn formatter_smoke_on_synthetic_records() {
            let mut report = BenchReport::new("E16", "test", true);
            report.push(
                BenchRecord::new("warm_serving")
                    .config("neurons", 1000u64)
                    .config("jobs", 4u32)
                    .config("job_bio_ms", 5u32)
                    .metric("build_ms", 100.0f64)
                    .metric("warm_total_ms", 140.0f64)
                    .metric("cold_total_ms", 440.0f64)
                    .metric("warm_speedup", 3.5f64)
                    .metric("warm_ms_per_job", 35.0f64)
                    .metric("cold_ms_per_job", 110.0f64),
            );
            report.push(
                BenchRecord::new("snapshot_restore")
                    .config("neurons", 1000u64)
                    .metric("snapshot_bytes", 4096u64)
                    .metric("snapshot_bytes_per_neuron", 4.1f64)
                    .metric("checkpoint_ms", 1.0f64)
                    .metric("restore_ms", 101.0f64)
                    .metric("restore_over_build", 1.01f64)
                    .metric("resumed_bit_exact", true),
            );
            let text = format_report(&report);
            assert!(text.contains("warm speedup"), "{text}");
            assert!(text.contains("bit-exact"), "{text}");
            assert!(report.to_json_string().contains("warm_speedup"));
        }

        #[test]
        fn warm_serving_beats_rebuilds_on_a_small_workload() {
            // A miniature version of the headline claim (the committed
            // BENCH_e16.json carries the 100k-neuron figures): the
            // session serves jobs bit-deterministically and the
            // snapshot round-trip is exact.
            let net = super::super::e15_memory_model::prob_net(4, 200, 0.05);
            let input = PopulationId::from_index(0);
            let cfg = SimConfig::new(4, 4).with_neurons_per_core(64);
            let mut session = Simulation::build(&net, cfg.clone()).unwrap().into_session();
            session.add_poisson(input, 200.0, 1);
            session.run_for(10);
            let snap = session.checkpoint();
            let mut resumed = RunSession::restore(&net, cfg, &snap).unwrap();
            session.add_poisson(input, 90.0, 2);
            resumed.add_poisson(input, 90.0, 2);
            session.run_for(10);
            resumed.run_for(10);
            assert_eq!(session.machine().spikes(), resumed.machine().spikes());
        }
    }
}

/// E17 — low-overhead telemetry: the per-shard phase breakdown
/// (ns/neuron, ns/synaptic-event, barrier-wait share) of the E15
/// 100k-neuron workload at 1/4/16 threads, the counters-on overhead of
/// the E14 sweep workload, and a determinism verdict (bit-identical
/// spikes in every observability mode). Emits `BENCH_e17.json`; render
/// or gate the artifact with `scripts/telemetry_report.py`.
pub mod e17_telemetry {
    use super::*;
    use crate::record::{BenchRecord, BenchReport, Json};
    use spinn_obs::{Counter, Phase};
    use spinnaker::prelude::*;
    use spinnaker::Completed;
    use std::time::Instant;

    /// Runs the phase-breakdown workload once under full telemetry.
    fn run_traced(net: &NetworkGraph, threads: u32, ms: u32) -> (f64, Completed) {
        let cfg = SimConfig::new(8, 8)
            .with_neurons_per_core(256)
            .with_threads(threads)
            .with_observability(ObsMode::CountersAndTrace);
        let sim = Simulation::build(net, cfg).expect("workload fits an 8x8 machine");
        let t0 = Instant::now();
        let done = sim.run(ms);
        (t0.elapsed().as_secs_f64() * 1e3, done)
    }

    /// Best-of-`repeats` spikes/sec of the E14 sweep workload at the
    /// given observability mode (the overhead measurement).
    fn best_spikes_per_sec(
        net: &NetworkGraph,
        threads: u32,
        ms: u32,
        repeats: usize,
        obs: ObsMode,
    ) -> f64 {
        let mut best = 0.0f64;
        for _ in 0..repeats.max(1) {
            let cfg = SimConfig::new(8, 8)
                .with_neurons_per_core(128)
                .with_placer(Placer::Random { seed: 0xE14 })
                .with_queue(QueueKind::Calendar)
                .with_threads(threads)
                .with_observability(obs);
            let sim = Simulation::build(net, cfg).expect("workload fits an 8x8 machine");
            let t0 = Instant::now();
            let done = sim.run(ms);
            let sps = done.machine.spikes().len() as f64 / t0.elapsed().as_secs_f64();
            best = best.max(sps);
        }
        best
    }

    /// The E17 report: phase-breakdown rows, per-shard skew rows, the
    /// counters-on overhead rows, and the determinism verdict.
    pub fn report(quick: bool) -> BenchReport {
        let mut report = BenchReport::new(
            "E17",
            "low-overhead telemetry: phase breakdown, shard skew, counter overhead",
            quick,
        );

        // Phase breakdown: the E15 100k-neuron FixedProbability chain
        // under full telemetry, across thread counts.
        let (pops, size, p) = if quick {
            (20u32, 5_000u32, 0.02)
        } else {
            (25, 8_000, 0.015)
        };
        let net = super::e15_memory_model::prob_net(pops, size, p);
        let total_neurons = net.total_neurons();
        let ms = if quick { 30u32 } else { 100 };
        for threads in [1u32, 4, 16] {
            let (wall_ms, done) = run_traced(&net, threads, ms);
            let t = done.machine.telemetry();
            report.push(
                BenchRecord::new("phase_breakdown")
                    .config("neurons", total_neurons)
                    .config("mesh", "8x8")
                    .config("threads", threads)
                    .config("bio_ms", ms)
                    .config("obs", t.mode().to_string())
                    .metric("wall_ms", wall_ms)
                    .metric("spikes", done.machine.spikes().len())
                    .metric("events", t.total(Counter::Events))
                    .metric("synaptic_events", t.total(Counter::SynapticEvents))
                    .metric("ns_per_neuron", t.ns_per_neuron())
                    .metric("ns_per_synaptic_event", t.ns_per_synaptic_event())
                    .metric("barrier_wait_share", t.barrier_wait_share())
                    .metric("shard_skew", t.shard_skew())
                    .metric("queue_peak", t.total(Counter::QueuePeak))
                    .metric("trace_len", t.trace().count())
                    .metric("trace_overwritten", t.trace_overwritten()),
            );
            report.push(
                BenchRecord::new("shard_skew")
                    .config("threads", threads)
                    .config("bio_ms", ms)
                    .metric("skew", t.shard_skew())
                    .metric(
                        "per_shard_events",
                        Json::Arr(
                            t.shards()
                                .iter()
                                .map(|s| Json::Num(s.counters[Counter::Events as usize] as f64))
                                .collect(),
                        ),
                    )
                    .metric(
                        "per_shard_barrier_ns",
                        Json::Arr(
                            t.shards()
                                .iter()
                                .map(|s| {
                                    Json::Num(s.phases[Phase::BarrierWait as usize].sum_ns as f64)
                                })
                                .collect(),
                        ),
                    ),
            );
        }

        // Counters-on overhead: the E14 sweep workload, best-of-N,
        // Disabled vs Counters. The CI gate
        // (`scripts/telemetry_report.py --check-overhead`) holds every
        // row's overhead_frac under its bound.
        let sweep_net = super::e12_parallel_execution::synfire_net(16, 512);
        let (sweep_ms, repeats) = if quick { (100u32, 3usize) } else { (200, 5) };
        for threads in [1u32, 4] {
            let off =
                best_spikes_per_sec(&sweep_net, threads, sweep_ms, repeats, ObsMode::Disabled);
            let on = best_spikes_per_sec(&sweep_net, threads, sweep_ms, repeats, ObsMode::Counters);
            report.push(
                BenchRecord::new("telemetry_overhead")
                    .config("mesh", "8x8")
                    .config("queue", QueueKind::Calendar.to_string())
                    .config("threads", threads)
                    .config("bio_ms", sweep_ms)
                    .config("repeats", repeats)
                    .metric("spikes_per_sec_off", off)
                    .metric("spikes_per_sec_on", on)
                    .metric("overhead_frac", 1.0 - on / off),
            );
        }

        // Determinism: the same build must spike identically whatever
        // is watching, and the spike counter must agree with the
        // recorded raster.
        let det_net = super::e15_memory_model::prob_net(4, 200, 0.05);
        let det_run = |obs| {
            let cfg = SimConfig::new(4, 4)
                .with_neurons_per_core(64)
                .with_threads(4)
                .with_observability(obs);
            Simulation::build(&det_net, cfg)
                .expect("workload fits a 4x4 machine")
                .run(20)
        };
        let base = det_run(ObsMode::Disabled);
        let counted = det_run(ObsMode::Counters);
        let traced = det_run(ObsMode::CountersAndTrace);
        let bit_exact = base.machine.spikes() == counted.machine.spikes()
            && base.machine.spikes() == traced.machine.spikes();
        let spikes = base.machine.spikes().len() as u64;
        let counter_spikes = counted.machine.telemetry().total(Counter::Spikes);
        report.push(
            BenchRecord::new("telemetry_determinism")
                .config("neurons", det_net.total_neurons())
                .config("bio_ms", 20u32)
                .metric("bit_exact", bit_exact)
                .metric("spikes", spikes)
                .metric("counter_spikes", counter_spikes)
                .metric("counter_matches", counter_spikes == spikes),
        );
        report
    }

    /// The E17 table.
    pub fn run(quick: bool) -> String {
        format_report(&report(quick))
    }

    /// Formats a report as the human-readable E17 table.
    pub fn format_report(report: &BenchReport) -> String {
        use super::e14_event_core::{num_field as num, str_field};
        let mut out = String::new();
        let _ = writeln!(
            out,
            "E17: low-overhead telemetry — phase breakdown, shard skew, counter overhead ({} mode, commit {})",
            report.mode,
            &report.commit[..report.commit.len().min(12)],
        );
        let _ = writeln!(
            out,
            "   observe without steering: relaxed per-shard counters, log2 phase\n   histograms and a bounded trace ring; every mode replays bit-exactly\n"
        );
        let _ = writeln!(
            out,
            "{:>8} {:>10} {:>12} {:>14} {:>10} {:>8}",
            "threads", "wall ms", "ns/neuron", "ns/syn-event", "barrier%", "skew"
        );
        for r in report
            .records
            .iter()
            .filter(|r| r.name == "phase_breakdown")
        {
            let _ = writeln!(
                out,
                "{:>8.0} {:>10.1} {:>12.1} {:>14.2} {:>9.1}% {:>8.2}",
                num(&r.config, "threads"),
                num(&r.metrics, "wall_ms"),
                num(&r.metrics, "ns_per_neuron"),
                num(&r.metrics, "ns_per_synaptic_event"),
                100.0 * num(&r.metrics, "barrier_wait_share"),
                num(&r.metrics, "shard_skew"),
            );
        }
        let _ = writeln!(out);
        for r in report
            .records
            .iter()
            .filter(|r| r.name == "telemetry_overhead")
        {
            let _ = writeln!(
                out,
                "  overhead: {:>2.0} thread(s)  counters on {:>12.0} spikes/s  off {:>12.0}  ({:+.2}%)",
                num(&r.config, "threads"),
                num(&r.metrics, "spikes_per_sec_on"),
                num(&r.metrics, "spikes_per_sec_off"),
                100.0 * num(&r.metrics, "overhead_frac"),
            );
        }
        for r in report
            .records
            .iter()
            .filter(|r| r.name == "telemetry_determinism")
        {
            let _ = writeln!(
                out,
                "  determinism: bit-exact across modes: {};  spikes counter {:.0} vs recorded {:.0}",
                str_field(&r.metrics, "bit_exact"),
                num(&r.metrics, "counter_spikes"),
                num(&r.metrics, "spikes"),
            );
        }
        let _ = writeln!(
            out,
            "\ntelemetry observes, it never steers: counters are relaxed per-shard atomics,\nphase timings are 32-bucket log2 histograms, the trace ring is bounded and\ndrop-counting, and Disabled mode costs one None-check per site\n(tests/telemetry_determinism.rs pins every mode to bit-identical spikes).\nrender or gate the artifact: scripts/telemetry_report.py BENCH_e17.json"
        );
        out
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn formatter_smoke_on_synthetic_records() {
            let mut report = BenchReport::new("E17", "test", true);
            report.push(
                BenchRecord::new("phase_breakdown")
                    .config("threads", 4u32)
                    .metric("wall_ms", 10.0f64)
                    .metric("ns_per_neuron", 120.0f64)
                    .metric("ns_per_synaptic_event", 8.5f64)
                    .metric("barrier_wait_share", 0.25f64)
                    .metric("shard_skew", 1.2f64),
            );
            report.push(
                BenchRecord::new("telemetry_overhead")
                    .config("threads", 4u32)
                    .metric("spikes_per_sec_off", 1_000_000.0f64)
                    .metric("spikes_per_sec_on", 990_000.0f64)
                    .metric("overhead_frac", 0.01f64),
            );
            report.push(
                BenchRecord::new("telemetry_determinism")
                    .metric("bit_exact", true)
                    .metric("spikes", 42u64)
                    .metric("counter_spikes", 42u64)
                    .metric("counter_matches", true),
            );
            let text = format_report(&report);
            assert!(text.contains("ns/neuron"), "{text}");
            assert!(text.contains("bit-exact across modes: true"), "{text}");
            assert!(report.to_json_string().contains("overhead_frac"));
        }

        #[test]
        fn traced_run_yields_finite_phase_rows() {
            // A miniature phase-breakdown measurement: full telemetry
            // on a small net must produce finite per-loop rows and a
            // spike counter that matches the recorded raster.
            let net = super::super::e15_memory_model::prob_net(3, 200, 0.05);
            let (_, done) = run_traced(&net, 4, 10);
            let t = done.machine.telemetry();
            assert!(t.is_enabled());
            assert!(t.ns_per_neuron().is_finite(), "{}", t.ns_per_neuron());
            assert!(
                t.total(Counter::Spikes) == done.machine.spikes().len() as u64,
                "counter {} vs raster {}",
                t.total(Counter::Spikes),
                done.machine.spikes().len()
            );
            assert!(t.total(Counter::Events) > 0);
        }
    }
}

/// E18 — collect the win: the vectorized fixed-point tick path, the
/// compiled-router/flux-aware shard pipeline and the
/// clamp-to-parallelism scheduler, measured together. Reports the E17
/// phase-breakdown net (ns/neuron, ns/synaptic-event, barrier-wait
/// share, window/exchange counts) at 1/4/16 threads plus the
/// E14-compatible end-to-end sweep grid. Emits `BENCH_e18.json`;
/// `scripts/bench_compare.py` gates the sweep rows against E14, the
/// per-loop rows against E17, and (`--parallel-speedup`) holds the
/// 4-thread wall strictly under the 1-thread wall with barrier share
/// at most 0.5.
pub mod e18_collected_win {
    use super::*;
    use crate::record::{BenchRecord, BenchReport, Json};
    use spinn_obs::{Counter, Phase};
    use spinnaker::prelude::*;
    use spinnaker::Completed;
    use std::time::Instant;

    /// Runs the phase-breakdown workload once under full telemetry,
    /// through the default scheduler (shard clamp included — that *is*
    /// the measured configuration).
    fn run_traced(net: &NetworkGraph, threads: u32, ms: u32) -> (f64, Completed) {
        let cfg = SimConfig::new(8, 8)
            .with_neurons_per_core(256)
            .with_threads(threads)
            .with_observability(ObsMode::CountersAndTrace);
        let sim = Simulation::build(net, cfg).expect("workload fits an 8x8 machine");
        let t0 = Instant::now();
        let done = sim.run(ms);
        (t0.elapsed().as_secs_f64() * 1e3, done)
    }

    /// The E18 report: phase-breakdown rows at 1/4/16 threads and the
    /// E14 sweep grid (same net, mesh, queues and thread counts, so
    /// the rows gate directly against the committed `BENCH_e14.json`).
    pub fn report(quick: bool) -> BenchReport {
        let mut report = BenchReport::new(
            "E18",
            "collected win: wide tick lanes, flux-aware shards, clamp-to-parallelism scheduler",
            quick,
        );

        let (pops, size, p) = if quick {
            (20u32, 5_000u32, 0.02)
        } else {
            (25, 8_000, 0.015)
        };
        let net = super::e15_memory_model::prob_net(pops, size, p);
        let total_neurons = net.total_neurons();
        let ms = if quick { 30u32 } else { 100 };
        for threads in [1u32, 4, 16] {
            let (wall_ms, done) = run_traced(&net, threads, ms);
            let t = done.machine.telemetry();
            let par = done.machine.par_stats();
            report.push(
                BenchRecord::new("phase_breakdown")
                    .config("neurons", total_neurons)
                    .config("mesh", "8x8")
                    .config("threads", threads)
                    .config(
                        "effective_threads",
                        done.machine.effective_threads(threads as usize) as u64,
                    )
                    .config(
                        "host_cores",
                        std::thread::available_parallelism().map_or(1, |p| p.get()),
                    )
                    .config("bio_ms", ms)
                    .config("obs", t.mode().to_string())
                    .metric("wall_ms", wall_ms)
                    .metric("spikes", done.machine.spikes().len())
                    .metric("events", t.total(Counter::Events))
                    .metric("synaptic_events", t.total(Counter::SynapticEvents))
                    .metric("ns_per_neuron", t.ns_per_neuron())
                    .metric("ns_per_synaptic_event", t.ns_per_synaptic_event())
                    .metric("barrier_wait_share", {
                        let s = t.barrier_wait_share();
                        if s.is_nan() {
                            0.0
                        } else {
                            s
                        }
                    })
                    .metric("shard_skew", t.shard_skew())
                    .metric("windows", par.map_or(0, |s| s.windows))
                    .metric("exchanged", par.map_or(0, |s| s.exchanged))
                    .metric("queue_peak", t.total(Counter::QueuePeak))
                    .metric("trace_overwrite_ratio", t.trace_overwrite_ratio()),
            );
            report.push(
                BenchRecord::new("shard_skew")
                    .config("threads", threads)
                    .config("bio_ms", ms)
                    .metric("skew", t.shard_skew())
                    .metric(
                        "per_shard_events",
                        Json::Arr(
                            t.shards()
                                .iter()
                                .map(|s| Json::Num(s.counters[Counter::Events as usize] as f64))
                                .collect(),
                        ),
                    )
                    .metric(
                        "per_shard_barrier_ns",
                        Json::Arr(
                            t.shards()
                                .iter()
                                .map(|s| {
                                    Json::Num(s.phases[Phase::BarrierWait as usize].sum_ns as f64)
                                })
                                .collect(),
                        ),
                    ),
            );
        }

        // The E14 sweep grid, verbatim (same synfire net, mesh, queue
        // kinds, thread counts and duration), so every row keys
        // identically to the committed `BENCH_e14.json` and the gate
        // measures the cumulative speedup of everything since.
        let sweep_net = super::e12_parallel_execution::synfire_net(16, 512);
        let (edges, sweep_ms): (&[u32], u32) = if quick {
            (&[8], 100)
        } else {
            (&[8, 16, 32], 200)
        };
        for &edge in edges {
            for queue in [QueueKind::Heap, QueueKind::Calendar] {
                for threads in [1u32, 2, 4, 16] {
                    super::e14_event_core::sweep_case(
                        &mut report,
                        &sweep_net,
                        edge,
                        threads,
                        queue,
                        sweep_ms,
                    );
                }
            }
        }
        report
    }

    /// The E18 table.
    pub fn run(quick: bool) -> String {
        format_report(&report(quick))
    }

    /// Formats a report as the human-readable E18 table.
    pub fn format_report(report: &BenchReport) -> String {
        use super::e14_event_core::{num_field as num, str_field};
        let mut out = String::new();
        let _ = writeln!(
            out,
            "E18: collected win — wide tick lanes, flux-aware shards, clamped scheduler ({} mode, commit {})",
            report.mode,
            &report.commit[..report.commit.len().min(12)],
        );
        let _ = writeln!(
            out,
            "   the tick loop runs chunked fixed-point lanes with a clamp-free fast\n   path, shard cuts follow measured link flux, and shard counts collapse\n   to the host's parallelism — all bit-exact against the scalar engine\n"
        );
        let _ = writeln!(
            out,
            "{:>8} {:>10} {:>12} {:>14} {:>10} {:>9} {:>10}",
            "threads", "wall ms", "ns/neuron", "ns/syn-event", "barrier%", "windows", "exchanged"
        );
        for r in report
            .records
            .iter()
            .filter(|r| r.name == "phase_breakdown")
        {
            let _ = writeln!(
                out,
                "{:>8.0} {:>10.1} {:>12.1} {:>14.2} {:>9.1}% {:>9.0} {:>10.0}",
                num(&r.config, "threads"),
                num(&r.metrics, "wall_ms"),
                num(&r.metrics, "ns_per_neuron"),
                num(&r.metrics, "ns_per_synaptic_event"),
                100.0 * num(&r.metrics, "barrier_wait_share"),
                num(&r.metrics, "windows"),
                num(&r.metrics, "exchanged"),
            );
        }
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "{:<8} {:>8} {:>10} {:>10} {:>14}",
            "mesh", "queue", "threads", "wall ms", "spikes/sec"
        );
        for r in report
            .records
            .iter()
            .filter(|r| r.name == "end_to_end_sweep")
        {
            let _ = writeln!(
                out,
                "{:<8} {:>8} {:>10.0} {:>10.1} {:>14.0}",
                str_field(&r.config, "mesh"),
                str_field(&r.config, "queue"),
                num(&r.config, "threads"),
                num(&r.metrics, "wall_ms"),
                num(&r.metrics, "spikes_per_sec"),
            );
        }
        let _ = writeln!(
            out,
            "\ngate the artifact: scripts/bench_compare.py BENCH_e18.json BENCH_e14.json\n--kind sweep (cumulative end-to-end), BENCH_e18.json BENCH_e17.json --kind\nperf (per-loop costs), and --parallel-speedup BENCH_e18.json (4-thread wall\nstrictly under 1-thread, barrier share <= 0.5)."
        );
        out
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn formatter_smoke_on_synthetic_records() {
            let mut report = BenchReport::new("E18", "test", true);
            report.push(
                BenchRecord::new("phase_breakdown")
                    .config("threads", 4u32)
                    .metric("wall_ms", 10.0f64)
                    .metric("ns_per_neuron", 9.5f64)
                    .metric("ns_per_synaptic_event", 30.1f64)
                    .metric("barrier_wait_share", 0.0f64)
                    .metric("windows", 1200u64)
                    .metric("exchanged", 6800u64),
            );
            report.push(
                BenchRecord::new("end_to_end_sweep")
                    .config("mesh", "8x8")
                    .config("queue", "calendar")
                    .config("threads", 4u32)
                    .metric("wall_ms", 100.0f64)
                    .metric("spikes_per_sec", 1_000_000.0f64),
            );
            let text = format_report(&report);
            assert!(text.contains("ns/neuron"), "{text}");
            assert!(text.contains("spikes/sec"), "{text}");
            assert!(report.to_json_string().contains("phase_breakdown"));
        }

        #[test]
        fn traced_run_reports_windows_and_overwrite_ratio() {
            // A miniature E18 measurement: the telemetry must yield
            // finite per-loop rows and an overwrite ratio inside [0, 1].
            let net = super::super::e15_memory_model::prob_net(3, 200, 0.05);
            let (_, done) = run_traced(&net, 4, 10);
            let t = done.machine.telemetry();
            assert!(t.is_enabled());
            assert!(t.ns_per_neuron().is_finite());
            let ratio = t.trace_overwrite_ratio();
            assert!((0.0..=1.0).contains(&ratio), "{ratio}");
        }
    }
}

/// E19 — Monte Carlo resilience campaigns (§6): spike-delivery
/// degradation vs link-failure rate from ≥ 1000 sessions forked off one
/// warm checkpoint, plus the repair arms (queued `RepairLink`, live
/// re-route) that claw delivery back. See `crate::resil` for the
/// harness; `scripts/bench_compare.py --resilience BENCH_e19.json`
/// gates the committed artifact.
pub mod e19_resilience {
    use super::*;
    use crate::record::{BenchRecord, BenchReport};
    use crate::resil::{summarize, BucketSummary, Campaign, RepairPolicy};
    use spinnaker::prelude::*;
    use std::time::Instant;

    /// Campaign seed — every fork's fault schedule derives from it (and
    /// the fork id) alone, so the whole campaign replays bit-exactly.
    pub const SEED: u64 = 0x5EED_0E19;

    /// Failure rates swept by the degradation curve (fraction of the
    /// machine's cables failed per fork).
    /// The low end shows emergency routing (Fig. 8) absorbing sparse
    /// cable death outright; past ~0.25 the two-leg detours saturate
    /// and delivery falls — the region the repair arms operate in.
    pub const RATES: [f64; 6] = [0.0, 0.05, 0.1, 0.2, 0.35, 0.5];

    /// The headline rate the repair arms run at.
    pub const HEADLINE_RATE: f64 = 0.35;

    /// The campaign workload: a feed-forward synfire chain scattered
    /// over the torus by random placement. The tonically-driven head
    /// launches a wave down the chain every firing cycle, so every
    /// downstream spike certifies delivery across the inter-chip links
    /// behind it; a dead cable silences the tail of the chain instead
    /// of merely perturbing re-entrant timing (which can *add* spikes
    /// and would blur the degradation curve).
    pub fn campaign_net(stages: u32, size: u32) -> (NetworkGraph, PopulationId) {
        let kind = NeuronKind::Izhikevich(IzhikevichParams::regular_spiking());
        let mut net = NetworkGraph::new();
        let pops: Vec<_> = (0..stages)
            .map(|i| net.population(&format!("s{i}"), size, kind, if i == 0 { 9.0 } else { 0.0 }))
            .collect();
        for (i, pair) in pops.windows(2).enumerate() {
            net.project(
                pair[0],
                pair[1],
                Connector::FixedFanOut(12),
                Synapses::constant(600, 2),
                i as u64,
            );
        }
        (net, pops[0])
    }

    /// Builds, warms and checkpoints the campaign session (forced
    /// shards, so sharded replays exercise real cross-shard traffic at
    /// any host parallelism).
    pub fn prepare() -> Campaign {
        let (net, input) = campaign_net(8, 96);
        let cfg = SimConfig::new(4, 4)
            .with_neurons_per_core(64)
            .with_placer(Placer::Random { seed: 0xE19 })
            .with_force_shards(true);
        Campaign::prepare(net, cfg, input, 20.0, 30, 90, (2, 30))
    }

    /// The E19 report: the delivery-degradation curve, the repair
    /// arms on matched fault schedules, and the campaign/determinism
    /// verdict row.
    pub fn report(quick: bool) -> BenchReport {
        let mut report = BenchReport::new(
            "E19",
            "resilience campaigns: Monte Carlo fault sweeps + live route repair from one warm checkpoint",
            quick,
        );
        // Full mode clears the 1000-fork acceptance bar:
        // 1 baseline + 5*160 curve + 3*100 repair arms + 8*3 replays.
        let (curve_forks, repair_forks, det_forks) = if quick {
            (4u32, 4u32, 2u32)
        } else {
            (160, 100, 8)
        };

        let t0 = Instant::now();
        let campaign = prepare();
        let prep_ms = t0.elapsed().as_secs_f64() * 1e3;
        let mut forks_total = 1u64; // the baseline fork inside prepare()

        let t0 = Instant::now();
        let curve = campaign.sweep(SEED, &RATES, RepairPolicy::Unrepaired, curve_forks, 0);
        forks_total += curve.len() as u64;
        for b in summarize(&curve) {
            report.push(bucket_record("delivery_vs_failure_rate", &b));
        }

        // Repair arms on *matched* fault schedules: the same fork ids
        // (hence identical fault draws) run under each policy, so the
        // recovery deltas are paired, not resampled.
        const REPAIR_BASE: u32 = 50_000;
        let control = campaign.sweep(
            SEED,
            &[HEADLINE_RATE],
            RepairPolicy::Unrepaired,
            repair_forks,
            REPAIR_BASE,
        );
        let repaired = campaign.sweep(
            SEED,
            &[HEADLINE_RATE],
            RepairPolicy::QueuedRepair { delay_ms: 15 },
            repair_forks,
            REPAIR_BASE,
        );
        let rerouted = campaign.sweep(
            SEED,
            &[HEADLINE_RATE],
            RepairPolicy::Reroute { after_ms: 31 },
            repair_forks,
            REPAIR_BASE,
        );
        forks_total += (control.len() + repaired.len() + rerouted.len()) as u64;
        for arm in [&control, &repaired, &rerouted] {
            for b in summarize(arm) {
                report.push(bucket_record("live_repair", &b));
            }
        }
        let mean = |o: &[crate::resil::ForkOutcome]| -> f64 {
            o.iter().map(|f| f.delivery_ratio).sum::<f64>() / o.len() as f64
        };
        let load = |o: &[crate::resil::ForkOutcome]| -> f64 {
            o.iter()
                .map(|f| (f.emergency_reroutes + f.dropped) as f64)
                .sum::<f64>()
                / o.len() as f64
        };
        let (c_mean, q_mean, r_mean) = (mean(&control), mean(&repaired), mean(&rerouted));
        // Live repair has two observable effects, and the two arms split
        // them: restoring the cable (`repair_link`) rescues forks whose
        // topology was severed outright — a delivery-ratio gain that no
        // table rewrite can match — while re-routing the tables around
        // the dead cables (`reroute`) takes the standing emergency-detour
        // and drop load off the fabric (Fig. 8's mechanism is for
        // transient faults; permanent ones are supposed to be routed
        // around).
        let (c_load, r_load) = (load(&control), load(&rerouted));
        report.push(
            BenchRecord::new("repair_recovery")
                .config("failure_rate", HEADLINE_RATE)
                .config("forks_per_arm", repair_forks)
                .metric("unrepaired_ratio", c_mean)
                .metric("repair_link_ratio", q_mean)
                .metric("reroute_ratio", r_mean)
                .metric("repair_link_gain", q_mean - c_mean)
                .metric("reroute_gain", r_mean - c_mean)
                .metric("unrepaired_fault_load", c_load)
                .metric("reroute_fault_load", r_load)
                .metric(
                    "reroute_load_cut",
                    if c_load > 0.0 {
                        1.0 - r_load / c_load
                    } else {
                        0.0
                    },
                ),
        );

        // Determinism: replay a slice of the control arm at other
        // thread counts; every replay must reproduce the fork's spike
        // stream bit-exactly (compared via the FNV fingerprint).
        let mut bit_exact = true;
        let mut replays = 0u64;
        for i in 0..det_forks {
            let fork = REPAIR_BASE + i;
            let base = campaign.run_fork(SEED, fork, HEADLINE_RATE, RepairPolicy::Unrepaired, None);
            for threads in [2u32, 4] {
                let replay = campaign.run_fork(
                    SEED,
                    fork,
                    HEADLINE_RATE,
                    RepairPolicy::Unrepaired,
                    Some(threads),
                );
                bit_exact &= replay.spike_hash == base.spike_hash && replay.spikes == base.spikes;
                replays += 2;
            }
            replays += 1;
        }
        forks_total += replays;
        let sweep_ms = t0.elapsed().as_secs_f64() * 1e3;

        report.push(
            BenchRecord::new("campaign")
                .config("seed", SEED)
                .config("mesh", "4x4")
                .config("stages", 8u32)
                .config("neurons", 8u32 * 96)
                .config("warm_ms", 30u32)
                .config("fork_ms", 90u32)
                .metric("forks_total", forks_total)
                .metric("forks_per_sec", forks_total as f64 / (sweep_ms / 1e3))
                .metric("prepare_ms", prep_ms)
                .metric("sweep_ms", sweep_ms)
                .metric("snapshot_bytes", campaign.snapshot_bytes())
                .metric("baseline_spikes", campaign.baseline_spikes)
                .metric("total_cables", campaign.total_cables())
                .metric("determinism_bit_exact", bit_exact)
                .metric("determinism_replays", replays),
        );
        report
    }

    /// One bucket as a benchmark record.
    fn bucket_record(name: &str, b: &BucketSummary) -> BenchRecord {
        BenchRecord::new(name)
            .config("failure_rate", b.failure_rate)
            .config("policy", b.policy)
            .config("forks", b.forks)
            .metric("delivery_ratio_mean", b.delivery_ratio_mean)
            .metric("delivery_ratio_min", b.delivery_ratio_min)
            .metric("links_failed_mean", b.links_failed_mean)
            .metric("emergency_reroutes_mean", b.emergency_reroutes_mean)
            .metric("dropped_mean", b.dropped_mean)
            .metric("reissued_mean", b.reissued_mean)
    }

    /// The E19 table.
    pub fn run(quick: bool) -> String {
        format_report(&report(quick))
    }

    /// Formats a report as the human-readable E19 table.
    pub fn format_report(report: &BenchReport) -> String {
        use super::e14_event_core::{num_field as num, str_field};
        let mut out = String::new();
        let _ = writeln!(
            out,
            "E19: resilience campaigns — Monte Carlo fault sweeps + live repair ({} mode, commit {})",
            report.mode,
            &report.commit[..report.commit.len().min(12)],
        );
        let _ = writeln!(
            out,
            "   §6 keep-computing-through-death: forks from one warm checkpoint under\n   randomized link-failure schedules, scored against the fault-free baseline\n"
        );
        let _ = writeln!(
            out,
            "{:>12} {:>8} {:>9} {:>10} {:>10} {:>10} {:>9}",
            "failure rate", "forks", "links", "delivery", "worst", "emergency", "dropped"
        );
        for r in report
            .records
            .iter()
            .filter(|r| r.name == "delivery_vs_failure_rate")
        {
            let _ = writeln!(
                out,
                "{:>12.3} {:>8.0} {:>9.1} {:>10.3} {:>10.3} {:>10.1} {:>9.1}",
                num(&r.config, "failure_rate"),
                num(&r.config, "forks"),
                num(&r.metrics, "links_failed_mean"),
                num(&r.metrics, "delivery_ratio_mean"),
                num(&r.metrics, "delivery_ratio_min"),
                num(&r.metrics, "emergency_reroutes_mean"),
                num(&r.metrics, "dropped_mean"),
            );
        }
        for r in report.records.iter().filter(|r| r.name == "live_repair") {
            let _ = writeln!(
                out,
                "  repair arm {:<12} at rate {:.3}: delivery {:.3} (worst {:.3})",
                str_field(&r.config, "policy"),
                num(&r.config, "failure_rate"),
                num(&r.metrics, "delivery_ratio_mean"),
                num(&r.metrics, "delivery_ratio_min"),
            );
        }
        for r in report
            .records
            .iter()
            .filter(|r| r.name == "repair_recovery")
        {
            let _ = writeln!(
                out,
                "  recovery at rate {:.3}: unrepaired {:.3} -> repair_link {:.3} (+{:.3}), reroute {:.3} (+{:.3})",
                num(&r.config, "failure_rate"),
                num(&r.metrics, "unrepaired_ratio"),
                num(&r.metrics, "repair_link_ratio"),
                num(&r.metrics, "repair_link_gain"),
                num(&r.metrics, "reroute_ratio"),
                num(&r.metrics, "reroute_gain"),
            );
            let _ = writeln!(
                out,
                "  reroute cuts standing fault load (emergency legs + drops) {:.1} -> {:.1} per fork ({:.0}% off)",
                num(&r.metrics, "unrepaired_fault_load"),
                num(&r.metrics, "reroute_fault_load"),
                num(&r.metrics, "reroute_load_cut") * 100.0,
            );
        }
        for r in report.records.iter().filter(|r| r.name == "campaign") {
            let _ = writeln!(
                out,
                "  campaign: {:.0} forks ({:.1}/s) from one {:.0}-byte checkpoint; replays bit-exact: {}",
                num(&r.metrics, "forks_total"),
                num(&r.metrics, "forks_per_sec"),
                num(&r.metrics, "snapshot_bytes"),
                str_field(&r.metrics, "determinism_bit_exact"),
            );
        }
        let _ = writeln!(
            out,
            "\ngate the artifact: scripts/bench_compare.py --resilience BENCH_e19.json\n(delivery floor per failure-rate bucket, paired repair recovery > 0,\nbit-exact replay verdict)."
        );
        out
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn formatter_smoke_on_synthetic_records() {
            let mut report = BenchReport::new("E19", "test", true);
            report.push(
                BenchRecord::new("delivery_vs_failure_rate")
                    .config("failure_rate", 0.1f64)
                    .config("policy", "none")
                    .config("forks", 4u32)
                    .metric("delivery_ratio_mean", 0.8f64)
                    .metric("delivery_ratio_min", 0.7f64)
                    .metric("links_failed_mean", 5.0f64)
                    .metric("emergency_reroutes_mean", 12.0f64)
                    .metric("dropped_mean", 3.0f64)
                    .metric("reissued_mean", 3.0f64),
            );
            report.push(
                BenchRecord::new("repair_recovery")
                    .config("failure_rate", 0.1f64)
                    .config("forks_per_arm", 4u32)
                    .metric("unrepaired_ratio", 0.8f64)
                    .metric("repair_link_ratio", 0.95f64)
                    .metric("reroute_ratio", 0.9f64)
                    .metric("repair_link_gain", 0.15f64)
                    .metric("reroute_gain", 0.1f64)
                    .metric("unrepaired_fault_load", 120.0f64)
                    .metric("reroute_fault_load", 60.0f64)
                    .metric("reroute_load_cut", 0.5f64),
            );
            report.push(
                BenchRecord::new("campaign")
                    .config("seed", SEED)
                    .metric("forks_total", 21u64)
                    .metric("forks_per_sec", 50.0f64)
                    .metric("snapshot_bytes", 123456u64)
                    .metric("determinism_bit_exact", true)
                    .metric("determinism_replays", 4u64),
            );
            let text = format_report(&report);
            assert!(text.contains("failure rate"), "{text}");
            assert!(text.contains("repair_link"), "{text}");
            assert!(text.contains("bit-exact: true"), "{text}");
            assert!(report.to_json_string().contains("delivery_vs_failure_rate"));
        }

        #[test]
        fn campaign_net_is_a_chain() {
            let (net, input) = campaign_net(4, 16);
            assert_eq!(net.total_neurons(), 64);
            assert_eq!(input.index(), 0);
        }
    }
}

/// E20 — compute beyond a million cores: the scaling study. One
/// population per chip on meshes from 32 x 32 up to the paper's full
/// 256 x 256 machine (>10^6 cores loaded, >10^9 synapses), built
/// through the streaming loader into compressed lazy arenas and run
/// through the chunked work-stealing scheduler. Emits `BENCH_e20.json`;
/// `scripts/bench_compare.py --memory` gates the scale/memory claims
/// and `--work-stealing` the chunked-vs-static arms (skipping honestly
/// on hosts whose parallelism collapses the comparison).
pub mod e20_scaling {
    use super::*;
    use crate::record::{BenchRecord, BenchReport};
    use spinn_obs::Counter;
    use spinnaker::map::loader::{BuildOptions, LazyMode, LoadedApp};
    use spinnaker::map::place::Placement;
    use spinnaker::prelude::*;
    use std::time::Instant;

    /// Cores per chip for the study: 16 application cores + monitor,
    /// so a 256 x 256 mesh loads exactly 2^20 application cores.
    const CORES_PER_CHIP: u8 = 17;
    /// Neurons per chip (16 app cores x 8 neurons each).
    const NEURONS_PER_CHIP: u32 = 128;
    /// Neurons per application core.
    const NPC: u32 = 8;

    /// Peak resident set of this process so far, bytes (Linux
    /// `/proc/self/status` `VmHWM`; 0 where unavailable). Monotone over
    /// the process lifetime, so rows are ordered smallest mesh first
    /// and each row's value approximates that row's true peak.
    pub fn peak_rss_bytes() -> u64 {
        proc_status_kb("VmHWM:") * 1024
    }

    /// Current resident set of this process, bytes (`VmRSS`; 0 where
    /// unavailable).
    pub fn current_rss_bytes() -> u64 {
        proc_status_kb("VmRSS:") * 1024
    }

    fn proc_status_kb(field: &str) -> u64 {
        let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
            return 0;
        };
        status
            .lines()
            .find_map(|l| l.strip_prefix(field))
            .and_then(|v| v.trim().trim_end_matches(" kB").trim().parse().ok())
            .unwrap_or(0)
    }

    /// The scaling workload: one `NEURONS_PER_CHIP`-neuron population
    /// per chip, chained into a ring of `AllToAll` constant-weight
    /// projections (so every chip holds 128 x 128 = 16 Ki synapses and
    /// a 256 x 256 mesh holds 2^30). Constant `AllToAll` rows are
    /// analytic for the generator, so the lazy loader stores each as a
    /// recipe and only spike-touched rows ever materialize. Only chip
    /// 0's population is biased: activity trickles around the ring
    /// while the other ~65 k chips sit idle — the configuration the
    /// paper's "interrupt-driven, no polling" energy argument cares
    /// about, and the one that exposes any O(all chips) per-tick cost.
    pub fn chip_ring_net(chips: u32) -> NetworkGraph {
        let kind = NeuronKind::Izhikevich(IzhikevichParams::regular_spiking());
        let mut net = NetworkGraph::new();
        let pops: Vec<_> = (0..chips)
            .map(|i| {
                let bias = if i == 0 { 9.0 } else { 0.0 };
                net.population(&format!("c{i}"), NEURONS_PER_CHIP, kind, bias)
            })
            .collect();
        for (i, &src) in pops.iter().enumerate() {
            let dst = pops[(i + 1) % pops.len()];
            net.project(
                src,
                dst,
                Connector::AllToAll { allow_self: false },
                Synapses::constant(40, 1),
                0xE20 ^ i as u64,
            );
        }
        net
    }

    /// A deliberately skewed load for the work-stealing arms: the same
    /// ring, but the first `hot` chips get strongly biased populations
    /// with a dense recurrent projection, so nearly all spike work
    /// lands in one corner of the mesh while the static structural
    /// partition still cuts chips evenly.
    pub fn skewed_net(chips: u32, hot: u32) -> NetworkGraph {
        let kind = NeuronKind::Izhikevich(IzhikevichParams::regular_spiking());
        let mut net = NetworkGraph::new();
        let pops: Vec<_> = (0..chips)
            .map(|i| {
                let bias = if i < hot { 12.0 } else { 0.0 };
                net.population(&format!("c{i}"), NEURONS_PER_CHIP, kind, bias)
            })
            .collect();
        for (i, &src) in pops.iter().enumerate() {
            let dst = pops[(i + 1) % pops.len()];
            net.project(
                src,
                dst,
                Connector::AllToAll { allow_self: false },
                Synapses::constant(40, 1),
                0xE20 ^ i as u64,
            );
        }
        for &p in pops.iter().take(hot as usize) {
            net.project(
                p,
                p,
                Connector::FixedProbability(0.25),
                Synapses::constant(90, 1),
                0x5E20 ^ p.index() as u64,
            );
        }
        net
    }

    fn host_cores() -> usize {
        std::thread::available_parallelism().map_or(1, |p| p.get())
    }

    /// Builds and runs one scaling-sweep cell, recording build time,
    /// wall clock, per-neuron cost, barrier share and the resident
    /// memory per synapse next to the *post-clamp* thread count.
    #[allow(clippy::cast_precision_loss)]
    fn scaling_case(
        report: &mut BenchReport,
        net: &NetworkGraph,
        edge: u32,
        threads: u32,
        ms: u32,
    ) {
        let mut cfg = SimConfig::new(edge, edge)
            .with_neurons_per_core(NPC)
            .with_threads(threads)
            .with_observability(ObsMode::CountersAndTrace);
        cfg.machine.cores_per_chip = CORES_PER_CHIP;
        let t0 = Instant::now();
        let sim = Simulation::build(net, cfg).expect("ring net fits one pop per chip");
        let build_s = t0.elapsed().as_secs_f64();
        let effective = sim.machine().effective_threads(threads as usize);
        let loaded_cores = sim
            .machine()
            .chip_occupancy()
            .iter()
            .map(|o| u64::from(o.loaded_cores))
            .sum::<u64>();
        let synapses = sim.machine().total_synapses();
        let lazy_before = sim.machine().total_lazy_rows();
        let t1 = Instant::now();
        let done = sim.run(ms);
        let wall_ms = t1.elapsed().as_secs_f64() * 1e3;
        let t = done.machine.telemetry();
        let resident = done.machine.total_resident_bytes();
        report.push(
            BenchRecord::new("scaling")
                .config("mesh", format!("{edge}x{edge}"))
                .config("chips", u64::from(edge) * u64::from(edge))
                .config(
                    "machine_cores",
                    (edge as u64) * (edge as u64) * CORES_PER_CHIP as u64,
                )
                .config("loaded_cores", loaded_cores)
                .config("neurons", net.total_neurons())
                .config("threads", threads)
                .config("effective_threads", effective as u64)
                .config("host_cores", host_cores() as u64)
                .config("bio_ms", ms)
                .metric("build_s", build_s)
                .metric("wall_ms", wall_ms)
                .metric("ns_per_neuron", t.ns_per_neuron())
                .metric("barrier_wait_share", {
                    let s = t.barrier_wait_share();
                    if s.is_nan() {
                        0.0
                    } else {
                        s
                    }
                })
                .metric("spikes", done.machine.spikes().len())
                .metric("events", t.total(Counter::Events))
                .metric("synapses", synapses)
                .metric("bytes_per_synapse", resident as f64 / synapses as f64)
                .metric("resident_mb", resident as f64 / (1024.0 * 1024.0))
                .metric(
                    "sdram_model_mb",
                    done.machine.total_sdram_bytes() as f64 / (1024.0 * 1024.0),
                )
                .metric("lazy_rows_before", lazy_before)
                .metric("lazy_rows_after", done.machine.total_lazy_rows())
                .metric("trace_cap", t.trace_cap())
                .metric("trace_overwrite_ratio", t.trace_overwrite_ratio())
                .metric("peak_rss_mb", peak_rss_bytes() as f64 / (1024.0 * 1024.0)),
        );
    }

    /// Builds one loader arm (lazy forced on or off) and records its
    /// memory/footprint row.
    #[allow(clippy::cast_precision_loss)]
    fn memory_case(
        report: &mut BenchReport,
        net: &NetworkGraph,
        edge: u32,
        lazy: LazyMode,
        arm: &str,
    ) {
        let placement = Placement::compute(net, edge, edge, CORES_PER_CHIP, NPC, Placer::Locality)
            .expect("ring net fits one pop per chip");
        let t0 = Instant::now();
        let app = LoadedApp::build_with(net, &placement, BuildOptions { threads: 1, lazy });
        let build_s = t0.elapsed().as_secs_f64();
        let resident: u64 = app.images.iter().map(|i| i.matrix.resident_bytes()).sum();
        let lazy_rows: u64 = app.images.iter().map(|i| i.matrix.lazy_rows()).sum();
        let synapses = app.total_synapses();
        report.push(
            BenchRecord::new("memory")
                .config("mesh", format!("{edge}x{edge}"))
                .config("chips", u64::from(edge) * u64::from(edge))
                .config("arm", arm)
                .metric("build_s", build_s)
                .metric("synapses", synapses)
                .metric("bytes_per_synapse", resident as f64 / synapses as f64)
                .metric("resident_mb", resident as f64 / (1024.0 * 1024.0))
                .metric(
                    "sdram_model_mb",
                    app.total_sdram_bytes() as f64 / (1024.0 * 1024.0),
                )
                .metric("lazy_rows", lazy_rows)
                .metric("peak_rss_mb", peak_rss_bytes() as f64 / (1024.0 * 1024.0)),
        );
    }

    /// Runs one work-stealing arm (static split vs chunked stealing)
    /// on the skewed net, `force_shards` so the shard machinery runs
    /// regardless of the host.
    #[allow(clippy::cast_precision_loss)]
    fn stealing_case(
        report: &mut BenchReport,
        net: &NetworkGraph,
        edge: u32,
        threads: u32,
        chunk_factor: u8,
        ms: u32,
    ) {
        let mut cfg = SimConfig::new(edge, edge)
            .with_neurons_per_core(NPC)
            .with_threads(threads)
            .with_chunk_factor(chunk_factor)
            .with_force_shards(true)
            .with_observability(ObsMode::CountersAndTrace);
        cfg.machine.cores_per_chip = CORES_PER_CHIP;
        let sim = Simulation::build(net, cfg).expect("skewed net fits one pop per chip");
        let effective = sim.machine().effective_threads(threads as usize);
        let t0 = Instant::now();
        let done = sim.run(ms);
        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        let t = done.machine.telemetry();
        report.push(
            BenchRecord::new("work_stealing")
                .config("mesh", format!("{edge}x{edge}"))
                .config("arm", if chunk_factor <= 1 { "static" } else { "steal" })
                .config("chunk_factor", u64::from(chunk_factor))
                .config("threads", threads)
                .config("effective_threads", effective as u64)
                .config("host_cores", host_cores() as u64)
                .config("bio_ms", ms)
                .metric("wall_ms", wall_ms)
                .metric("barrier_wait_share", {
                    let s = t.barrier_wait_share();
                    if s.is_nan() {
                        0.0
                    } else {
                        s
                    }
                })
                .metric("shard_skew", t.shard_skew())
                .metric("spikes", done.machine.spikes().len())
                .metric("windows", done.machine.par_stats().map_or(0, |s| s.windows)),
        );
    }

    /// The E20 report: the mesh x thread scaling grid (smallest first,
    /// so the monotone peak-RSS counter approximates each row's own
    /// peak), the lazy-vs-eager loader arms, the skewed work-stealing
    /// arms, and the E14 sweep grid so the artifact chains against the
    /// committed E14/E15/E16/E18 baselines.
    pub fn report(quick: bool) -> BenchReport {
        let mut report = BenchReport::new(
            "E20",
            "compute beyond a million cores: streaming build, lazy arenas, work-stealing windows",
            quick,
        );

        let (edges, thread_grid, ms): (&[u32], &[u32], u32) = if quick {
            (&[8, 16], &[1, 4], 20)
        } else {
            (&[32, 64, 128, 256], &[1, 4, 32], 10)
        };
        for &edge in edges {
            let net = chip_ring_net(edge * edge);
            for &threads in thread_grid {
                // The full 2^16-chip mesh runs the 1-thread cell plus
                // one parallel cell; re-running an 8-million-neuron
                // serial run per thread count buys nothing.
                if edge >= 256 && threads > 1 && threads != thread_grid[thread_grid.len() - 1] {
                    continue;
                }
                scaling_case(&mut report, &net, edge, threads, ms);
            }
        }

        let mem_edge = if quick { 16 } else { 64 };
        let mem_net = chip_ring_net(mem_edge * mem_edge);
        memory_case(&mut report, &mem_net, mem_edge, LazyMode::Force, "lazy");
        memory_case(&mut report, &mem_net, mem_edge, LazyMode::Off, "eager");

        let steal_edge = if quick { 8 } else { 16 };
        let steal_ms = if quick { 30 } else { 60 };
        let steal_net = skewed_net(steal_edge * steal_edge, steal_edge);
        stealing_case(&mut report, &steal_net, steal_edge, 4, 1, steal_ms);
        stealing_case(&mut report, &steal_net, steal_edge, 4, 4, steal_ms);

        // The E14 sweep grid, so BENCH_e20.json extends the committed
        // trajectory chain E14 -> E15 -> E16 -> E18 -> E20. The quick
        // cells (8x8, 100 bio-ms) run in BOTH modes: the committed
        // upstream artifacts were recorded quick, and a full-mode E20
        // must still share rows with them or the chain gate exits 2.
        let sweep_net = super::e12_parallel_execution::synfire_net(16, 512);
        let sweep_grid: &[(&[u32], u32)] = if quick {
            &[(&[8], 100)]
        } else {
            &[(&[8], 100), (&[16, 32], 200)]
        };
        for &(edges, sweep_ms) in sweep_grid {
            for &edge in edges {
                for queue in [QueueKind::Heap, QueueKind::Calendar] {
                    for threads in [1u32, 2, 4, 16] {
                        super::e14_event_core::sweep_case(
                            &mut report,
                            &sweep_net,
                            edge,
                            threads,
                            queue,
                            sweep_ms,
                        );
                    }
                }
            }
        }
        report
    }

    /// The E20 table.
    pub fn run(quick: bool) -> String {
        format_report(&report(quick))
    }

    /// Formats a report as the human-readable E20 table.
    pub fn format_report(report: &BenchReport) -> String {
        use super::e14_event_core::{num_field as num, str_field};
        let mut out = String::new();
        let _ = writeln!(
            out,
            "E20: scaling study — a million cores, a billion synapses, one host ({} mode, commit {})",
            report.mode,
            &report.commit[..report.commit.len().min(12)],
        );
        let _ = writeln!(
            out,
            "   one population per chip, ring-connected; constant all-to-all rows stay\n   compressed generator recipes until a spike's DMA touches them, and the\n   chunked window scheduler lets idle workers steal skewed shard work\n"
        );
        let _ = writeln!(
            out,
            "{:>9} {:>9} {:>8}/{:<4} {:>9} {:>9} {:>11} {:>10} {:>9} {:>9}",
            "mesh",
            "cores",
            "thr",
            "eff",
            "build s",
            "wall ms",
            "ns/neuron",
            "B/synapse",
            "res MB",
            "RSS MB"
        );
        for r in report.records.iter().filter(|r| r.name == "scaling") {
            let _ = writeln!(
                out,
                "{:>9} {:>9.0} {:>8.0}/{:<4.0} {:>9.2} {:>9.1} {:>11.1} {:>10.2} {:>9.1} {:>9.1}",
                str_field(&r.config, "mesh"),
                num(&r.config, "loaded_cores"),
                num(&r.config, "threads"),
                num(&r.config, "effective_threads"),
                num(&r.metrics, "build_s"),
                num(&r.metrics, "wall_ms"),
                num(&r.metrics, "ns_per_neuron"),
                num(&r.metrics, "bytes_per_synapse"),
                num(&r.metrics, "resident_mb"),
                num(&r.metrics, "peak_rss_mb"),
            );
        }
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "{:>9} {:>8} {:>10} {:>12} {:>11} {:>12}",
            "mesh", "arm", "build s", "synapses", "B/synapse", "resident MB"
        );
        for r in report.records.iter().filter(|r| r.name == "memory") {
            let _ = writeln!(
                out,
                "{:>9} {:>8} {:>10.2} {:>12.0} {:>11.2} {:>12.1}",
                str_field(&r.config, "mesh"),
                str_field(&r.config, "arm"),
                num(&r.metrics, "build_s"),
                num(&r.metrics, "synapses"),
                num(&r.metrics, "bytes_per_synapse"),
                num(&r.metrics, "resident_mb"),
            );
        }
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "{:>9} {:>8} {:>8}/{:<4} {:>10} {:>10} {:>10}",
            "mesh", "arm", "thr", "eff", "wall ms", "barrier%", "windows"
        );
        for r in report.records.iter().filter(|r| r.name == "work_stealing") {
            let _ = writeln!(
                out,
                "{:>9} {:>8} {:>8.0}/{:<4.0} {:>10.1} {:>9.1}% {:>10.0}",
                str_field(&r.config, "mesh"),
                str_field(&r.config, "arm"),
                num(&r.config, "threads"),
                num(&r.config, "effective_threads"),
                num(&r.metrics, "wall_ms"),
                100.0 * num(&r.metrics, "barrier_wait_share"),
                num(&r.metrics, "windows"),
            );
        }
        let _ = writeln!(
            out,
            "\ngate the artifact: scripts/bench_compare.py --memory BENCH_e20.json (scale,\nbytes/synapse and lazy < eager), --work-stealing BENCH_e20.json (steal arm\nbeats static at 4+ effective threads; warns-and-skips on collapsed hosts),\nand the chain BENCH_e14 -> e15 -> e16 -> e18 -> e20 (--kind sweep)."
        );
        out
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn formatter_smoke_on_synthetic_records() {
            let mut report = BenchReport::new("E20", "test", true);
            report.push(
                BenchRecord::new("scaling")
                    .config("mesh", "32x32")
                    .config("loaded_cores", 16384u64)
                    .config("threads", 4u32)
                    .config("effective_threads", 1u64)
                    .config("host_cores", 1u64)
                    .metric("build_s", 1.5f64)
                    .metric("wall_ms", 220.0f64)
                    .metric("ns_per_neuron", 80.0f64)
                    .metric("bytes_per_synapse", 1.4f64)
                    .metric("resident_mb", 22.0f64)
                    .metric("peak_rss_mb", 310.0f64),
            );
            report.push(
                BenchRecord::new("memory")
                    .config("mesh", "64x64")
                    .config("arm", "lazy")
                    .metric("build_s", 0.8f64)
                    .metric("synapses", 67108864u64)
                    .metric("bytes_per_synapse", 1.3f64)
                    .metric("resident_mb", 83.0f64),
            );
            report.push(
                BenchRecord::new("work_stealing")
                    .config("mesh", "16x16")
                    .config("arm", "steal")
                    .config("threads", 4u32)
                    .config("effective_threads", 4u64)
                    .metric("wall_ms", 120.0f64)
                    .metric("barrier_wait_share", 0.2f64)
                    .metric("windows", 400.0f64),
            );
            let text = format_report(&report);
            assert!(text.contains("32x32"), "{text}");
            assert!(text.contains("lazy"), "{text}");
            assert!(text.contains("steal"), "{text}");
            assert!(report.to_json_string().contains("bytes_per_synapse"));
        }

        #[test]
        fn ring_net_synapse_count() {
            let net = chip_ring_net(16);
            assert_eq!(net.total_neurons(), 16 * 128);
            let expected: u64 = net
                .projections()
                .iter()
                .map(|p| p.pairs(net.pop(p.src).size, net.pop(p.dst).size).len() as u64)
                .sum();
            assert_eq!(expected, 16 * 128 * 128);
        }

        #[test]
        fn quick_scaling_cell_loads_every_chip() {
            let net = chip_ring_net(16);
            let mut cfg = SimConfig::new(4, 4).with_neurons_per_core(NPC);
            cfg.machine.cores_per_chip = CORES_PER_CHIP;
            let sim = Simulation::build(&net, cfg).expect("fits");
            assert_eq!(sim.machine().total_synapses(), 16 * 128 * 128);
            // Analytic constant rows: everything stays lazy at load.
            assert!(sim.machine().total_lazy_rows() > 0);
        }
    }
}

/// E21 — multi-tenant serving under load: a seeded synthetic-client
/// load generator driving `spinn-serve`'s bounded queue, warm-session
/// pool and LRU eviction.
///
/// Three arms:
///
/// * **steady** — the resident budget fits the whole model fleet, at
///   several closed-loop client-concurrency levels. Jobs/sec, p50/p99
///   latency and the warm-hit ratio (> 0.8 is the gated floor: after
///   each model's one cold build, every job must ride a warm session).
/// * **churn** — the same job stream under a budget roughly half the
///   fleet's footprint, forcing checkpoint-evictions and snapshot
///   rehydrates. The per-job spike streams must match the steady arm
///   bit-for-bit (`eviction_bit_exact`): eviction is a memory policy,
///   never a result change.
/// * **quota** — two tenants with tight in-flight and tick budgets
///   under an open-loop burst; the accept/reject sequence must be
///   identical across two replays (`deterministic`).
///
/// `scripts/bench_compare.py --serving` gates all three, and the
/// E14-grid sweep rows keep E21 chainable after E20.
pub mod e21_serving {
    use super::*;
    use crate::record::{BenchRecord, BenchReport};
    use spinn_serve::{
        AdmitError, JobId, JobSpec, ModelId, ServeConfig, Server, Stimulus, TenantId, TenantQuota,
    };
    use spinnaker::prelude::*;
    use spinnaker::sim::Xoshiro256;
    use std::time::Instant;

    /// FNV-1a over a job's spike stream — the per-job fingerprint the
    /// eviction bit-exactness verdict compares across arms.
    fn spike_fp(spikes: &[PopSpike]) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut eat = |w: u64| {
            h ^= w;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        };
        for s in spikes {
            eat(u64::from(s.time_ms));
            eat(s.pop.index() as u64);
            eat(u64::from(s.neuron));
        }
        h
    }

    /// The model fleet: variants of E16's stimulus-driven serving
    /// chain at staggered sizes, so slots have distinct footprints and
    /// distinct (but deterministic) spike streams.
    fn fleet(models: u32, pops: u32, size: u32, p: f64) -> Vec<NetworkGraph> {
        (0..models)
            .map(|m| super::e16_sessions::serving_net(pops, size + 64 * m, p))
            .collect()
    }

    /// Everything one load-generator arm measures.
    struct ArmOutcome {
        jobs: u64,
        wall_ms: f64,
        latencies_ms: Vec<f64>,
        warm_hit_ratio: f64,
        coalesced_jobs: u64,
        batches: u64,
        cold_builds: u64,
        evictions: u64,
        rehydrates: u64,
        peak_resident_bytes: u64,
        /// `(job sequence number, spike fingerprint)`, sorted by
        /// sequence — comparable across arms that share a seed.
        fingerprints: Vec<(u64, u64)>,
    }

    /// Runs one closed-loop arm: `clients` synthetic clients, each
    /// keeping exactly one job outstanding until it has submitted
    /// `jobs_per_client` jobs. Which model a client's next job targets
    /// is a pure function of `(seed, client, submission index)`, so
    /// two arms sharing a seed see identical job streams whatever
    /// their budgets do to the session pool.
    #[allow(clippy::too_many_arguments)]
    fn run_arm(
        nets: &[NetworkGraph],
        cfg: &SimConfig,
        budget_bytes: u64,
        clients: u32,
        jobs_per_client: u32,
        run_ms: u32,
        seed: u64,
    ) -> ArmOutcome {
        let mut server = Server::new(ServeConfig {
            queue_cap: (2 * clients as usize).max(8),
            resident_budget_bytes: budget_bytes,
            max_batch: 8,
            threads: 1,
        });
        let tenants: Vec<TenantId> = (0..clients)
            .map(|c| server.register_tenant(&format!("client{c}"), TenantQuota::unlimited()))
            .collect();
        let models: Vec<ModelId> = nets
            .iter()
            .map(|n| server.register_model(n.clone(), cfg.clone()))
            .collect();
        let input = PopulationId::from_index(0);
        let mut rngs: Vec<Xoshiro256> = (0..u64::from(clients))
            .map(|c| Xoshiro256::seed_from_u64(seed ^ (c + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)))
            .collect();
        let mut submitted = vec![0u32; clients as usize];
        let mut outstanding: Vec<Option<JobId>> = vec![None; clients as usize];
        let mut latencies_ms = Vec::new();
        let mut fingerprints = Vec::new();
        let mut jobs = 0u64;
        let t0 = Instant::now();
        loop {
            let mut progressed = false;
            for c in 0..clients as usize {
                if outstanding[c].is_some() || submitted[c] >= jobs_per_client {
                    continue;
                }
                let spec = JobSpec {
                    tenant: tenants[c],
                    model: models[rngs[c].gen_range_usize(models.len())],
                    run_ms,
                    stimulus: vec![Stimulus {
                        pop: input,
                        rate_hz: 8.0 + 2.0 * f64::from(submitted[c] % 4),
                        seed: seed ^ ((c as u64 + 1) << 32) ^ u64::from(submitted[c] + 1),
                    }],
                };
                match server.submit(spec) {
                    Ok(id) => {
                        outstanding[c] = Some(id);
                        submitted[c] += 1;
                        progressed = true;
                    }
                    Err(AdmitError::QueueFull { .. }) => {} // serve first, retry next round
                    Err(e) => panic!("closed-loop submission must admit: {e}"),
                }
            }
            let results = server.poll().expect("serving batch runs");
            if results.is_empty() && !progressed && outstanding.iter().all(Option::is_none) {
                break;
            }
            for r in results {
                jobs += 1;
                latencies_ms.push(r.latency_ms());
                fingerprints.push((r.job.sequence(), spike_fp(&r.spikes)));
                for slot in outstanding.iter_mut() {
                    if *slot == Some(r.job) {
                        *slot = None;
                    }
                }
            }
        }
        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        fingerprints.sort_unstable();
        let stats = server.stats();
        let pool = server.pool_stats();
        assert_eq!(stats.jobs_completed, jobs, "every admitted job completes");
        ArmOutcome {
            jobs,
            wall_ms,
            latencies_ms,
            warm_hit_ratio: stats.warm_hit_ratio(),
            coalesced_jobs: stats.coalesced_jobs,
            batches: stats.batches,
            cold_builds: pool.cold_builds,
            evictions: pool.evictions,
            rehydrates: pool.rehydrates,
            peak_resident_bytes: pool.peak_resident_bytes,
            fingerprints,
        }
    }

    /// Percentile over an unsorted latency sample (nearest-rank).
    fn percentile_ms(samples: &[f64], q: f64) -> f64 {
        if samples.is_empty() {
            return 0.0;
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
        let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
        sorted[idx.min(sorted.len() - 1)]
    }

    /// One serving row from an arm outcome.
    fn serving_record(
        arm: &str,
        clients: u32,
        models: u32,
        run_ms: u32,
        o: &ArmOutcome,
    ) -> BenchRecord {
        BenchRecord::new("serving")
            .config("arm", arm)
            .config("clients", clients)
            .config("models", models)
            .config("run_ms", run_ms)
            .config("jobs", o.jobs)
            .metric("wall_ms", o.wall_ms)
            .metric("jobs_per_sec", o.jobs as f64 / (o.wall_ms / 1e3))
            .metric("p50_latency_ms", percentile_ms(&o.latencies_ms, 0.50))
            .metric("p99_latency_ms", percentile_ms(&o.latencies_ms, 0.99))
            .metric("warm_hit_ratio", o.warm_hit_ratio)
            .metric("cold_builds", o.cold_builds)
            .metric("evictions", o.evictions)
            .metric("rehydrates", o.rehydrates)
            .metric("batches", o.batches)
            .metric("coalesced_jobs", o.coalesced_jobs)
            .metric(
                "peak_resident_mb",
                o.peak_resident_bytes as f64 / (1024.0 * 1024.0),
            )
    }

    /// The open-loop quota burst: two tenants, tight quotas, polls
    /// interleaved at fixed submission indices. Returns the admitted
    /// count, the per-reason rejection counts and the compact
    /// accept/reject trace replays are compared by.
    fn run_quota_arm(
        net: &NetworkGraph,
        cfg: &SimConfig,
        run_ms: u32,
        seed: u64,
    ) -> (u64, u64, u64, u64, String) {
        let mut server = Server::new(ServeConfig {
            queue_cap: 4,
            resident_budget_bytes: u64::MAX,
            max_batch: 4,
            threads: 1,
        });
        // "bounded" trips the in-flight and tick-budget limits;
        // "greedy" mostly trips the shared queue cap.
        let bounded = server.register_tenant("bounded", TenantQuota::new(2, u64::from(run_ms) * 6));
        let greedy = server.register_tenant("greedy", TenantQuota::new(8, u64::MAX));
        let model = server.register_model(net.clone(), cfg.clone());
        let input = PopulationId::from_index(0);
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let (mut admitted, mut q_full, mut in_flight, mut budget) = (0u64, 0u64, 0u64, 0u64);
        let mut trace = String::new();
        for i in 0..28u32 {
            let tenant = if rng.gen_bool(0.5) { bounded } else { greedy };
            let spec = JobSpec {
                tenant,
                model,
                run_ms,
                stimulus: vec![Stimulus {
                    pop: input,
                    rate_hz: 10.0,
                    seed: seed ^ u64::from(i + 1),
                }],
            };
            trace.push(if tenant == bounded { 'b' } else { 'g' });
            match server.submit(spec) {
                Ok(_) => {
                    admitted += 1;
                    trace.push('A');
                }
                Err(AdmitError::QueueFull { .. }) => {
                    q_full += 1;
                    trace.push('Q');
                }
                Err(AdmitError::InFlightLimit { .. }) => {
                    in_flight += 1;
                    trace.push('F');
                }
                Err(AdmitError::TickBudget { .. }) => {
                    budget += 1;
                    trace.push('T');
                }
                Err(e) => panic!("unexpected admission failure: {e}"),
            }
            // Serve a batch every few submissions so slots free up and
            // the queue refills — interleaving acceptance and each
            // rejection class along one deterministic trace.
            if i % 7 == 6 {
                let served = server.poll().expect("quota-arm batch runs");
                trace.push_str(&format!("p{}", served.len()));
            }
        }
        server.drain().expect("quota-arm drain runs");
        (admitted, q_full, in_flight, budget, trace)
    }

    /// The E21 report: steady-state serving at several concurrency
    /// levels, the eviction-churn arm with its bit-exactness verdict,
    /// the quota-determinism arm, and the E14-grid sweep rows.
    pub fn report(quick: bool) -> BenchReport {
        let mut report = BenchReport::new(
            "E21",
            "multi-tenant serving: warm-pool throughput, LRU eviction, quota admission",
            quick,
        );
        let models = 3u32;
        let (pops, size, p) = if quick {
            (6u32, 400u32, 0.03)
        } else {
            (8, 800, 0.02)
        };
        let run_ms = 5u32;
        let nets = fleet(models, pops, size, p);
        let cfg = SimConfig::new(4, 4).with_neurons_per_core(256);
        let seed = 0xE21;

        // Steady arm: unbounded budget, >= 3 client-concurrency
        // levels. jobs-per-client scales down as clients scale up so
        // every level serves a comparable total.
        let client_levels: &[u32] = if quick { &[1, 4, 16] } else { &[1, 4, 16, 32] };
        let total_jobs = if quick { 48u32 } else { 96 };
        let mut steady_c4: Option<ArmOutcome> = None;
        for &clients in client_levels {
            let per_client = (total_jobs / clients).max(1);
            let o = run_arm(&nets, &cfg, u64::MAX, clients, per_client, run_ms, seed);
            report.push(serving_record("steady", clients, models, run_ms, &o));
            if clients == 4 {
                steady_c4 = Some(o);
            }
        }
        let steady_c4 = steady_c4.expect("client level 4 always runs");

        // Churn arm: same seed and client level as steady's clients=4
        // run, under a budget of roughly half the fleet's footprint —
        // evictions and rehydrates become mandatory, the spike streams
        // must not notice.
        let churn_budget = (steady_c4.peak_resident_bytes / 2).max(1);
        let o = run_arm(
            &nets,
            &cfg,
            churn_budget,
            4,
            (total_jobs / 4).max(1),
            run_ms,
            seed,
        );
        let eviction_bit_exact = o.fingerprints == steady_c4.fingerprints;
        report.push(
            serving_record("churn", 4, models, run_ms, &o)
                .config("budget_mb", churn_budget as f64 / (1024.0 * 1024.0)),
        );
        report.push(
            BenchRecord::new("serving_determinism")
                .config("clients", 4u32)
                .config("jobs", o.jobs)
                .metric("eviction_bit_exact", eviction_bit_exact)
                .metric("evictions", o.evictions)
                .metric("rehydrates", o.rehydrates),
        );

        // Quota arm, replayed: the accept/reject trace must be
        // identical run-to-run.
        let (admitted, q_full, in_flight, budget, trace_a) =
            run_quota_arm(&nets[0], &cfg, run_ms, seed);
        let (_, _, _, _, trace_b) = run_quota_arm(&nets[0], &cfg, run_ms, seed);
        report.push(
            BenchRecord::new("serving_quota")
                .config("tenants", 2u32)
                .config("submissions", 28u32)
                .metric("admitted", admitted)
                .metric("rejected_total", q_full + in_flight + budget)
                .metric("rejected_queue_full", q_full)
                .metric("rejected_in_flight", in_flight)
                .metric("rejected_tick_budget", budget)
                .metric("deterministic", trace_a == trace_b),
        );

        // The E14/E16/E20-compatible spikes/sec sweep — the rows the
        // benchmark trajectory chains across committed baselines.
        let (edges, ms): (&[u32], u32) = if quick {
            (&[8], 100)
        } else {
            (&[8, 16, 32], 200)
        };
        for &edge in edges {
            let sweep_net = super::e12_parallel_execution::synfire_net(16, 512);
            for queue in [QueueKind::Heap, QueueKind::Calendar] {
                for threads in [1u32, 2, 4, 16] {
                    super::e14_event_core::sweep_case_best_of(
                        &mut report,
                        &sweep_net,
                        edge,
                        threads,
                        queue,
                        ms,
                        3,
                    );
                }
            }
        }
        report
    }

    /// The E21 table.
    pub fn run(quick: bool) -> String {
        format_report(&report(quick))
    }

    /// Formats a report as the human-readable E21 table.
    pub fn format_report(report: &BenchReport) -> String {
        use super::e14_event_core::{num_field as num, str_field};
        let mut out = String::new();
        let _ = writeln!(
            out,
            "E21: multi-tenant serving — warm-pool throughput, LRU eviction, quota admission ({} mode, commit {})",
            report.mode,
            &report.commit[..report.commit.len().min(12)],
        );
        let _ = writeln!(
            out,
            "   the machine as a shared instrument: seeded synthetic clients against a\n   bounded queue over warm RunSessions, evicting under a resident-byte budget\n"
        );
        let _ = writeln!(
            out,
            "{:>8} {:>8} {:>6} {:>10} {:>10} {:>10} {:>9} {:>7} {:>7}",
            "arm", "clients", "jobs", "jobs/sec", "p50 ms", "p99 ms", "warm-hit", "evict", "rehydr"
        );
        for r in report.records.iter().filter(|r| r.name == "serving") {
            let _ = writeln!(
                out,
                "{:>8} {:>8.0} {:>6.0} {:>10.1} {:>10.2} {:>10.2} {:>8.0}% {:>7.0} {:>7.0}",
                str_field(&r.config, "arm"),
                num(&r.config, "clients"),
                num(&r.config, "jobs"),
                num(&r.metrics, "jobs_per_sec"),
                num(&r.metrics, "p50_latency_ms"),
                num(&r.metrics, "p99_latency_ms"),
                100.0 * num(&r.metrics, "warm_hit_ratio"),
                num(&r.metrics, "evictions"),
                num(&r.metrics, "rehydrates"),
            );
        }
        for r in report
            .records
            .iter()
            .filter(|r| r.name == "serving_determinism")
        {
            let _ = writeln!(
                out,
                "\n  eviction bit-exact: {} ({:.0} evictions, {:.0} rehydrates across the churn arm)",
                str_field(&r.metrics, "eviction_bit_exact"),
                num(&r.metrics, "evictions"),
                num(&r.metrics, "rehydrates"),
            );
        }
        for r in report.records.iter().filter(|r| r.name == "serving_quota") {
            let _ = writeln!(
                out,
                "  quota burst: {:.0} admitted / {:.0} rejected ({:.0} queue-full, {:.0} in-flight, {:.0} tick-budget), deterministic: {}",
                num(&r.metrics, "admitted"),
                num(&r.metrics, "rejected_total"),
                num(&r.metrics, "rejected_queue_full"),
                num(&r.metrics, "rejected_in_flight"),
                num(&r.metrics, "rejected_tick_budget"),
                str_field(&r.metrics, "deterministic"),
            );
        }
        out
    }
}
