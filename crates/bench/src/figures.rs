//! Structural figures of the paper (Figs. 1–5, 7), reproduced as
//! constructive renderings of the actual model objects.

use std::fmt::Write as _;

use spinn_machine::config::MachineConfig;
use spinn_noc::direction::ALL_DIRECTIONS;
use spinn_noc::mesh::{NodeCoord, Torus};

/// Fig. 1 — "The SpiNNaker system": a toroidal mesh of CMPs with an
/// Ethernet-attached host at (0,0).
pub fn fig1_system(width: u32, height: u32) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Fig. 1 — the SpiNNaker system: {width}x{height} toroidal mesh of CMP nodes"
    );
    let _ = writeln!(out, "          (H = Ethernet-attached host node)\n");
    for y in (0..height).rev() {
        let _ = write!(out, "   ");
        for x in 0..width {
            if x == 0 && y == 0 {
                let _ = write!(out, " [H]");
            } else {
                let _ = write!(out, " [ ]");
            }
        }
        let _ = writeln!(out);
    }
    let _ = writeln!(
        out,
        "\n  each [.] = 1 SpiNNaker MPSoC (20 ARM968) + 1 Gbit SDRAM; links wrap\n  toroidally in x and y; Host System connects over Ethernet to (0,0)."
    );
    out
}

/// Fig. 2 — mesh detail: the triangular facets around one node.
pub fn fig2_mesh_detail() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Fig. 2 — mesh detail: six links per node, triangular facets\n"
    );
    let _ = writeln!(out, "        (x-1,y+1)   (x,y+1)--(x+1,y+1)");
    let _ = writeln!(out, "               \\     |  N    /  NE");
    let _ = writeln!(out, "                \\    |      /");
    let _ = writeln!(out, "       (x-1,y) --- (x,y) --- (x+1,y)");
    let _ = writeln!(out, "            W   /    |       E");
    let _ = writeln!(out, "               /     |  S");
    let _ = writeln!(out, "        (x-1,y-1)   (x,y-1)");
    let _ = writeln!(out, "          SW\n");
    let torus = Torus::new(8, 8);
    let c = NodeCoord::new(3, 3);
    let _ = writeln!(out, "  neighbours of {c} on an 8x8 torus:");
    for d in ALL_DIRECTIONS {
        let n = torus.neighbour(c, d);
        let (e1, e2) = d.emergency_legs();
        let _ = writeln!(
            out,
            "    {d:<3} -> {n}   emergency detour for this link: {e1} then {e2}"
        );
    }
    out
}

/// Fig. 3 — a SpiNNaker node: the two NoCs and their clients.
pub fn fig3_node(cfg: &MachineConfig) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Fig. 3 — a SpiNNaker node\n");
    let _ = writeln!(
        out,
        "  +------------------- SpiNNaker MPSoC -------------------+"
    );
    let _ = writeln!(
        out,
        "  |  {} x ARM968 processor subsystems ({} MHz)             |",
        cfg.cores_per_chip, cfg.cpu_mhz
    );
    let _ = writeln!(
        out,
        "  |        |            |                  |               |"
    );
    let _ = writeln!(
        out,
        "  |  Communications NoC (self-timed, CHAIN 3-of-6 RTZ)    |"
    );
    let _ = writeln!(
        out,
        "  |        |   multicast Packet Router (1024-entry CAM)   |"
    );
    let _ = writeln!(
        out,
        "  |  System NoC --- shared peripherals                    |"
    );
    let _ = writeln!(
        out,
        "  |        |                                               |"
    );
    let _ = writeln!(
        out,
        "  +--------|-- 6 inter-chip links (2-of-7 NRZ self-timed) -+"
    );
    let _ = writeln!(
        out,
        "           |\n  [ {} MB mobile DDR SDRAM ] (shared, DMA {} B/us)",
        cfg.sdram_bytes / (1024 * 1024),
        cfg.dma_bytes_per_us
    );
    out
}

/// Fig. 4 — a processor subsystem.
pub fn fig4_subsystem(cfg: &MachineConfig) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Fig. 4 — a SpiNNaker processor subsystem\n");
    let _ = writeln!(out, "  ARM968 core ({} MHz)", cfg.cpu_mhz);
    let _ = writeln!(
        out,
        "    |- ITCM {} KB (instructions)",
        cfg.itcm_bytes / 1024
    );
    let _ = writeln!(
        out,
        "    |- DTCM {} KB (neuron state + input ring)",
        cfg.dtcm_bytes / 1024
    );
    let _ = writeln!(
        out,
        "    |- timer/counter        (1 ms tick -> priority-3 event)"
    );
    let _ = writeln!(
        out,
        "    |- vectored interrupt controller (3 priorities, Fig. 7)"
    );
    let _ = writeln!(
        out,
        "    |- communications controller (tx/rx neural packets)"
    );
    let _ = writeln!(
        out,
        "    '- DMA controller ({} ns setup) <-> shared SDRAM",
        cfg.dma_setup_ns
    );
    out
}

/// Fig. 5 — the GALS organization: clocked islands in a self-timed sea.
pub fn fig5_gals() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Fig. 5 — GALS organization\n");
    let _ = writeln!(out, "  clocked (synchronous) islands:");
    let _ = writeln!(
        out,
        "    - each ARM968 processor subsystem (own clock, own voltage)"
    );
    let _ = writeln!(out, "    - SDRAM interface");
    let _ = writeln!(out, "  self-timed (asynchronous) sea:");
    let _ = writeln!(out, "    - Communications NoC (CHAIN, 3-of-6 RTZ)");
    let _ = writeln!(out, "    - System NoC");
    let _ = writeln!(
        out,
        "    - inter-chip links (2-of-7 NRZ + transition-sensing"
    );
    let _ = writeln!(out, "      phase converters, Fig. 6)");
    let _ = writeln!(
        out,
        "\n  'timing closure issues are contained within this relatively small\n  component and do not spread upwards to full chip level' (§4)."
    );
    out
}

/// Fig. 7 — the event-driven real-time model.
pub fn fig7_event_model() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Fig. 7 — event-driven real-time model\n");
    let _ = writeln!(out, "  priority 1: packet-received interrupt");
    let _ = writeln!(
        out,
        "      identify spiking neuron -> fetch_Synaptic_Data()"
    );
    let _ = writeln!(out, "      (schedule DMA of the row from SDRAM)");
    let _ = writeln!(out, "  priority 2: DMA-completion interrupt");
    let _ = writeln!(out, "      process row -> deposit weights in the 16-slot");
    let _ = writeln!(
        out,
        "      deferred-event ring at each synapse's 1-16 ms delay"
    );
    let _ = writeln!(out, "  priority 3: 1 ms timer interrupt");
    let _ = writeln!(out, "      update_Neurons(); update_Stimulus();");
    let _ = writeln!(out, "      (integrate dv/dt, du/dt; emit spike packets)");
    let _ = writeln!(out, "  idle: goto_Sleep() — low-power wait-for-interrupt\n");
    let _ = writeln!(
        out,
        "  implemented verbatim by `spinn_machine::machine` (work items are\n  dispatched packet > row > timer; sleeping cores cost {} mW vs {} mW).",
        spinn_machine::config::EnergyModel::default().core_sleep_mw,
        spinn_machine::config::EnergyModel::default().core_active_mw
    );
    out
}

/// All figures in order.
pub fn all() -> String {
    let cfg = MachineConfig::new(8, 8);
    [
        fig1_system(8, 8),
        fig2_mesh_detail(),
        fig3_node(&cfg),
        fig4_subsystem(&cfg),
        fig5_gals(),
        fig7_event_model(),
    ]
    .join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figures_render_nonempty() {
        let all = all();
        for needle in ["Fig. 1", "Fig. 2", "Fig. 3", "Fig. 4", "Fig. 5", "Fig. 7"] {
            assert!(all.contains(needle), "missing {needle}");
        }
        assert!(all.contains("ARM968"));
        assert!(all.contains("emergency detour"));
    }

    #[test]
    fn fig2_detours_close_triangles() {
        // The rendering embeds real model geometry: verify one line.
        let s = fig2_mesh_detail();
        assert!(s.contains("E   -> (4,3)"));
    }
}
