//! Placement: slicing populations onto application cores.
//!
//! §3.2 ("virtualized topology"): *"In principle any neuron can be mapped
//! onto any processor. In practice it is likely to be beneficial to map
//! neurons that are physically close in biology to proximal locations in
//! SpiNNaker as this will minimize routing costs, but it is not necessary
//! to do so."* — hence three placers: locality-aware, round-robin and
//! random, compared in experiment E10.

use spinn_noc::mesh::{NodeCoord, Torus};
use spinn_sim::Xoshiro256;

use crate::graph::{NetworkGraph, PopulationId};

/// Placement strategy.
#[derive(Copy, Clone, Debug)]
pub enum Placer {
    /// Fill cores in chip id order, populations in creation order.
    RoundRobin,
    /// Order populations by connectivity (BFS over the projection
    /// graph) and chips by distance from the origin, so connected
    /// populations land on nearby chips.
    Locality,
    /// Uniformly random core order (the virtualized-topology stress
    /// case).
    Random {
        /// Shuffle seed.
        seed: u64,
    },
}

/// One population slice assigned to one application core.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Slice {
    /// The population.
    pub pop: PopulationId,
    /// First neuron index (inclusive).
    pub lo: u32,
    /// Last neuron index (exclusive).
    pub hi: u32,
    /// Chip holding the slice.
    pub chip: NodeCoord,
    /// Core on the chip (1-based; core 0 is the Monitor).
    pub core: u8,
    /// The slice's AER key block (population base + slice index; see
    /// [`crate::keys`]). Unique per slice, and aligned per population so
    /// sibling slices compress to one routing entry.
    pub global_core: u32,
}

impl Slice {
    /// Number of neurons in the slice.
    pub fn len(&self) -> u32 {
        self.hi - self.lo
    }

    /// Whether the slice is empty (never true for produced slices).
    pub fn is_empty(&self) -> bool {
        self.hi == self.lo
    }
}

/// Error: the machine has fewer application cores than the network needs.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct NotEnoughCores {
    /// Cores the network needs.
    pub needed: usize,
    /// Application cores available.
    pub available: usize,
}

impl std::fmt::Display for NotEnoughCores {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "placement needs {} cores but the machine has {}",
            self.needed, self.available
        )
    }
}

impl std::error::Error for NotEnoughCores {}

/// A complete placement of a network onto a machine.
#[derive(Clone, Debug)]
pub struct Placement {
    slices: Vec<Slice>,
    /// Slice indices per population, ordered by `lo`.
    by_pop: Vec<Vec<usize>>,
    cores_per_chip: u8,
    /// Per-population AER key span as `(base block, width)`; width is
    /// the slice count rounded up to a power of two and the base is
    /// aligned to it.
    key_spans: Vec<(u32, u32)>,
}

impl Placement {
    /// Computes a placement.
    ///
    /// `cores_per_chip` includes the Monitor (core 0), which is never
    /// allocated; `neurons_per_core` is the slice size limit (DTCM
    /// budget).
    ///
    /// # Errors
    ///
    /// Returns [`NotEnoughCores`] if the network does not fit.
    ///
    /// # Panics
    ///
    /// Panics if `neurons_per_core` is 0 or `cores_per_chip < 2`.
    pub fn compute(
        net: &NetworkGraph,
        width: u32,
        height: u32,
        cores_per_chip: u8,
        neurons_per_core: u32,
        placer: Placer,
    ) -> Result<Placement, NotEnoughCores> {
        assert!(neurons_per_core > 0, "neurons_per_core must be positive");
        assert!(cores_per_chip >= 2, "need at least one application core");
        let torus = Torus::new(width, height);
        let app_cores = cores_per_chip as usize - 1;

        // Core visit order, as (chip, core) pairs.
        let mut chip_order: Vec<usize> = (0..torus.len()).collect();
        match placer {
            Placer::RoundRobin => {}
            Placer::Locality => {
                let origin = NodeCoord::new(0, 0);
                chip_order.sort_by_key(|&id| (torus.hex_distance(origin, torus.coord_of(id)), id));
            }
            Placer::Random { .. } => {}
        }
        let mut cores: Vec<(usize, u8)> = chip_order
            .iter()
            .flat_map(|&chip| (1..=app_cores as u8).map(move |c| (chip, c)))
            .collect();
        if let Placer::Random { seed } = placer {
            let mut rng = Xoshiro256::seed_from_u64(seed);
            rng.shuffle(&mut cores);
        }

        // Population visit order.
        let pop_order: Vec<usize> = match placer {
            Placer::Locality => bfs_population_order(net),
            _ => (0..net.populations().len()).collect(),
        };

        // Count needed cores first.
        let needed: usize = net
            .populations()
            .iter()
            .map(|p| p.size.div_ceil(neurons_per_core) as usize)
            .sum();
        if needed > cores.len() {
            return Err(NotEnoughCores {
                needed,
                available: cores.len(),
            });
        }

        let mut slices = Vec::with_capacity(needed);
        let mut by_pop = vec![Vec::new(); net.populations().len()];
        let mut next_core = 0usize;
        for &p in &pop_order {
            let size = net.populations()[p].size;
            let mut lo = 0;
            while lo < size {
                let hi = (lo + neurons_per_core).min(size);
                let (chip, core) = cores[next_core];
                next_core += 1;
                by_pop[p].push(slices.len());
                slices.push(Slice {
                    pop: PopulationId(p),
                    lo,
                    hi,
                    chip: torus.coord_of(chip),
                    core,
                    global_core: 0, // allocated below, in population order
                });
                lo = hi;
            }
        }
        // Keep per-population slice lists ordered by lo for binary search.
        for list in &mut by_pop {
            list.sort_by_key(|&i| slices[i].lo);
        }
        // AER key allocation: each population gets an aligned span of
        // consecutive key blocks, padded to a power of two, assigned in
        // population-index order — independent of the placer, so the key
        // of a given (population, neuron) never depends on the mapping,
        // and sibling slices' entries can merge into one ternary entry.
        let mut key_spans = Vec::with_capacity(by_pop.len());
        let mut base = 0u32;
        for list in &by_pop {
            let width = crate::keys::pop_block_width(list.len() as u32);
            base = base.div_ceil(width) * width;
            key_spans.push((base, width));
            for (i, &si) in list.iter().enumerate() {
                slices[si].global_core = base + i as u32;
            }
            base += width;
        }
        assert!(base <= 1 << 21, "AER key block space exhausted");
        Ok(Placement {
            slices,
            by_pop,
            cores_per_chip,
            key_spans,
        })
    }

    /// All slices.
    pub fn slices(&self) -> &[Slice] {
        &self.slices
    }

    /// Cores per chip (including the Monitor).
    pub fn cores_per_chip(&self) -> u8 {
        self.cores_per_chip
    }

    /// Per-population AER key spans as `(base block, width)`, in
    /// population order. The union of spans is the universe of keys the
    /// network can ever own; everything outside is dead key space that
    /// routing tables must never match (the contract
    /// [`crate::minimize`] preserves).
    pub fn key_spans(&self) -> &[(u32, u32)] {
        &self.key_spans
    }

    /// The slices of one population, in neuron order.
    pub fn slices_of(&self, pop: PopulationId) -> impl Iterator<Item = &Slice> {
        self.by_pop[pop.0].iter().map(move |&i| &self.slices[i])
    }

    /// Indices into [`Placement::slices`] of one population's slices,
    /// in neuron order (the streaming loader uses these to address
    /// per-core images directly instead of scanning for slices).
    pub fn slice_indices_of(&self, pop: PopulationId) -> &[usize] {
        &self.by_pop[pop.0]
    }

    /// The index (into [`Placement::slices`]) of the slice holding
    /// `neuron` of `pop`.
    ///
    /// # Panics
    ///
    /// Panics if the neuron is out of range.
    pub fn locate_idx(&self, pop: PopulationId, neuron: u32) -> usize {
        let list = &self.by_pop[pop.0];
        let idx = list.partition_point(|&i| self.slices[i].hi <= neuron);
        let slice_idx = list[idx];
        let slice = &self.slices[slice_idx];
        assert!(
            slice.lo <= neuron && neuron < slice.hi,
            "neuron {neuron} not covered by placement"
        );
        slice_idx
    }

    /// The slice holding `neuron` of `pop`.
    ///
    /// # Panics
    ///
    /// Panics if the neuron is out of range.
    pub fn locate(&self, pop: PopulationId, neuron: u32) -> &Slice {
        &self.slices[self.locate_idx(pop, neuron)]
    }
}

/// BFS over the undirected projection graph, starting from population 0,
/// visiting stray components in index order.
fn bfs_population_order(net: &NetworkGraph) -> Vec<usize> {
    let n = net.populations().len();
    let mut adj = vec![Vec::new(); n];
    for proj in net.projections() {
        adj[proj.src.0].push(proj.dst.0);
        adj[proj.dst.0].push(proj.src.0);
    }
    let mut order = Vec::with_capacity(n);
    let mut seen = vec![false; n];
    for start in 0..n {
        if seen[start] {
            continue;
        }
        let mut queue = std::collections::VecDeque::from([start]);
        seen[start] = true;
        while let Some(p) = queue.pop_front() {
            order.push(p);
            for &q in &adj[p] {
                if !seen[q] {
                    seen[q] = true;
                    queue.push_back(q);
                }
            }
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{Connector, NeuronKind, Synapses};
    use spinn_neuron::izhikevich::IzhikevichParams;

    fn kind() -> NeuronKind {
        NeuronKind::Izhikevich(IzhikevichParams::regular_spiking())
    }

    fn sample_net() -> NetworkGraph {
        let mut net = NetworkGraph::new();
        let a = net.population("a", 250, kind(), 0.0);
        let b = net.population("b", 100, kind(), 0.0);
        let c = net.population("c", 50, kind(), 0.0);
        net.project(
            a,
            b,
            Connector::FixedProbability(0.1),
            Synapses::constant(10, 1),
            1,
        );
        net.project(
            b,
            c,
            Connector::AllToAll { allow_self: true },
            Synapses::constant(10, 1),
            2,
        );
        net
    }

    fn check_complete(net: &NetworkGraph, placement: &Placement) {
        // Every neuron of every population is covered exactly once.
        for (p, pop) in net.populations().iter().enumerate() {
            let mut covered = vec![0u32; pop.size as usize];
            for s in placement.slices_of(PopulationId(p)) {
                for n in s.lo..s.hi {
                    covered[n as usize] += 1;
                }
            }
            assert!(covered.iter().all(|&c| c == 1), "pop {p} coverage broken");
        }
        // No core is used twice.
        let mut used: Vec<u32> = placement.slices().iter().map(|s| s.global_core).collect();
        used.sort_unstable();
        let len = used.len();
        used.dedup();
        assert_eq!(used.len(), len, "core double-booked");
        // Core 0 (Monitor) never used.
        assert!(placement.slices().iter().all(|s| s.core != 0));
    }

    #[test]
    fn all_placers_produce_complete_placements() {
        let net = sample_net();
        for placer in [
            Placer::RoundRobin,
            Placer::Locality,
            Placer::Random { seed: 9 },
        ] {
            let p = Placement::compute(&net, 4, 4, 17, 100, placer).unwrap();
            check_complete(&net, &p);
            assert_eq!(p.slices().len(), 3 + 1 + 1);
        }
    }

    #[test]
    fn locate_finds_the_right_slice() {
        let net = sample_net();
        let p = Placement::compute(&net, 4, 4, 17, 100, Placer::RoundRobin).unwrap();
        let a = PopulationId(0);
        assert_eq!(p.locate(a, 0).lo, 0);
        let s = p.locate(a, 249);
        assert!(s.lo <= 249 && 249 < s.hi);
        let s = p.locate(a, 100);
        assert_eq!(s.lo, 100);
    }

    #[test]
    #[should_panic]
    fn locate_out_of_range_panics() {
        let net = sample_net();
        let p = Placement::compute(&net, 4, 4, 17, 100, Placer::RoundRobin).unwrap();
        let _ = p.locate(PopulationId(0), 250);
    }

    #[test]
    fn insufficient_cores_reported() {
        let net = sample_net(); // needs 5 cores of 100
        let err = Placement::compute(&net, 1, 1, 3, 100, Placer::RoundRobin).unwrap_err();
        assert_eq!(err.needed, 5);
        assert_eq!(err.available, 2);
        assert!(err.to_string().contains("5 cores"));
    }

    #[test]
    fn locality_places_connected_pops_close() {
        let mut net = NetworkGraph::new();
        // A chain a -> b -> c -> d, one core each.
        let pops: Vec<_> = (0..4)
            .map(|i| net.population(&format!("p{i}"), 50, kind(), 0.0))
            .collect();
        for w in pops.windows(2) {
            net.project(w[0], w[1], Connector::OneToOne, Synapses::constant(1, 1), 0);
        }
        let local = Placement::compute(&net, 8, 8, 2, 50, Placer::Locality).unwrap();
        // With 1 app core per chip, the four pops occupy four chips;
        // successive pops should be within a couple of hops.
        let torus = Torus::new(8, 8);
        let chips: Vec<NodeCoord> = (0..4)
            .map(|i| local.slices_of(PopulationId(i)).next().unwrap().chip)
            .collect();
        for w in chips.windows(2) {
            assert!(
                torus.hex_distance(w[0], w[1]) <= 2,
                "locality placer spread chain: {} -> {}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn key_blocks_are_population_aligned_and_placer_independent() {
        let net = sample_net(); // slices per pop: 3, 1, 1
        let placements: Vec<Placement> = [
            Placer::RoundRobin,
            Placer::Locality,
            Placer::Random { seed: 4 },
        ]
        .into_iter()
        .map(|p| Placement::compute(&net, 4, 4, 17, 100, p).unwrap())
        .collect();
        for p in &placements {
            // Spans: pop 0 gets blocks 0..4 (3 slices padded to 4),
            // pops 1 and 2 one block each.
            assert_eq!(p.key_spans(), &[(0, 4), (4, 1), (5, 1)]);
            for (pop, &(base, width)) in p.key_spans().iter().enumerate() {
                assert_eq!(base % width, 0, "span must be aligned");
                for (i, s) in p.slices_of(PopulationId(pop)).enumerate() {
                    assert_eq!(s.global_core, base + i as u32);
                }
            }
        }
        // The key of (population, neuron) is identical under every
        // placer: only the (chip, core) location moves.
        for (a, b) in placements.iter().zip(&placements[1..]) {
            for (sa, sb) in a
                .slices_of(PopulationId(0))
                .zip(b.slices_of(PopulationId(0)))
            {
                assert_eq!(sa.global_core, sb.global_core);
                assert_eq!((sa.lo, sa.hi), (sb.lo, sb.hi));
            }
        }
    }

    #[test]
    fn random_placement_differs_but_is_deterministic() {
        let net = sample_net();
        let a = Placement::compute(&net, 4, 4, 17, 100, Placer::Random { seed: 1 }).unwrap();
        let b = Placement::compute(&net, 4, 4, 17, 100, Placer::Random { seed: 1 }).unwrap();
        let c = Placement::compute(&net, 4, 4, 17, 100, Placer::Random { seed: 2 }).unwrap();
        assert_eq!(a.slices(), b.slices());
        assert_ne!(a.slices(), c.slices());
    }

    #[test]
    fn slice_len_accessors() {
        let net = sample_net();
        let p = Placement::compute(&net, 4, 4, 17, 100, Placer::RoundRobin).unwrap();
        let s = p.locate(PopulationId(0), 200);
        assert_eq!(s.len(), 50); // 250 = 100 + 100 + 50
        assert!(!s.is_empty());
    }
}
