//! # spinn-map — mapping neural networks onto the machine
//!
//! "Mapping the biological neural system onto the SpiNNaker machine is
//! non-trivial \[18\]\[19\]. Neurons must be mapped to processors, multicast
//! routing tables computed, connectivity data constructed, and relevant
//! input/output mechanisms deployed." (§5.3)
//!
//! This crate is that toolchain:
//!
//! * [`graph`] — the abstract network: populations and projections with
//!   connectors (one-to-one, all-to-all, fixed-probability, fixed
//!   fan-out), weights and delays; expansion is deterministic per seed.
//! * [`place`] — slicing populations onto application cores:
//!   locality-aware (connected populations near each other),
//!   round-robin, or **random** — the §3.2 "virtualized topology" point
//!   is precisely that random placement still *works*, locality merely
//!   cheapens routing (experiment E10).
//! * [`keys`] — AER key allocation: one aligned key block per source
//!   core, so each source core costs at most one ternary CAM entry per
//!   chip on its multicast tree.
//! * [`route`] — multicast-tree construction over the hex torus, router
//!   table emission with **default-route elision** (entries are omitted
//!   where the packet would continue straight anyway), and tree cost
//!   metrics.
//! * [`loader`] — expanding projections into per-core synaptic rows (the
//!   SDRAM data the DMA engine fetches) with memory accounting.
//!
//! # Example
//!
//! ```
//! use spinn_map::graph::{NetworkGraph, Connector, NeuronKind, Synapses};
//! use spinn_map::place::{Placer, Placement};
//! use spinn_map::route::RoutingPlan;
//! use spinn_neuron::izhikevich::IzhikevichParams;
//!
//! let mut net = NetworkGraph::new();
//! let a = net.population("a", 100, NeuronKind::Izhikevich(IzhikevichParams::regular_spiking()), 8.0);
//! let b = net.population("b", 100, NeuronKind::Izhikevich(IzhikevichParams::regular_spiking()), 0.0);
//! net.project(a, b, Connector::FixedProbability(0.1), Synapses::constant(512, 2), 1);
//!
//! let placement = Placement::compute(&net, 8, 8, 16, 100, Placer::Locality).unwrap();
//! let plan = RoutingPlan::build(&net, &placement, 8, 8);
//! assert!(plan.total_entries() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod graph;
pub mod keys;
pub mod loader;
pub mod place;
pub mod route;

pub use graph::{Connector, NetworkGraph, NeuronKind, PopulationId, Synapses};
pub use keys::{core_base_key, core_key_mask, neuron_key};
pub use loader::{CoreImage, LoadedApp};
pub use place::{Placement, Placer};
pub use route::{tree_cost, RoutingPlan, TreeCost};
