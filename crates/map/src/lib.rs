//! # spinn-map — mapping neural networks onto the machine
//!
//! "Mapping the biological neural system onto the SpiNNaker machine is
//! non-trivial \[18\]\[19\]. Neurons must be mapped to processors, multicast
//! routing tables computed, connectivity data constructed, and relevant
//! input/output mechanisms deployed." (§5.3)
//!
//! This crate is that toolchain — the pipeline runs **place → route →
//! minimize → install**:
//!
//! 1. **Place** ([`place`]) — populations are sliced onto application
//!    cores: locality-aware (connected populations near each other),
//!    round-robin, or **random** — the §3.2 "virtualized topology" point
//!    is precisely that random placement still *works*, locality merely
//!    cheapens routing (experiment E10). Placement also allocates each
//!    slice's AER key block ([`keys`]): every population owns an
//!    aligned, power-of-two-padded span of blocks, independent of the
//!    placer.
//! 2. **Route** ([`route`]) — a shortest-path multicast tree per source
//!    core over the hex torus, emitted as ternary-CAM tables with
//!    **default-route elision** (entries are omitted where the packet
//!    would continue straight anyway), plus tree cost metrics.
//! 3. **Minimize** ([`minimize`], via
//!    [`route::RoutingPlan::minimized`]) — same-chip entries whose
//!    routes agree are merged into wider masked entries,
//!    Ordered-Covering style: sibling slices of one population collapse
//!    to a single entry, free live key space is used as don't-cares,
//!    and keys that traverse the chip — or dead key space — are never
//!    captured. [`route::RoutingPlan::verify_against`] replays every
//!    source to prove route equivalence.
//! 4. **Install** ([`route::RoutingPlan::install_into`], or
//!    `NeuralMachine::install_routing_plan` one level up) — the tables
//!    are loaded into the routers through the fallible `TableFull` path
//!    and counted against the 1024-entry CAM capacity.
//!
//! [`graph`] describes the abstract network (populations and projections
//! with connectors, weights and delays; expansion is deterministic per
//! seed) and [`loader`] expands projections into per-core synaptic rows
//! (the SDRAM data the DMA engine fetches) with memory accounting.
//!
//! # Example
//!
//! ```
//! use spinn_map::graph::{NetworkGraph, Connector, NeuronKind, Synapses};
//! use spinn_map::place::{Placer, Placement};
//! use spinn_map::route::RoutingPlan;
//! use spinn_neuron::izhikevich::IzhikevichParams;
//!
//! let mut net = NetworkGraph::new();
//! let a = net.population("a", 100, NeuronKind::Izhikevich(IzhikevichParams::regular_spiking()), 8.0);
//! let b = net.population("b", 100, NeuronKind::Izhikevich(IzhikevichParams::regular_spiking()), 0.0);
//! net.project(a, b, Connector::FixedProbability(0.1), Synapses::constant(512, 2), 1);
//!
//! let placement = Placement::compute(&net, 8, 8, 16, 100, Placer::Locality).unwrap();
//! let plan = RoutingPlan::build(&net, &placement, 8, 8);
//! let min = plan.minimized();
//! assert!(min.total_entries() <= plan.total_entries());
//! assert_eq!(plan.verify_against(&min), 0, "minimization is route-exact");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod graph;
pub mod keys;
pub mod loader;
pub mod minimize;
pub mod place;
pub mod route;

pub use graph::{Connector, NetworkGraph, NeuronKind, PopulationId, Synapses};
pub use keys::{core_base_key, core_key_mask, neuron_key, pop_key_mask};
pub use loader::{CoreImage, LoadedApp};
pub use minimize::{minimize_chip, ChipContext};
pub use place::{Placement, Placer};
pub use route::{tree_cost, RoutingPlan, TreeCost};
